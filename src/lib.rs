//! # lightwave
//!
//! A simulation and control-plane library for **reconfigurable optical
//! circuit switched (OCS) fabrics**, reproducing the systems described in
//! *"Lightwave Fabrics: At-Scale Optical Circuit Switching for Datacenter
//! and Machine Learning Systems"* (Liu et al., ACM SIGCOMM 2023).
//!
//! The library spans the whole stack the paper describes:
//!
//! | layer | crate (re-exported module) |
//! |---|---|
//! | units & numerics | [`units`] |
//! | deterministic parallel execution | [`par`] |
//! | fleet observability (metrics, alarms, SLOs) | [`telemetry`] |
//! | photonic link physics | [`optics`] |
//! | RS(544,514) + soft inner FEC | [`fec`] |
//! | the Palomar 136×136 MEMS OCS | [`ocs`] |
//! | bidi CWDM4/CWDM8 transceivers | [`transceiver`] |
//! | fabric control plane | [`fabric`] |
//! | TPU-v4 superpod & slices | [`superpod`] |
//! | cluster scheduling | [`scheduler`] |
//! | availability & goodput | [`availability`] |
//! | spine-free DCN & TE | [`dcn`] |
//! | LLM slice-shape optimization | [`mlperf`] |
//!
//! ## Quickstart
//!
//! ```
//! use lightwave::prelude::*;
//!
//! // Build a 4096-TPU superpod on a live 48-OCS lightwave fabric.
//! let mut pod = MlPod::new(42);
//!
//! // Place a 70B-parameter LLM: the optimizer picks 4×4×256 (Table 2)
//! // and the fabric wires the slice.
//! let placement = pod
//!     .place_model(&LlmConfig::llm1(), 4096)
//!     .expect("an empty pod fits a full-pod model");
//! assert_eq!(placement.plan.shape.chips, [4, 4, 256]);
//!
//! // Let the MEMS mirrors settle and the transceivers re-acquire.
//! pod.advance(Nanos::from_millis(300));
//! assert!(pod.pod.settled());
//! ```
//!
//! See `examples/` for end-to-end scenarios and `crates/bench` for the
//! harness that regenerates every table and figure of the paper.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lightwave_core::*;
