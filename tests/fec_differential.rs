//! Differential proptests: the fast FEC/PAM4 kernels versus their frozen
//! references (DESIGN §6.8).
//!
//! The reference implementations (`lightwave::fec::reference`,
//! `lightwave::optics::montecarlo::reference`) are the behavioral
//! oracles; these properties drive both sides with the same arbitrary
//! inputs and demand *exact* agreement — return values, output buffers
//! (including the partially-corrected buffers of failed decodes), error
//! tallies, and RNG stream positions. `tests/fec_vectors.rs` pins fixed
//! known answers; this file covers the input space around them.

use lightwave::fec::gf::Gf;
use lightwave::fec::reference::ReferenceRs;
use lightwave::fec::{Interleaver, ReedSolomon, RsScratch};
use lightwave::optics::ber::{mpi_db, Pam4Receiver};
use lightwave::optics::montecarlo::{self as mc, McChannel};
use lightwave::par::Pool;
use lightwave::units::Dbm;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};

/// Builds matched fast/reference codecs for one of two shapes: the
/// production KP4 code and a small code whose short length shakes out
/// index edge cases the long code hides.
fn codecs(small: bool) -> (ReedSolomon, ReferenceRs) {
    if small {
        (ReedSolomon::new(15, 11), ReferenceRs::new(15, 11))
    } else {
        (ReedSolomon::kp4(), ReferenceRs::new(544, 514))
    }
}

/// Deterministically corrupts `cw` with `nerr` distinct-position errors.
fn inject(cw: &mut [Gf], nerr: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pos: Vec<usize> = (0..cw.len()).collect();
    for i in 0..nerr {
        let j = rng.random_range(i..pos.len());
        pos.swap(i, j);
        cw[pos[i]] ^= rng.random_range(1..1024u16);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Fast and reference encoders agree on arbitrary messages, both
    /// code shapes.
    #[test]
    fn encode_agrees_on_arbitrary_messages(seed in 0u64..1_000_000, small in any::<bool>()) {
        let (fast, reference) = codecs(small);
        let mut rng = StdRng::seed_from_u64(seed);
        let msg: Vec<Gf> = (0..fast.k()).map(|_| rng.random_range(0..1024u16)).collect();
        prop_assert_eq!(fast.encode(&msg), reference.encode(&msg));
    }

    /// Decode agrees — result *and* buffer — on arbitrary error patterns
    /// up to t errors.
    #[test]
    fn decode_agrees_within_t(seed in 0u64..1_000_000, nerr_sel in 0usize..=100, small in any::<bool>()) {
        let (fast, reference) = codecs(small);
        let nerr = nerr_sel % (fast.t() + 1);
        let mut rng = StdRng::seed_from_u64(seed);
        let msg: Vec<Gf> = (0..fast.k()).map(|_| rng.random_range(0..1024u16)).collect();
        let cw = fast.encode(&msg);
        let mut fast_word = cw.clone();
        inject(&mut fast_word, nerr, seed ^ 0xE44);
        let mut ref_word = fast_word.clone();

        let mut scratch = RsScratch::new();
        let fast_res = fast.decode_with(&mut fast_word, &mut scratch);
        let ref_res = reference.decode(&mut ref_word);
        prop_assert_eq!(fast_res, ref_res);
        prop_assert_eq!(&fast_word, &ref_word);
        prop_assert_eq!(fast_res, Ok(nerr));
        prop_assert_eq!(fast_word, cw);
    }

    /// Beyond t errors both sides must make the *same* call — detected
    /// failure or (rare) identical miscorrection — and leave identical
    /// buffers, including the partially-corrected Err-path buffers.
    #[test]
    fn decode_agrees_beyond_t(seed in 0u64..1_000_000, extra in 1usize..=10, small in any::<bool>()) {
        let (fast, reference) = codecs(small);
        let nerr = fast.t() + extra;
        let mut rng = StdRng::seed_from_u64(seed);
        let msg: Vec<Gf> = (0..fast.k()).map(|_| rng.random_range(0..1024u16)).collect();
        let mut fast_word = fast.encode(&msg);
        inject(&mut fast_word, nerr, seed ^ 0xBEEF);
        let mut ref_word = fast_word.clone();

        let mut scratch = RsScratch::new();
        let fast_res = fast.decode_with(&mut fast_word, &mut scratch);
        let ref_res = reference.decode(&mut ref_word);
        prop_assert_eq!(fast_res, ref_res);
        prop_assert_eq!(fast_word, ref_word);
    }

    /// An erasure-free burst up to the interleaver's burst tolerance is
    /// corrected by the fast kernels, and a symbol-by-symbol reference
    /// decode of each de-interleaved lane agrees with it.
    #[test]
    fn interleaved_bursts_agree_with_reference_lanes(
        seed in 0u64..1_000_000,
        depth in 1usize..=4,
        burst_sel in 1usize..=100,
        start_sel in 0usize..=10_000,
    ) {
        let code = ReedSolomon::new(15, 11);
        let reference = ReferenceRs::new(15, 11);
        let il = Interleaver::new(code, depth);
        let burst = 1 + burst_sel % il.burst_tolerance();
        let mut rng = StdRng::seed_from_u64(seed);
        let payload: Vec<Gf> =
            (0..il.frame_payload()).map(|_| rng.random_range(0..1024u16)).collect();
        let frame = il.encode(&payload);
        let mut hit = frame.clone();
        let start = start_sel % (frame.len() - burst + 1);
        for s in &mut hit[start..start + burst] {
            // Contiguous burst, every symbol corrupted (erasure-free: the
            // decoder gets no location hints).
            *s ^= rng.random_range(1..1024u16);
        }

        let (decoded, corrected) = il.decode(&hit).expect("burst within tolerance");
        prop_assert_eq!(&decoded, &payload);
        prop_assert_eq!(corrected, burst);

        // De-interleave lane w = positions i·depth + w, and reference-decode
        // each lane's codeword independently.
        let mut ref_corrected = 0usize;
        for w in 0..depth {
            let mut lane: Vec<Gf> =
                (0..reference.n()).map(|i| hit[i * depth + w]).collect();
            ref_corrected += reference.decode(&mut lane).expect("lane within t");
            let clean: Vec<Gf> =
                (0..reference.n()).map(|i| frame[i * depth + w]).collect();
            prop_assert_eq!(lane, clean);
        }
        prop_assert_eq!(ref_corrected, burst);
    }
}

proptest! {
    // The MC property runs three full channels per case; keep the case
    // count modest so tier-1 stays fast.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The batched Monte-Carlo symbol loop is bit-identical to the
    /// reference loop — error tally *and* RNG stream position — for
    /// arbitrary (seed, trials), clean and MPI, including trial counts
    /// that are not multiples of the noise block.
    #[test]
    fn mc_loop_is_bit_identical_to_reference(
        seed in 0u64..1_000_000,
        extra in 0u64..(2 * mc::NOISE_BLOCK_SYMBOLS),
        blocks in 0u64..3,
        mpi in any::<bool>(),
    ) {
        let symbols = 1 + blocks * mc::NOISE_BLOCK_SYMBOLS + extra;
        let rx = Pam4Receiver::cwdm4_50g();
        let chan = if mpi {
            McChannel::new(&rx, Dbm(-12.5), mpi_db(-32.0), None)
        } else {
            McChannel::new(&rx, Dbm(-13.0), 0.0, None)
        };
        let mut fast_rng = StdRng::seed_from_u64(seed);
        let mut ref_rng = StdRng::seed_from_u64(seed);
        let fast = chan.run(symbols, &mut fast_rng);
        let reference = mc::reference::run(&chan, symbols, &mut ref_rng);
        prop_assert_eq!(fast, reference);
        // Same stream position ⇒ the kernels consumed identical raw draws.
        prop_assert_eq!(fast_rng.next_u64(), ref_rng.next_u64());
    }

    /// The pooled fast path equals the pooled reference path for
    /// arbitrary (seed, symbols) at 1, 2 and 4 workers — all seven runs
    /// one result.
    #[test]
    fn pooled_mc_agrees_across_thread_counts(
        seed in 0u64..1_000_000,
        extra in 1u64..10_000,
    ) {
        let symbols = mc::DEFAULT_SHARD_SYMBOLS + extra;
        let rx = Pam4Receiver::cwdm4_50g();
        let reference = {
            let pool = Pool::new(1);
            mc::reference::simulate_ber_with_pool(
                &pool, &rx, Dbm(-12.5), mpi_db(-32.0), None, symbols, seed,
            ).0
        };
        for threads in [1usize, 2, 4] {
            let pool = Pool::new(threads);
            let fast = mc::simulate_ber_with_pool(
                &pool, &rx, Dbm(-12.5), mpi_db(-32.0), None, symbols, seed,
            ).0;
            prop_assert_eq!(fast, reference);
            let ref_pooled = mc::reference::simulate_ber_with_pool(
                &pool, &rx, Dbm(-12.5), mpi_db(-32.0), None, symbols, seed,
            ).0;
            prop_assert_eq!(ref_pooled, reference);
        }
    }
}
