//! End-to-end pod lifecycle across crates: optimizer → slices → fabric →
//! OCS hardware, with failures injected at every layer.

use lightwave::prelude::*;
use lightwave::superpod::wiring::{ocs_role, SUPERPOD_OCS_COUNT};
use lightwave::superpod::Slice;
use lightwave::units::Nanos;

fn settle(pod: &mut MlPod) {
    pod.advance(Nanos::from_millis(400));
    assert!(pod.pod.settled(), "fabric must settle within 400 ms");
}

#[test]
fn many_models_share_one_pod_without_interference() {
    let mut pod = MlPod::new(1);
    // Fill the pod with a mix: 16 + 8 + 8 + 16 + 8 cubes = 56 of 64.
    let placements: Vec<_> = [
        (LlmConfig::llm1(), 1024),
        (LlmConfig::llm0(), 512),
        (LlmConfig::llm0(), 512),
        (LlmConfig::llm1(), 1024),
        (LlmConfig::llm2(), 512),
    ]
    .iter()
    .map(|(m, chips)| pod.place_model(m, *chips).expect("fits"))
    .collect();
    settle(&mut pod);
    assert_eq!(pod.pod.idle_cubes().len(), 64 - 56);

    // Each placement got distinct cubes.
    let mut all_cubes: Vec<u8> = placements
        .iter()
        .flat_map(|p| pod.pod.slice(p.handle).expect("live").cubes.clone())
        .collect();
    let n = all_cubes.len();
    all_cubes.sort_unstable();
    all_cubes.dedup();
    assert_eq!(all_cubes.len(), n, "no cube is in two slices");

    // Release the middle ones; survivors never blink (circuits stay
    // Connected through the transactions).
    pod.release(placements[1].handle).unwrap();
    pod.release(placements[2].handle).unwrap();
    assert!(
        pod.pod.settled(),
        "pure-release transactions disturb nothing"
    );
    // Remaining slices intact.
    assert!(pod.pod.slice(placements[0].handle).is_some());
    assert!(pod.pod.slice(placements[4].handle).is_some());
    assert_eq!(pod.pod.idle_cubes().len(), 64 - 56 + 16);
}

#[test]
fn full_pod_uses_every_ocs_symmetrically() {
    let mut pod = MlPod::new(2);
    pod.place_model(&LlmConfig::llm2(), 4096).expect("full pod");
    settle(&mut pod);
    let health = pod.pod.fabric().fleet.health();
    assert_eq!(health.switches, SUPERPOD_OCS_COUNT);
    // 64 cubes × 3 dims × 16 circuits = 3072 circuits, 64 per OCS.
    assert_eq!(health.circuits, 3072);
    for (id, h) in &health.per_switch {
        assert_eq!(h.circuits, 64, "OCS {id} carries one circuit per cube");
        let (_dim, link) = ocs_role(*id);
        assert!(link < 16);
    }
}

#[test]
fn ocs_chassis_failure_degrades_new_slices_but_wedges_nothing() {
    let mut pod = MlPod::new(3);
    let p1 = pod.place_model(&LlmConfig::llm0(), 512).expect("fits");
    settle(&mut pod);

    // Kill OCS 7 (both PSUs).
    {
        let ocs = pod.pod.fabric_mut().fleet.get_mut(7).expect("exists");
        ocs.fail_fru(0);
        ocs.fail_fru(1);
    }
    // New slices still compose: the down switch carries 1 of the 16
    // parallel links per face, so skipping it degrades bandwidth rather
    // than partitioning the torus. The missed transaction is recorded...
    let p2 = pod
        .place_model(&LlmConfig::llm0(), 512)
        .expect("degraded compose");
    assert!(pod.pod.desynced().contains(&7), "missed txn recorded");
    // ...while the original slice is untouched and accounting is sound.
    assert!(pod.pod.slice(p1.handle).is_some());
    assert!(pod.pod.slice(p2.handle).is_some());
    assert_eq!(pod.pod.idle_cubes().len(), 64 - 16);

    // Repair the chassis; anti-entropy converges the straggler.
    {
        let ocs = pod.pod.fabric_mut().fleet.get_mut(7).expect("exists");
        ocs.replace_fru(0);
        ocs.replace_fru(1);
    }
    for (id, r) in pod.pod.resync() {
        r.unwrap_or_else(|e| panic!("OCS {id} resync: {e}"));
    }
    assert!(pod.pod.desynced().is_empty());
    settle(&mut pod);
}

#[test]
fn cube_failure_swap_preserves_other_slices() {
    let mut pod = MlPod::new(4);
    let pa = pod.place_model(&LlmConfig::llm0(), 512).expect("fits");
    let pb = pod.place_model(&LlmConfig::llm0(), 512).expect("fits");
    settle(&mut pod);

    // A cube in slice A dies; rebuild A on a spare.
    let victim = pod.pod.slice(pa.handle).expect("live").cubes[0];
    pod.pod.mark_cube_failed(victim);
    let old = pod.pod.slice(pa.handle).expect("live").clone();
    pod.release(pa.handle).unwrap();
    let spare = pod
        .pod
        .idle_cubes()
        .into_iter()
        .find(|c| !old.cubes.contains(c))
        .expect("spares exist");
    let cubes: Vec<_> = old
        .cubes
        .iter()
        .map(|&c| if c == victim { spare } else { c })
        .collect();
    let (_, report) = pod
        .pod
        .compose(Slice::new(old.shape, cubes).expect("valid"))
        .expect("recompose");
    // Slice B's circuits were never touched by the whole dance:
    // 8 cubes × 3 dims × 16 = 384 circuits preserved.
    assert_eq!(report.untouched, 384);
    settle(&mut pod);
    assert!(pod.pod.slice(pb.handle).is_some());
}

#[test]
fn fabric_power_is_ocs_class_not_eps_class() {
    let mut pod = MlPod::new(5);
    pod.place_model(&LlmConfig::llm2(), 4096).expect("fits");
    settle(&mut pod);
    let power = pod.pod.fabric().fleet.health().power_w;
    // 48 chassis, each ≤ 108 W — versus hundreds of kW for an EPS fabric
    // of the same capacity.
    assert!(power < 48.0 * 108.0, "fabric draws {power} W");
    assert!(power > 48.0 * 50.0, "loaded fabric draws real power");
}

#[test]
fn placement_is_deterministic_per_seed() {
    let run = |seed| {
        let mut pod = MlPod::new(seed);
        let p = pod.place_model(&LlmConfig::llm1(), 2048).expect("fits");
        (
            p.plan.shape.chips,
            pod.pod.slice(p.handle).expect("live").cubes.clone(),
        )
    };
    assert_eq!(run(9), run(9));
}
