//! Determinism contract of the scope attribution layer (DESIGN §6.7).
//!
//! The scope report is an *observability* artifact, but it obeys the
//! same contract as the service report itself: every number in
//! `scope_report.json` — sampling decisions, span ids, histogram
//! buckets, exemplars, retained timelines, critical paths — is a pure
//! function of `(seed, config)`, independent of thread count, merge
//! order, and sharding. Four claims:
//!
//! 1. **Sampling purity** — `scope_sampled` and `scope_span_id` depend
//!    only on `(seed, request)` (proptest), and the span stream is
//!    disjoint from the tracer's counter stream.
//! 2. **Merge-order invariance** — exemplar histograms are lattice
//!    joins: merging in any order yields identical state, and the
//!    exemplar tie-break (larger value, then smaller request) is total.
//! 3. **Thread-count invariance** — `run_sharded_scoped` snapshot JSON
//!    is byte-identical at 1 vs 4 threads.
//! 4. **Self-consistency** — critical paths exist for every class that
//!    completed work, their exemplar requests all have retained
//!    timelines, and phase nanos sum to the timeline total.

use lightwave::par::Pool;
use lightwave::service::{
    run_sharded_scoped, scope_sampled, scope_span_id, ScopePhase, ServiceConfig,
};
use lightwave::telemetry::ExemplarHistogram;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The sampling decision is pure in `(seed, request, every)` —
    /// recomputing it anywhere (any shard, any thread) agrees.
    #[test]
    fn sampling_is_pure(seed in any::<u64>(), request in any::<u64>(), every in 0u64..2048) {
        let a = scope_sampled(seed, request, every);
        let b = scope_sampled(seed, request, every);
        prop_assert_eq!(a, b);
        // Degenerate rates short-circuit.
        prop_assert!(!scope_sampled(seed, request, 0));
        prop_assert!(scope_sampled(seed, request, 1));
        // Span ids are pure too, and never the zero sentinel.
        prop_assert_eq!(scope_span_id(seed, request), scope_span_id(seed, request));
        prop_assert_ne!(scope_span_id(seed, request).0, 0);
    }

    /// A 1-in-n sampler keeps roughly 1/n of a long index range — the
    /// decision must not degenerate (all or nothing) on any seed.
    #[test]
    fn sampling_rate_tracks_the_period(seed in any::<u64>()) {
        let n = 4096u64;
        let hits = (0..n).filter(|&i| scope_sampled(seed, i, 64)).count() as f64;
        let expect = n as f64 / 64.0;
        prop_assert!(hits > expect * 0.3 && hits < expect * 3.0,
            "1-in-64 sampler kept {hits} of {n}");
    }

    /// Exemplar histograms are lattice joins: any merge order (and any
    /// grouping) of the same records yields identical state, so sharded
    /// scope reports cannot depend on which worker folded what.
    #[test]
    fn exemplar_merge_is_order_invariant(
        values in proptest::collection::vec((1u64..1_000_000, any::<u64>()), 1..40),
        cut in 0usize..40,
    ) {
        let cut = cut.min(values.len());
        let mut whole = ExemplarHistogram::new();
        for &(v, req) in &values {
            whole.record(v as f64, req, req ^ 0xABCD);
        }
        // Split, fold halves independently, merge both ways.
        let mut left = ExemplarHistogram::new();
        let mut right = ExemplarHistogram::new();
        for &(v, req) in &values[..cut] {
            left.record(v as f64, req, req ^ 0xABCD);
        }
        for &(v, req) in &values[cut..] {
            right.record(v as f64, req, req ^ 0xABCD);
        }
        let mut lr = left.clone();
        lr.merge(&right);
        let mut rl = right.clone();
        rl.merge(&left);
        prop_assert_eq!(lr.snapshot(), whole.snapshot());
        prop_assert_eq!(rl.snapshot(), whole.snapshot());
    }

    /// The exemplar tie-break is total: equal values keep the smaller
    /// request id, so duplicate measurements can never make the retained
    /// exemplar depend on arrival order.
    #[test]
    fn exemplar_tie_break_prefers_the_smaller_request(
        v in 1u64..1_000_000, a in any::<u64>(), b in any::<u64>(),
    ) {
        let mut ab = ExemplarHistogram::new();
        ab.record(v as f64, a, 1);
        ab.record(v as f64, b, 2);
        let mut ba = ExemplarHistogram::new();
        ba.record(v as f64, b, 2);
        ba.record(v as f64, a, 1);
        prop_assert_eq!(ab.snapshot(), ba.snapshot());
        let q = ab.quantile_exemplar(0.5).expect("non-empty");
        prop_assert_eq!(q.request, a.min(b));
    }
}

/// The headline artifact check: `scope_report.json` is byte-identical
/// at 1 vs 4 threads, and every claim it makes is self-consistent.
#[test]
fn scope_report_is_thread_invariant_and_self_consistent() {
    let cfg = ServiceConfig {
        requests: 2_000,
        shard_size: 256,
        scope_every: 8,
        ..ServiceConfig::default()
    };
    let (r1, s1, _) = run_sharded_scoped(&Pool::new(1), &cfg);
    let (r4, s4, _) = run_sharded_scoped(&Pool::new(4), &cfg);
    assert_eq!(r1, r4, "service report is thread-invariant");
    let j1 = serde_json::to_string_pretty(&s1.snapshot()).expect("json");
    let j4 = serde_json::to_string_pretty(&s4.snapshot()).expect("json");
    assert_eq!(j1, j4, "scope snapshot JSON is byte-identical");

    // Attribution accounting closes: everything sampled either finished,
    // was rejected, or was still in flight at drain.
    let completed: u64 = s1.classes.iter().map(|c| c.sampled_completed).sum();
    assert_eq!(completed + s1.rejected + s1.inflight, s1.sampled);
    assert!(s1.sampled > 0, "1-in-8 sampling of 2000 requests hits");

    // Critical paths cover every class that completed sampled work, and
    // each one's exemplar request has a retained timeline whose phases
    // sum to its total.
    let paths = s1.critical_paths();
    for (rank, c) in s1.classes.iter().enumerate() {
        if c.sampled_completed > 0 {
            assert!(
                paths.iter().any(|p| p.class.rank() == rank),
                "class rank {rank} has critical paths"
            );
        }
    }
    for p in &paths {
        let tl = s1
            .timelines
            .get(&p.request)
            .expect("critical-path exemplar has a retained timeline");
        assert_eq!(tl.span, p.span, "timeline and exemplar agree on span");
        assert_eq!(
            tl.phase_nanos.iter().sum::<u64>(),
            tl.total_nanos,
            "phases partition the lifecycle"
        );
        assert_eq!(tl.phase_nanos[p.dominant.index()], {
            let m = *tl.phase_nanos.iter().max().expect("six phases");
            m
        });
    }

    // Every exemplar anywhere in the report carries a resolvable span id
    // — the deterministic one derived from (seed, request).
    for (&request, tl) in &s1.timelines {
        assert_eq!(
            tl.span,
            scope_span_id(cfg.seed, request).0,
            "timeline spans come from the scope stream"
        );
    }

    // The six phases are stable identifiers (snapshot schema contract).
    let names: Vec<&str> = ScopePhase::ALL.iter().map(|p| p.name()).collect();
    assert_eq!(
        names,
        [
            "queue_wait",
            "admit",
            "compose",
            "hold",
            "release",
            "preempt"
        ]
    );
}
