//! Integration tests for the fleet observability subsystem: every
//! instrumented crate lands in one sink, blast-radius correlation
//! collapses a FRU failure to a single page, and the JSONL export is
//! byte-identical across same-seed runs.

use lightwave::fabric::instrument::FabricInstruments;
use lightwave::fabric::{FabricController, FabricTarget, OcsFleet};
use lightwave::ocs::instrument::OcsInstruments;
use lightwave::ocs::PortMapping;
use lightwave::scheduler::instrument::SchedulerInstruments;
use lightwave::scheduler::sim::{default_mix, ClusterSim};
use lightwave::scheduler::Pooled;
use lightwave::superpod::collective_sim::{simulate_torus_all_reduce, Uniform, WithStraggler};
use lightwave::superpod::instrument::CollectiveInstruments;
use lightwave::superpod::torus::Chip;
use lightwave::superpod::SliceShape;
use lightwave::telemetry::{AlarmCause, AlarmRecord, FleetTelemetry, Severity};
use lightwave::transceiver::instrument::XcvrInstruments;
use lightwave::transceiver::{fleet::fleet_census, DspConfig, ModuleFamily};
use lightwave::units::Nanos;

/// Drives every instrumented crate into one sink, deterministically.
fn full_stack_scenario(seed: u64) -> FleetTelemetry {
    let mut sink = FleetTelemetry::new();

    // fabric + ocs: provision, fail, repair, scrape.
    let mut controller = FabricController::new(OcsFleet::build(2, seed));
    let mut fabric = FabricInstruments::register(&mut sink);
    let mut target = FabricTarget::new();
    for ocs in 0..2u32 {
        let pairs: Vec<(u16, u16)> = (0..16u16).map(|n| (n, n + 64)).collect();
        target.set(ocs, PortMapping::from_pairs(pairs).unwrap());
    }
    fabric
        .commit_observed(&mut sink, &mut controller, &target)
        .unwrap();
    controller.advance(Nanos::from_millis(300));
    controller.fleet.get_mut(1).unwrap().fail_fru(6);
    controller.advance(Nanos::from_millis(50));
    fabric.scrape_fleet(&mut sink, &controller.fleet);
    controller.fleet.get_mut(1).unwrap().replace_fru(6);
    controller.advance(Nanos::from_secs_f64(20.0));
    fabric.scrape_fleet(&mut sink, &controller.fleet);
    let now = Nanos::from_secs_f64(20.35);

    // transceiver: census + a rate fallback.
    let mut xcvr = XcvrInstruments::register(&mut sink, "cwdm4");
    let census = fleet_census(60, ModuleFamily::Cwdm4Bidi, seed);
    xcvr.record_census(&mut sink, now, &census);
    xcvr.record_negotiation(
        &mut sink,
        now,
        200,
        &DspConfig::ml_production(),
        &DspConfig::standards_based(),
    );

    // scheduler: one pooled run.
    let sim = ClusterSim::new(default_mix(), 0.25);
    let mut sched = SchedulerInstruments::register(&mut sink, "pooled");
    sched.record_run(&mut sink, now, &sim.run(&Pooled, 100.0, seed));

    // superpod: straggler detection.
    let mut pod = CollectiveInstruments::register(&mut sink, 0);
    let shape = SliceShape::new(4, 4, 4).unwrap();
    let healthy = simulate_torus_all_reduce(shape, 64e6, &[0, 1, 2], &Uniform(100e9), 300e-9);
    let bad = WithStraggler {
        base: 100e9,
        chip: Chip { coords: [1, 2, 3] },
        dim: 2,
        derated: 25e9,
    };
    let observed = simulate_torus_all_reduce(shape, 64e6, &[0, 1, 2], &bad, 300e-9);
    pod.record_collective(&mut sink, now, &observed);
    pod.detect_stragglers(&mut sink, now, &[0, 1, 2], &healthy, &observed);

    sink
}

#[test]
fn all_five_crates_emit_into_one_sink() {
    let sink = full_stack_scenario(17);
    // Each instrumented crate registers metrics under its own prefix.
    for prefix in ["ocs_", "xcvr_", "fabric_", "sched_", "pod_"] {
        assert!(
            sink.metrics
                .iter()
                .any(|(key, _, _)| key.name.starts_with(prefix)),
            "no metrics with prefix {prefix}"
        );
    }
    // And every store saw traffic.
    assert!(sink.metrics.len() > 20);
    assert!(sink.events.published() > 0);
    assert!(sink.alarms.ingested() > 0);
    assert!(!sink.slo.is_empty());
}

#[test]
fn fru_blast_radius_collapses_to_one_page() {
    // A real switch provides the root-cause alarm; the 48 disturbed
    // circuits' symptom alarms arrive as the fleet sees them. The pager
    // fires once.
    let mut sink = FleetTelemetry::new();
    let mut ocs = lightwave::ocs::PalomarOcs::new(3, 99);
    let mut inst = OcsInstruments::register(&mut sink, 3);
    ocs.fail_fru(6); // real FRU failure raises the root alarm
    inst.forward_alarms(&mut sink, &ocs);
    assert_eq!(sink.alarms.pages(), 1, "the root cause pages");
    for port in 0..48u16 {
        sink.ingest_alarm(AlarmRecord {
            at: Nanos::from_millis(1 + port as u64),
            severity: Severity::Warning,
            switch: 3,
            cause: AlarmCause::AlignmentTimeout { north: port },
        });
    }
    assert_eq!(
        sink.alarms.pages(),
        1,
        "48 symptom alarms must not page again"
    );
    assert_eq!(sink.alarms.suppressed(), 48);
    let incident = sink.alarms.open_incidents().next().unwrap();
    assert_eq!(incident.correlated, 48);
    // A different switch's symptom is NOT absorbed — it pages on its own.
    sink.ingest_alarm(AlarmRecord {
        at: Nanos::from_millis(60),
        severity: Severity::Warning,
        switch: 4,
        cause: AlarmCause::AlignmentTimeout { north: 0 },
    });
    assert_eq!(sink.alarms.pages(), 2);
}

#[test]
fn jsonl_export_is_byte_identical_across_same_seed_runs() {
    let now = Nanos::from_secs_f64(25.0);
    let a = full_stack_scenario(17).to_jsonl(now);
    let b = full_stack_scenario(17).to_jsonl(now);
    assert_eq!(a, b, "same seed must export byte-identical JSONL");
    let c = full_stack_scenario(18).to_jsonl(now);
    assert_ne!(a, c, "different seeds genuinely differ");
    // And the dashboard is deterministic too.
    assert_eq!(
        full_stack_scenario(17).dashboard(now),
        full_stack_scenario(17).dashboard(now)
    );
}

#[test]
fn jsonl_lines_parse_back_as_records() {
    let sink = full_stack_scenario(17);
    let jsonl = sink.to_jsonl(Nanos::from_secs_f64(25.0));
    let mut metas = 0;
    for line in jsonl.lines() {
        let rec: lightwave::telemetry::JsonlRecord =
            serde_json::from_str(line).expect("every line parses");
        if matches!(rec, lightwave::telemetry::JsonlRecord::Meta { .. }) {
            metas += 1;
        }
    }
    assert_eq!(metas, 1, "exactly one header line");
    assert_eq!(
        jsonl.lines().count(),
        sink.metrics.len() + sink.events.recent().count() + sink.alarms.incidents().len() + 2
    );
}
