//! Cross-layer straggler story: an OCS optical degradation slows a
//! running collective; the reconfigurable fabric swaps the slice onto
//! healthy hardware and recovers.
//!
//! This test chains five layers: MEMS mirror state (ocs) → measured path
//! loss → per-lane link health (optics + transceiver, via the core
//! census) → per-link bandwidth derating → synchronous collective
//! slowdown (superpod::collective_sim) → recovery via slice
//! recomposition (fabric transaction).

use lightwave::prelude::*;
use lightwave::superpod::collective_sim::{simulate_torus_all_reduce, Uniform, WithStraggler};
use lightwave::superpod::torus::Chip;
use lightwave::superpod::wiring::ocs_role;
use lightwave::superpod::Slice;
use lightwave::units::Nanos;

const LINK_BW: f64 = 100e9; // 2×50 GB/s bidirectional ring bandwidth

#[test]
fn optical_degradation_slows_collectives_and_reconfiguration_recovers() {
    let mut pod = MlPod::new(23);
    let placement = pod.place_model(&LlmConfig::llm0(), 512).expect("fits");
    pod.advance(Nanos::from_millis(400));
    let shape = placement.plan.shape;

    // Baseline: healthy fabric, healthy collective.
    let clean_census = pod.link_census();
    assert_eq!(clean_census.violations, 0);
    let healthy = simulate_torus_all_reduce(shape, 256e6, &[0, 1, 2], &Uniform(LINK_BW), 300e-9);

    // Degrade: burn every spare on one live circuit's north mirror. The
    // path climbs the loss curve as worse and worse spares rotate in.
    let (victim_ocs, victim_port) = {
        let ocs = pod.pod.fabric().fleet.get(0).expect("exists");
        (
            0u32,
            ocs.mapping().pairs().next().expect("circuits exist").0,
        )
    };
    {
        let ocs = pod
            .pod
            .fabric_mut()
            .fleet
            .get_mut(victim_ocs)
            .expect("exists");
        while ocs.health().mirror_spares.0 > 0 {
            ocs.fail_mirror(true, victim_port);
        }
    }
    pod.advance(Nanos::from_millis(400));
    let degraded_census = pod.link_census();
    let clean_loss = clean_census
        .circuits
        .iter()
        .find(|c| c.ocs == victim_ocs && c.north == victim_port)
        .expect("circuit present")
        .ocs_loss_db;
    let degraded = degraded_census
        .circuits
        .iter()
        .find(|c| c.ocs == victim_ocs && c.north == victim_port)
        .expect("circuit present");
    assert!(
        degraded.ocs_loss_db > clean_loss,
        "spare churn must raise the measured path loss: {clean_loss:.2} → {:.2}",
        degraded.ocs_loss_db
    );

    // Translate the census into collective terms: a circuit whose margin
    // has thinned renegotiates to a lower lane rate — model the worst
    // case as a 2× bandwidth derate on the affected torus dimension's
    // boundary link.
    let (dim, _) = ocs_role(victim_ocs);
    let margin_delta = clean_census.worst_margin_orders - degraded_census.worst_margin_orders;
    let derate = if margin_delta > 0.0 { 2.0 } else { 1.0 };
    let slowed = simulate_torus_all_reduce(
        shape,
        256e6,
        &[0, 1, 2],
        &WithStraggler {
            base: LINK_BW,
            chip: Chip { coords: [3, 0, 0] },
            dim: dim.index(),
            derated: LINK_BW / (2.0 * derate),
        },
        300e-9,
    );
    assert!(
        slowed.total > 1.2 * healthy.total,
        "a derated boundary link must slow the synchronous collective: {} vs {}",
        slowed.total,
        healthy.total
    );

    // Recover: recompose the slice on fresh cubes (the paper's swap); the
    // collective returns to the healthy number.
    let old = pod.pod.slice(placement.handle).expect("live").clone();
    pod.release(placement.handle).expect("live");
    let idle = pod.pod.idle_cubes();
    let fresh: Vec<u8> = idle
        .into_iter()
        .filter(|c| !old.cubes.contains(c))
        .take(old.cubes.len())
        .collect();
    assert_eq!(fresh.len(), old.cubes.len(), "the pod has spare cubes");
    let (h2, _) = pod
        .pod
        .compose(Slice::new(old.shape, fresh).expect("valid"))
        .expect("recomposes");
    pod.advance(Nanos::from_millis(400));
    assert!(pod.pod.settled());
    let recovered = simulate_torus_all_reduce(
        pod.pod.slice(h2).expect("live").shape,
        256e6,
        &[0, 1, 2],
        &Uniform(LINK_BW),
        300e-9,
    );
    assert!(
        (recovered.total / healthy.total - 1.0).abs() < 1e-9,
        "fresh cubes restore the healthy collective time"
    );
}
