//! Golden-vector regression suite for the RS(544,514) "KP4" codec.
//!
//! `tests/vectors/rs_kp4.json` was generated once from the frozen
//! reference implementation ([`lightwave::fec::reference`]) and committed;
//! every case was verified at generation time (decodes recover the
//! codeword, the t+1 case is a detected failure). These tests pin both
//! the fast kernels and the reference against that file, so neither can
//! drift without the diff showing up here — the known-answer half of the
//! kernel-equivalence contract (DESIGN §6.8); `tests/fec_differential.rs`
//! is the property-based half.

use lightwave::fec::gf::Gf;
use lightwave::fec::reference::ReferenceRs;
use lightwave::fec::{ReedSolomon, RsScratch};
use serde::Deserialize;

#[derive(Deserialize)]
struct Code {
    n: usize,
    k: usize,
    t: usize,
}

#[derive(Deserialize)]
struct EncodeCase {
    name: String,
    message: Vec<Gf>,
    codeword: Vec<Gf>,
}

#[derive(Deserialize)]
struct DecodeCase {
    name: String,
    received: Vec<Gf>,
    error_positions: Vec<usize>,
    error_magnitudes: Vec<Gf>,
    corrected: usize,
    decoded: Vec<Gf>,
}

#[derive(Deserialize)]
struct FailureCase {
    name: String,
    received: Vec<Gf>,
    error_positions: Vec<usize>,
    received_after: Vec<Gf>,
}

#[derive(Deserialize)]
struct Vectors {
    code: Code,
    generator: Vec<Gf>,
    encode: Vec<EncodeCase>,
    decode: Vec<DecodeCase>,
    decode_failure: FailureCase,
}

fn vectors() -> Vectors {
    serde_json::from_str(include_str!("vectors/rs_kp4.json")).expect("golden vectors parse")
}

#[test]
fn corpus_shape_and_generator_are_kp4() {
    let v = vectors();
    assert_eq!((v.code.n, v.code.k, v.code.t), (544, 514, 15));
    // g(x) has degree 2t = 30 and is monic.
    assert_eq!(v.generator.len(), 31);
    assert_eq!(v.generator[30], 1);
    // The committed generator is *functionally* the KP4 generator: a codec
    // built from it encodes identically to one built from scratch.
    let from_vectors = ReferenceRs::from_parts(544, 514, v.generator.clone());
    let fresh = ReferenceRs::new(544, 514);
    for case in &v.encode {
        assert_eq!(
            from_vectors.encode(&case.message),
            fresh.encode(&case.message),
            "generator mismatch on `{}`",
            case.name
        );
    }
}

#[test]
fn encode_matches_golden_codewords() {
    let v = vectors();
    let fast = ReedSolomon::kp4();
    let reference = ReferenceRs::new(544, 544 - 30);
    let mut cw = Vec::new();
    for case in &v.encode {
        fast.encode_into(&case.message, &mut cw);
        assert_eq!(cw, case.codeword, "fast encode diverged on `{}`", case.name);
        assert_eq!(
            reference.encode(&case.message),
            case.codeword,
            "reference encode diverged on `{}`",
            case.name
        );
    }
}

#[test]
fn decode_recovers_golden_codewords_and_error_patterns() {
    let v = vectors();
    let fast = ReedSolomon::kp4();
    let reference = ReferenceRs::new(544, 514);
    let mut scratch = RsScratch::new();
    for case in &v.decode {
        // The recorded error pattern is self-consistent: received and
        // decoded differ exactly at the recorded positions/magnitudes.
        let diffs: Vec<(usize, Gf)> = case
            .received
            .iter()
            .zip(&case.decoded)
            .enumerate()
            .filter(|(_, (r, d))| r != d)
            .map(|(i, (r, d))| (i, r ^ d))
            .collect();
        let recorded: Vec<(usize, Gf)> = case
            .error_positions
            .iter()
            .copied()
            .zip(case.error_magnitudes.iter().copied())
            .collect();
        assert_eq!(diffs, recorded, "corpus inconsistency in `{}`", case.name);
        assert_eq!(case.corrected, recorded.len());

        let mut word = case.received.clone();
        assert_eq!(
            fast.decode_with(&mut word, &mut scratch),
            Ok(case.corrected),
            "fast decode result diverged on `{}`",
            case.name
        );
        assert_eq!(word, case.decoded, "fast decode output on `{}`", case.name);

        let mut word = case.received.clone();
        assert_eq!(reference.decode(&mut word), Ok(case.corrected));
        assert_eq!(word, case.decoded, "reference output on `{}`", case.name);
    }
}

#[test]
fn sixteen_errors_stay_a_detected_failure() {
    let v = vectors();
    let case = &v.decode_failure;
    assert_eq!(case.name, "sixteen_errors");
    assert_eq!(case.error_positions.len(), 16);
    let fast = ReedSolomon::kp4();
    let reference = ReferenceRs::new(544, 514);
    let mut scratch = RsScratch::new();

    let mut fast_word = case.received.clone();
    assert!(
        fast.decode_with(&mut fast_word, &mut scratch).is_err(),
        "t+1 errors must be detected, not miscorrected"
    );
    // The Err-path buffer is part of the contract (shadow mode compares
    // it), so the fast kernel must leave *exactly* the bytes the frozen
    // reference left when the vector was generated.
    assert_eq!(fast_word, case.received_after);

    let mut ref_word = case.received.clone();
    assert!(reference.decode(&mut ref_word).is_err());
    assert_eq!(ref_word, case.received_after);
}
