//! The chaos harness's determinism contract (DESIGN.md §6.3),
//! round-tripped end to end:
//!
//! - hunt reports and shrunk repros are byte-identical at 1 and 4
//!   worker threads (`LIGHTWAVE_THREADS` invariance);
//! - a ≥200-schedule corpus over the honest control plane is
//!   violation-free;
//! - a documented known-bad schedule (a planted harness defect) is
//!   caught, delta-debugged to ≤5 events, and replayed to the same
//!   violation from its emitted JSONL repro.

use lightwave::chaos::{
    hunt, parse_repro, run_schedule, shrink, write_repro, ChaosConfig, FaultKind, FaultSchedule,
    HuntConfig, InjectedBug, InvariantKind,
};
use lightwave::par::Pool;

/// The pinned hunt seed; every assertion below is a pure function of it.
const SEED: u64 = 2024;

fn run_hunt(threads: usize, schedules: u64, inject: Option<InjectedBug>) -> String {
    let report = hunt(
        &Pool::new(threads),
        &HuntConfig {
            seed: SEED,
            schedules,
            chaos: ChaosConfig { inject },
        },
    );
    serde_json::to_string(&report).expect("report serializes")
}

#[test]
fn violation_reports_are_byte_identical_across_thread_counts() {
    for inject in [
        None,
        Some(InjectedBug::SkipFlightPoll),
        Some(InjectedBug::SkipAdmissionRevoke),
    ] {
        let serial = run_hunt(1, 40, inject);
        let quad = run_hunt(4, 40, inject);
        assert!(
            serial == quad,
            "{inject:?}: hunt report depends on thread count"
        );
    }
}

#[test]
fn shrunk_repros_are_byte_identical_across_thread_counts() {
    let cfg = ChaosConfig {
        inject: Some(InjectedBug::SkipFlightPoll),
    };
    let mut repros = Vec::new();
    for threads in [1usize, 4] {
        let report = hunt(
            &Pool::new(threads),
            &HuntConfig {
                seed: SEED,
                schedules: 40,
                chaos: cfg,
            },
        );
        let first = report.violations().next().expect("planted defect caught");
        let shrunk = shrink(&FaultSchedule::generate(SEED, first.index), &cfg)
            .expect("a violating schedule shrinks");
        repros.push(write_repro(
            &shrunk.schedule,
            &cfg,
            Some(shrunk.violation.invariant),
        ));
    }
    assert!(
        repros[0] == repros[1],
        "shrunk repro bytes depend on thread count"
    );
}

#[test]
fn two_hundred_schedule_corpus_is_violation_free() {
    let report = hunt(
        &Pool::new(4),
        &HuntConfig {
            seed: SEED,
            schedules: 200,
            chaos: ChaosConfig::default(),
        },
    );
    assert_eq!(report.outcomes.len(), 200);
    if let Some(bad) = report.violations().next() {
        panic!(
            "honest control plane violated an invariant: {}",
            bad.violation.as_ref().expect("filtered")
        );
    }
    // The corpus exercised real control-plane work, not vacuous no-ops.
    let composes: u32 = report.outcomes.iter().map(|o| o.composes).sum();
    let releases: u32 = report.outcomes.iter().map(|o| o.releases).sum();
    let dumps: u32 = report.outcomes.iter().map(|o| o.critical_dumps).sum();
    let alarms: u64 = report.outcomes.iter().map(|o| o.alarms).sum();
    assert!(composes > 200, "corpus composes slices ({composes})");
    assert!(releases > 50, "corpus releases slices ({releases})");
    assert!(dumps > 10, "corpus drives Critical incidents ({dumps})");
    assert!(alarms > 500, "corpus raises alarms ({alarms})");
}

#[test]
fn known_bad_schedule_is_caught_shrunk_and_replayed() {
    // The documented known-bad schedule: hunt seed 2024, index 8. Its
    // event #10 is `FailFru { ocs: 29, slot: 15 }` — an FPGA death,
    // which downs the chassis and raises a Critical incident. With the
    // harness's flight-recorder poll planted off (a test-only hook,
    // not product code), invariant (c) — every Critical incident has
    // exactly one flight dump — fires on that event.
    let cfg = ChaosConfig {
        inject: Some(InjectedBug::SkipFlightPoll),
    };
    let bad_event = FaultKind::FailFru { ocs: 29, slot: 15 };
    let s = FaultSchedule::generate(SEED, 8);
    assert!(
        s.events.contains(&bad_event),
        "the documented trigger is in the generated schedule: {:?}",
        s.events
    );
    let out = run_schedule(&s, &cfg);
    let v = out.violation.expect("the planted defect is caught");
    assert_eq!(v.invariant, InvariantKind::CriticalWithoutDump);
    // The honest control plane passes the identical schedule.
    assert!(
        run_schedule(&s, &ChaosConfig::default())
            .violation
            .is_none(),
        "only the planted defect violates"
    );
    // Delta-debugging strips the schedule to the single essential event.
    let shrunk = shrink(&s, &cfg).expect("violating schedule shrinks");
    assert!(
        shrunk.schedule.events.len() <= 5,
        "minimal repro has {} events",
        shrunk.schedule.events.len()
    );
    assert_eq!(shrunk.schedule.events, vec![bad_event]);
    // And the emitted JSONL replays to the same violation.
    let text = write_repro(&shrunk.schedule, &cfg, Some(shrunk.violation.invariant));
    let repro = parse_repro(&text).expect("emitted repro parses");
    assert_eq!(repro.invariant, Some(InvariantKind::CriticalWithoutDump));
    let replayed = repro.replay();
    assert_eq!(
        replayed.violation,
        Some(shrunk.violation),
        "replay from JSONL reproduces the exact violation"
    );
}
