//! The FEC chain against the link model: real codecs, link-derived error
//! rates.
//!
//! The unit tests exercise the RS and Hamming codecs on synthetic errors;
//! here the *link model decides the error rate* and the *real codec*
//! proves the KP4-threshold story end to end.

use lightwave::fec::analysis::kp4_frame_error_rate;
use lightwave::fec::{ConcatenatedCode, ReedSolomon};
use lightwave::optics::ber::Pam4Receiver;
use lightwave::prelude::*;
use lightwave::units::Dbm;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Injects independent bit errors at `ber` into 10-bit symbols.
fn corrupt_symbols(cw: &mut [u16], ber: f64, rng: &mut StdRng) -> usize {
    let mut symbol_errors = 0;
    for sym in cw.iter_mut() {
        let before = *sym;
        for bit in 0..10 {
            if rng.random_bool(ber) {
                *sym ^= 1 << bit;
            }
        }
        if *sym != before {
            symbol_errors += 1;
        }
    }
    symbol_errors
}

#[test]
fn kp4_cleans_a_link_operating_at_its_threshold() {
    // A link delivering exactly the KP4 threshold BER: frames decode.
    let rs = ReedSolomon::kp4();
    let mut rng = StdRng::seed_from_u64(42);
    let ber = Ber::KP4_THRESHOLD.prob();
    let mut failures = 0;
    let frames = 300;
    for _ in 0..frames {
        let data: Vec<u16> = (0..rs.k()).map(|_| rng.random_range(0..1024u16)).collect();
        let mut cw = rs.encode(&data);
        corrupt_symbols(&mut cw, ber, &mut rng);
        match rs.decode(&mut cw) {
            Ok(_) => assert_eq!(&cw[..rs.k()], data.as_slice()),
            Err(_) => failures += 1,
        }
    }
    // Analytic FER at threshold is ~5e-14; observing even one failure in
    // 300 frames would be a >10-sigma event.
    assert_eq!(failures, 0, "KP4 at threshold must be clean");
    assert!(kp4_frame_error_rate(Ber::KP4_THRESHOLD) < 1e-12);
}

#[test]
fn kp4_collapses_an_order_of_magnitude_above_threshold() {
    let rs = ReedSolomon::kp4();
    let mut rng = StdRng::seed_from_u64(43);
    let mut failures = 0;
    let frames = 60;
    for _ in 0..frames {
        let data: Vec<u16> = (0..rs.k()).map(|_| rng.random_range(0..1024u16)).collect();
        let mut cw = rs.encode(&data);
        corrupt_symbols(&mut cw, 2.0e-3, &mut rng);
        if rs.decode(&mut cw).is_err() {
            failures += 1;
        }
    }
    // Analytic FER at 2e-3 is ≈ 8%; with 60 frames expect ~5 failures.
    assert!(
        failures >= 1,
        "the cliff must be visible an order of magnitude above threshold"
    );
}

#[test]
fn link_model_ber_feeds_the_concatenated_codec() {
    // Evaluate a *marginal* link, take its worst-lane raw BER, and run
    // the real inner decoder at exactly that rate: the decoded stream
    // must land under the KP4 threshold — the whole point of the
    // concatenated design.
    let rx = Pam4Receiver::cwdm4_50g();
    let raw = rx
        .ber(Dbm(-11.8), lightwave::optics::ber::mpi_db(-38.0), None)
        .prob();
    assert!(
        raw > Ber::KP4_THRESHOLD.prob() && raw < 1e-2,
        "pick a power where the link fails KP4-only: raw = {raw:.2e}"
    );
    let code = ConcatenatedCode::default();
    let point = code.inner_waterfall_point(Ber::new(raw), 4000, 7);
    assert!(
        point.output_ber.prob() < Ber::KP4_THRESHOLD.prob(),
        "inner code must clean {raw:.2e} to under 2e-4, got {}",
        point.output_ber
    );
}

#[test]
fn healthy_production_link_has_codec_level_margin() {
    // The Fig. 13 story at the codec: a healthy link's raw BER is so far
    // below even the SFEC threshold that inner decoding is error-free in
    // any reasonable simulation length.
    let report = LinkDesigner::ml_default().evaluate();
    assert!(report.healthy);
    let worst = report
        .lanes
        .iter()
        .map(|l| l.raw_ber.prob())
        .fold(0.0f64, f64::max);
    let code = ConcatenatedCode::default();
    let point = code.inner_waterfall_point(Ber::new(worst.max(1e-7)), 2000, 9);
    assert_eq!(
        point.errors, 0,
        "production-margin link must decode error-free (raw {worst:.2e})"
    );
}

#[test]
fn dsp_threshold_and_codec_threshold_agree() {
    // The DSP config advertises the raw-BER threshold the FEC tolerates;
    // the measured codec threshold must not be more optimistic.
    let advertised = DspConfig::ml_production().fec.raw_ber_threshold();
    let code = ConcatenatedCode::default();
    let measured = code.inner_threshold(Ber::KP4_THRESHOLD, 2500, 11);
    // Our open code is weaker than the paper-calibrated figure, so the
    // measured threshold sits below the advertised production one, but
    // within a factor ~3 (same code family).
    assert!(measured.prob() <= advertised.prob() * 1.2);
    assert!(measured.prob() > advertised.prob() / 4.0);
}
