//! Serde round-trips for the data types a control plane persists or ships
//! over the wire: switch configs, telemetry snapshots, plans, reports.
//!
//! The paper's control plane shares "the same software stack ... for both
//! control and in-situ evaluation" (§3.2.2) — every one of these types is
//! something that software would write to a config store or a telemetry
//! pipeline, so their serialized form must survive a round trip intact.

use lightwave::dcn::realize::MeshPlacement;
use lightwave::dcn::te::engineer;
use lightwave::ocs::PortMapping;
use lightwave::prelude::*;
use lightwave::units::Nanos;
use serde::de::DeserializeOwned;
use serde::Serialize;

fn roundtrip<T: Serialize + DeserializeOwned + PartialEq + std::fmt::Debug>(value: &T) {
    let json = serde_json::to_string(value).expect("serializes");
    let back: T = serde_json::from_str(&json).expect("deserializes");
    assert_eq!(&back, value, "round trip must be lossless");
}

#[test]
fn unit_types_roundtrip() {
    roundtrip(&Db(3.01));
    roundtrip(&Dbm(-12.5));
    roundtrip(&Ber::new(2e-4));
    roundtrip(&Availability::from_nines(3.0));
    roundtrip(&Nanos::from_millis(25));
    roundtrip(&Gbps(425.0));
}

#[test]
fn link_models_roundtrip() {
    let budget = lightwave::optics::link::LinkBudget::superpod_nominal(Dbm(1.0), 0.2);
    roundtrip(&budget);
    roundtrip(&lightwave::optics::mpi::MpiBudget::from_bidi_link(&budget));
    roundtrip(&lightwave::optics::ber::Pam4Receiver::cwdm4_50g());
    roundtrip(&Transceiver::nominal(ModuleFamily::Cwdm4Bidi));
    roundtrip(&DspConfig::ml_production());
    roundtrip(&LinkDesigner::ml_default().evaluate());
}

#[test]
fn switch_configs_roundtrip() {
    let mapping = PortMapping::from_pairs([(0u16, 5u16), (3, 1), (7, 7)]).unwrap();
    roundtrip(&mapping);
    let mut target = lightwave::fabric::FabricTarget::new();
    target.set(0, mapping);
    roundtrip(&target);
}

#[test]
fn planning_artifacts_roundtrip() {
    roundtrip(&SliceShape::new(8, 16, 32).unwrap());
    roundtrip(&Slice::new(SliceShape::new(8, 4, 4).unwrap(), vec![3, 41]).unwrap());
    // (LlmConfig itself is a static catalog entry with a &'static str
    // name — serializable for telemetry but not re-loadable; the derived
    // planning artifact below is the persisted thing.)
    roundtrip(
        &SliceOptimizer::tpu_v4()
            .optimize(&LlmConfig::llm1(), 4096)
            .unwrap(),
    );
    let tm = TrafficMatrix::hotspot(8, 10.0, 3, 10.0, 1);
    roundtrip(&tm);
    let mesh = engineer(&tm, 14);
    roundtrip(&mesh);
    roundtrip(&MeshPlacement::place(&mesh, 14).unwrap());
}

#[test]
fn telemetry_and_reports_roundtrip() {
    let census = lightwave::transceiver::fleet::fleet_census(20, ModuleFamily::Cwdm4Bidi, 7);
    roundtrip(&census);
    let mut pod = MlPod::new(1);
    pod.place_model(&LlmConfig::llm0(), 512).unwrap();
    pod.advance(Nanos::from_millis(400));
    roundtrip(&pod.pod.fabric().fleet.health());
    roundtrip(&pod.link_census());
    let planner = DcnPlanner {
        uplinks_per_ab: 16,
        trunk_gbps: 100.0,
    };
    roundtrip(&planner.plan(&TrafficMatrix::uniform(8, 10.0)));
    roundtrip(&lightwave::dcn::campus::CampusSim::default_campus().run(5, 3));
}

#[test]
fn fleet_telemetry_types_roundtrip() {
    use lightwave::telemetry::{
        AggregatorConfig, AlarmCause, AlarmRecord, Event, EventKind, HistogramSnapshot, Incident,
        LogHistogram, MetricKey, MetricSample, Severity,
    };

    for sev in [Severity::Info, Severity::Warning, Severity::Critical] {
        roundtrip(&sev);
    }
    roundtrip(&AlarmRecord {
        at: Nanos::from_millis(12),
        severity: Severity::Critical,
        switch: 3,
        cause: AlarmCause::HighLoss {
            north: 1,
            south: 65,
            loss_mdb: 4_870,
        },
    });
    roundtrip(&AlarmCause::MirrorFailed {
        north_die: true,
        port: 17,
        spare_used: false,
    });
    roundtrip(&Incident {
        id: 4,
        switch: 1,
        class: lightwave::telemetry::CauseClass::Fru,
        root: AlarmCause::FruFailed { slot: 6 },
        opened_at: Nanos::from_millis(3),
        last_at: Nanos::from_millis(9),
        severity: Severity::Warning,
        occurrences: 3,
        correlated: 48,
        cleared_at: None,
    });
    roundtrip(&AggregatorConfig::default());
    roundtrip(&Event {
        at: Nanos::from_millis(7),
        source: "ocs-3".into(),
        kind: EventKind::Reconfig {
            switch: 3,
            added: 12,
            removed: 4,
            untouched: 120,
            duration: Nanos::from_millis(15),
        },
    });
    roundtrip(&MetricKey::new(
        "ocs_switch_duration_ms",
        &[("switch", "3"), ("pod", "a")],
    ));
    roundtrip(&MetricSample::Gauge(-3.25));
    let mut h = LogHistogram::new();
    for v in [1e-12, 0.5, 3.0, 1e9, f64::NAN, -2.0] {
        h.record(v);
    }
    let snap: HistogramSnapshot = h.snapshot();
    roundtrip(&snap);
    assert_eq!(snap.restore(), h, "snapshot restores the exact histogram");
}

#[test]
fn slo_and_jsonl_records_roundtrip() {
    use lightwave::telemetry::{JsonlRecord, SloTracker};
    let mut slo = SloTracker::ocs_target();
    slo.observe(Nanos(0), "ocs-0", true);
    slo.observe(Nanos::from_millis(400), "ocs-0", false);
    slo.observe(Nanos::from_millis(900), "ocs-0", true);
    slo.observe(Nanos(0), "ocs-1", true);
    let report = slo.report(Nanos::from_secs_f64(10.0));
    roundtrip(&report);
    roundtrip(&JsonlRecord::Slo { report });
}
