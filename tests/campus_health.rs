//! Integration tests for the campus observability plane (DESIGN §6.9):
//! the hierarchical rollup tree is exactly the flat sum under any
//! partition and ingest order, `campus_health.json` is byte-identical
//! at any thread count, burn-rate pages coalesce without escalating,
//! and the burn counter tracks pass the in-repo trace validator.

use lightwave::par::Pool;
use lightwave::service::{run_sharded_campus, ServiceConfig, POD_SCOPE_SWITCH};
use lightwave::telemetry::rollup::{CampusHealthDoc, PortPath, RollupTree};
use lightwave::telemetry::timeseries::{Aggregate, SeriesConfig, SeriesStore};
use lightwave::telemetry::{
    AlarmCause, BurnRateLedger, FleetTelemetry, IngestOutcome, Severity, TrendSignal,
};
use lightwave::trace::validate::validate_chrome_trace;
use lightwave::trace::{to_chrome_trace_with_counters, Tracer};
use lightwave::units::Nanos;
use proptest::prelude::*;

/// One synthetic sample: (metric, path, value).
type Row = (u8, (u8, u8, u8), i32);

fn ingest_rows(tree: &mut RollupTree, rows: &[Row]) {
    for &(m, (pod, sw, port), v) in rows {
        let metric = tree.metric(&format!("m{}", m % 3));
        tree.ingest(
            metric,
            PortPath::new(pod as u32, sw as u32, port as u32),
            Nanos(1 + v.unsigned_abs() as u64),
            v as f64,
        );
    }
}

proptest! {
    /// Hierarchical totals == the flat sum over leaves, for every
    /// metric, under an arbitrary ingest order.
    #[test]
    fn rollup_totals_equal_flat_sum(rows in proptest::collection::vec(
        ((0u8..3), ((0u8..4), (0u8..4), (0u8..6)), -500i32..500), 1..120)) {
        let mut tree = RollupTree::new();
        ingest_rows(&mut tree, &rows);
        tree.scrape();
        tree.check_consistency().expect("hierarchy consistent");
        for m in 0..3u8 {
            let name = format!("m{m}");
            let metric = tree.metric(&name);
            let campus = tree.campus_agg(metric);
            let mut flat = Aggregate::EMPTY;
            for pod in tree.pod_ids() {
                for sw in tree.switch_ids(pod) {
                    flat = flat.merge(tree.switch_agg(pod, sw, metric));
                }
            }
            prop_assert_eq!(campus, flat);
        }
    }

    /// Any two-way partition of the sample stream, each half ingested
    /// into its own tree and merged, equals the single-tree result —
    /// the property the sharded cell merge relies on.
    #[test]
    fn rollup_merge_is_partition_invariant(
        rows in proptest::collection::vec(
            ((0u8..3), ((0u8..4), (0u8..4), (0u8..6)), -500i32..500), 1..120),
        mask in proptest::collection::vec(any::<bool>(), 120)) {
        let mut whole = RollupTree::new();
        ingest_rows(&mut whole, &rows);
        whole.scrape();

        let (mut left, mut right) = (RollupTree::new(), RollupTree::new());
        let a: Vec<Row> = rows.iter().zip(&mask).filter(|(_, &m)| m).map(|(r, _)| *r).collect();
        let b: Vec<Row> = rows.iter().zip(&mask).filter(|(_, &m)| !m).map(|(r, _)| *r).collect();
        ingest_rows(&mut left, &a);
        ingest_rows(&mut right, &b);
        left.merge(right);
        left.scrape();
        left.check_consistency().expect("merged hierarchy consistent");

        for m in 0..3u8 {
            let name = format!("m{m}");
            let (mw, ml) = (whole.metric(&name), left.metric(&name));
            prop_assert_eq!(whole.campus_agg(mw), left.campus_agg(ml));
            for pod in whole.pod_ids() {
                prop_assert_eq!(whole.pod_agg(pod, mw), left.pod_agg(pod, ml));
            }
        }
    }
}

#[test]
fn campus_health_json_is_thread_count_invariant() {
    let cfg = ServiceConfig {
        requests: 6_000,
        shard_size: 1_024,
        ..ServiceConfig::default()
    };
    let (r1, mut o1, _) = run_sharded_campus(&Pool::new(1), &cfg);
    let (r4, mut o4, _) = run_sharded_campus(&Pool::new(4), &cfg);
    assert_eq!(r1, r4, "policy outcome is thread-count invariant");
    let d1 = o1.health_doc().to_json();
    let d4 = o4.health_doc().to_json();
    assert_eq!(
        d1, d4,
        "campus_health.json byte-identical at 1 vs 4 threads"
    );

    let doc = CampusHealthDoc::from_json(&d1).expect("snapshot parses");
    assert_eq!(doc.to_json(), d1, "parse → serialize round-trips");
    assert!(!doc.pods.is_empty());
    assert!(
        doc.switch(0, POD_SCOPE_SWITCH).is_some(),
        "pod-scoped service metrics present"
    );
    o1.rollup.check_consistency().expect("rollup consistent");
}

#[test]
fn burn_pages_coalesce_without_escalating() {
    // Ten separate breach episodes: each pages the ledger once, and the
    // aggregator coalesces the repeats into ONE Warning incident — the
    // non-escalating Trend contract (an occurrence storm of burn alerts
    // must not manufacture a Critical).
    let mut sink = FleetTelemetry::new();
    let mut ledger = BurnRateLedger::default();
    let mut pages = 0u64;
    let mut t = Nanos(0);
    ledger.observe(t, 0, true);
    for _ in 0..10 {
        // 20 s outage: >10x burn on both windows at default policy.
        let down = t + Nanos::from_secs_f64(10.0);
        let up = down + Nanos::from_secs_f64(20.0);
        ledger.observe(down, 0, false);
        ledger.observe(up, 0, true);
        let fired = ledger.poll(&mut sink, up);
        pages += fired.len() as u64;
        // Drain past the slow window so the next episode re-pages.
        t = up + Nanos::from_secs_f64(4_000.0);
        let cleared = ledger.poll(&mut sink, t);
        assert!(cleared.is_empty(), "recovery never pages");
    }
    assert!(pages >= 10, "each breach episode pages the pod");
    let trend: Vec<_> = sink
        .alarms
        .incidents()
        .iter()
        .filter(|i| {
            matches!(
                i.root,
                AlarmCause::TrendAnomaly {
                    signal: TrendSignal::ErrorBudgetBurn,
                    ..
                }
            ) && i.switch == 0
        })
        .collect();
    assert!(!trend.is_empty(), "burn alerts filed as trend incidents");
    for i in trend {
        assert_eq!(
            i.severity,
            Severity::Warning,
            "trend incidents never self-escalate to Critical"
        );
    }
}

#[test]
fn direct_trend_repeats_coalesce() {
    let mut sink = FleetTelemetry::new();
    let rec = |at| lightwave::telemetry::AlarmRecord {
        at,
        severity: Severity::Warning,
        switch: 9,
        cause: AlarmCause::TrendAnomaly {
            signal: TrendSignal::ErrorBudgetBurn,
            port: 0,
        },
    };
    assert!(matches!(
        sink.ingest_alarm(rec(Nanos(1_000))),
        IngestOutcome::Paged { .. }
    ));
    for k in 0..50u64 {
        let out = sink.ingest_alarm(rec(Nanos(2_000 + k)));
        assert!(
            matches!(out, IngestOutcome::Coalesced { .. }),
            "repeat {k} must coalesce, got {out:?}"
        );
    }
}

#[test]
fn burn_counter_tracks_pass_the_trace_validator() {
    let mut store = SeriesStore::new(SeriesConfig::default());
    let mut ledger = BurnRateLedger::default();
    ledger.observe(Nanos(0), 0, true);
    ledger.observe(Nanos(0), 1, true);
    ledger.observe(Nanos::from_secs_f64(50.0), 1, false);
    ledger.observe(Nanos::from_secs_f64(65.0), 1, true);
    for s in [10.0f64, 60.0, 70.0, 400.0] {
        ledger.record_series(&mut store, Nanos::from_secs_f64(s));
    }
    let tracks = store.tracks();
    for want in [
        "slo_burn_fast_milli",
        "slo_burn_slow_milli",
        "slo_budget_remaining_milli",
    ] {
        assert!(
            tracks.iter().any(|t| t.name.contains(want)),
            "burn series {want} exported as a counter track"
        );
    }

    let trace = to_chrome_trace_with_counters(&Tracer::new(3), &store.tracks());
    let stats = validate_chrome_trace(&trace).expect("validator accepts burn counter tracks");
    assert!(stats.counters > 0, "counter samples exported");
}
