//! Cross-crate determinism contract of the `lightwave-par` engine.
//!
//! The same seed must produce **byte-identical** results at any worker
//! count — for the Monte-Carlo BER path, the pool-availability estimate,
//! the fleet census, and a JSONL telemetry export built from those
//! results. Thread count is a throughput knob, never a results knob.
//!
//! Tests use explicit `Pool::new(n)` handles rather than mutating
//! `LIGHTWAVE_THREADS` so they stay race-free under the parallel test
//! runner; one dedicated test covers the env-var path.

use lightwave::availability::{
    cube_availability, monte_carlo_pool_availability_with_pool, POOL_SHARD_TRIALS,
};
use lightwave::optics::ber::{mpi_db, Pam4Receiver};
use lightwave::optics::montecarlo::{simulate_ber_with_pool, McBerResult, DEFAULT_SHARD_SYMBOLS};
use lightwave::par::{plan_shards, Pool};
use lightwave::telemetry::FleetTelemetry;
use lightwave::transceiver::fleet::fleet_census_with_pool;
use lightwave::transceiver::ModuleFamily;
use lightwave::units::{Availability, Dbm, Nanos};
use proptest::prelude::*;

const SEED: u64 = 0xC0FF_EE00;

fn mc_ber_at(threads: usize) -> McBerResult {
    let pool = Pool::new(threads);
    let rx = Pam4Receiver::cwdm4_50g();
    // Span several shards plus a remainder so the odd tail is exercised.
    let symbols = DEFAULT_SHARD_SYMBOLS * 2 + 977;
    simulate_ber_with_pool(&pool, &rx, Dbm(-13.0), mpi_db(-30.0), None, symbols, SEED).0
}

fn availability_at(threads: usize) -> f64 {
    let pool = Pool::new(threads);
    let ca = cube_availability(Availability::new(0.999));
    monte_carlo_pool_availability_with_pool(&pool, ca, 48, POOL_SHARD_TRIALS * 3 + 1, SEED)
}

#[test]
fn mc_ber_result_is_byte_identical_across_thread_counts() {
    let one = mc_ber_at(1);
    let four = mc_ber_at(4);
    assert_eq!(one, four);
    assert_eq!(one.ber.0.to_bits(), four.ber.0.to_bits());
    // And the serialized form — what a golden file would actually store.
    let a = serde_json::to_string(&one).unwrap();
    let b = serde_json::to_string(&four).unwrap();
    assert_eq!(a.as_bytes(), b.as_bytes());
}

#[test]
fn pool_availability_estimate_is_byte_identical_across_thread_counts() {
    assert_eq!(availability_at(1).to_bits(), availability_at(4).to_bits());
    assert_eq!(availability_at(2).to_bits(), availability_at(4).to_bits());
}

#[test]
fn fleet_census_is_identical_across_thread_counts() {
    let family = ModuleFamily::Cwdm4Bidi;
    let one = fleet_census_with_pool(&Pool::new(1), 130, family, SEED);
    let four = fleet_census_with_pool(&Pool::new(4), 130, family, SEED);
    assert_eq!(one.samples, four.samples);
    assert_eq!(one.violations, four.violations);
}

/// A JSONL telemetry export built from engine *results* is byte-identical
/// at any thread count. Only deterministic outputs go into the registry —
/// `RunStats` wall-clock timings are throughput telemetry and must never
/// enter golden exports.
#[test]
fn jsonl_telemetry_export_is_byte_identical_across_thread_counts() {
    let export_at = |threads: usize| -> String {
        let ber = mc_ber_at(threads);
        let avail = availability_at(threads);

        let mut sink = FleetTelemetry::new();
        let at = Nanos::from_millis(5);
        let errs = sink.metrics.counter("mc_bit_errors", &[("path", "pam4")]);
        sink.metrics.inc(errs, at, ber.errors);
        let ber_g = sink.metrics.gauge("mc_ber", &[("path", "pam4")]);
        sink.metrics.set(ber_g, at, ber.ber.0);
        let avail_g = sink.metrics.gauge("pool_availability", &[("need", "48")]);
        sink.metrics.set(avail_g, at, avail);
        sink.to_jsonl(Nanos::from_millis(10))
    };
    let one = export_at(1);
    let four = export_at(4);
    assert!(!one.is_empty());
    assert_eq!(one.as_bytes(), four.as_bytes());
}

/// The batched MC kernel's noise block (PR 9) must be invisible to
/// results: a symbol count that divides into neither the shard size nor
/// `NOISE_BLOCK_SYMBOLS` — so every shard ends mid-block and the last
/// shard is an odd remainder — produces byte-identical results at 1 and
/// 4 workers, and equals the pre-batching reference loop exactly.
#[test]
fn odd_remainder_noise_blocks_are_byte_identical_across_thread_counts() {
    use lightwave::optics::montecarlo::{reference, NOISE_BLOCK_SYMBOLS};
    let rx = Pam4Receiver::cwdm4_50g();
    // 2 full shards + a tail that is itself not a multiple of the noise
    // block (and smaller than one block would be a degenerate case, so
    // also cross one block boundary inside the tail).
    assert_ne!(DEFAULT_SHARD_SYMBOLS % NOISE_BLOCK_SYMBOLS, 1);
    let symbols = DEFAULT_SHARD_SYMBOLS * 2 + NOISE_BLOCK_SYMBOLS + 1313;
    let run = |threads: usize| {
        let pool = Pool::new(threads);
        simulate_ber_with_pool(&pool, &rx, Dbm(-12.5), mpi_db(-32.0), None, symbols, SEED).0
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one, four);
    assert_eq!(
        serde_json::to_string(&one).unwrap().as_bytes(),
        serde_json::to_string(&four).unwrap().as_bytes()
    );
    // And both equal the frozen scalar loop, shard for shard.
    let ref_pool = Pool::new(4);
    let reference = reference::simulate_ber_with_pool(
        &ref_pool,
        &rx,
        Dbm(-12.5),
        mpi_db(-32.0),
        None,
        symbols,
        SEED,
    )
    .0;
    assert_eq!(one, reference);
}

/// `LIGHTWAVE_THREADS` selects the pool width without changing results.
/// (The only test that touches the env var; explicit pools everywhere else.)
#[test]
fn env_var_selects_pool_width() {
    std::env::set_var(lightwave::par::THREADS_ENV, "3");
    let pool = Pool::from_env();
    std::env::remove_var(lightwave::par::THREADS_ENV);
    assert_eq!(pool.threads(), 3);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Shard-merged trial counts equal the monolithic total for arbitrary
    /// (n, shard_size): no trial is dropped or double-run, remainders
    /// included.
    #[test]
    fn shard_merge_of_trial_counts_equals_monolithic(
        n in 1u64..5_000,
        shard_size in 1u64..600,
        threads in 1usize..6,
    ) {
        let shards = plan_shards(n, shard_size);
        prop_assert_eq!(shards.iter().map(|s| s.len).sum::<u64>(), n);

        let pool = Pool::new(threads);
        let (count, _) = pool.run_trials(SEED, n, shard_size, |_rng, _i| 1u64, |a, b| a + b);
        prop_assert_eq!(count, n);

        // Integer merges are associative, so the per-index payload sum is
        // also shard-size invariant: Σ i over 0..n, any decomposition.
        let (sum, _) = pool.run_trials(SEED, n, shard_size, |_rng, i| i, |a, b| a + b);
        prop_assert_eq!(sum, n * (n - 1) / 2);
    }

    /// The f64 contract: at a *fixed* shard size, any worker count gives
    /// bit-identical accumulations (merge order is pinned to shard index).
    #[test]
    fn f64_accumulation_thread_count_invariant(
        n in 1u64..3_000,
        shard_size in 1u64..400,
    ) {
        use rand::RngExt;
        let run = |threads: usize| {
            Pool::new(threads)
                .run_trials(SEED, n, shard_size, |rng, _| rng.random::<f64>(), |a, b| a + b)
                .0
        };
        let base = run(1);
        for threads in [2usize, 4, 7] {
            prop_assert_eq!(base.to_bits(), run(threads).to_bits());
        }
    }
}
