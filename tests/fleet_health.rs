//! The fleet-health analytics oracle (DESIGN.md §6.4), end to end
//! against the chaos harness:
//!
//! - every seeded slow-degradation schedule trips a streaming detector
//!   **before** the hard failure it foreshadows reaches Critical;
//! - the uniform 200-schedule clean corpus — spare swaps, FRU deaths,
//!   relock storms, but no trends — produces **zero** detector trips;
//! - health reports, dashboards and JSONL exports are byte-identical at
//!   1 and 4 worker threads;
//! - the postmortem bundle for a degradation-driven Critical embeds the
//!   blast-radius counter history.

use lightwave::chaos::{run_schedule, run_schedule_world, ChaosConfig, FaultSchedule, World};
use lightwave::par::Pool;
use lightwave::telemetry::Severity;
use lightwave::trace::to_chrome_trace_with_counters;
use lightwave::trace::validate::{validate_chrome_trace, validate_flight_jsonl};
use lightwave::units::Nanos;

/// The pinned oracle seed, shared with `tests/chaos_determinism.rs`.
const SEED: u64 = 2024;

fn first_critical(world: &World) -> Option<Nanos> {
    world
        .telemetry
        .alarms
        .incidents()
        .iter()
        .filter(|i| i.severity == Severity::Critical)
        .map(|i| i.last_at)
        .min()
}

#[test]
fn every_degradation_schedule_is_caught_before_the_hard_failure() {
    let cfg = ChaosConfig::default();
    for index in 0..16u64 {
        let schedule = FaultSchedule::generate_degradation(SEED, index);
        let (outcome, world) = run_schedule_world(&schedule, &cfg);
        assert!(
            outcome.violation.is_none(),
            "schedule #{index}: {:?}",
            outcome.violation
        );
        assert!(outcome.trend_trips >= 1, "schedule #{index} undetected");
        let trip = world.health.first_trip_at().expect("tripped");
        let critical = first_critical(&world)
            .unwrap_or_else(|| panic!("schedule #{index} must end in a Critical"));
        assert!(
            trip < critical,
            "schedule #{index}: trip {trip:?} vs Critical {critical:?}"
        );
    }
}

#[test]
fn clean_corpus_produces_zero_detector_trips() {
    // The uniform generator's fault menu includes spare-consuming mirror
    // failures (a legitimate single-step loss jump), FRU deaths and
    // relock storms — incidents, not trends. 200 schedules, no trips.
    let cfg = ChaosConfig::default();
    let indices: Vec<u64> = (0..200).collect();
    let (total, _) = Pool::from_env().map_reduce(
        &indices,
        |i, _| {
            let out = run_schedule(&FaultSchedule::generate(SEED, *i), &cfg);
            assert!(
                out.violation.is_none(),
                "schedule #{i}: {:?}",
                out.violation
            );
            out.trend_trips as u64
        },
        |a, b| a + b,
    );
    assert_eq!(total.expect("corpus non-empty"), 0, "false positives");
}

#[test]
fn health_exports_are_byte_identical_across_thread_counts() {
    let cfg = ChaosConfig::default();
    let render_on = |threads: usize| {
        let indices: Vec<u64> = (0..8).collect();
        Pool::new(threads)
            .map_reduce(
                &indices,
                |i, _| {
                    let (_, w) =
                        run_schedule_world(&FaultSchedule::generate_degradation(SEED, *i), &cfg);
                    let now = w.now();
                    let report = serde_json::to_string(&w.health.report(now)).expect("serializes");
                    format!(
                        "{report}\n{}\n{}",
                        w.health.dashboard(now),
                        w.health.to_jsonl(now)
                    )
                },
                |a, b| a + &b,
            )
            .0
            .expect("non-empty")
    };
    let serial = render_on(1);
    let quad = render_on(4);
    assert!(serial == quad, "health exports depend on thread count");
    assert!(serial.contains("\"fleet_score\""), "report serialized");
}

#[test]
fn degradation_postmortem_embeds_counter_history_and_trace_validates() {
    let cfg = ChaosConfig::default();
    // Index 0 is the pinned loss-creep family (even parity): CUSUM trip,
    // then the FPGA dies and the recorder dumps.
    let (_, world) = run_schedule_world(&FaultSchedule::generate_degradation(SEED, 0), &cfg);
    let dump = world.recorder.latest_dump().expect("Critical dumped");
    assert!(!dump.counters.is_empty(), "counter history embedded");
    validate_flight_jsonl(&dump.to_jsonl()).expect("postmortem validates");

    let trace = to_chrome_trace_with_counters(&world.tracer, &world.health.counter_tracks());
    let stats = validate_chrome_trace(&trace).expect("trace validates");
    assert!(stats.counters > 0, "counter tracks exported");

    let jsonl = world.health.to_jsonl(world.now());
    assert!(validate_flight_jsonl(&jsonl).expect("health JSONL validates") >= 2);
}
