//! Property tests for the incremental (delta-based) fabric commit path.
//!
//! The pod maintains its desired state by delta: compose/release build a
//! transaction carrying only the touched switches' added/removed pairs,
//! never a full rebuild. The reference algorithm — rebuild every
//! dimension's mapping from the live slice set via `required_hops()` —
//! must agree with what the switches actually carry after *any*
//! interleaving of composes, releases, FRU faults, repairs, and resyncs.
//! Down and desynced switches are exempt until anti-entropy reconciles
//! them (that exemption is itself part of the contract).

use lightwave::fabric::OcsId;
use lightwave::ocs::PortId;
use lightwave::superpod::slice::{Slice, SliceShape};
use lightwave::superpod::wiring::{ocs_role, SUPERPOD_OCS_COUNT};
use lightwave::superpod::{CubeId, Superpod};
use lightwave::units::Nanos;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
enum Op {
    /// Compose a slice over the first idle cubes (1, 2, 4, or 8 of them).
    Compose { cubes: usize },
    /// Release the nth live slice (mod the live count).
    Release { nth: usize },
    /// Fail a chassis FRU slot (0–1 PSUs, 2–5 fans, 6–13 HV drivers,
    /// 14 CPU, 15 FPGA — 14/15 down the whole chassis).
    FailFru { ocs: OcsId, slot: usize },
    /// Field-replace a FRU slot.
    ReplaceFru { ocs: OcsId, slot: usize },
    /// Advance fabric time.
    Advance { millis: u64 },
    /// Anti-entropy pass over desynced switches.
    Resync,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..4).prop_map(|i| Op::Compose {
            cubes: [1, 2, 4, 8][i]
        }),
        (0usize..8).prop_map(|nth| Op::Release { nth }),
        (0..SUPERPOD_OCS_COUNT as OcsId, 0usize..16)
            .prop_map(|(ocs, slot)| Op::FailFru { ocs, slot }),
        (0..SUPERPOD_OCS_COUNT as OcsId, 0usize..16)
            .prop_map(|(ocs, slot)| Op::ReplaceFru { ocs, slot }),
        (1u64..400).prop_map(|millis| Op::Advance { millis }),
        (0u64..1).prop_map(|_| Op::Resync),
    ]
}

/// The slice shape (in chips) spanning `cubes` racks.
fn shape_for(cubes: usize) -> SliceShape {
    let (a, b, c) = match cubes {
        1 => (4, 4, 4),
        2 => (8, 4, 4),
        4 => (8, 8, 4),
        _ => (8, 8, 8),
    };
    SliceShape::new(a, b, c).expect("valid shape")
}

/// The full-rebuild reference: every dimension's desired mapping,
/// recomputed from scratch from the live slice set — exactly what the
/// pre-incremental control plane recomputed on every transaction.
fn reference_mappings(pod: &Superpod) -> [BTreeMap<PortId, PortId>; 3] {
    let mut reference: [BTreeMap<PortId, PortId>; 3] = Default::default();
    for (_, slice) in pod.slices() {
        for hop in slice.required_hops() {
            if let Some((n, s)) = hop.pair() {
                let prev = reference[hop.dim.index()].insert(n, s);
                assert!(prev.is_none(), "disjoint slices, disjoint ports");
            }
        }
    }
    reference
}

/// Every up, in-sync switch must carry its dimension's reference mapping
/// byte-identically. Down/desynced switches are exempt until resync.
fn check_equivalence(pod: &Superpod) -> Result<(), TestCaseError> {
    let reference = reference_mappings(pod);
    for ocs in 0..SUPERPOD_OCS_COUNT as OcsId {
        let sw = pod.fabric().fleet.get(ocs).expect("48 switches");
        if !sw.is_up() || pod.desynced().contains(&ocs) {
            continue;
        }
        let (dim, _) = ocs_role(ocs);
        let live: BTreeMap<PortId, PortId> = sw.mapping().pairs().collect();
        prop_assert_eq!(
            &live,
            &reference[dim.index()],
            "switch {} diverged from the full-rebuild reference",
            ocs
        );
    }
    Ok(())
}

fn apply(pod: &mut Superpod, op: Op) {
    match op {
        Op::Compose { cubes } => {
            let idle: Vec<CubeId> = pod.idle_cubes().into_iter().take(cubes).collect();
            if idle.len() < cubes {
                return;
            }
            let slice = Slice::new(shape_for(cubes), idle).expect("valid slice");
            // May legitimately fail (degraded ports under the delta);
            // on error nothing is applied, which the check verifies.
            let _ = pod.compose(slice);
        }
        Op::Release { nth } => {
            let handles: Vec<_> = pod.slices().map(|(h, _)| h).collect();
            if handles.is_empty() {
                return;
            }
            let h = handles[nth % handles.len()];
            let _ = pod.release(h);
        }
        Op::FailFru { ocs, slot } => {
            pod.fabric_mut()
                .fleet
                .get_mut(ocs)
                .expect("valid")
                .fail_fru(slot);
        }
        Op::ReplaceFru { ocs, slot } => {
            pod.fabric_mut()
                .fleet
                .get_mut(ocs)
                .expect("valid")
                .replace_fru(slot);
        }
        Op::Advance { millis } => pod.advance(Nanos::from_millis(millis)),
        Op::Resync => {
            let _ = pod.resync();
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any interleaving of compose/release/fault/repair/resync leaves
    /// every up, in-sync switch byte-identical to the full-rebuild
    /// reference — checked after *every* op, not just at the end.
    #[test]
    fn incremental_path_matches_full_rebuild(
        seed in 0u64..1024,
        ops in proptest::collection::vec(op_strategy(), 1..40),
    ) {
        let mut pod = Superpod::new(seed);
        for &op in &ops {
            apply(&mut pod, op);
            check_equivalence(&pod)?;
        }
        // Repair everything, resync, and the whole fleet must converge.
        for ocs in 0..SUPERPOD_OCS_COUNT as OcsId {
            for slot in 0..16 {
                pod.fabric_mut().fleet.get_mut(ocs).unwrap().replace_fru(slot);
            }
        }
        pod.resync();
        prop_assert!(pod.desynced().is_empty(), "full repair reconciles all");
        check_equivalence(&pod)?;
    }

    /// The shadow cross-check (the in-tree equivalence oracle) agrees
    /// with this test's independent reference: the same interleavings
    /// run shadow-on without panicking.
    #[test]
    fn shadow_check_accepts_arbitrary_interleavings(
        seed in 0u64..256,
        ops in proptest::collection::vec(op_strategy(), 1..24),
    ) {
        let mut pod = Superpod::new(seed);
        pod.set_shadow_check(true);
        for &op in &ops {
            apply(&mut pod, op);
        }
    }
}
