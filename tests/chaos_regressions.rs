//! Minimal-schedule regressions for the two fault-path bugs the chaos
//! harness surfaced, pinned forever.
//!
//! Both were found as `release-rejected` violations: the control plane
//! refused to free a live slice, which is a capacity leak — once a
//! release fails there is no path that returns those cubes to the pool.

use lightwave::chaos::{run_schedule, run_schedule_world, ChaosConfig, FaultKind, FaultSchedule};

/// Bug A: a down switch wedged every pod transaction.
///
/// `Superpod::target_for` declared a mapping for all 48 switches, so one
/// chassis-down switch made `FabricController::validate` reject *every*
/// compose and release fabric-wide (`ChassisDown` invalidates the whole
/// transaction). The fix: transactions skip down (and not-yet-reconciled)
/// switches, track them in a `desynced` set, and an anti-entropy
/// `resync()` reconciles each one after it revives.
#[test]
fn down_switch_does_not_wedge_compose_or_release() {
    // Two-cube slices: their X rings are optical, so every transaction
    // genuinely touches the down switch's dimension (single-cube slices
    // are all-electrical and would make this vacuous).
    let s = FaultSchedule {
        seed: 7,
        index: 0,
        events: vec![
            FaultKind::Compose { cubes: 2 },
            // CPU slot dies on switch 5: the chassis is down.
            FaultKind::FailFru { ocs: 5, slot: 14 },
            // Pre-fix: both of these were rejected fabric-wide, and the
            // release rejection fired the release-rejected invariant.
            FaultKind::Compose { cubes: 2 },
            FaultKind::Release { nth: 0 },
            FaultKind::Advance { millis: 150 },
            // The switch revives; resync reconciles its stale mapping
            // (checked by the radix/mapping invariant after the event).
            FaultKind::ReplaceFru { ocs: 5, slot: 14 },
            FaultKind::Advance { millis: 60 },
        ],
    };
    let out = run_schedule(&s, &ChaosConfig::default());
    assert!(out.violation.is_none(), "violation: {:?}", out.violation);
    assert_eq!(out.events_applied as usize, s.events.len());
    assert_eq!(out.composes, 2, "composing around a down switch works");
    assert_eq!(out.releases, 1, "releasing around a down switch works");
    assert_eq!(out.rejected, 0, "nothing was needlessly rejected");
}

/// Bug B: a port that degraded *under* a running circuit wedged the
/// switch.
///
/// Validation dry-ran the per-port usability checks over every pair of
/// the target mapping, including circuits already established before the
/// degradation. One failed HV driver under a live circuit then rejected
/// every later transaction touching that switch — including releases of
/// *other* slices. The fix: only circuits the delta actually
/// (re)establishes are checked; untouched circuits are never re-vetted.
#[test]
fn degraded_port_under_live_circuit_does_not_block_release() {
    let s = FaultSchedule {
        seed: 7,
        index: 1,
        events: vec![
            FaultKind::Compose { cubes: 2 }, // cubes 0,1: X circuits (0,1),(1,0)
            FaultKind::Compose { cubes: 2 }, // cubes 2,3: X circuits (2,3),(3,2)
            FaultKind::Advance { millis: 400 },
            // HV driver 0 on switch 0 fails: ports 0..34 degrade under
            // both live circuits.
            FaultKind::FailFru { ocs: 0, slot: 6 },
            // Pre-fix: releasing slice 0 re-checked the *unchanged*
            // circuit (1,1) against the degraded set and was rejected —
            // the release-rejected invariant fired here.
            FaultKind::Release { nth: 0 },
        ],
    };
    let out = run_schedule(&s, &ChaosConfig::default());
    assert!(out.violation.is_none(), "violation: {:?}", out.violation);
    assert_eq!(out.events_applied as usize, s.events.len());
    assert_eq!(out.composes, 2);
    assert_eq!(out.releases, 1, "release commits despite the degradation");
}

/// Preemption under fault, pinned: service schedule `(1, 5)` drives its
/// arrivals through a pod taking FRU failures (including an FPGA death
/// that downs a chassis), stuck mirrors, and maintenance overlapping
/// reconfiguration — and the admission queue runs hot enough that two
/// lower-priority slices are evicted for higher-priority admissions.
///
/// Every extended invariant must hold throughout: request conservation
/// (`service-conservation`), running-implies-live-slice
/// (`admitted-without-slice`), plus the whole pre-service library. The
/// exact counts pin both the service generator's distribution and the
/// WFQ/preemption policy — a drift in either fails here first.
#[test]
fn preemption_under_fault_stays_invariant_clean() {
    let s = FaultSchedule::generate_service(1, 5);
    let faults = s
        .events
        .iter()
        .filter(|e| {
            matches!(
                e,
                FaultKind::FailFru { .. }
                    | FaultKind::FailMirror { .. }
                    | FaultKind::Maintenance { .. }
            )
        })
        .count();
    assert!(
        faults >= 10,
        "a genuinely hostile schedule: {faults} faults"
    );
    let (out, w) = run_schedule_world(&s, &ChaosConfig::default());
    assert!(out.violation.is_none(), "violation: {:?}", out.violation);
    assert_eq!(out.events_applied as usize, s.events.len());
    assert_eq!(out.svc_preempted, 2, "both evictions happen, every run");
    assert_eq!(out.svc_admitted, 45);
    assert_eq!(out.svc_completed, 40);
    w.svc.conservation().expect("requests conserved at the end");
    // Replay is byte-identical (the repro contract for service hunts).
    assert_eq!(out, run_schedule(&s, &ChaosConfig::default()));
}
