//! Determinism contract of the fabric-as-a-service layer (DESIGN §6.5).
//!
//! Three independent claims, each load-bearing for the sharded year-run:
//!
//! 1. **Split-anywhere arrivals** — arrival `i` is a pure function of
//!    `(seed, i)`, so generating any partition of `[0, n)` equals the
//!    monolithic stream (proptest over random split points).
//! 2. **Thread-count invariance** — `run_sharded` merges per-cell
//!    reports in shard order, so the report (and its serialized
//!    snapshot) is byte-identical at `LIGHTWAVE_THREADS` 1 vs 4.
//! 3. **Erlang B** — with the single-cube mix, `queue_limit = 0` and no
//!    preemption, each cell is an M/G/64/64 loss system, so measured
//!    blocking must track the Erlang B formula at the offered load.
//!
//! Tests use explicit `Pool::new(n)` handles rather than mutating
//! `LIGHTWAVE_THREADS` so they stay race-free under the parallel test
//! runner; the example's `--smoke` CI run covers the env-var path.

use lightwave::par::{plan_shards, Pool};
use lightwave::service::{
    arrival, erlang_b, run_cell, run_sharded, Mix, PolicyConfig, ServiceConfig, ServiceReport,
};
use lightwave::units::Nanos;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any two-way split of the arrival index space regenerates the
    /// monolithic stream exactly — the property that makes sharding a
    /// partitioning choice, not a semantic one.
    #[test]
    fn arrivals_split_anywhere(seed in any::<u64>(), n in 1u64..200, cut in 0u64..200) {
        let cut = cut.min(n);
        let whole: Vec<_> = (0..n).map(|i| arrival(seed, i, Mix::Production)).collect();
        let left: Vec<_> = (0..cut).map(|i| arrival(seed, i, Mix::Production)).collect();
        let right: Vec<_> = (cut..n).map(|i| arrival(seed, i, Mix::Production)).collect();
        let rejoined: Vec<_> = left.into_iter().chain(right).collect();
        prop_assert_eq!(whole, rejoined);
    }

    /// Shard-size choice changes cell boundaries (each cell is a fresh
    /// pod) but never loses or duplicates a request.
    #[test]
    fn any_shard_size_conserves_requests(shard_size in 1u64..97) {
        let cfg = ServiceConfig { requests: 96, shard_size, ..ServiceConfig::default() };
        let mut merged = ServiceReport::default();
        for s in plan_shards(cfg.requests, cfg.shard_size) {
            merged.merge(&run_cell(&cfg, s));
        }
        prop_assert_eq!(merged.submitted, 96);
        prop_assert_eq!(merged.offered() + merged.invalid, 96);
    }
}

#[test]
fn sharded_year_run_is_byte_identical_across_thread_counts() {
    let cfg = ServiceConfig {
        requests: 2_000,
        shard_size: 256,
        ..ServiceConfig::default()
    };
    let (one, _) = run_sharded(&Pool::new(1), &cfg);
    let (four, _) = run_sharded(&Pool::new(4), &cfg);
    assert_eq!(one, four);
    // And the serialized artifact — what the example's `cmp` gate and a
    // golden file actually store.
    let a = serde_json::to_string(&one.snapshot()).unwrap();
    let b = serde_json::to_string(&four.snapshot()).unwrap();
    assert_eq!(a.as_bytes(), b.as_bytes());
    assert_eq!(one.submitted, 2_000);
    assert!(one.completed() > 0, "the pod actually served work");
}

/// The single-cube loss configuration is textbook M/G/m/m: measured
/// blocking probability must land near Erlang B at both a low and a
/// moderate offered load (wide tolerances — 2k arrivals per point).
#[test]
fn blocking_tracks_erlang_b_in_loss_mode() {
    // Mean hold of the SingleCube mix is 100 ms over 64 servers.
    // offered erlangs E = hold / gap; pick gaps for E ≈ 32 and E ≈ 64.
    for (gap_ms, servers_load) in [(3u64, 100.0 / 3.0), (1, 100.0)] {
        let cfg = ServiceConfig {
            requests: 2_000,
            mean_gap: Nanos::from_millis(gap_ms),
            mix: Mix::SingleCube,
            policy: PolicyConfig {
                queue_limit: 0,
                preemption: false,
            },
            shard_size: 2_000, // one cell: blocking is a pod-level stat
            ..ServiceConfig::default()
        };
        let (report, _) = run_sharded(&Pool::new(2), &cfg);
        let measured = report.blocking_probability();
        let predicted = erlang_b(servers_load, 64);
        assert!(
            (measured - predicted).abs() < 0.03 + predicted * 0.35,
            "E={servers_load:.1}: measured {measured:.4} vs Erlang B {predicted:.4}"
        );
    }
}

/// At genuinely low load the system is lossless: Erlang B says ~0 and
/// the service agrees exactly.
#[test]
fn low_load_never_blocks() {
    let cfg = ServiceConfig {
        requests: 1_000,
        mean_gap: Nanos::from_millis(50), // E = 2 erlangs on 64 servers
        mix: Mix::SingleCube,
        policy: PolicyConfig {
            queue_limit: 0,
            preemption: false,
        },
        shard_size: 1_000,
        ..ServiceConfig::default()
    };
    let (report, _) = run_sharded(&Pool::new(2), &cfg);
    assert_eq!(report.blocked(), 0, "2 erlangs on 64 servers never blocks");
    assert!(erlang_b(2.0, 64) < 1e-12);
}
