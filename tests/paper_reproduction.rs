//! Every table and figure of the paper must reproduce (in quick mode).
//!
//! These are the shape-fidelity gates: each experiment carries its own
//! paper-vs-measured checks; a regression anywhere in the stack that
//! breaks a published number fails here.

use lightwave_bench::{run, ALL_EXPERIMENTS};

fn check(id: &str) {
    let result = run(id, true).unwrap_or_else(|| panic!("unknown experiment {id}"));
    for c in &result.checks {
        assert!(
            c.pass,
            "{id}: check '{}' failed — paper {}, measured {}\n--- full output ---\n{}",
            c.what,
            c.paper,
            c.measured,
            result.render()
        );
    }
}

#[test]
fn fig10a_insertion_loss_histogram() {
    check("fig10a");
}

#[test]
fn fig10b_return_loss() {
    check("fig10b");
}

#[test]
fn fig11_ber_vs_power_with_oim() {
    check("fig11");
}

#[test]
fn fig12_concatenated_sfec_gain() {
    check("fig12");
}

#[test]
fn fig13_fleet_ber_census() {
    check("fig13");
}

#[test]
fn tab1_cost_power_ratios() {
    check("tab1");
}

#[test]
fn tab2_llm_slice_shapes_and_speedups() {
    check("tab2");
}

#[test]
fn fig15a_fabric_availability() {
    check("fig15a");
}

#[test]
fn fig15b_goodput_vs_server_availability() {
    check("fig15b");
}

#[test]
fn dcn1_spine_free_savings() {
    check("dcn1");
}

#[test]
fn dcn2_topology_engineering_gains() {
    check("dcn2");
}

#[test]
fn tabc1_ocs_technology_selection() {
    check("tabc1");
}

#[test]
fn sched1_pooled_vs_contiguous() {
    check("sched1");
}

#[test]
fn deploy1_incremental_deployment() {
    check("deploy1");
}

#[test]
fn ocs1_chassis_power_and_availability() {
    check("ocs1");
}

#[test]
fn ablate1_bidirectional_optics() {
    check("ablate1");
}

#[test]
fn ablate2_minimal_delta_reconfiguration() {
    check("ablate2");
}

#[test]
fn ablate3_opposing_faces_wiring() {
    check("ablate3");
}

#[test]
fn hybrid1_ici_dcn_scale_out() {
    check("hybrid1");
}

#[test]
fn future1_higher_dimensional_tori() {
    check("future1");
}

#[test]
fn campus1_service_lifecycle_te() {
    check("campus1");
}

#[test]
fn timeline1_year_of_availability() {
    check("timeline1");
}

#[test]
fn refresh1_technology_refresh() {
    check("refresh1");
}

#[test]
fn experiment_registry_is_complete() {
    for id in ALL_EXPERIMENTS {
        assert!(run(id, true).is_some(), "registry lists unknown id {id}");
    }
    assert_eq!(ALL_EXPERIMENTS.len(), 23);
}
