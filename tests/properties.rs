//! Property-based tests on cross-crate invariants.

use lightwave::dcn::{flowsim, te, Mesh, TrafficMatrix};
use lightwave::fec::{ExtHamming, ReedSolomon};
use lightwave::ocs::{Crossbar, PortMapping};
use lightwave::superpod::slice::{Slice, SliceShape};
use lightwave::superpod::Torus;
use lightwave::units::math;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// RS(n,k) corrects any ≤ t random symbol corruption, always.
    #[test]
    fn rs_roundtrip_any_correctable_pattern(
        seed in 0u64..1000,
        nerr in 0usize..=7,
    ) {
        use rand::{RngExt, SeedableRng};
        let rs = ReedSolomon::new(31, 17); // t = 7
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<u16> = (0..rs.k()).map(|_| rng.random_range(0..1024u16)).collect();
        let cw = rs.encode(&data);
        let mut rx = cw.clone();
        let mut pos: Vec<usize> = (0..rs.n()).collect();
        for i in 0..nerr {
            let j = rng.random_range(i..pos.len());
            pos.swap(i, j);
            rx[pos[i]] ^= rng.random_range(1..1024u16);
        }
        prop_assert!(rs.decode(&mut rx).is_ok());
        prop_assert_eq!(rx, cw);
    }

    /// Extended Hamming: encode/extract is the identity; every single-bit
    /// error corrects; weight parity always even.
    #[test]
    fn hamming_invariants(data in 0u128..(1u128 << 64), flip in 0usize..128) {
        let code = ExtHamming;
        let cw = code.encode(data);
        prop_assert_eq!(code.extract_data(cw), data);
        prop_assert_eq!(cw.count_ones() % 2, 0, "codewords have even weight");
        let corrupted = cw ^ (1u128 << flip);
        match code.hard_decode(corrupted) {
            lightwave::fec::hamming::HardDecode::Corrected { codeword, .. } => {
                prop_assert_eq!(codeword, cw)
            }
            _ => prop_assert!(false, "single error must correct"),
        }
    }

    /// Crossbar delta application: applying delta_to(target) always yields
    /// exactly `target`, and unchanged circuits are disjoint from
    /// removed/added.
    #[test]
    fn crossbar_delta_reaches_target(
        initial in proptest::collection::vec((0u16..32, 0u16..32), 0..16),
        target in proptest::collection::vec((0u16..32, 0u16..32), 0..16),
    ) {
        let mut xb = Crossbar::new(32);
        for (n, s) in initial {
            let _ = xb.connect(n, s); // conflicts silently skipped
        }
        let mut tgt = PortMapping::new();
        for (n, s) in target {
            let _ = tgt.insert(n, s); // conflicts silently skipped
        }
        let delta = xb.delta_to(&tgt);
        for &n in &delta.remove {
            xb.disconnect(n).expect("removal is valid");
        }
        for &(n, s) in &delta.add {
            xb.connect(n, s).expect("addition is valid after removals");
        }
        prop_assert_eq!(xb.mapping(), tgt);
        for (n, _) in &delta.unchanged {
            prop_assert!(!delta.remove.contains(n));
            prop_assert!(!delta.add.iter().any(|(an, _)| an == n));
        }
    }

    /// Slice wiring: the circuits of any slice are port-disjoint per OCS
    /// (the property that makes arbitrary concurrent slices composable).
    #[test]
    fn slice_circuits_are_port_disjoint(
        p in 1usize..=4, q in 1usize..=4, r in 1usize..=4,
        offset in 0u8..16,
    ) {
        let shape = SliceShape::new(4 * p, 4 * q, 4 * r).expect("valid");
        let cubes: Vec<u8> = (0..shape.cube_count() as u8).map(|c| c + offset).collect();
        prop_assume!(cubes.iter().all(|&c| c < 64));
        let slice = Slice::new(shape, cubes).expect("valid");
        let mut seen = std::collections::BTreeSet::new();
        for hop in slice.required_hops() {
            for c in hop.circuits() {
                prop_assert!(seen.insert((c.ocs, true, c.north)), "north reuse");
                prop_assert!(seen.insert((c.ocs, false, c.south)), "south reuse");
            }
        }
    }

    /// Torus routing: path length equals torus distance, for all pairs.
    #[test]
    fn torus_route_length_is_distance(
        a in 0usize..8, b in 0usize..8, c in 0usize..8,
        x in 0usize..8, y in 0usize..8, z in 0usize..8,
    ) {
        let t = Torus::new(SliceShape::new(8, 8, 8).expect("valid"));
        let from = lightwave::superpod::torus::Chip { coords: [a, b, c] };
        let to = lightwave::superpod::torus::Chip { coords: [x, y, z] };
        let path = t.route(from, to);
        prop_assert_eq!(path.len(), t.distance(from, to));
        if let Some(last) = path.last() {
            prop_assert_eq!(*last, to);
        } else {
            prop_assert_eq!(from, to);
        }
    }

    /// TE meshes always respect budgets and stay connected, whatever the
    /// demand looks like.
    #[test]
    fn te_mesh_invariants(seed in 0u64..500, n in 4usize..14) {
        let tm = TrafficMatrix::gravity(n, 10.0, seed);
        let mesh = te::engineer(&tm, 2 * (n - 1));
        prop_assert!(mesh.within_budget());
        prop_assert!(mesh.connected());
    }

    /// Flow allocation never manufactures throughput: per-pair rate ≤
    /// demand, total ≤ offered.
    #[test]
    fn flow_allocation_is_conservative(seed in 0u64..200) {
        let tm = TrafficMatrix::gravity(8, 60.0, seed);
        let mesh = Mesh::uniform(8, 14);
        let r = flowsim::allocate(&mesh, &tm, 100.0);
        prop_assert!(r.throughput <= r.offered + 1e-6);
        for i in 0..8 {
            for j in 0..8 {
                prop_assert!(r.rate[i][j] <= tm.demand(i, j) + 1e-9);
            }
        }
    }

    /// Binomial tail is a valid, monotone-in-k probability.
    #[test]
    fn binomial_tail_sane(n in 1u64..200, k in 0u64..200, p in 0.0f64..1.0) {
        prop_assume!(k <= n);
        let t = math::binomial_tail_gt(n, k, p);
        prop_assert!((0.0..=1.0).contains(&t));
        if k > 0 {
            prop_assert!(math::binomial_tail_gt(n, k - 1, p) >= t - 1e-12);
        }
    }

    /// Q-function inverse really inverts over the BER range of interest.
    #[test]
    fn q_inverse_inverts(exp in 1.0f64..12.0) {
        let p = 10f64.powf(-exp) * 0.5;
        let x = math::q_inverse(p);
        let back = math::q_function(x);
        prop_assert!((back.ln() - p.ln()).abs() < 1e-6);
    }
}

// ── telemetry invariants (alarm hysteresis, histogram merge) ──────────

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Debounce/hysteresis never drops a Critical alarm and never softens
    /// an incident that has gone Critical, under arbitrary interleavings
    /// of causes, switches, severities, and clock advances.
    #[test]
    fn critical_alarms_never_dropped_or_downgraded(
        steps in proptest::collection::vec(
            (0u64..5_000, 0u32..3, 0u8..7, 0u8..3), 1..80),
    ) {
        use lightwave::telemetry::{
            AlarmAggregator, AlarmCause, AlarmRecord, Severity,
        };
        use lightwave::units::Nanos;
        let mut agg = AlarmAggregator::new();
        let mut now = Nanos(0);
        let mut critical_ids = Vec::new();
        for &(dt_ms, switch, cause_sel, sev_sel) in &steps {
            now = Nanos(now.0 + dt_ms * 1_000_000);
            let cause = match cause_sel {
                0 => AlarmCause::MirrorFailed { north_die: true, port: 3, spare_used: false },
                1 => AlarmCause::AlignmentTimeout { north: 5 },
                2 => AlarmCause::FruFailed { slot: 2 },
                3 => AlarmCause::ChassisDown,
                4 => AlarmCause::HighLoss { north: 1, south: 2, loss_mdb: 4500 },
                5 => AlarmCause::RateFallback { port: 9 },
                _ => AlarmCause::Straggler { dim: 1 },
            };
            let severity = match sev_sel {
                0 => Severity::Info,
                1 => Severity::Warning,
                _ => Severity::Critical,
            };
            let outcome = agg.ingest(AlarmRecord { at: now, severity, switch, cause });
            let inc = agg
                .incident(outcome.incident())
                .expect("every ingest lands in an incident");
            if severity == Severity::Critical {
                prop_assert_eq!(inc.severity, Severity::Critical);
                critical_ids.push(inc.id);
            }
            if dt_ms % 7 == 0 {
                agg.advance(now); // exercise clear + debounce revival
            }
        }
        // Hysteresis may CLEAR a Critical incident; it must never soften it.
        for id in critical_ids {
            prop_assert_eq!(agg.incident(id).unwrap().severity, Severity::Critical);
        }
        // Conservation: every record pages or is absorbed, exactly once.
        prop_assert_eq!(agg.pages() + agg.suppressed(), agg.ingested());
        prop_assert_eq!(agg.pages() as usize, agg.incidents().len());
        let absorbed: u64 = agg
            .incidents()
            .iter()
            .map(|i| (i.occurrences - 1) + i.correlated)
            .sum();
        prop_assert_eq!(absorbed, agg.suppressed());
    }

    /// LogHistogram merging is exact: any chunking merged in any order is
    /// bit-identical to recording sequentially, and merge is associative.
    /// (This is what lets fleet roll-ups combine per-switch histograms.)
    #[test]
    fn histogram_merge_exact_any_order(
        bits in proptest::collection::vec(0u64..u64::MAX, 0..64),
        chunk in 1usize..8,
    ) {
        use lightwave::telemetry::LogHistogram;
        // Raw bit patterns cover normals, subnormals, zeros, NaNs, negatives.
        let values: Vec<f64> = bits.iter().map(|&b| f64::from_bits(b)).collect();
        let mut seq = LogHistogram::new();
        for &v in &values {
            seq.record(v);
        }
        let parts: Vec<LogHistogram> = values
            .chunks(chunk)
            .map(|c| {
                let mut h = LogHistogram::new();
                for &v in c {
                    h.record(v);
                }
                h
            })
            .collect();
        let mut rev = LogHistogram::new();
        for p in parts.iter().rev() {
            rev.merge(p);
        }
        prop_assert_eq!(&rev, &seq);
        // Associativity over a three-way split.
        if parts.len() >= 3 {
            let (a, b, c) = (&parts[0], &parts[1], &parts[2]);
            let mut left = a.clone();
            left.merge(b);
            left.merge(c);
            let mut bc = b.clone();
            bc.merge(c);
            let mut right = a.clone();
            right.merge(&bc);
            prop_assert_eq!(&left, &right);
        }
        // Snapshot/restore is lossless.
        prop_assert_eq!(&seq.snapshot().restore(), &seq);
    }
}
