//! The tracing determinism contract (DESIGN.md §6.2), round-tripped:
//! the instrumented fault-recovery scenario run twice with the same seed
//! at 1 and at 4 workers must export byte-identical artifacts — the
//! Chrome trace-event JSON *and* the flight-recorder postmortem bundle.

use lightwave::par::Pool;
use lightwave::run_traced_fault_recovery;
use lightwave::trace::to_chrome_trace;

fn artifacts(threads: usize) -> (String, String) {
    let out = run_traced_fault_recovery(11, &Pool::new(threads));
    let trace = to_chrome_trace(&out.tracer);
    let flight = out
        .recorder
        .latest_dump()
        .expect("the Critical incident dumps")
        .to_jsonl();
    (trace, flight)
}

#[test]
fn trace_json_is_byte_identical_at_1_and_4_workers() {
    let (trace1, flight1) = artifacts(1);
    let (trace4, flight4) = artifacts(4);
    assert!(
        trace1 == trace4,
        "trace.json must not depend on worker count"
    );
    assert!(
        flight1 == flight4,
        "flight.jsonl must not depend on worker count"
    );
    // And rerunning at the same width is exactly reproducible too.
    let (trace1b, _) = artifacts(1);
    assert!(trace1 == trace1b, "same seed, same bytes");
}

#[test]
fn exported_artifacts_validate() {
    use lightwave::trace::validate::{validate_chrome_trace, validate_flight_jsonl};
    let (trace, flight) = artifacts(2);
    let stats = validate_chrome_trace(&trace).expect("trace validates");
    assert!(stats.complete > 50, "a real timeline, not a stub");
    assert!(stats.flows > 0, "phase chains render as flow arrows");
    assert!(stats.instants > 0, "the PSU fault mark is present");
    let lines = validate_flight_jsonl(&flight).expect("bundle parses");
    assert!(lines > 10, "a real postmortem bundle");
}
