//! Slice-shape search for LLM training — the Table 2 workflow.
//!
//! ```text
//! cargo run --release --example llm_training
//! ```
//!
//! For each of the paper's three LLMs, search every valid 4096-chip slice
//! shape, print the step-time breakdown of the winner versus the static
//! 16×16×16 baseline, and then actually place the winning slice on a live
//! pod.

use lightwave::mlperf::{step_time, ChipParams, LlmConfig, SliceOptimizer};
use lightwave::prelude::*;

fn main() {
    println!("=== LLM slice-shape optimization (4096 chips) ===\n");
    let opt = SliceOptimizer::tpu_v4();
    let chip = ChipParams::tpu_v4();

    for model in LlmConfig::table2() {
        let best = opt.optimize(&model, 4096).expect("full pod is feasible");
        let baseline = opt.baseline_step(&model, 4096).expect("baseline runs");
        let [a, b, c] = best.shape.chips;
        println!(
            "{} ({:.0}B params, inherent tp={} pp={}):",
            model.name,
            model.params / 1e9,
            model.tp,
            model.pp
        );
        println!(
            "  optimal {a}x{b}x{c}: step {:.2} s \
             (compute {:.2}, tp-comm {:.2}, bubble {:.2}, dp-comm {:.2})",
            best.step.total(),
            best.step.compute,
            best.step.tp_comm,
            best.step.pipeline_bubble,
            best.step.dp_comm
        );
        println!(
            "  baseline 16x16x16: step {:.2} s → speedup {:.2}x",
            baseline.total(),
            best.speedup_vs_baseline
        );

        // Show the landscape: a few notable alternative shapes.
        print!("  landscape:");
        for shape in [[4usize, 4, 256], [8, 16, 32], [16, 16, 16], [4, 16, 64]] {
            let s = SliceShape::new(shape[0], shape[1], shape[2]).expect("valid");
            match step_time(&model, s, &chip) {
                Ok(st) => print!(
                    "  {}x{}x{}: {:.1}s",
                    shape[0],
                    shape[1],
                    shape[2],
                    st.total()
                ),
                Err(_) => print!("  {}x{}x{}: infeasible", shape[0], shape[1], shape[2]),
            }
        }
        println!("\n");
    }

    // Place the LLM1 winner on a live fabric.
    println!("placing LLM1's optimal slice on a live pod...");
    let mut pod = MlPod::new(7);
    let placement = pod
        .place_model(&LlmConfig::llm1(), 4096)
        .expect("empty pod");
    pod.advance(Nanos::from_millis(300));
    println!(
        "  slice {:?} live on {} circuits; fabric settled: {}",
        placement.plan.shape.chips,
        pod.pod.fabric().fleet.health().circuits,
        pod.pod.settled()
    );
}
