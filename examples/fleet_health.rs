//! Fleet-health analytics end to end: streaming detectors catch slow
//! degradation before it becomes an outage.
//!
//! ```text
//! cargo run --release --example fleet_health [-- --smoke] [-- --out-dir DIR]
//! ```
//!
//! Five acts:
//!
//! 1. **Degradation corpus** — seeded slow-degradation schedules
//!    ([`FaultSchedule::generate_degradation`]): optical loss creeping up
//!    25–40 mdb at a time, or transceivers flapping a few times per
//!    detector window. Every schedule ends in the hard failure the creep
//!    foreshadows; the CUSUM / rate-spike detectors must trip **before**
//!    the Critical lands, and the lead time is reported.
//! 2. **Clean corpus** — the uniform chaos-fault corpus from
//!    `chaos_hunt`, which contains spare swaps, FRU failures and relock
//!    storms but no *trends*. The detectors must stay silent: zero trips
//!    across the whole corpus, at any worker count.
//! 3. **Determinism** — the corpus's health dashboards and JSONL reports
//!    are rendered on 1-thread and 4-thread pools in-process and must be
//!    byte-identical (the artifacts written below are `cmp`'d across
//!    `LIGHTWAVE_THREADS` values in CI).
//! 4. **Artifacts** — schedule 0's dashboard (`fleet_health.txt`), JSONL
//!    report (`fleet_health.jsonl`), Perfetto trace with counter tracks
//!    (`fleet_health_trace.json`, openable at <https://ui.perfetto.dev>)
//!    and the postmortem bundle with embedded counter history
//!    (`fleet_postmortem.jsonl`) land in `--out-dir` (default
//!    `target/fleet_health`), each re-validated from the bytes written.
//! 5. **Preempt vs react** — the maintenance-advisor availability model:
//!    a year of the production pod with 90% detector recall turning 30 s
//!    emergency swaps into 5 s planned drains.

use lightwave::availability::timeline::{simulate_preempt, PreemptParams};
use lightwave::chaos::{run_schedule, run_schedule_world, ChaosConfig, FaultSchedule};
use lightwave::par::Pool;
use lightwave::telemetry::Severity;
use lightwave::trace::to_chrome_trace_with_counters;
use lightwave::trace::validate::{validate_chrome_trace, validate_flight_jsonl};
use lightwave::units::Nanos;
use std::path::PathBuf;

const SEED: u64 = 2024;

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/fleet_health"))
}

/// First Critical incident time in a finished world, if any.
fn first_critical(world: &lightwave::chaos::World) -> Option<Nanos> {
    world
        .telemetry
        .alarms
        .incidents()
        .iter()
        .filter(|i| i.severity == Severity::Critical)
        .map(|i| i.last_at)
        .min()
}

fn main() {
    let smoke = flag("--smoke");
    let degradations: u64 = if smoke { 8 } else { 24 };
    let clean: u64 = if smoke { 50 } else { 200 };
    let cfg = ChaosConfig::default();
    let pool = Pool::from_env();
    println!(
        "== fleet health: seed {SEED}, {degradations} degradation + {clean} clean schedules, {} worker(s) ==",
        pool.threads()
    );

    // Act 1: every slow-degradation schedule trips a detector before the
    // hard failure it foreshadows.
    let mut lead_ms = Vec::new();
    for index in 0..degradations {
        let schedule = FaultSchedule::generate_degradation(SEED, index);
        let (outcome, world) = run_schedule_world(&schedule, &cfg);
        assert!(
            outcome.violation.is_none(),
            "degradation schedule #{index} violated an invariant: {:?}",
            outcome.violation
        );
        assert!(
            outcome.trend_trips >= 1,
            "degradation schedule #{index} was not detected"
        );
        let trip = world.health.first_trip_at().expect("tripped");
        let critical = first_critical(&world).expect("every schedule ends in a Critical");
        assert!(
            trip < critical,
            "schedule #{index}: trip at {trip:?} did not precede Critical at {critical:?}"
        );
        lead_ms.push(critical.saturating_sub(trip).as_millis_f64());
    }
    let avg_lead = lead_ms.iter().sum::<f64>() / lead_ms.len() as f64;
    let min_lead = lead_ms.iter().cloned().fold(f64::INFINITY, f64::min);
    println!(
        "act 1: {degradations}/{degradations} degradations caught before failure \
         (lead time avg {avg_lead:.0} ms, min {min_lead:.0} ms) ✓"
    );

    // Act 2: the clean corpus has incidents but no trends — zero trips.
    let indices: Vec<u64> = (0..clean).collect();
    let trips_on = |p: &Pool| {
        p.map_reduce(
            &indices,
            |i, _| run_schedule(&FaultSchedule::generate(SEED, *i), &cfg).trend_trips as u64,
            |a, b| a + b,
        )
        .0
        .expect("non-empty corpus")
    };
    let trips = trips_on(&pool);
    assert_eq!(trips, 0, "false positives on the clean corpus");
    println!("act 2: 0 detector trips across {clean} clean schedules ✓");

    // Act 3: health exports are a pure function of the schedule — the
    // worker count must not leak into a single byte.
    let render_on = |p: &Pool| {
        let deg: Vec<u64> = (0..degradations).collect();
        p.map_reduce(
            &deg,
            |i, _| {
                let (_, w) =
                    run_schedule_world(&FaultSchedule::generate_degradation(SEED, *i), &cfg);
                let now = w.now();
                format!("{}{}", w.health.dashboard(now), w.health.to_jsonl(now))
            },
            |a, b| a + &b,
        )
        .0
        .expect("non-empty corpus")
    };
    let serial = render_on(&Pool::new(1));
    let quad = render_on(&Pool::new(4));
    assert!(serial == quad, "health exports depend on thread count");
    println!(
        "act 3: dashboards + JSONL byte-identical at 1 == 4 workers ({} bytes) ✓",
        serial.len()
    );

    // Act 4: artifacts from the first loss-creep schedule, re-validated
    // from the bytes on disk.
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create out dir");
    let (_, world) = run_schedule_world(&FaultSchedule::generate_degradation(SEED, 0), &cfg);
    let now = world.now();

    let dashboard = world.health.dashboard(now);
    std::fs::write(dir.join("fleet_health.txt"), &dashboard).expect("write dashboard");
    let jsonl = world.health.to_jsonl(now);
    let lines = validate_flight_jsonl(&jsonl).expect("health JSONL validates");
    std::fs::write(dir.join("fleet_health.jsonl"), &jsonl).expect("write jsonl");

    let trace = to_chrome_trace_with_counters(&world.tracer, &world.health.counter_tracks());
    let stats = validate_chrome_trace(&trace).expect("trace validates");
    assert!(stats.counters > 0, "counter tracks made it into the trace");
    std::fs::write(dir.join("fleet_health_trace.json"), &trace).expect("write trace");

    let dump = world
        .recorder
        .latest_dump()
        .expect("the FPGA death dumped a postmortem");
    assert!(
        !dump.counters.is_empty(),
        "postmortem embeds the blast-radius counter history"
    );
    let postmortem = dump.to_jsonl();
    validate_flight_jsonl(&postmortem).expect("postmortem validates");
    std::fs::write(dir.join("fleet_postmortem.jsonl"), &postmortem).expect("write postmortem");
    println!(
        "act 4: wrote {} ({} JSONL lines, {} counter events, {} postmortem samples)",
        dir.display(),
        lines,
        stats.counters,
        dump.counters.len()
    );

    // Act 5: what detection is worth — a year of the production pod.
    let params = PreemptParams::production_year();
    let report = simulate_preempt(&params, SEED);
    let saved_pct = 100.0 * (1.0 - report.preemptive.down_hours / report.reactive.down_hours);
    println!(
        "act 5: preempt vs react, production year (recall {:.0}%):",
        params.detector_recall * 100.0
    );
    println!(
        "  reactive:   delivered {:.6}, {:6.2} slice-down hours over {} failures",
        report.reactive.delivered, report.reactive.down_hours, report.reactive.failures
    );
    println!(
        "  preemptive: delivered {:.6}, {:6.2} slice-down hours ({} caught early)",
        report.preemptive.delivered, report.preemptive.down_hours, report.caught
    );
    println!("  unplanned downtime cut by {saved_pct:.0}%");
    assert!(report.preemptive.down_hours < report.reactive.down_hours);
    println!("\nfleet health: all acts passed ✓");
}
