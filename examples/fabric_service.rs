//! Fabric-as-a-service, end to end: a year of slice requests served by
//! real superpods, observed, traced, stress-tested, and checked against
//! queueing theory.
//!
//! ```text
//! cargo run --release --example fabric_service            # 1M requests
//! cargo run --release --example fabric_service -- --smoke # CI-sized
//! ```
//!
//! Four acts:
//!
//! 1. **The open-loop run** — the configured arrival stream through
//!    [`run_sharded`] on [`Pool::from_env`], so `LIGHTWAVE_THREADS`
//!    controls the worker count. Writes `service_report.json`; CI runs
//!    this example at `LIGHTWAVE_THREADS=1` and `=4` and `cmp`s the two
//!    artifacts byte for byte (a smaller in-process 1-vs-2-thread check
//!    runs here too, so the example self-verifies on one machine).
//! 2. **The observed cell** — a small traced [`ServiceEngine`] run;
//!    lifecycle spans plus the queue-depth counter track export to
//!    `service_trace.json`, which the in-repo Chrome-trace validator
//!    must accept.
//! 3. **Erlang B** — the single-cube loss configuration swept across
//!    offered loads; measured blocking vs the closed form.
//! 4. **Chaos** — a service hunt: arrival schedules interleaved with
//!    hardware faults, every extended invariant checked, byte-identical
//!    at any thread count.

use lightwave::chaos::{hunt_service, ChaosConfig, HuntConfig};
use lightwave::par::Pool;
use lightwave::service::{erlang_b, run_sharded, Mix, PolicyConfig, ServiceConfig, ServiceEngine};
use lightwave::trace::to_chrome_trace_with_counters;
use lightwave::trace::validate::validate_chrome_trace;
use lightwave::units::Nanos;
use std::path::PathBuf;

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/service"));
    std::fs::create_dir_all(&dir).expect("create output directory");
    dir
}

fn main() {
    let smoke = flag("--smoke");
    let dir = out_dir();
    let requests: u64 = if smoke { 10_000 } else { 1_000_000 };
    let pool = Pool::from_env();

    // ── Act 1: the open-loop run ─────────────────────────────────────
    let cfg = ServiceConfig {
        requests,
        ..ServiceConfig::default()
    };
    println!(
        "act 1: {requests} production arrivals, {} worker thread(s)",
        pool.threads()
    );
    let t0 = std::time::Instant::now();
    let (report, stats) = run_sharded(&pool, &cfg);
    let secs = t0.elapsed().as_secs_f64();
    assert_eq!(report.submitted, requests);
    println!(
        "  {} admitted, {} blocked, {} preempted, {} completed over {} cells",
        report.classes.iter().map(|c| c.admitted).sum::<u64>(),
        report.blocked(),
        report.preempted(),
        report.completed(),
        report.cells,
    );
    println!(
        "  {:.0} req/s wall ({} shards, {:.0}% pool utilization), {:.1}% cube utilization, p99 admit wait {:.0} us",
        requests as f64 / secs,
        stats.shards,
        stats.utilization() * 100.0,
        report.utilization() * 100.0,
        report.wait_quantile_micros(0.99).unwrap_or(0.0),
    );

    // The artifact CI diffs across thread counts. Byte-identical because
    // per-cell reports merge in shard order whatever worker ran them.
    let snapshot = serde_json::to_string_pretty(&report.snapshot()).expect("snapshot serializes");
    let report_path = dir.join("service_report.json");
    std::fs::write(&report_path, snapshot + "\n").expect("write service_report.json");
    println!("  wrote {}", report_path.display());

    // Self-check on this machine: a smaller run, explicit 1 vs 2 threads.
    let small = ServiceConfig {
        requests: if smoke { 1_500 } else { 4_000 },
        ..ServiceConfig::default()
    };
    let (one, _) = run_sharded(&Pool::new(1), &small);
    let (two, _) = run_sharded(&Pool::new(2), &small);
    assert_eq!(one, two, "thread count must not change the report");
    println!("  replay check: 1-thread and 2-thread reports identical");

    // ── Act 2: the observed cell ─────────────────────────────────────
    // Tracing is per-request opt-in: each traced admission drags its
    // whole reconfiguration span tree into the export, so trace a
    // prefix, not the full cell.
    let traced = ServiceConfig {
        requests: 240,
        trace_requests: 48,
        ..ServiceConfig::default()
    };
    let mut engine = ServiceEngine::new(traced);
    let cell = engine.run();
    let trace = to_chrome_trace_with_counters(&engine.tracer, &engine.series.tracks());
    let tstats = validate_chrome_trace(&trace).expect("exported trace validates");
    println!(
        "act 2: traced cell served {} requests; trace has {} spans, {} flows, {} counter samples — validator accepts",
        cell.completed(),
        tstats.complete,
        tstats.flows,
        tstats.counters,
    );
    let trace_path = dir.join("service_trace.json");
    std::fs::write(&trace_path, trace).expect("write service_trace.json");
    println!("  wrote {} (open at ui.perfetto.dev)", trace_path.display());

    // ── Act 3: Erlang B ──────────────────────────────────────────────
    // Single-cube mix, no queue, no preemption: each cell is an
    // M/G/64/64 loss system. Mean hold is 100 ms, so offered load is
    // 100 ms / gap erlangs.
    println!("act 3: blocking vs offered load (measured | Erlang B)");
    let n = if smoke { 1_500 } else { 4_000 };
    for gap_ms in [10u64, 3, 1] {
        let loss = ServiceConfig {
            requests: n,
            mean_gap: Nanos::from_millis(gap_ms),
            mix: Mix::SingleCube,
            policy: PolicyConfig {
                queue_limit: 0,
                preemption: false,
            },
            shard_size: n, // one cell: blocking is a pod-level statistic
            ..ServiceConfig::default()
        };
        let (r, _) = run_sharded(&pool, &loss);
        let erlangs = 100.0 / gap_ms as f64;
        println!(
            "  E = {erlangs:>5.1} erlangs on 64 cubes: {:>6.2}% | {:>6.2}%",
            r.blocking_probability() * 100.0,
            erlang_b(erlangs, 64) * 100.0,
        );
    }

    // ── Act 4: chaos ─────────────────────────────────────────────────
    let hunt_cfg = HuntConfig {
        seed: 5,
        schedules: if smoke { 6 } else { 24 },
        chaos: ChaosConfig::default(),
    };
    let hunt = hunt_service(&pool, &hunt_cfg);
    print!(
        "act 4: service hunt under hardware faults\n{}",
        hunt.table()
    );
    assert!(
        hunt.violations().next().is_none(),
        "service hunt must be invariant-clean"
    );
    println!("done: all acts passed");
}
