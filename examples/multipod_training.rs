//! Scale-out: training one model across several superpods (§2.2.2, Fig. 2).
//!
//! ```text
//! cargo run --release --example multipod_training
//! ```
//!
//! When a model outgrows one pod, the scale-up ICI fabric and the
//! scale-out DCN cooperate: collectives reduce-scatter inside each pod,
//! ride the DCN between pods on two counter-rotating rings (Fig. 2c), and
//! all-gather back — while the DCN's topology engineering grants the
//! pod-to-pod trunks the job needs.

use lightwave::mlperf::{LlmConfig, SliceOptimizer};
use lightwave::superpod::collective::IciParams;
use lightwave::superpod::hybrid::{
    bandwidth_asymmetry, hybrid_all_reduce, scaling_efficiency, DcnParams,
};

fn main() {
    println!("=== hybrid ICI-DCN multi-pod training ===\n");

    let ici = IciParams::tpu_v4();
    let dcn = DcnParams::production();
    println!(
        "fabric asymmetry: pod ICI bisection is {:.0}x the pod's DCN share (paper: 50-100x)\n",
        bandwidth_asymmetry(4096, &ici, &dcn)
    );

    // LLM1 fills one pod; data-parallel replicas scale across pods.
    let model = LlmConfig::llm1();
    let plan = SliceOptimizer::tpu_v4()
        .optimize(&model, 4096)
        .expect("full pod feasible");
    let grad_bytes = 2.0 * model.params / (plan.step.mapping.tp * plan.step.mapping.pp) as f64;
    println!(
        "{}: slice {:?} per pod, {:.1} GB gradient per replica group",
        model.name,
        plan.shape.chips,
        grad_bytes / 1e9
    );

    println!("\npods | gradient allreduce | ICI phases | DCN phase | tokens/s (weak scaling)");
    let step_single = plan.step.total();
    for pods in [1usize, 2, 4, 8, 16] {
        let ar = hybrid_all_reduce(grad_bytes, &[plan.step.mapping.dp], pods, &ici, &dcn);
        // Replace the single-pod dp_comm with the hybrid collective.
        let step = step_single - plan.step.dp_comm + ar.total();
        let tokens_per_s = pods as f64 * model.batch_tokens / step;
        println!(
            "{pods:>4} | {:>15.1} ms | {:>7.1} ms | {:>6.1} ms | {:>10.0}",
            ar.total() * 1e3,
            (ar.ici_reduce_scatter + ar.ici_all_gather) * 1e3,
            ar.dcn_phase * 1e3,
            tokens_per_s
        );
    }

    // What DCN topology engineering buys the job: more pod-to-pod trunks.
    println!("\nDCN trunk share vs 4-pod scaling efficiency (overlap-window view):");
    for gbps in [50.0, 100.0, 300.0, 600.0] {
        let d = DcnParams {
            pod_bandwidth: gbps * 1e9,
            ..dcn
        };
        let eff = scaling_efficiency(0.2, grad_bytes, &[plan.step.mapping.dp], 4, &ici, &d);
        println!("  {gbps:>5.0} GB/s per pod → {:.1}%", eff * 100.0);
    }

    // And the Fig. 2c trick.
    let one_ring = DcnParams {
        two_rings: false,
        ..dcn
    };
    let t2 = hybrid_all_reduce(grad_bytes, &[plan.step.mapping.dp], 4, &ici, &dcn).dcn_phase;
    let t1 = hybrid_all_reduce(grad_bytes, &[plan.step.mapping.dp], 4, &ici, &one_ring).dcn_phase;
    println!(
        "\ntwo counter-rotating rings (Fig. 2c): DCN phase {:.1} ms vs {:.1} ms single ring",
        t2 * 1e3,
        t1 * 1e3
    );
}
