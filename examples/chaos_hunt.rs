//! Deterministic chaos hunt over the lightwave control plane.
//!
//! ```text
//! cargo run --release --example chaos_hunt [-- --smoke] [-- --out-dir DIR]
//! ```
//!
//! Three acts:
//!
//! 1. **Clean hunt** — 500 seeded fault schedules (50 with `--smoke`)
//!    drive the real ocs → fabric → scheduler → superpod stack through
//!    FRU failures, stuck mirrors, camera rejections, relock storms,
//!    preemptions and maintenance, re-checking the invariant library
//!    after every event. The honest control plane must come back
//!    violation-free, and the report is byte-identical at any
//!    `LIGHTWAVE_THREADS` (asserted in-process).
//! 2. **Planted defect** — the same hunt with the harness's
//!    flight-recorder poll disabled ([`InjectedBug::SkipFlightPoll`], a
//!    test-only hook). The first Critical incident without a postmortem
//!    dump is caught, and the offending schedule is delta-debugged to a
//!    1-minimal repro.
//! 3. **Repro artifacts** — the shrunk schedule lands in `--out-dir`
//!    (default `target/chaos`) as `chaos_repro.jsonl` (runnable, see
//!    README) plus `chaos_min_trace.json`, the Perfetto timeline of the
//!    minimal run. The repro is re-parsed and replayed before the run
//!    reports success: same violation, from the bytes on disk.

use lightwave::chaos::{
    hunt, parse_repro, run_schedule_world, shrink, write_repro, ChaosConfig, FaultSchedule,
    HuntConfig, InjectedBug,
};
use lightwave::par::Pool;
use lightwave::trace::to_chrome_trace;
use lightwave::trace::validate::validate_chrome_trace;
use std::path::PathBuf;

const SEED: u64 = 2024;

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/chaos"))
}

fn main() {
    let smoke = flag("--smoke");
    let schedules: u64 = if smoke { 50 } else { 500 };
    let pool = Pool::from_env();
    println!(
        "== chaos hunt: seed {SEED}, {schedules} schedules, {} worker(s) ==",
        pool.threads()
    );

    // Act 1: the honest control plane survives the full fault menu.
    let clean_cfg = HuntConfig {
        seed: SEED,
        schedules,
        chaos: ChaosConfig::default(),
    };
    let clean = hunt(&pool, &clean_cfg);
    print!("{}", clean.table());
    assert!(
        clean.violations().next().is_none(),
        "the honest control plane must be violation-free"
    );
    // Thread-count invariance, checked every run (the smoke gate).
    let serial = hunt(&Pool::new(1), &clean_cfg);
    let quad = hunt(&Pool::new(4), &clean_cfg);
    assert!(
        serial == clean && quad == clean,
        "report depends on thread count"
    );
    println!("thread-count invariance: 1 == 4 == {} ✓\n", pool.threads());

    // Act 2: plant a defect, catch it, shrink the catch.
    let bad_chaos = ChaosConfig {
        inject: Some(InjectedBug::SkipFlightPoll),
    };
    let bad = hunt(
        &pool,
        &HuntConfig {
            seed: SEED,
            schedules,
            chaos: bad_chaos,
        },
    );
    print!("{}", bad.table());
    let first = bad
        .violations()
        .next()
        .expect("the planted defect must be caught");
    let violation = first.violation.as_ref().expect("filtered");
    let full = FaultSchedule::generate(SEED, first.index);
    let shrunk = shrink(&full, &bad_chaos).expect("a violating schedule shrinks");
    println!(
        "first catch: schedule #{} ({} events) -> {} events after {} executor runs",
        first.index,
        shrunk.original_events,
        shrunk.schedule.events.len(),
        shrunk.runs
    );
    assert_eq!(shrunk.violation.invariant, violation.invariant);
    assert!(
        shrunk.schedule.events.len() <= 5,
        "minimal repros of this defect are tiny"
    );

    // Act 3: artifacts, then replay from the bytes on disk.
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create out dir");
    let repro_path = dir.join("chaos_repro.jsonl");
    let repro = write_repro(
        &shrunk.schedule,
        &bad_chaos,
        Some(shrunk.violation.invariant),
    );
    std::fs::write(&repro_path, &repro).expect("write repro");
    let (outcome, world) = run_schedule_world(&shrunk.schedule, &bad_chaos);
    let trace = to_chrome_trace(&world.tracer);
    let stats = validate_chrome_trace(&trace).expect("minimal-run trace validates");
    let trace_path = dir.join("chaos_min_trace.json");
    std::fs::write(&trace_path, &trace).expect("write trace");
    println!(
        "wrote {} and {} ({} spans)",
        repro_path.display(),
        trace_path.display(),
        stats.complete
    );

    let parsed = parse_repro(&std::fs::read_to_string(&repro_path).expect("read repro"))
        .expect("repro parses");
    let replayed = parsed.replay();
    assert_eq!(
        replayed.violation, outcome.violation,
        "the JSONL repro must replay to the same violation"
    );
    println!(
        "replayed from disk: {} ✓",
        replayed.violation.expect("violates")
    );
}
