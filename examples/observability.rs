//! Fleet-wide observability: metrics, incidents, SLOs (§3.2.2, §4.1.1).
//!
//! ```text
//! cargo run --release --example observability
//! ```
//!
//! A four-switch pod fabric goes through its operational life — initial
//! provisioning, a transceiver census, scheduler runs, a collective with
//! a straggling link, an HV-driver failure with its blast radius, and
//! the maintenance that repairs it — while every layer records into one
//! `FleetTelemetry` sink. The punchline is the paper's operational
//! argument: one FRU failure becomes *one* page with its symptom alarms
//! correlated underneath, and the dashboard shows exactly where the
//! 99.98% availability budget went.

use lightwave::fabric::instrument::FabricInstruments;
use lightwave::fabric::{FabricController, FabricTarget, OcsFleet};
use lightwave::ocs::PortMapping;
use lightwave::scheduler::instrument::SchedulerInstruments;
use lightwave::scheduler::sim::{default_mix, ClusterSim};
use lightwave::scheduler::Pooled;
use lightwave::superpod::collective_sim::{simulate_torus_all_reduce, Uniform, WithStraggler};
use lightwave::superpod::instrument::CollectiveInstruments;
use lightwave::superpod::torus::Chip;
use lightwave::superpod::SliceShape;
use lightwave::telemetry::FleetTelemetry;
use lightwave::transceiver::instrument::XcvrInstruments;
use lightwave::transceiver::{fleet::fleet_census, DspConfig, ModuleFamily};
use lightwave::units::Nanos;

fn main() {
    let mut sink = FleetTelemetry::new();

    // ── 1. Provision the fabric ────────────────────────────────────────
    let mut controller = FabricController::new(OcsFleet::build(4, 17));
    let mut fabric = FabricInstruments::register(&mut sink);
    let mut target = FabricTarget::new();
    for ocs in 0..4u32 {
        let pairs: Vec<(u16, u16)> = (0..32u16).map(|n| (n, n + 64)).collect();
        target.set(ocs, PortMapping::from_pairs(pairs).expect("valid mapping"));
    }
    let report = fabric
        .commit_observed(&mut sink, &mut controller, &target)
        .expect("clean fleet accepts the initial target");
    println!(
        "provisioned {} circuits across 4 switches, traffic-ready in {}",
        report.added, report.traffic_ready_at
    );
    controller.advance(Nanos::from_millis(300));
    fabric.scrape_fleet(&mut sink, &controller.fleet);

    // ── 2. Transceiver BER census + one marginal link ──────────────────
    let mut xcvr = XcvrInstruments::register(&mut sink, "cwdm4");
    let census = fleet_census(400, ModuleFamily::Cwdm4Bidi, 42);
    xcvr.record_census(&mut sink, controller_now(&controller), &census);
    // A legacy peer forces one link below its top lane rate (§3.3.1).
    let new = DspConfig::ml_production();
    let old = DspConfig::standards_based();
    xcvr.record_negotiation(&mut sink, controller_now(&controller), 129, &new, &old);

    // ── 3. Scheduler utilization (§4.2.4) ──────────────────────────────
    let sim = ClusterSim::new(default_mix(), 0.25);
    let mut pooled = SchedulerInstruments::register(&mut sink, "pooled");
    let mut defrag = SchedulerInstruments::register(&mut sink, "contiguous+defrag");
    pooled.record_run(
        &mut sink,
        controller_now(&controller),
        &sim.run(&Pooled, 400.0, 42),
    );
    defrag.record_run(
        &mut sink,
        controller_now(&controller),
        &sim.run_contiguous_with_defrag(400.0, 0.05, 42),
    );

    // ── 4. A collective with a straggling link ─────────────────────────
    let mut pod = CollectiveInstruments::register(&mut sink, 0);
    let shape = SliceShape::new(8, 8, 8).expect("valid");
    let base = 100e9;
    let healthy = simulate_torus_all_reduce(shape, 256e6, &[0, 1, 2], &Uniform(base), 300e-9);
    let straggler = WithStraggler {
        base,
        chip: Chip { coords: [3, 5, 2] },
        dim: 0,
        derated: base / 4.0,
    };
    let observed = simulate_torus_all_reduce(shape, 256e6, &[0, 1, 2], &straggler, 300e-9);
    pod.record_collective(&mut sink, controller_now(&controller), &observed);
    let found = pod.detect_stragglers(
        &mut sink,
        controller_now(&controller),
        &[0, 1, 2],
        &healthy,
        &observed,
    );
    for s in &found {
        println!(
            "straggler: torus dim {} running {}% slow",
            s.dim, s.slowdown_pct
        );
    }

    // ── 5. Failure: an HV driver dies on switch 1 ──────────────────────
    // The FRU failure is the root cause; the mirror churn that follows is
    // its blast radius, and the aggregator files it all as ONE incident.
    {
        let ocs = controller.fleet.get_mut(1).expect("switch 1 exists");
        ocs.fail_fru(6); // HV driver for ports 0..34
        for port in [2u16, 7, 11, 23] {
            ocs.fail_mirror(true, port);
        }
    }
    controller.advance(Nanos::from_millis(100));
    fabric.scrape_fleet(&mut sink, &controller.fleet);
    println!(
        "\nafter the FRU failure: {} page(s), {} symptom alarm(s) correlated",
        sink.alarms.pages(),
        sink.alarms.suppressed()
    );

    // ── 6. Maintenance: replace the FRU, let incidents clear ───────────
    controller
        .fleet
        .get_mut(1)
        .expect("switch 1 exists")
        .replace_fru(6);
    controller.advance(Nanos::from_secs_f64(30.0));
    fabric.scrape_fleet(&mut sink, &controller.fleet);

    // ── 7. The fleet dashboard ─────────────────────────────────────────
    let now = controller_now(&controller);
    println!("\n{}", sink.dashboard(now));
    let jsonl = sink.to_jsonl(now);
    println!(
        "JSONL export: {} records, first line:\n{}",
        jsonl.lines().count(),
        jsonl.lines().next().unwrap_or_default()
    );
}

fn controller_now(c: &FabricController) -> Nanos {
    c.fleet
        .iter()
        .map(|(_, ocs)| ocs.now())
        .max()
        .unwrap_or(Nanos(0))
}
