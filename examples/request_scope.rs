//! "Why was this request slow?" — request-level critical-path
//! attribution with the always-on scope layer (DESIGN §6.7).
//!
//! ```text
//! cargo run --release --example request_scope            # 200k requests
//! cargo run --release --example request_scope -- --smoke # CI-sized
//! ```
//!
//! Four acts:
//!
//! 1. **The attributed fleet run** — [`run_sharded_scoped`] over the
//!    production mix with 1-in-64 sampling. The scope report folds each
//!    sampled request's lifecycle into per-class × per-phase exemplar
//!    histograms and names the dominant phase at p50/p99/p99.9. Writes
//!    `scope_report.json`; CI runs this example at `LIGHTWAVE_THREADS=1`
//!    and `=4` and `cmp`s the artifacts byte for byte.
//! 2. **The determinism check** — an in-process 1-vs-2-thread replay:
//!    snapshot JSON must be byte-identical (sampling and span ids are
//!    pure in `(seed, request)`; merges are lattice joins).
//! 3. **The exemplar-linked trace** — a fully sampled observed
//!    [`ServiceEngine`] cell. Every tail bucket's exemplar carries the
//!    span id of that request's root lifecycle span; the annotated
//!    Perfetto export flags those spans, so the p99 row in
//!    `scope_report.json` links straight to the slow request's span tree
//!    in `request_scope_trace.json`.
//! 4. **The profiler** — the scope layer accounts for its own wall
//!    clock with [`ScopeProfiler`] (the overhead gate itself lives in
//!    `bench_pr8`).

use lightwave::par::Pool;
use lightwave::service::{run_sharded_scoped, ScopeProfiler, ServiceConfig, ServiceEngine};
use lightwave::trace::validate::validate_chrome_trace;
use lightwave::trace::{to_chrome_trace_annotated, RequestStage, SpanKind};
use std::collections::BTreeSet;
use std::path::PathBuf;

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/scope"));
    std::fs::create_dir_all(&dir).expect("create output directory");
    dir
}

fn main() {
    let smoke = flag("--smoke");
    let dir = out_dir();
    let mut prof = ScopeProfiler::new();
    let requests: u64 = if smoke { 12_000 } else { 200_000 };
    let pool = Pool::from_env();

    // ── Act 1: the attributed fleet run ──────────────────────────────
    let cfg = ServiceConfig {
        requests,
        scope_every: 64,
        ..ServiceConfig::default()
    };
    println!(
        "act 1: {requests} arrivals, 1-in-{} sampling, {} worker thread(s)",
        cfg.scope_every,
        pool.threads()
    );
    let (report, scope, _) = prof.time("run_sharded_scoped", || run_sharded_scoped(&pool, &cfg));
    assert_eq!(report.submitted, requests);
    println!(
        "  {} sampled ({} rejected, {} in flight at drain), {} commits observed",
        scope.sampled,
        scope.rejected,
        scope.inflight,
        scope.touched_switches.count(),
    );
    print!("{}", scope.render());

    let snapshot =
        serde_json::to_string_pretty(&scope.snapshot()).expect("scope snapshot serializes");
    let report_path = dir.join("scope_report.json");
    std::fs::write(&report_path, snapshot + "\n").expect("write scope_report.json");
    println!("  wrote {}", report_path.display());

    // ── Act 2: the determinism check ─────────────────────────────────
    let small = ServiceConfig {
        requests: if smoke { 2_000 } else { 6_000 },
        shard_size: 512,
        scope_every: 8,
        ..ServiceConfig::default()
    };
    let (r1, s1, _) = run_sharded_scoped(&Pool::new(1), &small);
    let (r2, s2, _) = run_sharded_scoped(&Pool::new(2), &small);
    assert_eq!(r1, r2, "thread count must not change the service report");
    assert_eq!(
        serde_json::to_string(&s1.snapshot()).expect("json"),
        serde_json::to_string(&s2.snapshot()).expect("json"),
        "thread count must not change the scope report"
    );
    println!("act 2: 1-thread and 2-thread scope reports byte-identical");

    // ── Act 3: the exemplar-linked trace ─────────────────────────────
    // Full sampling on a small observed cell: every request gets a root
    // lifecycle span, and every histogram bucket's exemplar records the
    // root span id of the request that set it.
    let traced = ServiceConfig {
        requests: 240,
        trace_requests: 48,
        scope_every: 1,
        ..ServiceConfig::default()
    };
    let mut engine = ServiceEngine::new(traced);
    let cell = engine.run();
    let cell_scope = engine.scope_report();
    let exemplars = cell_scope.exemplar_spans();
    let root_ids: BTreeSet<u64> = engine
        .tracer
        .spans()
        .iter()
        .filter(|s| {
            matches!(
                s.kind,
                SpanKind::ServiceRequest {
                    stage: RequestStage::Lifecycle,
                    ..
                }
            )
        })
        .map(|s| s.id.0)
        .collect();
    for span in &exemplars {
        assert!(
            root_ids.contains(span),
            "exemplar span {span:016x} must resolve to a lifecycle root"
        );
    }
    let trace = to_chrome_trace_annotated(&engine.tracer, &engine.series.tracks(), &exemplars);
    let tstats = validate_chrome_trace(&trace).expect("exported trace validates");
    println!(
        "act 3: fully sampled cell served {} requests; {} exemplar spans all \
         resolve in a {}-span trace — validator accepts",
        cell.completed(),
        exemplars.len(),
        tstats.complete,
    );
    for p in cell_scope.critical_paths() {
        if p.quantile_permille == 990 {
            println!(
                "  {} p99 exemplar: request {} span {:016x} — open the trace and \
                 look for the flagged span",
                p.class.name(),
                p.request,
                p.span,
            );
        }
    }
    let trace_path = dir.join("request_scope_trace.json");
    std::fs::write(&trace_path, trace).expect("write request_scope_trace.json");
    println!("  wrote {} (open at ui.perfetto.dev)", trace_path.display());

    // ── Act 4: the profiler ──────────────────────────────────────────
    print!("act 4: {}", prof.render());
    println!("done: all acts passed");
}
