//! Topology engineering for a spine-free datacenter network.
//!
//! ```text
//! cargo run --release --example topology_engineering
//! ```
//!
//! The DCN half of the paper (§2.1, Fig. 1): aggregation blocks connect
//! *directly* through OCSes, and the logical mesh is re-shaped to follow
//! long-lived traffic. This example builds a 16-AB fabric, offers it a
//! skewed (hotspot) matrix, and compares the engineered topology against
//! the uniform mesh a static fabric is stuck with.

use lightwave::dcn::DcnFabric;
use lightwave::prelude::*;

fn main() {
    println!("=== spine-free DCN topology engineering ===\n");

    let planner = DcnPlanner {
        uplinks_per_ab: 30,
        trunk_gbps: 100.0,
    };

    for (label, tm) in [
        ("uniform traffic   ", TrafficMatrix::uniform(16, 40.0)),
        ("gravity traffic   ", TrafficMatrix::gravity(16, 40.0, 7)),
        (
            "hotspot traffic   ",
            TrafficMatrix::hotspot(16, 40.0, 8, 30.0, 3),
        ),
    ] {
        let plan = planner.plan(&tm);
        println!(
            "{label} (skew {:>5.1}x): TE carries {:>7.0} / {:>7.0} Gb/s offered \
             ({:+.1}% vs uniform mesh), FCT {:+.1}%",
            tm.skew(),
            plan.engineered.throughput,
            plan.engineered.offered,
            (plan.throughput_gain() - 1.0) * 100.0,
            plan.fct_improvement() * 100.0,
        );
    }

    // Look inside the engineered mesh for the hotspot case: hot pairs get
    // many parallel trunks, cold pairs keep the connectivity floor.
    let tm = TrafficMatrix::hotspot(16, 40.0, 8, 30.0, 3);
    let plan = planner.plan(&tm);
    println!("\nengineered trunk counts (hotspot matrix), first 8 ABs:");
    print!("     ");
    for j in 0..8 {
        print!("AB{j:<2} ");
    }
    println!();
    for i in 0..8 {
        print!("AB{i:<2} ");
        for j in 0..8 {
            if i == j {
                print!("  ·  ");
            } else {
                print!("{:>4} ", plan.mesh.trunks(i, j));
            }
        }
        println!();
    }
    println!(
        "\nevery AB within its {}-trunk budget: {}; mesh connected: {}",
        plan.mesh.uplinks_per_ab(),
        plan.mesh.within_budget(),
        plan.mesh.connected()
    );

    // Now run it on live hardware: install the uniform mesh, then
    // re-engineer to the hotspot mesh — shared trunks never blink.
    println!("\ninstalling on a live 32-OCS layer...");
    let mut fabric = DcnFabric::new(16, 32, 7);
    let first = fabric
        .install(&lightwave::dcn::Mesh::uniform(16, 30))
        .expect("uniform mesh fits");
    fabric.advance(Nanos::from_millis(400));
    println!(
        "  uniform mesh live: {} circuits across {} switches",
        first.added,
        fabric.controller().fleet.len()
    );
    let report = fabric.install(&plan.mesh).expect("engineered mesh fits");
    println!(
        "  re-engineered for the hotspot matrix: {} trunks moved, {} added, \
         {} kept carrying traffic throughout",
        report.removed, report.added, report.untouched
    );
    fabric.advance(Nanos::from_millis(400));
    println!("  fabric settled: {}", fabric.settled());
}
