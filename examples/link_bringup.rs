//! Optical link design and bring-up walkthrough.
//!
//! ```text
//! cargo run --release --example link_bringup
//! ```
//!
//! Follows one bidirectional link end to end, the §3.3 story: budget the
//! optical path, account every reflection into the MPI budget, evaluate
//! per-lane BER with and without the DSP's tricks (OIM, concatenated
//! FEC), and finally run the bring-up state machine — including a
//! cross-generation rate negotiation.

use lightwave::optics::link::LinkBudget;
use lightwave::optics::mpi::MpiBudget;
use lightwave::prelude::*;
use lightwave::transceiver::bidilink::BidiLink;
use lightwave::transceiver::bringup::LinkBringup;
use lightwave::transceiver::dsp::FecMode;
use lightwave::units::Dbm;

fn main() {
    println!("=== bidi link design walkthrough ===\n");

    // 1. The optical path: Tx → mux → circulator → fiber → OCS → fiber →
    //    circulator → demux → Rx.
    let budget = LinkBudget::superpod_nominal(Dbm(1.0), 0.2);
    println!("link budget ({} components):", budget.components.len());
    for (i, c) in budget.components.iter().enumerate() {
        println!(
            "  {i}: {:?} — IL {:.2} dB, RL {:.0} dB",
            c.kind,
            c.insertion_loss.db(),
            c.return_loss.db()
        );
    }
    println!(
        "  total loss {:.2} dB → received {}",
        budget.total_loss().db(),
        budget.received_power()
    );

    // 2. The bidi tax: every reflection is in-band interference.
    let mpi = MpiBudget::from_bidi_link(&budget);
    println!("\nMPI budget (bidi): total {:.1} dB", mpi.total_db().db());
    for c in mpi.contributions.iter().take(4) {
        println!("  {:?}: {:.1} dB", c.source, c.ratio_db().db());
    }

    // 3. Per-lane health with the production DSP.
    let designer = LinkDesigner::ml_default();
    let report = designer.evaluate();
    println!(
        "\nper-lane BER (OIM on, concatenated FEC, threshold {}):",
        report.raw_threshold
    );
    for lane in &report.lanes {
        println!(
            "  λ{}: rx {}, dispersion {:.2} dB, BER {} — margin {:.1} orders ({})",
            lane.lane,
            lane.received,
            lane.dispersion_penalty.db(),
            lane.raw_ber,
            lane.margin_orders,
            if lane.healthy { "healthy" } else { "FAIL" }
        );
    }

    // 4. What the DSP buys: degrade launch power until KP4-only dies.
    let mut weak_tx = Transceiver::nominal(ModuleFamily::Cwdm4Bidi);
    weak_tx.launch = Dbm(weak_tx.launch.dbm() - 7.2);
    let rx_unit = Transceiver::nominal(ModuleFamily::Cwdm4Bidi);
    let kp4_only = BidiLink::superpod(
        weak_tx,
        rx_unit,
        DspConfig {
            fec: FecMode::Kp4Only,
            ..DspConfig::ml_production()
        },
        0.2,
    );
    let concat = BidiLink::superpod(weak_tx, rx_unit, DspConfig::ml_production(), 0.2);
    println!(
        "\nmarginal link (launch −7.2 dB): KP4-only healthy: {}, concatenated SFEC healthy: {}",
        kp4_only.is_healthy(),
        concat.is_healthy()
    );

    // 5. Bring-up, including backward-compatible rate negotiation.
    let healthy = BidiLink::superpod(
        Transceiver::nominal(ModuleFamily::Cwdm4Bidi),
        Transceiver::nominal(ModuleFamily::Cwdm4Bidi),
        DspConfig::ml_production(),
        0.2,
    );
    let mut bring = LinkBringup::new();
    let t = bring.run(
        &healthy,
        &DspConfig::ml_production(),
        &DspConfig::standards_based(),
    );
    println!("\nbring-up against a previous-generation peer:");
    for e in &bring.events {
        println!("  t+{:<12} → {:?}", e.at.to_string(), e.entered);
    }
    println!(
        "negotiated rate: {:?} in {}",
        bring.negotiated_rate.expect("came up"),
        t
    );
}
