//! Causal-trace postmortem: a fault mid-reconfiguration, replayed.
//!
//! ```text
//! cargo run --release --example trace_postmortem [-- --out-dir DIR]
//! ```
//!
//! Runs the instrumented §4.2.2 fault-recovery scenario: a 1024-chip job
//! placed on the fabric, a cube failure recovered by recomposing onto a
//! spare — and, mid-reconfiguration, both PSUs on one OCS die. Two
//! artifacts land in `--out-dir` (default `target/trace`):
//!
//! - `trace.json` — the full Chrome trace-event timeline. Open it at
//!   <https://ui.perfetto.dev>: switches, pods, and virtual workers are
//!   named lanes; drain → settle → verify → undrain chains render as
//!   flow arrows.
//! - `flight.jsonl` — the flight recorder's postmortem bundle, dumped
//!   the moment the chassis-down incident went Critical.
//!
//! Both files are validated in-process before the run reports success,
//! and both are byte-identical at any `LIGHTWAVE_THREADS`.

use lightwave::prelude::*;
use lightwave::run_traced_fault_recovery;
use lightwave::trace::to_chrome_trace;
use lightwave::trace::validate::{validate_chrome_trace, validate_flight_jsonl};
use std::path::PathBuf;

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/trace"))
}

fn main() {
    println!("=== reconfiguration postmortem, traced ===\n");
    let dir = out_dir();
    std::fs::create_dir_all(&dir).expect("create output directory");

    let pool = Pool::from_env();
    println!(
        "running the fault-recovery scenario ({} workers)...",
        pool.threads()
    );
    let out = run_traced_fault_recovery(11, &pool);

    println!(
        "  {} spans, {} instants on {} lanes",
        out.tracer.spans().len(),
        out.tracer.instants().len(),
        out.tracer.lanes().len()
    );
    println!(
        "  {} alarm(s) ingested, {} incident(s), Critical dumped: {:?}",
        out.telemetry.alarms.ingested(),
        out.telemetry.alarms.incidents().len(),
        out.dumped
    );
    assert!(
        !out.dumped.is_empty(),
        "the chassis-down Critical must trigger a flight dump"
    );

    // The Perfetto timeline.
    let trace = to_chrome_trace(&out.tracer);
    let stats = validate_chrome_trace(&trace).expect("export validates");
    let trace_path = dir.join("trace.json");
    std::fs::write(&trace_path, &trace).expect("write trace.json");
    println!(
        "\nwrote {} ({} events: {} spans, {} flows, {} instants)",
        trace_path.display(),
        stats.total(),
        stats.complete,
        stats.flows,
        stats.instants
    );

    // The flight-recorder postmortem bundle.
    let dump = out.recorder.latest_dump().expect("dump taken");
    let jsonl = dump.to_jsonl();
    let lines = validate_flight_jsonl(&jsonl).expect("bundle parses");
    let flight_path = dir.join("flight.jsonl");
    std::fs::write(&flight_path, &jsonl).expect("write flight.jsonl");
    println!(
        "wrote {} (incident {}, {} entries, {} JSONL lines)",
        flight_path.display(),
        dump.incident,
        dump.entries.len(),
        lines
    );

    println!("\nopen the timeline: https://ui.perfetto.dev → Open trace file → trace.json");
}
