//! Campus topology engineering across service lifecycles (§1, §6).
//!
//! ```text
//! cargo run --release --example campus_lifecycle
//! ```
//!
//! Services turn up and down across a 12-cluster campus; each epoch the
//! OCS layer is re-engineered for the live demand with minimal
//! disturbance, and the tracking topology is compared to the static
//! uniform mesh a non-reconfigurable plant would be stuck with.

use lightwave::dcn::campus::CampusSim;

fn main() {
    println!("=== campus service-lifecycle topology engineering ===\n");
    let sim = CampusSim::default_campus();
    println!(
        "{} clusters, {} uplinks each, {:.0}G trunks, {:.0}G background demand per pair\n",
        sim.clusters, sim.uplinks, sim.trunk_gbps, sim.background_gbps
    );

    let report = sim.run(24, 42);
    println!("epoch | services | TE Gb/s | static Gb/s | moved | kept");
    for e in &report.epochs {
        println!(
            "{:>5} | {:>8} | {:>7.0} | {:>11.0} | {:>5} | {:>4}",
            e.epoch,
            e.services,
            e.engineered_gbps,
            e.static_gbps,
            e.circuits_moved,
            e.circuits_preserved
        );
    }
    println!(
        "\naggregate: tracking TE carried {:.1}% more traffic than the static mesh",
        (report.aggregate_gain() - 1.0) * 100.0
    );
    println!(
        "churn: {:.0}% of trunk-circuits preserved across each reconfiguration",
        report.mean_preserved_fraction() * 100.0
    );
    println!(
        "\n(the preserved circuits never blinked: topology engineering on a live
campus is a sequence of minimal-delta OCS transactions, not forklifts)"
    );
}
