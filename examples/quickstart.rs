//! Quickstart: build a superpod, carve a slice, run a collective.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Walks the three core moves of a lightwave fabric: compose a slice on
//! live OCSes, watch the mirrors settle, and cost a collective on the
//! resulting torus.

use lightwave::prelude::*;
use lightwave::superpod::collective::{torus_all_reduce, IciParams};

fn main() {
    println!("=== lightwave quickstart ===\n");

    // A 4096-TPU superpod: 64 racks of 64 chips on a 48-OCS fabric.
    let mut pod = MlPod::new(42);
    println!(
        "pod up: {} idle cubes, {} OCSes, fabric drawing {:.0} W",
        pod.pod.idle_cubes().len(),
        pod.pod.fabric().fleet.len(),
        pod.pod.fabric().fleet.health().power_w
    );

    // Carve a 512-chip slice shaped for a 35B LLM. The optimizer picks
    // the shape; the pod picks cubes; the controller programs 48 switches.
    let placement = pod
        .place_model(&LlmConfig::llm0(), 512)
        .expect("an empty pod fits 8 cubes");
    let [a, b, c] = placement.plan.shape.chips;
    println!(
        "\nplaced {} on a {a}x{b}x{c} slice (mapping tp={} pp={} dp={}), \
         predicted speedup {:.2}x over a symmetric slice",
        LlmConfig::llm0().name,
        placement.plan.step.mapping.tp,
        placement.plan.step.mapping.pp,
        placement.plan.step.mapping.dp,
        placement.plan.speedup_vs_baseline
    );

    // MEMS mirrors take milliseconds to settle; transceivers re-acquire.
    println!(
        "fabric reconfiguring... traffic ready at t = {}",
        placement.traffic_ready_at
    );
    pod.advance(Nanos::from_millis(300));
    assert!(pod.pod.settled(), "all circuits aligned");
    println!(
        "fabric settled: {} circuits live",
        pod.pod.fabric().fleet.health().circuits
    );

    // Cost a gradient all-reduce on the slice's data-parallel rings.
    let ici = IciParams::tpu_v4();
    let grad_bytes = 2.0 * 35e9 / placement.plan.step.mapping.tp as f64;
    let dims = [b, c];
    let t = torus_all_reduce(grad_bytes, &dims, &ici);
    println!(
        "\ngradient all-reduce of {:.1} GB over the {b}x{c} data rings: {:.1} ms",
        grad_bytes / 1e9,
        t * 1e3
    );

    // Release: cubes return to the pool; no other slice blinks.
    pod.release(placement.handle).expect("slice exists");
    println!(
        "\nreleased; {} cubes idle again",
        pod.pod.idle_cubes().len()
    );
}
