//! Capacity planning under an availability target.
//!
//! ```text
//! cargo run --release --example availability_planner
//! ```
//!
//! The §4.2.2 math as a planning tool: given your fleet's server
//! availability and an overall system availability target, how many
//! slices of each size can you *promise*, and what does the OCS fabric's
//! reconfigurability buy over a static shuffle?

use lightwave::availability::{
    cube_availability, fabric_availability, reconfigurable_goodput, static_goodput, SYSTEM_TARGET,
};
use lightwave::prelude::*;
use lightwave::transceiver::ModuleFamily;

fn main() {
    println!("=== availability planning for a 4096-TPU pod ===\n");

    // How transceiver choice sets the fabric availability floor (Fig 15a).
    println!("fabric availability @ 99.9% per-OCS availability:");
    for fam in ModuleFamily::ALL {
        let n = fam.superpod_ocs_count();
        let f = fabric_availability(Availability::from_nines(3.0), n as u32);
        println!("  {fam:?}: {n} OCSes → {f}");
    }

    // Goodput planning table (Fig 15b).
    println!(
        "\ngoodput at a {:.0}% system target:",
        SYSTEM_TARGET * 100.0
    );
    println!("slice  | server avail | reconfigurable | static");
    for &chips in &[64usize, 256, 1024, 2048] {
        for &sa in &[0.99, 0.995, 0.999] {
            let ca = cube_availability(Availability::new(sa));
            let r = reconfigurable_goodput(chips / 64, ca, SYSTEM_TARGET);
            let s = static_goodput(chips / 64, ca, SYSTEM_TARGET);
            println!(
                "{chips:>6} | {:>11.1}% | {:>13.1}% | {:>5.1}%",
                sa * 100.0,
                r * 100.0,
                s * 100.0
            );
        }
    }

    // What that means in promised slices.
    let ca = cube_availability(Availability::from_nines(3.0));
    println!(
        "\nwith 99.9% servers: the reconfigurable pod promises {} concurrent 1024-chip \
         slices; a static pod promises {}",
        (reconfigurable_goodput(16, ca, SYSTEM_TARGET) * 64.0 / 16.0).round() as usize,
        (static_goodput(16, ca, SYSTEM_TARGET) * 64.0 / 16.0).round() as usize,
    );
}
