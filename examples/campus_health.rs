//! Campus-scale observability: hierarchical rollups, burn-rate SLO
//! alerting, and the queryable `campus_health.json` (DESIGN §6.9).
//!
//! ```text
//! cargo run --release --example campus_health            # 120k arrivals
//! cargo run --release --example campus_health -- --smoke # CI-sized
//! ```
//!
//! Three acts:
//!
//! 1. **The campus snapshot** — [`run_sharded_campus`] drives the
//!    open-loop service engine; every cell is one *pod* feeding the
//!    port → switch → pod → campus [`RollupTree`] and its error-budget
//!    ledger. The cluster-to-cluster TE layer ([`CampusSim`]) folds its
//!    per-epoch outcomes into the *same* tree, and the merged result is
//!    queried top-down — drill into a pod, a switch, the dominant
//!    metric per level — then written as `campus_health.json`. CI runs
//!    this example at `LIGHTWAVE_THREADS=1` and `=4` and `cmp`s the
//!    artifact byte for byte.
//! 2. **The determinism check** — an in-process 1-vs-4-thread replay:
//!    the snapshot JSON must be byte-identical (integer-exact
//!    aggregates, shard-order merges).
//! 3. **The burn-rate page** — a synthetic pod outage pushes both the
//!    fast and the slow window past 10× budget burn: the ledger pages
//!    *once* (pod + campus), repeats coalesce without escalation, and
//!    the burn/budget series export as Perfetto `ph:"C"` counter tracks
//!    in the validated `campus_burn_trace.json`.

use lightwave::dcn::campus::CampusSim;
use lightwave::par::Pool;
use lightwave::service::{run_sharded_campus, ServiceConfig};
use lightwave::telemetry::timeseries::{dequantize, SeriesConfig, SeriesStore};
use lightwave::telemetry::{BurnRateLedger, CampusHealthDoc, FleetTelemetry};
use lightwave::trace::validate::validate_chrome_trace;
use lightwave::trace::{to_chrome_trace_with_counters, Tracer};
use lightwave::units::Nanos;
use std::path::PathBuf;

/// Pod id the DCN topology-engineering layer reports under — far above
/// the service shard range, so the two producers never collide.
const DCN_POD: u32 = 1_000;

fn flag(name: &str) -> bool {
    std::env::args().any(|a| a == name)
}

fn out_dir() -> PathBuf {
    let args: Vec<String> = std::env::args().collect();
    let dir = args
        .iter()
        .position(|a| a == "--out-dir")
        .and_then(|i| args.get(i + 1))
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("target/campus"));
    std::fs::create_dir_all(&dir).expect("create output directory");
    dir
}

fn main() {
    let smoke = flag("--smoke");
    let dir = out_dir();
    let pool = Pool::from_env();
    let requests: u64 = if smoke { 8_000 } else { 120_000 };
    let epochs: usize = if smoke { 10 } else { 30 };

    // ── Act 1: the campus snapshot ───────────────────────────────────
    let cfg = ServiceConfig {
        requests,
        shard_size: 2_048,
        ..ServiceConfig::default()
    };
    println!(
        "act 1: {requests} arrivals across {} pods, {} worker thread(s)",
        (requests / cfg.shard_size).max(1),
        pool.threads()
    );
    let (report, mut obs, _) = run_sharded_campus(&pool, &cfg);
    let admitted: u64 = report.classes.iter().map(|c| c.admitted).sum();
    let blocked: u64 = report.classes.iter().map(|c| c.blocked).sum();
    println!(
        "  service: {} submitted, {} admitted, {} blocked",
        report.submitted, admitted, blocked
    );
    // The TE layer reports through the same plane (one pseudo-pod).
    let te = CampusSim::default_campus().run(epochs, 42);
    te.fold_into_rollup(&mut obs.rollup, DCN_POD, Nanos::from_secs_f64(60.0));
    println!(
        "  dcn: {epochs} TE epochs folded under pod {DCN_POD} (gain {:.2}x)",
        te.aggregate_gain()
    );

    let doc = obs.health_doc();
    obs.rollup.check_consistency().expect("rollup consistent");
    println!(
        "  campus: {} pods / {} leaf ports / {} metrics, dominant metric {:?}",
        doc.pods.len(),
        doc.ports,
        obs.rollup.metric_names().len(),
        doc.dominant_cause().unwrap_or("none"),
    );
    // Top-down drill: campus → pod → switch.
    let pod0 = doc.pod(0).expect("pod 0 present");
    let sw = pod0.switches.first().expect("pod 0 has switches");
    println!(
        "  drill: pod 0 dominant {:?}; switch {} dominant {:?}",
        pod0.node.dominant_cause, sw.switch, sw.node.dominant_cause
    );
    let te_pod = doc.pod(DCN_POD).expect("TE pseudo-pod present");
    let eng = te_pod
        .node
        .metric("te_engineered_gbps")
        .expect("TE throughput rolled up");
    println!(
        "  drill: pod {DCN_POD} saw {} TE samples, mean {:.0} Gb/s engineered",
        eng.count,
        dequantize(eng.mean_micros().unwrap_or(0))
    );
    let json = doc.to_json();
    let path = dir.join("campus_health.json");
    std::fs::write(&path, &json).expect("write campus_health.json");
    println!("  wrote {} ({} bytes)", path.display(), json.len());

    // ── Act 2: the determinism check ─────────────────────────────────
    let small = ServiceConfig {
        requests: 4_000,
        shard_size: 512,
        ..ServiceConfig::default()
    };
    let (r1, mut o1, _) = run_sharded_campus(&Pool::new(1), &small);
    let (r4, mut o4, _) = run_sharded_campus(&Pool::new(4), &small);
    assert_eq!(r1, r4, "thread count must not change the service report");
    let d1 = o1.health_doc().to_json();
    let d4 = o4.health_doc().to_json();
    assert_eq!(d1, d4, "thread count must not change campus_health.json");
    let parsed = CampusHealthDoc::from_json(&d1).expect("snapshot round-trips");
    assert_eq!(parsed.to_json(), d1, "parse → serialize is the identity");
    println!("act 2: 1-thread and 4-thread campus_health.json byte-identical");

    // ── Act 3: the burn-rate page ────────────────────────────────────
    // One pod suffers a 10-second outage: with a 200 ppm budget that is
    // >10x burn over BOTH the 300 s fast window and the 3600 s slow
    // window, so the multi-window condition pages — exactly once.
    let mut sink = FleetTelemetry::new();
    let mut ledger = BurnRateLedger::default();
    let mut store = SeriesStore::new(SeriesConfig::default());
    for pod in 0..4u32 {
        ledger.observe(Nanos(0), pod, true);
    }
    let t_down = Nanos::from_secs_f64(100.0);
    let t_up = Nanos::from_secs_f64(110.0);
    ledger.observe(t_down, 3, false);
    ledger.observe(t_up, 3, true);
    ledger.record_series(&mut store, t_down);
    let fired = ledger.poll(&mut sink, t_up);
    assert!(fired.contains(&3), "the outage pod pages");
    ledger.record_series(&mut store, t_up);
    // Repeated polls while the condition holds must NOT re-page.
    for i in 1..=5u64 {
        let again = ledger.poll(&mut sink, t_up + Nanos::from_secs_f64(i as f64));
        assert!(again.is_empty(), "the page latch holds: no repeat pages");
    }
    let assessed = ledger.assess(t_up);
    println!(
        "act 3: pod-3 outage burned {} ms of budget — {} page(s), \
         fast burn {}x, budget remaining {:.1}%",
        assessed.pods[3].spent_nanos / 1_000_000,
        sink.alarms.pages(),
        assessed.pods[3].fast_burn_milli / 1000,
        assessed.campus.remaining_milli as f64 / 10.0
    );
    // Two hours later the windows have drained: the alert clears.
    let t_clear = t_up + Nanos::from_secs_f64(7_200.0);
    ledger.poll(&mut sink, t_clear);
    ledger.record_series(&mut store, t_clear);
    let cleared = ledger.assess(t_clear);
    assert!(!cleared.pods[3].alerting, "the alert clears after recovery");

    // The burn/budget series ride the standard counter-track export.
    let trace = to_chrome_trace_with_counters(&Tracer::new(7), &store.tracks());
    let stats = validate_chrome_trace(&trace).expect("burn-counter trace validates");
    let trace_path = dir.join("campus_burn_trace.json");
    std::fs::write(&trace_path, &trace).expect("write campus_burn_trace.json");
    println!(
        "  {} counter samples exported; validator accepts — wrote {}",
        stats.counters,
        trace_path.display()
    );
    println!("done: all acts passed");
}
