//! Fault recovery: the fabric reconfigures around failed hardware.
//!
//! ```text
//! cargo run --release --example fault_recovery
//! ```
//!
//! The availability half of §4.2.2, acted out: a running slice loses a
//! cube (host failures), the pod swaps in an idle spare cube and
//! recomposes — something a static fabric physically cannot do. Then an
//! OCS mirror fails mid-flight and is healed from on-die spares.

use lightwave::prelude::*;
use lightwave::superpod::instrument::trace_compose;
use lightwave::superpod::Slice;
use lightwave::trace::{to_chrome_trace, Lane, SpanKind};

fn main() {
    println!("=== fault recovery on a lightwave fabric ===\n");
    let mut pod = MlPod::new(11);
    let mut tracer = Tracer::new(11);

    // A 1024-chip job on 16 cubes.
    let (placement, place_span) = pod
        .place_model_traced(&mut tracer, None, &LlmConfig::llm1(), 1024)
        .expect("fits");
    pod.advance(Nanos::from_millis(300));
    let shape = placement.plan.shape;
    println!(
        "job running on {:?} ({} cubes), {} circuits live",
        shape.chips,
        shape.cube_count(),
        pod.pod.fabric().fleet.health().circuits
    );

    // --- Cube failure ----------------------------------------------------
    let victim = pod.pod.slice(placement.handle).expect("live").cubes[3];
    println!("\ncube {victim} loses a host — marking failed");
    pod.pod.mark_cube_failed(victim);
    let recovery = tracer.begin(
        Lane::Pod(0),
        None,
        pod.now(),
        SpanKind::FaultRecovery {
            what: "cube-swap".to_string(),
        },
    );
    tracer.link_follows(recovery, place_span);

    // Recompose on a spare: same shape, same cubes except the victim.
    let old = pod.pod.slice(placement.handle).expect("live").clone();
    let release_span = pod
        .release_traced(&mut tracer, Some(recovery), placement.handle)
        .expect("live");
    let spare = pod
        .pod
        .idle_cubes()
        .into_iter()
        .find(|c| !old.cubes.contains(c))
        .expect("the pod has spares");
    let cubes: Vec<_> = old
        .cubes
        .iter()
        .map(|&c| if c == victim { spare } else { c })
        .collect();
    let at = pod.now();
    let (h2, report) = pod
        .pod
        .compose(Slice::new(old.shape, cubes).expect("valid"))
        .expect("spare composition");
    let swap_span = trace_compose(
        &mut tracer,
        Some(recovery),
        0,
        at,
        old.shape.cube_count() as u32,
        &report,
    );
    tracer.link_follows(swap_span, release_span);
    tracer.end(recovery, report.traffic_ready_at.max(at));
    println!(
        "recomposed with spare cube {spare}: {} circuits re-wired, ready at {}",
        report.added, report.traffic_ready_at
    );
    pod.advance(Nanos::from_millis(300));
    assert!(pod.pod.settled());
    println!(
        "job running again on {} cubes — a static fabric would still be down",
        old.shape.cube_count()
    );

    // --- Mirror failure ---------------------------------------------------
    println!("\nMEMS mirror fails on OCS 5, north port {spare}...");
    let h_before = {
        let ocs = pod.pod.fabric_mut().fleet.get_mut(5).expect("exists");
        let spares_before = ocs.health().mirror_spares.0;
        ocs.fail_mirror(true, spare as u16);
        spares_before
    };
    pod.advance(Nanos::from_millis(300));
    let ocs = pod.pod.fabric().fleet.get(5).expect("exists");
    println!(
        "on-die spare swapped in ({} → {} spares left); circuit re-aligned: {}",
        h_before,
        ocs.health().mirror_spares.0,
        ocs.circuit_ready(spare as u16)
    );
    for alarm in ocs.telemetry().alarms() {
        println!("  telemetry alarm: {:?} [{:?}]", alarm.code, alarm.severity);
    }

    let _ = h2;

    // The whole recovery is on the trace timeline too.
    let trace = to_chrome_trace(&tracer);
    std::fs::create_dir_all("target/trace").expect("create output directory");
    std::fs::write("target/trace/fault_recovery_trace.json", &trace).expect("write trace");
    println!(
        "\nwrote target/trace/fault_recovery_trace.json ({} spans — open at ui.perfetto.dev)",
        tracer.spans().len()
    );

    println!("\ndone: both failures healed without touching other slices");
}
