//! Planned maintenance on a live fabric (§3.2.2 serviceability).
//!
//! ```text
//! cargo run --release --example planned_maintenance
//! ```
//!
//! An HV driver board on one OCS needs replacement. The workflow: plan
//! (blast radius + expected outage), notify (which slices feel it),
//! execute, verify recovery — without touching any other switch.

use lightwave::fabric::maintenance::{execute, plan_replacement};
use lightwave::ocs::chassis::FruKind;
use lightwave::prelude::*;
use lightwave::units::Nanos;

fn main() {
    println!("=== planned HV-driver replacement on a live pod ===\n");
    let mut pod = MlPod::new(17);
    let placement = pod.place_model(&LlmConfig::llm1(), 1024).expect("fits");
    pod.advance(Nanos::from_millis(400));
    println!(
        "pod running: slice {:?} live across {} circuits\n",
        placement.plan.shape.chips,
        pod.pod.fabric().fleet.health().circuits
    );

    // Plan the swap: OCS 5, chassis slot 6 (the first HV driver board).
    let plan = plan_replacement(&pod.pod.fabric().fleet, 5, 6).expect("valid target");
    println!(
        "plan: replace {:?} in slot {} of OCS {}\n  circuits that will blink: {:?}\n  expected outage each: {}",
        plan.kind, plan.slot, plan.ocs, plan.disturbed_circuits, plan.expected_outage
    );

    // Compare with a PSU swap — truly hitless.
    let psu = plan_replacement(&pod.pod.fabric().fleet, 5, 0).expect("valid target");
    assert_eq!(psu.kind, FruKind::PowerSupply);
    println!(
        "\n(for contrast, a PSU swap on the same switch disturbs {} circuits)",
        psu.disturbed_circuits.len()
    );

    // Execute and verify.
    println!("\nexecuting...");
    execute(&mut pod.pod.fabric_mut().fleet, &plan).expect("executes");
    let still_dark: Vec<_> = plan
        .disturbed_circuits
        .iter()
        .filter(|&&n| !pod.pod.fabric().fleet.get(5).unwrap().circuit_ready(n))
        .collect();
    println!(
        "  immediately after: {} of {} disturbed circuits re-aligning",
        still_dark.len(),
        plan.disturbed_circuits.len()
    );
    pod.advance(Nanos::from_millis(400));
    let recovered = plan
        .disturbed_circuits
        .iter()
        .all(|&n| pod.pod.fabric().fleet.get(5).unwrap().circuit_ready(n));
    println!("  after mirror settle + bring-up: all recovered = {recovered}");

    // The rest of the fleet never noticed.
    let health = pod.pod.fabric().fleet.health();
    println!(
        "\nfleet: {} switches operational, {} circuits live, {} pending",
        health.operational, health.circuits, health.pending
    );
    assert!(pod.pod.settled());
}
