//! Deterministic parallel sweeps on the `lightwave-par` engine.
//!
//! ```text
//! cargo run --release --example parallel_sweep
//! LIGHTWAVE_THREADS=4 cargo run --release --example parallel_sweep
//! ```
//!
//! Runs the two evaluation-scale Monte-Carlo workloads — receiver BER
//! vs power (Fig. 11) and pool availability (Fig. 15) — on a worker
//! pool, then re-runs the BER point on a single worker to demonstrate
//! the engine's contract: **thread count is a throughput knob, never a
//! results knob**. Engine utilization lands in the same `FleetTelemetry`
//! sink the rest of the fleet reports into.

use lightwave::availability::{
    cube_availability, monte_carlo_pool_availability_with_pool, POOL_SHARD_TRIALS,
};
use lightwave::optics::ber::{mpi_db, Pam4Receiver};
use lightwave::optics::montecarlo::simulate_ber_with_pool;
use lightwave::par::{Pool, THREADS_ENV};
use lightwave::telemetry::FleetTelemetry;
use lightwave::units::{Availability, Dbm, Nanos};

fn main() {
    let pool = Pool::from_env();
    println!(
        "pool: {} worker(s) ({}={})\n",
        pool.threads(),
        THREADS_ENV,
        std::env::var(THREADS_ENV).unwrap_or_else(|_| "unset".into())
    );

    let mut sink = FleetTelemetry::new();
    let mut tick_ms = 1u64;

    // ── BER vs received power, 2²⁰ symbols per point ──────────────────
    let rx = Pam4Receiver::cwdm4_50g();
    let symbols = 1u64 << 20;
    println!("PAM4 BER vs power (MPI −30 dB, {symbols} symbols/point):");
    for tenth_dbm in (-150i32..=-120).step_by(10) {
        let p = Dbm(f64::from(tenth_dbm) / 10.0);
        let (r, stats) = simulate_ber_with_pool(&pool, &rx, p, mpi_db(-30.0), None, symbols, 42);
        let at = Nanos::from_millis(tick_ms);
        let g = sink
            .metrics
            .gauge("sweep_ber", &[("dbm", &format!("{}", p.0))]);
        sink.metrics.set(g, at, r.ber.0);
        stats.record_into(&mut sink.metrics, at);
        println!(
            "  {:>6.1} dBm: BER {:.3e}  ({} shards, utilization {:.0}%)",
            p.0,
            r.ber.0,
            stats.shards,
            stats.utilization() * 100.0
        );
        tick_ms += 1;
    }

    // ── Pool availability, Fig. 15 machinery ──────────────────────────
    let trials = POOL_SHARD_TRIALS * 16;
    let ca = cube_availability(Availability::new(0.999));
    let est = monte_carlo_pool_availability_with_pool(&pool, ca, 48, trials, 7);
    let g = sink
        .metrics
        .gauge("sweep_pool_availability", &[("need", "48")]);
    sink.metrics.set(g, Nanos::from_millis(tick_ms), est);
    println!("\npool availability (48-of-64 cubes, {trials} trials): {est:.4}");

    // ── The contract, demonstrated ────────────────────────────────────
    let one = Pool::new(1);
    let (serial, _) =
        simulate_ber_with_pool(&one, &rx, Dbm(-13.0), mpi_db(-30.0), None, symbols, 42);
    let (pooled, _) =
        simulate_ber_with_pool(&pool, &rx, Dbm(-13.0), mpi_db(-30.0), None, symbols, 42);
    assert_eq!(serial, pooled);
    assert_eq!(serial.ber.0.to_bits(), pooled.ber.0.to_bits());
    println!(
        "\n1 worker vs {}: identical bits (errors {}, BER {:.3e}) — \
         thread count never changes results",
        pool.threads(),
        pooled.errors,
        pooled.ber.0
    );

    println!(
        "\ntelemetry sink now holds {} metric series (incl. engine utilization)",
        sink.metrics.len()
    );
}
