//! Collection strategies: `vec` and `btree_set`.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::RngExt;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// A collection size specification (half-open or inclusive range, or exact).
///
/// Taking `impl Into<SizeRange>` (rather than a generic strategy) is what
/// lets bare `0..16` literals infer `usize`, exactly as with real proptest.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(self, rng: &mut StdRng) -> usize {
        rng.random_range(self.lo..=self.hi)
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty collection size range {r:?}");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { lo: n, hi: n }
    }
}

/// A `Vec` strategy: a size drawn from the size range, then that many
/// elements.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample_value(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample_value(rng)).collect()
    }
}

/// Vectors of `element` values with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// A `BTreeSet` strategy; duplicate draws shrink the set below the drawn
/// size, matching real proptest's best-effort behavior on small domains.
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn sample_value(&self, rng: &mut StdRng) -> BTreeSet<S::Value> {
        let n = self.size.sample(rng);
        (0..n).map(|_| self.element.sample_value(rng)).collect()
    }
}

/// Ordered sets of `element` values with up to `size`-drawn elements.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}
