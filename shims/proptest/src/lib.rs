//! Offline stand-in for `proptest`.
//!
//! Implements the subset of proptest this workspace's property tests use:
//! the `proptest!` macro (with optional `#![proptest_config(...)]`), range
//! and tuple strategies, `Just`, `any::<T>()`, `prop_oneof!`, `prop_map`,
//! `collection::{vec, btree_set}`, and the `prop_assert*` / `prop_assume!`
//! macros.
//!
//! Differences from real proptest, deliberate for an offline shim:
//! - **No shrinking.** A failing case reports its inputs (via the values'
//!   `Debug` where the test message includes them) but is not minimized.
//! - **Deterministic case seeds.** Case `i` of every property runs with an
//!   RNG seeded from `i`, so failures reproduce exactly across runs and
//!   machines with no persistence file.
//! - Rejection via `prop_assume!` skips the case rather than resampling.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, RngExt, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

pub mod collection;
pub mod sample;

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Per-`proptest!`-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config with the given case count.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A failed (or skipped) test case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The property was falsified.
    Fail(String),
    /// The case did not meet a `prop_assume!` precondition.
    Reject,
}

impl TestCaseError {
    /// A falsification with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => f.write_str(m),
            TestCaseError::Reject => f.write_str("case rejected by prop_assume!"),
        }
    }
}

/// Builds the deterministic RNG for one case of one property.
pub fn case_rng(case: u32) -> StdRng {
    // Spread the low case indices across the seed space.
    StdRng::seed_from_u64((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xC0FF_EE11)
}

/// A generator of test inputs.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { strategy: self, f }
    }
}

/// The output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample_value(&self, rng: &mut StdRng) -> U {
        (self.f)(self.strategy.sample_value(rng))
    }
}

/// A strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample_value(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample_value(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// A type with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut StdRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut StdRng) -> bool {
        rng.random()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut StdRng) -> $t {
                rng.random()
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, f32, f64);

/// The strategy returned by [`any`].
pub struct AnyStrategy<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for any [`Arbitrary`] type.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: std::marker::PhantomData,
    }
}

/// Object-safe strategy view, used by [`Union`] / `prop_oneof!`.
pub trait DynStrategy<V> {
    /// Draws one value through the trait object.
    fn sample_dyn(&self, rng: &mut StdRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut StdRng) -> S::Value {
        self.sample_value(rng)
    }
}

/// A uniform choice among heterogeneous strategies with one value type.
pub struct Union<V> {
    arms: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V> Union<V> {
    /// Builds a union; `arms` must be non-empty.
    pub fn new(arms: Vec<Box<dyn DynStrategy<V>>>) -> Union<V> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;

    fn sample_value(&self, rng: &mut StdRng) -> V {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].sample_dyn(rng)
    }
}

/// Runs one property over `config.cases` deterministic cases, panicking on
/// the first falsified case. Called by the expansion of [`proptest!`].
pub fn run_property<F>(name: &str, config: &ProptestConfig, mut case: F)
where
    F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
{
    for i in 0..config.cases {
        let mut rng = case_rng(i);
        match case(&mut rng) {
            Ok(()) | Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!("property `{name}` falsified at deterministic case {i}: {msg}");
            }
        }
    }
}

/// Declares property tests over sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal recursion for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_property(stringify!($name), &__config, |__rng| {
                $(let $arg = $crate::Strategy::sample_value(&($strategy), __rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

/// Asserts a condition inside a property, falsifying the case on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __l, __r
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "{}\n  both: {:?}", format!($($fmt)+), __l);
    }};
}

/// Skips the case when a precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(::std::boxed::Box::new($arm) as ::std::boxed::Box<dyn $crate::DynStrategy<_>>),+])
    };
}
