//! Sampling strategies over fixed candidate sets.

use crate::Strategy;
use rand::rngs::StdRng;
use rand::RngCore;

/// A uniform choice among a fixed list of values.
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn sample_value(&self, rng: &mut StdRng) -> T {
        let idx = (rng.next_u64() % self.options.len() as u64) as usize;
        self.options[idx].clone()
    }
}

/// Uniformly selects one of `options`; must be non-empty.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select() needs at least one option");
    Select { options }
}
