//! Offline stand-in for `rand_distr`: the Normal, LogNormal and Exp
//! distributions this workspace samples, over the `rand` shim.
//!
//! Normal sampling uses Box–Muller (two uniform draws per sample, one
//! cached), which is deterministic per generator stream — the property the
//! workspace actually depends on. Tail quality is more than sufficient for
//! the Monte-Carlo models here.

#![forbid(unsafe_code)]

use rand::RngCore;
use std::f64::consts::TAU;
use std::fmt;

/// A parameter error from a distribution constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Error {
    /// A scale/shape parameter was not finite and positive.
    BadParam,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("invalid distribution parameter")
    }
}

impl std::error::Error for Error {}

/// A distribution sampleable with any generator.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The normal (Gaussian) distribution N(mean, std_dev²).
///
/// Generic like rand_distr's (`Normal<f64>` in signatures works), but only
/// the `f64` instantiation is implemented.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal<F = f64> {
    mean: F,
    std_dev: F,
}

impl Normal<f64> {
    /// Creates a normal distribution.
    ///
    /// Matches rand_distr: `std_dev` must be finite and non-negative
    /// (zero yields a point mass at `mean`).
    pub fn new(mean: f64, std_dev: f64) -> Result<Normal<f64>, Error> {
        if !(mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0) {
            return Err(Error::BadParam);
        }
        Ok(Normal { mean, std_dev })
    }
}

impl Normal<f64> {
    /// The distribution mean (matches rand_distr's accessor).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// The distribution standard deviation (matches rand_distr's accessor).
    pub fn std_dev(&self) -> f64 {
        self.std_dev
    }
}

impl Distribution<f64> for Normal<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * standard_normal(rng)
    }
}

/// One standard-normal draw via Box–Muller (cosine branch only, so each
/// sample consumes exactly two u64s — simple and stream-stable).
fn standard_normal<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    standard_normal_from_bits(rng.next_u64(), rng.next_u64())
}

/// The exact Box–Muller mapping from two raw u64 draws to one standard
/// normal. Public so that batched samplers can draw raw bits in blocks and
/// still land on the identical float every [`Normal::sample`] would have
/// produced from the same stream position — the single source of truth for
/// the bits→normal transform.
pub fn standard_normal_from_bits(b1: u64, b2: u64) -> f64 {
    // u1 in (0, 1] to keep ln() finite.
    let u1 = 1.0 - unit(b1);
    let u2 = unit(b2);
    (-2.0 * u1.ln()).sqrt() * (TAU * u2).cos()
}

fn unit(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The log-normal distribution: `exp(N(mu, sigma²))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    inner: Normal<f64>,
}

impl LogNormal {
    /// Creates a log-normal distribution with the given log-space parameters.
    pub fn new(mu: f64, sigma: f64) -> Result<LogNormal, Error> {
        Ok(LogNormal {
            inner: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        self.inner.sample(rng).exp()
    }
}

/// The exponential distribution with rate `lambda`.
///
/// Generic like rand_distr's; only the `f64` instantiation is implemented.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp<F = f64> {
    lambda: F,
}

impl Exp<f64> {
    /// Creates an exponential distribution with rate `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Exp<f64>, Error> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(Error::BadParam);
        }
        Ok(Exp { lambda })
    }
}

impl Distribution<f64> for Exp<f64> {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        let u = 1.0 - unit(rng.next_u64()); // (0, 1]
        -u.ln() / self.lambda
    }
}
