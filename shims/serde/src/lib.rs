//! Offline stand-in for the `serde` crate.
//!
//! The build container for this workspace has no access to crates.io, so the
//! workspace vendors the *subset* of serde's API it actually uses. Instead of
//! serde's visitor-driven zero-copy architecture, this shim round-trips every
//! value through an owned [`Content`] tree: `Serialize` lowers a value into a
//! `Content`, `Deserialize` rebuilds a value from one, and format crates (see
//! the sibling `serde_json` shim) only ever translate `Content` to and from
//! text. That is slower than real serde but semantically equivalent for the
//! self-describing, owned types this workspace serializes.
//!
//! Supported surface:
//! - `#[derive(Serialize, Deserialize)]` on non-generic structs and enums
//!   (named, tuple and unit shapes; externally-tagged enums, like serde).
//! - `#[serde(with = "module")]` field attribute.
//! - Manual impls written against `Serializer`/`Deserializer` as long as they
//!   only forward to existing `Serialize`/`Deserialize` impls (the
//!   `serialize`/`deserialize` entry points and associated `Ok`/`Error` types
//!   match real serde's signatures).

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;
use std::hash::Hash;

pub mod de;
pub mod ser;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

pub use crate::de::{DeError, Deserialize, Deserializer};
pub use crate::ser::{Serialize, Serializer};

/// An owned, self-describing serialization tree — the shim's data model.
///
/// Every serializable value lowers to exactly one `Content`; formats render
/// `Content` without ever seeing the original type.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null` / `None` / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// An unsigned integer (all unsigned widths ≤ 64 bits).
    U64(u64),
    /// A signed integer (all signed widths ≤ 64 bits).
    I64(i64),
    /// A 128-bit unsigned integer.
    U128(u128),
    /// A 128-bit signed integer.
    I128(i128),
    /// A floating-point number.
    F64(f64),
    /// A string (also: chars, unit enum variants).
    Str(String),
    /// A sequence (vectors, slices, arrays, tuples, tuple variants).
    Seq(Vec<Content>),
    /// A map (maps, structs, struct variants, externally-tagged payloads).
    /// Entry order is preserved; struct keys are `Content::Str`.
    Map(Vec<(Content, Content)>),
}

impl Content {
    /// Looks up a struct field / string-keyed map entry.
    pub fn field(&self, key: &str) -> Option<&Content> {
        match self {
            Content::Map(entries) => entries.iter().find_map(|(k, v)| match k {
                Content::Str(s) if s == key => Some(v),
                _ => None,
            }),
            _ => None,
        }
    }

    /// The entry list of a map, or an error naming `what`.
    pub fn as_map(&self, what: &str) -> Result<&[(Content, Content)], DeError> {
        match self {
            Content::Map(entries) => Ok(entries),
            other => Err(DeError::unexpected(what, "map", other)),
        }
    }

    /// The element list of a sequence, or an error naming `what`.
    pub fn as_seq(&self, what: &str) -> Result<&[Content], DeError> {
        match self {
            Content::Seq(items) => Ok(items),
            other => Err(DeError::unexpected(what, "sequence", other)),
        }
    }

    /// The string payload, or an error naming `what`.
    pub fn as_str(&self, what: &str) -> Result<&str, DeError> {
        match self {
            Content::Str(s) => Ok(s),
            other => Err(DeError::unexpected(what, "string", other)),
        }
    }

    /// A short description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "bool",
            Content::U64(_) | Content::I64(_) | Content::U128(_) | Content::I128(_) => "integer",
            Content::F64(_) => "float",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}

/// An error type that can never occur (used by [`ContentSerializer`]).
#[derive(Debug)]
pub enum Never {}

impl fmt::Display for Never {
    fn fmt(&self, _f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {}
    }
}

/// A [`Serializer`] whose output *is* the content tree.
///
/// This is what derived code hands to `#[serde(with = "...")]` modules.
pub struct ContentSerializer;

impl Serializer for ContentSerializer {
    type Ok = Content;
    type Error = Never;

    fn serialize_content(self, content: Content) -> Result<Content, Never> {
        Ok(content)
    }
}

/// A [`Deserializer`] over an owned content tree.
///
/// This is what derived code hands to `#[serde(with = "...")]` modules.
pub struct ContentDeserializer(pub Content);

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = DeError;

    fn take_content(self) -> Result<Content, DeError> {
        Ok(self.0)
    }
}

/// Lowers any serializable value to its content tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
    value.to_content()
}

/// Runs a `#[serde(with = "...")]`-style serialize fn against the content
/// serializer, unwrapping the impossible error.
pub fn content_from_with<F>(f: F) -> Content
where
    F: FnOnce(ContentSerializer) -> Result<Content, Never>,
{
    match f(ContentSerializer) {
        Ok(content) => content,
        Err(never) => match never {},
    }
}

// ---------------------------------------------------------------------------
// Serialize / Deserialize impls for std types
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::U64(*self as u64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let n = content.to_u128(stringify!($t))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content { Content::I64(*self as i64) }
        }
        impl<'de> Deserialize<'de> for $t {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let n = content.to_i128(stringify!($t))?;
                <$t>::try_from(n).map_err(|_| DeError::custom(format!(
                    "integer {n} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for u128 {
    fn to_content(&self) -> Content {
        Content::U128(*self)
    }
}

impl<'de> Deserialize<'de> for u128 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content.to_u128("u128")
    }
}

impl Serialize for i128 {
    fn to_content(&self) -> Content {
        Content::I128(*self)
    }
}

impl<'de> Deserialize<'de> for i128 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content.to_i128("i128")
    }
}

impl Content {
    fn to_u128(&self, what: &str) -> Result<u128, DeError> {
        match *self {
            Content::U64(n) => Ok(n as u128),
            Content::U128(n) => Ok(n),
            Content::I64(n) if n >= 0 => Ok(n as u128),
            Content::I128(n) if n >= 0 => Ok(n as u128),
            Content::F64(f) if f >= 0.0 && f.fract() == 0.0 && f <= u128::MAX as f64 => {
                Ok(f as u128)
            }
            // JSON object keys arrive as strings; integer map keys parse back.
            Content::Str(ref s) => s
                .parse::<u128>()
                .map_err(|_| DeError::unexpected(what, "integer", self)),
            _ => Err(DeError::unexpected(what, "integer", self)),
        }
    }

    fn to_i128(&self, what: &str) -> Result<i128, DeError> {
        match *self {
            Content::U64(n) => Ok(n as i128),
            Content::I64(n) => Ok(n as i128),
            Content::I128(n) => Ok(n),
            Content::U128(n) => {
                i128::try_from(n).map_err(|_| DeError::unexpected(what, "integer", self))
            }
            Content::F64(f) if f.fract() == 0.0 && f.abs() <= i128::MAX as f64 => Ok(f as i128),
            Content::Str(ref s) => s
                .parse::<i128>()
                .map_err(|_| DeError::unexpected(what, "integer", self)),
            _ => Err(DeError::unexpected(what, "integer", self)),
        }
    }

    fn to_f64(&self, what: &str) -> Result<f64, DeError> {
        match *self {
            Content::F64(f) => Ok(f),
            Content::U64(n) => Ok(n as f64),
            Content::I64(n) => Ok(n as f64),
            Content::U128(n) => Ok(n as f64),
            Content::I128(n) => Ok(n as f64),
            _ => Err(DeError::unexpected(what, "number", self)),
        }
    }
}

impl Serialize for f64 {
    fn to_content(&self) -> Content {
        Content::F64(*self)
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content.to_f64("f64")
    }
}

impl Serialize for f32 {
    fn to_content(&self) -> Content {
        Content::F64(*self as f64)
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content.to_f64("f32").map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Bool(b) => Ok(*b),
            other => Err(DeError::unexpected("bool", "bool", other)),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl<'de> Deserialize<'de> for char {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let s = content.as_str("char")?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom(format!("expected single char, got {s:?}"))),
        }
    }
}

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl<'de> Deserialize<'de> for String {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content.as_str("String").map(str::to_owned)
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_owned())
    }
}

impl<'de> Deserialize<'de> for &'static str {
    /// Real serde deserializes `&'static str` fields only when the input
    /// itself is `'static`; this owned-tree shim cannot borrow, so it leaks
    /// the (small, interned-name-sized) string instead. Only paid when such
    /// a field is actually parsed.
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_str("&str")
            .map(|s| &*Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        T::from_content(content).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content.as_seq("Vec")?.iter().map(T::from_content).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_content(&self) -> Content {
        self.as_slice().to_content()
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        let items = content.as_seq("array")?;
        if items.len() != N {
            return Err(DeError::custom(format!(
                "expected array of length {N}, got {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items
            .iter()
            .map(T::from_content)
            .collect::<Result<_, _>>()?;
        parsed
            .try_into()
            .map_err(|_| DeError::custom("array length mismatch"))
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl<'de> Deserialize<'de> for () {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        match content {
            Content::Null => Ok(()),
            other => Err(DeError::unexpected("unit", "null", other)),
        }
    }
}

macro_rules! impl_tuple {
    ($($idx:tt : $t:ident),+) => {
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }
        impl<'de, $($t: Deserialize<'de>),+> Deserialize<'de> for ($($t,)+) {
            fn from_content(content: &Content) -> Result<Self, DeError> {
                let items = content.as_seq("tuple")?;
                let expected = [$(stringify!($t)),+].len();
                if items.len() != expected {
                    return Err(DeError::custom(format!(
                        "expected tuple of length {expected}, got {}", items.len())));
                }
                Ok(($($t::from_content(&items[$idx])?,)+))
            }
        }
    };
}

impl_tuple!(0: A);
impl_tuple!(0: A, 1: B);
impl_tuple!(0: A, 1: B, 2: C);
impl_tuple!(0: A, 1: B, 2: C, 3: D);
impl_tuple!(0: A, 1: B, 2: C, 3: D, 4: E);
impl_tuple!(0: A, 1: B, 2: C, 3: D, 4: E, 5: F);

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map("BTreeMap")?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_content(&self) -> Content {
        // Deterministic export order even from a randomized-layout map.
        let mut entries: Vec<(Content, Content)> = self
            .iter()
            .map(|(k, v)| (k.to_content(), v.to_content()))
            .collect();
        entries.sort_by_key(|a| content_sort_key(&a.0));
        Content::Map(entries)
    }
}

impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_map("HashMap")?
            .iter()
            .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
            .collect()
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq("BTreeSet")?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_content(&self) -> Content {
        let mut items: Vec<Content> = self.iter().map(Serialize::to_content).collect();
        items.sort_by_key(content_sort_key);
        Content::Seq(items)
    }
}

impl<'de, T: Deserialize<'de> + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn from_content(content: &Content) -> Result<Self, DeError> {
        content
            .as_seq("HashSet")?
            .iter()
            .map(T::from_content)
            .collect()
    }
}

/// A total order over content trees used to canonicalize hash-based
/// collections (debug formatting is stable and order-preserving).
fn content_sort_key(c: &Content) -> String {
    format!("{c:?}")
}
