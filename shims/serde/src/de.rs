//! Deserialization half of the shim: [`Deserialize`], [`Deserializer`],
//! [`DeError`] and the [`DeserializeOwned`] marker.

use crate::Content;
use std::fmt;

/// The shim's uniform deserialization error: a message string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// An arbitrary-message error (serde's `de::Error::custom`).
    pub fn custom<T: fmt::Display>(msg: T) -> DeError {
        DeError(msg.to_string())
    }

    /// "expected X while deserializing Y, found Z".
    pub fn unexpected(what: &str, expected: &str, found: &Content) -> DeError {
        DeError(format!(
            "invalid type deserializing {what}: expected {expected}, found {}",
            found.kind()
        ))
    }

    /// A struct field was absent.
    pub fn missing_field(ty: &str, field: &str) -> DeError {
        DeError(format!("missing field `{field}` while deserializing {ty}"))
    }

    /// An enum variant name was not recognized.
    pub fn unknown_variant(ty: &str, variant: &str) -> DeError {
        DeError(format!("unknown variant `{variant}` for enum {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Serde's `de::Error`: constructible from any message.
pub trait Error: Sized {
    /// Builds the error from an arbitrary message.
    fn custom<T: fmt::Display>(msg: T) -> Self;
}

impl Error for DeError {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        DeError::custom(msg)
    }
}

/// A source of one owned [`Content`] tree.
pub trait Deserializer<'de>: Sized {
    /// Error produced by the deserializer.
    type Error: Error;

    /// Consumes the deserializer, yielding its content tree.
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// A value reconstructible from a [`Content`] tree.
pub trait Deserialize<'de>: Sized {
    /// Rebuilds the value from the shim's data model.
    fn from_content(content: &Content) -> Result<Self, DeError>;

    /// Serde-compatible entry point.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let content = deserializer.take_content()?;
        Self::from_content(&content).map_err(<D::Error as Error>::custom)
    }
}

/// A value deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
