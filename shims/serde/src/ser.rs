//! Serialization half of the shim: [`Serialize`] and [`Serializer`].

use crate::Content;

/// A value that can lower itself into a [`Content`] tree.
///
/// Unlike real serde, the required method is [`Serialize::to_content`];
/// [`Serialize::serialize`] keeps serde's signature and is what manual
/// impls and `#[serde(with = "...")]` modules call.
pub trait Serialize {
    /// Lowers `self` to the shim's data model.
    fn to_content(&self) -> Content;

    /// Serde-compatible entry point: hands the lowered content to `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.to_content())
    }
}

/// A sink for a lowered [`Content`] tree.
///
/// Real serde drives serializers with ~30 `serialize_*` callbacks; this shim
/// collapses them into one, because every format in this workspace renders
/// from the self-describing tree anyway.
pub trait Serializer: Sized {
    /// Successful output of the serializer.
    type Ok;
    /// Error produced by the serializer.
    type Error;

    /// Consumes the content tree, producing the serializer's output.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}
