//! Offline stand-in for `serde_json`: renders and parses JSON text against
//! the content-tree `serde` shim.
//!
//! Formatting follows serde_json's observable conventions where they matter
//! to this workspace: floats always render with a decimal point or exponent
//! (so they re-parse as floats), integer map keys are quoted, `None` is
//! `null`, and `to_string` is deterministic for deterministic inputs — which
//! is what the telemetry determinism tests assert byte-for-byte.
//!
//! Float round-tripping relies on Rust's `{}` formatting of `f64`, which
//! prints the shortest string that parses back to the same bits (the same
//! guarantee serde_json's `float_roundtrip` feature provides).

#![forbid(unsafe_code)]

use serde::de::DeserializeOwned;
use serde::{Content, DeError, Serialize};
use std::fmt;

/// A JSON serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl fmt::Display) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error(e.0)
    }
}

/// A parse/serialize result.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out)?;
    Ok(out)
}

/// Serializes a value to human-indented JSON (2-space indent, like serde_json).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content_pretty(&value.to_content(), &mut out, 0)?;
    Ok(out)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let content = parse(s)?;
    Ok(T::from_content(&content)?)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String) -> Result<()> {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::U128(n) => out.push_str(&n.to_string()),
        Content::I128(n) => out.push_str(&n.to_string()),
        Content::F64(f) => write_f64(*f, out)?,
        Content::Str(s) => write_escaped(s, out),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_key(k, out)?;
                out.push(':');
                write_content(v, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_content_pretty(c: &Content, out: &mut String, depth: usize) -> Result<()> {
    match c {
        Content::Seq(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(out, depth + 1);
                write_content_pretty(item, out, depth + 1)?;
            }
            out.push('\n');
            push_indent(out, depth);
            out.push(']');
            Ok(())
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                out.push_str(if i > 0 { ",\n" } else { "\n" });
                push_indent(out, depth + 1);
                write_key(k, out)?;
                out.push_str(": ");
                write_content_pretty(v, out, depth + 1)?;
            }
            out.push('\n');
            push_indent(out, depth);
            out.push('}');
            Ok(())
        }
        other => write_content(other, out),
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_key(k: &Content, out: &mut String) -> Result<()> {
    match k {
        Content::Str(s) => {
            write_escaped(s, out);
            Ok(())
        }
        // serde_json quotes integer map keys.
        Content::U64(n) => {
            out.push('"');
            out.push_str(&n.to_string());
            out.push('"');
            Ok(())
        }
        Content::I64(n) => {
            out.push('"');
            out.push_str(&n.to_string());
            out.push('"');
            Ok(())
        }
        other => Err(Error::new(format!(
            "JSON map keys must be strings or integers, got {}",
            other.kind()
        ))),
    }
}

fn write_f64(f: f64, out: &mut String) -> Result<()> {
    if !f.is_finite() {
        return Err(Error::new("JSON cannot represent NaN or infinity"));
    }
    let s = f.to_string();
    out.push_str(&s);
    // Keep the float/integer distinction visible in the text, as serde_json
    // does, so values re-parse with the same type.
    if !s.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
    Ok(())
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Content> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected '{}' at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Content> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Content::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.string().map(Content::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                            self.pos += 4;
                        }
                        other => {
                            return Err(Error::new(format!("bad escape {other:?}")));
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("bad number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|e| Error::new(format!("bad float {text:?}: {e}")))
        } else if text.starts_with('-') {
            if let Ok(n) = text.parse::<i64>() {
                Ok(Content::I64(n))
            } else {
                text.parse::<i128>()
                    .map(Content::I128)
                    .map_err(|e| Error::new(format!("bad integer {text:?}: {e}")))
            }
        } else if let Ok(n) = text.parse::<u64>() {
            Ok(Content::U64(n))
        } else {
            text.parse::<u128>()
                .map(Content::U128)
                .map_err(|e| Error::new(format!("bad integer {text:?}: {e}")))
        }
    }
}
