//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock micro-benchmark harness exposing the criterion API
//! subset this workspace's benches use: `Criterion::{bench_function,
//! benchmark_group}`, `Bencher::{iter, iter_batched}`, `Throughput`,
//! `BatchSize`, and the `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs a fixed
//! number of timed batches and reports the median per-iteration time (plus
//! derived throughput when declared). `cargo bench -- --test` runs each
//! routine once, exactly like criterion's test mode, which is what CI's
//! bench-smoke step relies on.

use std::time::{Duration, Instant};

/// Re-export of the canonical optimization barrier; criterion's own
/// `black_box` has been this alias since Rust stabilized it.
pub use std::hint::black_box;

const WARMUP: Duration = Duration::from_millis(50);
const BATCHES: usize = 15;
const BATCH_TARGET: Duration = Duration::from_millis(20);

/// How batched-setup benchmarks trade setup cost against batch length.
/// The shim sizes batches by time, so variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Inputs are cheap; large batches.
    SmallInput,
    /// Inputs are expensive; small batches.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
    /// The routine processes this many items per iteration.
    Elements(u64),
}

/// The top-level harness handle.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Benchmarks one routine under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into(), None, self.test_mode, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    test_mode: bool,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Accepted for criterion compatibility; the shim sizes runs by time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Benchmarks one routine under `group/id`.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_one(&full, self.throughput, self.test_mode, f);
        self
    }

    /// Ends the group (numbers are printed as benches run).
    pub fn finish(self) {}
}

/// The per-benchmark measurement driver handed to routines.
pub struct Bencher {
    test_mode: bool,
    /// (total duration, iterations) per timed batch.
    batches: Vec<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.test_mode {
            black_box(routine());
            self.batches.push((Duration::from_nanos(1), 1));
            return;
        }
        // Calibrate iterations per batch against the batch time target.
        let mut per_batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= WARMUP.min(BATCH_TARGET) || per_batch >= 1 << 24 {
                let scale = BATCH_TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
                per_batch = ((per_batch as f64 * scale).clamp(1.0, 1e8)) as u64;
                break;
            }
            per_batch *= 4;
        }
        for _ in 0..BATCHES {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(routine());
            }
            self.batches.push((start.elapsed(), per_batch));
        }
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup time
    /// (approximately: setup runs outside the timed region).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            self.batches.push((Duration::from_nanos(1), 1));
            return;
        }
        let per_batch = 64u64;
        for _ in 0..BATCHES {
            let inputs: Vec<I> = (0..per_batch).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            self.batches.push((start.elapsed(), per_batch));
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    id: &str,
    throughput: Option<Throughput>,
    test_mode: bool,
    mut f: F,
) {
    let mut bencher = Bencher {
        test_mode,
        batches: Vec::new(),
    };
    f(&mut bencher);
    if test_mode {
        println!("test {id} ... ok");
        return;
    }
    let mut per_iter: Vec<f64> = bencher
        .batches
        .iter()
        .map(|(d, n)| d.as_secs_f64() / (*n).max(1) as f64)
        .collect();
    per_iter.sort_by(f64::total_cmp);
    let median = per_iter.get(per_iter.len() / 2).copied().unwrap_or(0.0);
    let rate = match throughput {
        Some(Throughput::Bytes(b)) if median > 0.0 => {
            format!("   {:>10.1} MiB/s", b as f64 / median / (1024.0 * 1024.0))
        }
        Some(Throughput::Elements(e)) if median > 0.0 => {
            format!("   {:>10.1} Melem/s", e as f64 / median / 1e6)
        }
        _ => String::new(),
    };
    println!("{id:<48} {:>12} ns/iter{rate}", format_ns(median * 1e9));
}

fn format_ns(ns: f64) -> String {
    if ns >= 100.0 {
        format!("{ns:.0}")
    } else {
        format!("{ns:.2}")
    }
}

/// Declares a group function running each target against one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
