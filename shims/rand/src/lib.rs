//! Offline stand-in for the `rand` crate (0.10 API surface).
//!
//! Provides exactly what this workspace calls: `StdRng::seed_from_u64`, and
//! the `RngExt` methods `random`, `random_range`, `random_bool`. The
//! generator is xoshiro256++ seeded through SplitMix64 — high-quality,
//! deterministic, and stable across platforms, which is what the workspace's
//! reproducibility rule (§6 of DESIGN.md) actually requires. The stream is
//! NOT bit-compatible with the real `rand::StdRng` (ChaCha12); all seeds in
//! this repository are interpreted relative to this generator.

#![forbid(unsafe_code)]

pub mod rngs {
    //! Concrete generator types.

    /// The workspace's standard deterministic generator (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    /// Alias: the "small" generator is the same xoshiro256++ here.
    pub type SmallRng = StdRng;
}

use rngs::StdRng;

/// A generator seedable from a `u64` (the only constructor this workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // SplitMix64 expansion, the canonical xoshiro seeding procedure.
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        StdRng {
            s: [next(), next(), next(), next()],
        }
    }
}

/// The raw-output interface of a generator.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        // xoshiro256++
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type uniformly sampleable from raw generator output (rand's
/// `StandardUniform` distribution, folded into a trait).
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for i128 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample_standard(rng) as i128
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64()) as f32
    }
}

/// Maps 64 random bits to a uniform f64 in `[0, 1)` with 53-bit precision.
pub(crate) fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A range argument accepted by [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range {:?}", self);
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u128;
                let draw = u128::sample_standard(rng) % span;
                (self.start as $wide).wrapping_add(draw as $wide) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty random_range {start}..={end}");
                let span = (end as $wide).wrapping_sub(start as $wide) as u128 + 1;
                if span == 0 {
                    // Full-width inclusive range of a 128-bit type.
                    return <$t as Standard>::sample_standard(rng);
                }
                let draw = u128::sample_standard(rng) % span;
                (start as $wide).wrapping_add(draw as $wide) as $t
            }
        }
    )*};
}

impl_range_int!(
    u8 => u128, u16 => u128, u32 => u128, u64 => u128, usize => u128, u128 => u128,
    i8 => i128, i16 => i128, i32 => i128, i64 => i128, isize => i128, i128 => i128
);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty random_range {:?}", self);
                let u = unit_f64(rng.next_u64()) as $t;
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty random_range {start}..={end}");
                let u = unit_f64(rng.next_u64()) as $t;
                start + u * (end - start)
            }
        }
    )*};
}

impl_range_float!(f32, f64);

/// Convenience sampling methods on any generator (rand 0.10's `Rng`).
pub trait RngExt: RngCore {
    /// A uniformly random value of an inferable type.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniformly random value in `range`.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

/// rand's historical name for the extension trait; kept as an alias so both
/// `use rand::Rng` and `use rand::RngExt` compile.
pub use RngExt as Rng;
