//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the content-tree `serde` shim's `Serialize` /
//! `Deserialize` traits. Because the build container has no crates.io
//! access, this macro parses the item with a small hand-rolled token walker
//! instead of `syn`, and emits code by formatting strings instead of `quote`.
//!
//! Supported input shapes (everything this workspace derives on):
//! - non-generic structs: named, tuple, and unit;
//! - non-generic enums whose variants are unit, newtype, tuple, or struct;
//! - the `#[serde(with = "module")]` field attribute.
//!
//! Anything else (generics, lifetimes, other serde attributes) produces a
//! compile error naming the unsupported construct, so a future change that
//! needs more of serde's surface fails loudly rather than silently
//! mis-serializing.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `Serialize` for a struct or enum.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Serialize)
}

/// Derives the shim's `Deserialize` for a struct or enum.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Trait::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Trait {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, which: Trait) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match which {
        Trait::Serialize => gen_serialize(&item),
        Trait::Deserialize => gen_deserialize(&item),
    };
    code.parse()
        .unwrap_or_else(|e| compile_error(&format!("serde shim derive produced bad code: {e}")))
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------------
// Parsed item model
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    shape: Shape,
}

enum Shape {
    NamedStruct(Vec<Field>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    /// `#[serde(with = "module")]` path, if present.
    with: Option<String>,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---------------------------------------------------------------------------
// Token-walker parsing
// ---------------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Cursor {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes `# [ ... ]` attribute pairs, returning the bracket groups.
    fn take_attrs(&mut self) -> Vec<TokenStream> {
        let mut attrs = Vec::new();
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next(); // '#'
            match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {
                    attrs.push(g.stream());
                }
                _ => break,
            }
        }
        attrs
    }

    /// Consumes a `pub` / `pub(...)` visibility prefix if present.
    fn take_visibility(&mut self) {
        if let Some(TokenTree::Ident(i)) = self.peek() {
            if i.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self, context: &str) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!(
                "serde shim derive: expected ident {context}, got {other:?}"
            )),
        }
    }

    /// Skips tokens until a top-level comma (respecting `<...>` nesting),
    /// consuming the comma. Groups are atomic so only angle depth matters.
    fn skip_type_to_comma(&mut self) {
        let mut angle_depth: i32 = 0;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    self.next();
                    return;
                }
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.take_attrs();
    c.take_visibility();
    let kind = c.expect_ident("(struct/enum keyword)")?;
    let name = c.expect_ident("(type name)")?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive: generic type `{name}` is not supported"
            ));
        }
    }
    let shape = match kind.as_str() {
        "struct" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            other => return Err(format!("serde shim derive: bad struct body {other:?}")),
        },
        "enum" => match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            other => return Err(format!("serde shim derive: bad enum body {other:?}")),
        },
        other => {
            return Err(format!(
                "serde shim derive: expected struct or enum, got `{other}`"
            ))
        }
    };
    Ok(Item { name, shape })
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<Field>, String> {
    let mut c = Cursor::new(stream);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.take_attrs();
        let with = extract_with(&attrs)?;
        c.take_visibility();
        let name = c.expect_ident("(field name)")?;
        match c.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("serde shim derive: expected `:`, got {other:?}")),
        }
        c.skip_type_to_comma();
        fields.push(Field { name, with });
    }
    Ok(fields)
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut c = Cursor::new(stream);
    let mut count = 0;
    while !c.at_end() {
        c.take_attrs();
        c.take_visibility();
        if c.at_end() {
            break;
        }
        count += 1;
        c.skip_type_to_comma();
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let mut c = Cursor::new(stream);
    let mut variants = Vec::new();
    while !c.at_end() {
        c.take_attrs();
        let name = c.expect_ident("(variant name)")?;
        let shape = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream())?;
                c.next();
                VariantShape::Named(fields)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                c.next();
                VariantShape::Tuple(n)
            }
            _ => VariantShape::Unit,
        };
        // Consume the trailing comma (and reject discriminants loudly).
        match c.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                return Err(format!(
                    "serde shim derive: explicit discriminant on variant `{name}` not supported"
                ));
            }
            other => return Err(format!("serde shim derive: bad variant tail {other:?}")),
        }
        variants.push(Variant { name, shape });
    }
    Ok(variants)
}

fn extract_with(attrs: &[TokenStream]) -> Result<Option<String>, String> {
    for attr in attrs {
        let mut c = Cursor::new(attr.clone());
        match c.next() {
            Some(TokenTree::Ident(i)) if i.to_string() == "serde" => {}
            _ => continue, // doc comment or other attribute
        }
        let inner = match c.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => g.stream(),
            _ => continue,
        };
        let mut ic = Cursor::new(inner);
        let key = ic.expect_ident("(serde attr key)")?;
        if key != "with" {
            return Err(format!(
                "serde shim derive: unsupported serde attribute `{key}` (only `with` is implemented)"
            ));
        }
        match ic.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {}
            other => return Err(format!("serde shim derive: bad with attr {other:?}")),
        }
        match ic.next() {
            Some(TokenTree::Literal(l)) => {
                let s = l.to_string();
                let path = s.trim_matches('"').to_string();
                return Ok(Some(path));
            }
            other => return Err(format!("serde shim derive: bad with path {other:?}")),
        }
    }
    Ok(None)
}

// ---------------------------------------------------------------------------
// Code generation (strings, parsed back into a TokenStream)
// ---------------------------------------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let entries = fields
                .iter()
                .map(|f| named_field_ser(&f.name, &format!("self.{}", f.name), f.with.as_deref()))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Content::Map(vec![{entries}])")
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!("::serde::Content::Seq(vec![{items}])")
        }
        Shape::UnitStruct => "::serde::Content::Null".to_string(),
        Shape::Enum(variants) => {
            let arms = variants
                .iter()
                .map(|v| variant_ser_arm(name, v))
                .collect::<Vec<_>>()
                .join("\n");
            format!("match self {{\n{arms}\n}}")
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n\
         }}"
    )
}

fn named_field_ser(key: &str, access: &str, with: Option<&str>) -> String {
    let value = match with {
        Some(path) => {
            format!("::serde::content_from_with(|__s| {path}::serialize(&{access}, __s))")
        }
        None => format!("::serde::Serialize::to_content(&{access})"),
    };
    format!("(::serde::Content::Str(String::from({key:?})), {value})")
}

fn variant_ser_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        VariantShape::Unit => {
            format!("{enum_name}::{vname} => ::serde::Content::Str(String::from({vname:?})),")
        }
        VariantShape::Tuple(1) => format!(
            "{enum_name}::{vname}(__f0) => ::serde::Content::Map(vec![(\
                ::serde::Content::Str(String::from({vname:?})), \
                ::serde::Serialize::to_content(__f0))]),"
        ),
        VariantShape::Tuple(n) => {
            let binds = (0..*n)
                .map(|i| format!("__f{i}"))
                .collect::<Vec<_>>()
                .join(", ");
            let items = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(__f{i})"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{enum_name}::{vname}({binds}) => ::serde::Content::Map(vec![(\
                    ::serde::Content::Str(String::from({vname:?})), \
                    ::serde::Content::Seq(vec![{items}]))]),"
            )
        }
        VariantShape::Named(fields) => {
            let binds = fields
                .iter()
                .map(|f| f.name.clone())
                .collect::<Vec<_>>()
                .join(", ");
            let entries = fields
                .iter()
                .map(|f| named_field_ser(&f.name, &f.name, f.with.as_deref()))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{enum_name}::{vname} {{ {binds} }} => ::serde::Content::Map(vec![(\
                    ::serde::Content::Str(String::from({vname:?})), \
                    ::serde::Content::Map(vec![{entries}]))]),"
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits = fields
                .iter()
                .map(|f| named_field_de(name, f))
                .collect::<Vec<_>>()
                .join(",\n");
            format!("Ok({name} {{\n{inits}\n}})")
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_content(__content)?))")
        }
        Shape::TupleStruct(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "let __seq = __content.as_seq({name:?})?;\n\
                 if __seq.len() != {n} {{\n\
                     return Err(::serde::DeError::custom(format!(\
                         \"expected {n} fields for {name}, got {{}}\", __seq.len())));\n\
                 }}\n\
                 Ok({name}({items}))"
            )
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => gen_enum_de(name, variants),
    };
    format!(
        "#[automatically_derived]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn from_content(__content: &::serde::Content) \
                 -> ::std::result::Result<Self, ::serde::DeError> {{\n{body}\n}}\n\
         }}"
    )
}

fn named_field_de(ty: &str, f: &Field) -> String {
    let fname = &f.name;
    let lookup = format!(
        "__content.field({fname:?}).ok_or_else(|| ::serde::DeError::missing_field({ty:?}, {fname:?}))?"
    );
    match f.with.as_deref() {
        Some(path) => format!(
            "{fname}: {path}::deserialize(::serde::ContentDeserializer(({lookup}).clone()))?"
        ),
        None => format!("{fname}: ::serde::Deserialize::from_content({lookup})?"),
    }
}

fn gen_enum_de(name: &str, variants: &[Variant]) -> String {
    let unit_arms = variants
        .iter()
        .filter(|v| matches!(v.shape, VariantShape::Unit))
        .map(|v| format!("{:?} => Ok({name}::{}),", v.name, v.name))
        .collect::<Vec<_>>()
        .join("\n");
    let payload_arms = variants
        .iter()
        .filter(|v| !matches!(v.shape, VariantShape::Unit))
        .map(|v| variant_de_arm(name, v))
        .collect::<Vec<_>>()
        .join("\n");
    format!(
        "match __content {{\n\
             ::serde::Content::Str(__s) => match __s.as_str() {{\n\
                 {unit_arms}\n\
                 __other => Err(::serde::DeError::unknown_variant({name:?}, __other)),\n\
             }},\n\
             ::serde::Content::Map(__entries) if __entries.len() == 1 => {{\n\
                 let (__k, __v) = &__entries[0];\n\
                 match __k.as_str({name:?})? {{\n\
                     {payload_arms}\n\
                     __other => Err(::serde::DeError::unknown_variant({name:?}, __other)),\n\
                 }}\n\
             }}\n\
             __other => Err(::serde::DeError::unexpected(\
                 {name:?}, \"string or single-entry map\", __other)),\n\
         }}"
    )
}

fn variant_de_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.shape {
        VariantShape::Unit => unreachable!("unit variants handled in the string arm"),
        VariantShape::Tuple(1) => format!(
            "{vname:?} => Ok({enum_name}::{vname}(::serde::Deserialize::from_content(__v)?)),"
        ),
        VariantShape::Tuple(n) => {
            let items = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&__seq[{i}])?"))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "{vname:?} => {{\n\
                     let __seq = __v.as_seq({vname:?})?;\n\
                     if __seq.len() != {n} {{\n\
                         return Err(::serde::DeError::custom(format!(\
                             \"expected {n} fields for {enum_name}::{vname}, got {{}}\", __seq.len())));\n\
                     }}\n\
                     Ok({enum_name}::{vname}({items}))\n\
                 }}"
            )
        }
        VariantShape::Named(fields) => {
            let inits = fields
                .iter()
                .map(|f| {
                    let fname = &f.name;
                    let lookup = format!(
                        "__v.field({fname:?}).ok_or_else(|| \
                         ::serde::DeError::missing_field({vname:?}, {fname:?}))?"
                    );
                    match f.with.as_deref() {
                        Some(path) => format!(
                            "{fname}: {path}::deserialize(::serde::ContentDeserializer(({lookup}).clone()))?"
                        ),
                        None => {
                            format!("{fname}: ::serde::Deserialize::from_content({lookup})?")
                        }
                    }
                })
                .collect::<Vec<_>>()
                .join(",\n");
            format!("{vname:?} => Ok({enum_name}::{vname} {{\n{inits}\n}}),")
        }
    }
}
