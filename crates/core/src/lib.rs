//! High-level integrated API over the lightwave-fabric subsystem crates.
//!
//! Most users want one of three workflows, each wrapped by a facade here:
//!
//! * **Run an ML pod** — [`MlPod`]: a TPU-v4-style superpod on a live
//!   48-OCS fabric, with model-aware slice composition: hand it an
//!   `LlmConfig`, it finds the optimal
//!   slice shape, picks idle cubes, and drives the fabric transaction.
//! * **Engineer a DCN** — [`DcnPlanner`]: demand matrix in, engineered
//!   spine-free mesh + predicted throughput/FCT out, with the uniform-mesh
//!   comparison the paper reports against.
//! * **Design a link** — [`LinkDesigner`]: pick a transceiver family and
//!   fiber length, get the full link health report: budget, MPI, per-lane
//!   BER, margin, and what the OIM + concatenated-FEC DSP buys.
//!
//! Everything the facades build on is re-exported from the subsystem
//! crates, so nothing here is the only way in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lightwave_availability as availability;
pub use lightwave_chaos as chaos;
pub use lightwave_dcn as dcn;
pub use lightwave_fabric as fabric;
pub use lightwave_fec as fec;
pub use lightwave_mlperf as mlperf;
pub use lightwave_ocs as ocs;
pub use lightwave_optics as optics;
pub use lightwave_par as par;
pub use lightwave_scheduler as scheduler;
pub use lightwave_service as service;
pub use lightwave_superpod as superpod;
pub use lightwave_telemetry as telemetry;
pub use lightwave_trace as trace;
pub use lightwave_transceiver as transceiver;
pub use lightwave_units as units;

/// Convenient single-import surface for the common workflows.
pub mod prelude {
    pub use crate::{DcnPlan, DcnPlanner, LinkDesigner, LinkReport, MlPod};
    pub use lightwave_dcn::{Mesh, TrafficMatrix};
    pub use lightwave_mlperf::{ChipParams, LlmConfig, SliceOptimizer};
    pub use lightwave_par::{par_map_reduce, par_trials, Pool};
    pub use lightwave_service::{ServiceConfig, ServiceEngine, SliceIntent};
    pub use lightwave_superpod::{Slice, SliceShape, Superpod};
    pub use lightwave_telemetry::{FleetTelemetry, Severity};
    pub use lightwave_trace::{to_chrome_trace, FlightRecorder, Tracer};
    pub use lightwave_transceiver::{DspConfig, ModuleFamily, Transceiver};
    pub use lightwave_units::{Availability, Ber, Db, Dbm, Gbps, Nanos};
}

use lightwave_dcn::{flowsim, te, Mesh, TrafficMatrix};
use lightwave_mlperf::{LlmConfig, OptimalShape, SliceOptimizer};
use lightwave_superpod::pod::{PodError, SliceHandle};
use lightwave_superpod::slice::Slice;
use lightwave_superpod::Superpod;
use lightwave_trace::{SpanId, Tracer};
use lightwave_transceiver::bidilink::{BidiLink, LaneReport};
use lightwave_transceiver::dsp::DspConfig;
use lightwave_transceiver::module::{ModuleFamily, Transceiver};
use lightwave_units::{Ber, Nanos};
use serde::{Deserialize, Serialize};

/// A model-aware ML superpod: slice shapes chosen by the optimizer, cubes
/// by the pool, circuits by the fabric controller.
#[derive(Debug)]
pub struct MlPod {
    /// The underlying pod (fabric + cube inventory).
    pub pod: Superpod,
    /// The shape optimizer.
    pub optimizer: SliceOptimizer,
}

/// What composing a model's slice produced.
#[derive(Debug, Clone)]
pub struct ModelPlacement {
    /// Slice handle in the pod.
    pub handle: SliceHandle,
    /// The optimizer's decision (shape, mapping, predicted speedup).
    pub plan: OptimalShape,
    /// When the fabric finishes reconfiguring (absolute sim time).
    pub traffic_ready_at: Nanos,
}

/// Errors from model placement.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementError {
    /// No feasible shape for this model at this chip count.
    NoFeasibleShape,
    /// Not enough idle cubes.
    InsufficientCubes {
        /// Cubes needed.
        need: usize,
        /// Cubes idle.
        idle: usize,
    },
    /// The pod rejected the composition.
    Pod(PodError),
}

impl From<PodError> for PlacementError {
    fn from(e: PodError) -> Self {
        PlacementError::Pod(e)
    }
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::NoFeasibleShape => write!(f, "no feasible slice shape"),
            PlacementError::InsufficientCubes { need, idle } => {
                write!(f, "need {need} cubes, only {idle} idle")
            }
            PlacementError::Pod(e) => write!(f, "pod: {e}"),
        }
    }
}

impl std::error::Error for PlacementError {}

impl MlPod {
    /// A pod with TPU-v4 chip parameters and a deterministic fabric seed.
    pub fn new(seed: u64) -> MlPod {
        MlPod {
            pod: Superpod::new(seed),
            optimizer: SliceOptimizer::tpu_v4(),
        }
    }

    /// Places `model` on `chips` chips: optimal shape → idle cubes →
    /// fabric transaction.
    pub fn place_model(
        &mut self,
        model: &LlmConfig,
        chips: usize,
    ) -> Result<ModelPlacement, PlacementError> {
        let plan = self
            .optimizer
            .optimize(model, chips)
            .ok_or(PlacementError::NoFeasibleShape)?;
        let idle = self.pod.idle_cubes();
        let need = plan.shape.cube_count();
        if idle.len() < need {
            return Err(PlacementError::InsufficientCubes {
                need,
                idle: idle.len(),
            });
        }
        let slice = Slice::new(plan.shape, idle.into_iter().take(need).collect())
            .expect("idle cubes are distinct and in range");
        let (handle, report) = self.pod.compose(slice)?;
        Ok(ModelPlacement {
            handle,
            plan,
            traffic_ready_at: report.traffic_ready_at,
        })
    }

    /// [`Self::place_model`] plus the causal span tree of the fabric
    /// transaction ([`lightwave_superpod::instrument::trace_compose`]):
    /// a `SliceCompose` span on the pod lane with every touched switch's
    /// reconfiguration — and its drain → settle → verify → undrain phase
    /// chain — as children. Returns the placement and the compose span.
    pub fn place_model_traced(
        &mut self,
        tracer: &mut Tracer,
        parent: Option<SpanId>,
        model: &LlmConfig,
        chips: usize,
    ) -> Result<(ModelPlacement, SpanId), PlacementError> {
        let plan = self
            .optimizer
            .optimize(model, chips)
            .ok_or(PlacementError::NoFeasibleShape)?;
        let idle = self.pod.idle_cubes();
        let need = plan.shape.cube_count();
        if idle.len() < need {
            return Err(PlacementError::InsufficientCubes {
                need,
                idle: idle.len(),
            });
        }
        let slice = Slice::new(plan.shape, idle.into_iter().take(need).collect())
            .expect("idle cubes are distinct and in range");
        let at = self.now();
        let (handle, report) = self.pod.compose(slice)?;
        let span = lightwave_superpod::instrument::trace_compose(
            tracer,
            parent,
            0,
            at,
            need as u32,
            &report,
        );
        Ok((
            ModelPlacement {
                handle,
                plan,
                traffic_ready_at: report.traffic_ready_at,
            },
            span,
        ))
    }

    /// Releases a placed model.
    pub fn release(&mut self, handle: SliceHandle) -> Result<(), PlacementError> {
        self.pod.release(handle)?;
        Ok(())
    }

    /// [`Self::release`] plus the span tree of the teardown transaction
    /// (`SliceRelease` on the pod lane, per-switch children). Returns the
    /// release span.
    pub fn release_traced(
        &mut self,
        tracer: &mut Tracer,
        parent: Option<SpanId>,
        handle: SliceHandle,
    ) -> Result<SpanId, PlacementError> {
        let cubes = self
            .pod
            .slice(handle)
            .map(|s| s.cubes.len() as u32)
            .unwrap_or(0);
        let at = self.now();
        let report = self.pod.release(handle)?;
        Ok(lightwave_superpod::instrument::trace_release(
            tracer, parent, 0, at, cubes, &report,
        ))
    }

    /// The pod's current sim time (the fleet's furthest-advanced switch
    /// clock).
    pub fn now(&self) -> Nanos {
        self.pod
            .fabric()
            .fleet
            .iter()
            .map(|(_, ocs)| ocs.now())
            .max()
            .unwrap_or(Nanos(0))
    }

    /// Advances fabric time.
    pub fn advance(&mut self, dt: Nanos) {
        self.pod.advance(dt);
    }

    /// Cross-layer optical health census: walks every live circuit in the
    /// fabric, takes its *measured* insertion loss from the OCS optical
    /// core (mirrors, collimators, splices — including any degradation
    /// from spare-mirror swaps), rebuilds the link budget around that
    /// loss, and evaluates per-lane BER through the production DSP.
    ///
    /// This is the §3.2.2 "in-situ evaluation of the state of the OCS"
    /// surface a control plane scrapes to find marginal links before the
    /// workload does.
    pub fn link_census(&self) -> PodLinkCensus {
        use lightwave_optics::components::{Component, ComponentKind};
        use lightwave_optics::link::LinkBudget;

        let dsp = DspConfig::ml_production();
        let unit = Transceiver::nominal(ModuleFamily::Cwdm4Bidi);
        let mut circuits = Vec::new();
        let mut violations = 0usize;
        let mut worst_margin = f64::INFINITY;
        for (&ocs_id, ocs) in self.pod.fabric().fleet.iter() {
            for (north, south) in ocs.mapping().pairs() {
                let measured = ocs
                    .optical_core()
                    .insertion_loss(north as usize, south as usize);
                // The standard superpod path with the OCS pass replaced by
                // this circuit's measured loss.
                let mut components = vec![
                    Component::nominal(ComponentKind::WdmMux),
                    Component::nominal(ComponentKind::CirculatorPass),
                    Component::nominal(ComponentKind::Connector),
                    Component::fiber_span(0.05),
                ];
                let mut ocs_pass = Component::nominal(ComponentKind::OcsPass);
                ocs_pass.insertion_loss = measured;
                components.push(ocs_pass);
                components.extend([
                    Component::fiber_span(0.05),
                    Component::nominal(ComponentKind::Connector),
                    Component::nominal(ComponentKind::CirculatorPass),
                    Component::nominal(ComponentKind::WdmDemux),
                ]);
                let budget = LinkBudget::new(unit.launch, components).expect("non-empty chain");
                let link = BidiLink {
                    tx_unit: unit,
                    rx_unit: unit,
                    budget,
                    dsp,
                    fiber_km: 0.1,
                };
                let worst = link.worst_lane();
                if !worst.healthy {
                    violations += 1;
                }
                worst_margin = worst_margin.min(worst.margin_orders);
                circuits.push(CircuitHealth {
                    ocs: ocs_id,
                    north,
                    south,
                    ocs_loss_db: measured.db(),
                    worst_lane: worst,
                });
            }
        }
        PodLinkCensus {
            circuits,
            violations,
            worst_margin_orders: if worst_margin.is_finite() {
                worst_margin
            } else {
                0.0
            },
        }
    }
}

/// Everything [`run_traced_fault_recovery`] produced: the span timeline,
/// the telemetry sink, and the flight recorder with its postmortem dumps.
#[derive(Debug)]
pub struct TracedRecovery {
    /// The span timeline (export with [`lightwave_trace::to_chrome_trace`]).
    pub tracer: Tracer,
    /// Metrics, events, alarms, SLOs from the run.
    pub telemetry: lightwave_telemetry::FleetTelemetry,
    /// The flight recorder; [`FlightRecorder::dumps`](lightwave_trace::FlightRecorder::dumps)
    /// holds the postmortem bundles.
    pub recorder: lightwave_trace::FlightRecorder,
    /// Incident ids dumped by the final poll.
    pub dumped: Vec<u64>,
}

/// Runs the §4.2.2 fault-recovery scenario fully instrumented: place a
/// 1024-chip job (traced fabric transaction), run a sharded Monte-Carlo
/// stage on `pool` (virtual worker lanes), lose a cube mid-training,
/// recover by recomposing onto a spare — and, mid-reconfiguration, lose
/// both PSUs on one switch. The chassis-down Critical lands in the alarm
/// aggregator and the flight recorder snapshots the postmortem bundle.
///
/// Everything is a pure function of `seed` and sim-time: the exported
/// trace and flight bundle are **byte-identical at any `pool` thread
/// count** (the determinism round-trip test pins this).
pub fn run_traced_fault_recovery(seed: u64, pool: &lightwave_par::Pool) -> TracedRecovery {
    use lightwave_fabric::instrument::FabricInstruments;
    use lightwave_par::instrument::run_shards_traced;
    use lightwave_superpod::instrument::trace_compose;
    use lightwave_telemetry::FleetTelemetry;
    use lightwave_trace::{FlightRecorder, Lane, SpanKind};
    use rand::RngExt;

    let mut telemetry = FleetTelemetry::new();
    let mut tracer = Tracer::new(seed);
    let mut recorder = FlightRecorder::new(512);
    let mut fabric_inst = FabricInstruments::register(&mut telemetry);
    let mut pod = MlPod::new(seed);

    // 1. Place a 1024-chip job (16 cubes) — traced fabric transaction.
    let (placement, place_span) = pod
        .place_model_traced(&mut tracer, None, &LlmConfig::llm1(), 1024)
        .expect("empty pod fits the job");
    pod.advance(Nanos::from_millis(300));
    fabric_inst.scrape_fleet(&mut telemetry, &pod.pod.fabric().fleet);

    // 2. A training-step stand-in: sharded Monte-Carlo on the pool,
    //    rendered on the virtual worker lanes.
    let (_acc, _stats) = run_shards_traced(
        pool,
        &mut tracer,
        Some(place_span),
        pod.now(),
        Nanos(50),
        seed,
        4_096,
        256,
        |rng, shard| {
            (0..shard.len)
                .map(|_| rng.random_range(0.0f64..1.0))
                .sum::<f64>()
        },
        |a, b| a + b,
    );

    // 3. A cube fails mid-training; recovery = release + recompose onto a
    //    spare, all under one FaultRecovery span.
    let recovery = tracer.begin(
        Lane::Pod(0),
        None,
        pod.now(),
        SpanKind::FaultRecovery {
            what: "cube-swap".to_string(),
        },
    );
    tracer.link_follows(recovery, place_span);
    let old = pod.pod.slice(placement.handle).expect("live").clone();
    let victim = old.cubes[3];
    pod.pod.mark_cube_failed(victim);
    let release_span = pod
        .release_traced(&mut tracer, Some(recovery), placement.handle)
        .expect("slice is live");
    let spare = pod
        .pod
        .idle_cubes()
        .into_iter()
        .find(|c| !old.cubes.contains(c))
        .expect("the pod has spares");
    let cubes: Vec<_> = old
        .cubes
        .iter()
        .map(|&c| if c == victim { spare } else { c })
        .collect();
    let at = pod.now();
    let (_handle, report) = pod
        .pod
        .compose(Slice::new(old.shape, cubes).expect("valid"))
        .expect("spare composition");
    let swap_span = trace_compose(
        &mut tracer,
        Some(recovery),
        0,
        at,
        old.shape.cube_count() as u32,
        &report,
    );
    tracer.link_follows(swap_span, release_span);

    // 4. Mid-reconfiguration FRU fault: both PSUs on OCS 5 die before the
    //    swapped circuits settle — chassis down, Critical.
    {
        let ocs = pod.pod.fabric_mut().fleet.get_mut(5).expect("exists");
        ocs.fail_fru(0);
        ocs.fail_fru(1);
    }
    tracer.instant(Lane::Switch(5), pod.now(), "both PSUs down mid-reconfig");
    tracer.end(recovery, report.traffic_ready_at.max(pod.now()));
    pod.advance(Nanos::from_millis(300));

    // 5. The fleet scrape forwards the chassis-down alarm; the poll sees
    //    the Critical incident and snapshots the postmortem bundle.
    fabric_inst.scrape_fleet(&mut telemetry, &pod.pod.fabric().fleet);
    let dumped = recorder.poll(&tracer, &telemetry);

    TracedRecovery {
        tracer,
        telemetry,
        recorder,
        dumped,
    }
}

/// Optical health of one live circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CircuitHealth {
    /// The switch carrying the circuit.
    pub ocs: u32,
    /// North port (source cube).
    pub north: u16,
    /// South port (destination cube).
    pub south: u16,
    /// Measured OCS path insertion loss, dB.
    pub ocs_loss_db: f64,
    /// The circuit's worst wavelength lane.
    pub worst_lane: LaneReport,
}

/// Result of [`MlPod::link_census`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PodLinkCensus {
    /// Every live circuit's health.
    pub circuits: Vec<CircuitHealth>,
    /// Circuits whose worst lane violates the DSP threshold.
    pub violations: usize,
    /// The pod's thinnest margin, in orders of magnitude.
    pub worst_margin_orders: f64,
}

/// A DCN topology-engineering planner.
#[derive(Debug, Clone, Copy)]
pub struct DcnPlanner {
    /// Trunks available per aggregation block.
    pub uplinks_per_ab: usize,
    /// Capacity per trunk, Gb/s.
    pub trunk_gbps: f64,
}

/// A produced DCN plan with its predicted performance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DcnPlan {
    /// The engineered mesh.
    pub mesh: Mesh,
    /// Flow report on the engineered mesh.
    pub engineered: flowsim::FlowReport,
    /// Flow report on the uniform-mesh baseline.
    pub uniform_baseline: flowsim::FlowReport,
}

impl DcnPlan {
    /// Throughput gain of TE over the uniform mesh.
    pub fn throughput_gain(&self) -> f64 {
        self.engineered.throughput / self.uniform_baseline.throughput
    }

    /// Relative FCT improvement (positive = TE better).
    pub fn fct_improvement(&self) -> f64 {
        (self.uniform_baseline.mean_fct - self.engineered.mean_fct) / self.uniform_baseline.mean_fct
    }
}

impl DcnPlanner {
    /// Engineers a mesh for `tm` and evaluates it against the baseline.
    pub fn plan(&self, tm: &TrafficMatrix) -> DcnPlan {
        let mesh = te::engineer(tm, self.uplinks_per_ab);
        let engineered = flowsim::allocate(&mesh, tm, self.trunk_gbps);
        let uniform = Mesh::uniform(tm.n(), self.uplinks_per_ab);
        let uniform_baseline = flowsim::allocate(&uniform, tm, self.trunk_gbps);
        DcnPlan {
            mesh,
            engineered,
            uniform_baseline,
        }
    }
}

/// An optical-link design assistant.
#[derive(Debug, Clone, Copy)]
pub struct LinkDesigner {
    /// Transceiver family.
    pub family: ModuleFamily,
    /// One-way fiber length, km.
    pub fiber_km: f64,
    /// DSP configuration.
    pub dsp: DspConfig,
}

/// A full link health report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkReport {
    /// Per-lane evaluations.
    pub lanes: Vec<LaneReport>,
    /// Total MPI operating point, linear ratio.
    pub mpi_ratio: f64,
    /// Raw-BER threshold the DSP tolerates.
    pub raw_threshold: Ber,
    /// Whether every lane is healthy.
    pub healthy: bool,
}

impl LinkDesigner {
    /// The production ML-link configuration.
    pub fn ml_default() -> LinkDesigner {
        LinkDesigner {
            family: ModuleFamily::Cwdm4Bidi,
            fiber_km: 0.2,
            dsp: DspConfig::ml_production(),
        }
    }

    /// Evaluates the link with nominal (golden-sample) transceivers.
    pub fn evaluate(&self) -> LinkReport {
        let link = BidiLink::superpod(
            Transceiver::nominal(self.family),
            Transceiver::nominal(self.family),
            self.dsp,
            self.fiber_km,
        );
        let lanes = link.evaluate();
        LinkReport {
            healthy: lanes.iter().all(|l| l.healthy),
            mpi_ratio: link.mpi_ratio(),
            raw_threshold: self.dsp.fec.raw_ber_threshold(),
            lanes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lightwave_mlperf::LlmConfig;

    #[test]
    fn place_all_three_table2_models_sequentially() {
        let mut pod = MlPod::new(42);
        // LLM0 on 512 chips (8 cubes), LLM1 on 1024 (16), leave room.
        let p0 = pod.place_model(&LlmConfig::llm0(), 512).unwrap();
        let p1 = pod.place_model(&LlmConfig::llm1(), 1024).unwrap();
        assert_ne!(p0.handle, p1.handle);
        pod.advance(Nanos::from_millis(300));
        assert!(pod.pod.settled());
        assert_eq!(pod.pod.idle_cubes().len(), 64 - 8 - 16);
        pod.release(p0.handle).unwrap();
        assert_eq!(pod.pod.idle_cubes().len(), 64 - 16);
    }

    #[test]
    fn full_pod_placement_matches_table2_shape() {
        let mut pod = MlPod::new(1);
        let p = pod.place_model(&LlmConfig::llm1(), 4096).unwrap();
        assert_eq!(p.plan.shape.chips, [4, 4, 256]);
        assert!(p.plan.speedup_vs_baseline > 2.9);
        // A second full-pod model cannot fit.
        let err = pod.place_model(&LlmConfig::llm2(), 4096).unwrap_err();
        assert!(matches!(err, PlacementError::InsufficientCubes { .. }));
    }

    #[test]
    fn dcn_planner_reports_gains() {
        let planner = DcnPlanner {
            uplinks_per_ab: 30,
            trunk_gbps: 100.0,
        };
        let tm = TrafficMatrix::hotspot(16, 40.0, 8, 30.0, 3);
        let plan = planner.plan(&tm);
        assert!(plan.throughput_gain() > 1.05);
        assert!(plan.mesh.within_budget());
    }

    #[test]
    fn link_designer_default_is_healthy() {
        let report = LinkDesigner::ml_default().evaluate();
        assert!(report.healthy);
        assert_eq!(report.lanes.len(), 4);
        assert!(report.mpi_ratio > 0.0);
        assert!(report.raw_threshold.prob() > Ber::KP4_THRESHOLD.prob());
    }

    #[test]
    fn link_census_covers_every_circuit_and_is_clean() {
        let mut pod = MlPod::new(8);
        pod.place_model(&LlmConfig::llm0(), 512).unwrap();
        pod.advance(Nanos::from_millis(400));
        let census = pod.link_census();
        // 8 cubes × 3 dims × 16 = 384 circuits.
        assert_eq!(census.circuits.len(), 384);
        assert_eq!(
            census.violations, 0,
            "a healthy pod has no marginal circuits"
        );
        assert!(census.worst_margin_orders > 0.5);
    }

    #[test]
    fn link_census_sees_degraded_mirrors() {
        let mut pod = MlPod::new(9);
        pod.place_model(&LlmConfig::llm0(), 512).unwrap();
        pod.advance(Nanos::from_millis(400));
        let before = pod.link_census();
        // Burn through spares on one port until the serving mirror is a
        // bottom-of-barrel spare (worse intrinsic loss).
        let cube = pod
            .pod
            .slice_of_cube(pod.pod.slices().next().unwrap().1.cubes[0]);
        assert!(cube.is_some());
        let ocs = pod.pod.fabric_mut().fleet.get_mut(0).unwrap();
        let victim = ocs.mapping().pairs().next().unwrap().0;
        for _ in 0..10 {
            ocs.fail_mirror(true, victim);
        }
        pod.advance(Nanos::from_millis(400));
        let after = pod.link_census();
        let loss_before = before
            .circuits
            .iter()
            .find(|c| c.ocs == 0 && c.north == victim)
            .unwrap()
            .ocs_loss_db;
        let loss_after = after
            .circuits
            .iter()
            .find(|c| c.ocs == 0 && c.north == victim)
            .unwrap()
            .ocs_loss_db;
        assert!(
            loss_after > loss_before,
            "spare swaps degrade the measured path: {loss_before:.2} → {loss_after:.2} dB"
        );
    }

    #[test]
    fn traced_fault_recovery_dumps_the_full_phase_chain() {
        use lightwave_trace::{FlightEntry, ReconfigPhase, SpanKind};

        let out = run_traced_fault_recovery(11, &lightwave_par::Pool::new(2));
        assert!(!out.dumped.is_empty(), "the chassis-down Critical dumps");
        let dump = out.recorder.latest_dump().expect("dumped");
        let spans: Vec<_> = dump
            .entries
            .iter()
            .filter_map(|e| match e {
                FlightEntry::Span(s) => Some(s),
                FlightEntry::Event(_) => None,
            })
            .collect();
        // The bundle carries at least one complete drain → settle →
        // verify → undrain chain, parented to its switch's reconfig span.
        let drains: Vec<_> = spans
            .iter()
            .filter(|s| {
                matches!(
                    s.kind,
                    SpanKind::Phase {
                        phase: ReconfigPhase::Drain,
                        ..
                    }
                )
            })
            .collect();
        assert!(!drains.is_empty(), "drain phases in the bundle");
        let drain = drains[0];
        let commit = drain.parent.expect("phases are parented");
        let commit_span = spans.iter().find(|s| s.id == commit).expect("in bundle");
        assert!(matches!(commit_span.kind, SpanKind::ReconfigCommit { .. }));
        // The three successors, chained follows-from off the drain.
        let mut prev = drain.id;
        for phase in [
            ReconfigPhase::MirrorSettle,
            ReconfigPhase::CameraVerify,
            ReconfigPhase::Undrain,
        ] {
            let next = spans
                .iter()
                .find(|s| {
                    s.parent == Some(commit)
                        && s.follows == Some(prev)
                        && matches!(s.kind, SpanKind::Phase { phase: p, .. } if p == phase)
                })
                .unwrap_or_else(|| panic!("{phase:?} follows the chain"));
            prev = next.id;
        }
        // And the fault-recovery umbrella span made it in too.
        assert!(spans
            .iter()
            .any(|s| matches!(s.kind, SpanKind::FaultRecovery { .. })));
        // The bundle round-trips as JSONL.
        let jsonl = dump.to_jsonl();
        lightwave_trace::validate::validate_flight_jsonl(&jsonl).expect("parseable");
    }

    #[test]
    fn link_designer_flags_hopeless_links() {
        let mut d = LinkDesigner::ml_default();
        d.fiber_km = 60.0; // ~21 dB of fiber loss: dead
        assert!(!d.evaluate().healthy);
    }
}
