//! Property tests for DCN topology engineering and placement.

use lightwave_dcn::realize::MeshPlacement;
use lightwave_dcn::te::engineer;
use lightwave_dcn::{flowsim, Mesh, TrafficMatrix};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn engineered_meshes_place_cleanly(seed in 0u64..200, n in 4usize..16) {
        let uplinks = 2 * (n - 1);
        let tm = TrafficMatrix::gravity(n, 15.0, seed);
        let mesh = engineer(&tm, uplinks);
        let placement = MeshPlacement::place(&mesh, uplinks).expect("degree ≤ switches");
        // Circuit count equals total trunks.
        let trunk_total: usize = (0..n)
            .map(|i| ((i + 1)..n).map(|j| mesh.trunks(i, j)).sum::<usize>())
            .sum();
        prop_assert_eq!(placement.circuit_count(), trunk_total);
        // Port-disjointness per switch (respecting leg orientation).
        let mut seen = std::collections::BTreeSet::new();
        for (&(i, j), legs) in &placement.trunks {
            for leg in legs {
                let (n, s) = if leg.flipped { (j, i) } else { (i, j) };
                prop_assert!(seen.insert((leg.ocs, true, n)));
                prop_assert!(seen.insert((leg.ocs, false, s)));
            }
        }
    }

    #[test]
    fn placement_hint_maximizes_stability(seed in 0u64..100) {
        // Re-placing the SAME mesh with itself as hint keeps every trunk
        // on its switch.
        let tm = TrafficMatrix::gravity(10, 12.0, seed);
        let mesh = engineer(&tm, 18);
        let first = MeshPlacement::place(&mesh, 18).expect("places");
        let second = MeshPlacement::place_with_hint(&mesh, 18, Some(&first)).expect("places");
        prop_assert_eq!(first, second);
    }

    #[test]
    fn uniform_mesh_uses_full_budget(n in 3usize..20, per_peer in 1usize..4) {
        let uplinks = per_peer * (n - 1);
        let mesh = Mesh::uniform(n, uplinks);
        for i in 0..n {
            prop_assert_eq!(mesh.degree(i), uplinks, "AB {}", i);
        }
        prop_assert!(mesh.connected());
    }

    #[test]
    fn te_throughput_never_below_uniform_minus_noise(seed in 0u64..60) {
        // TE may tie uniform on friendly matrices but must never lose
        // badly — the connectivity floor guarantees transit still works.
        let tm = TrafficMatrix::gravity(10, 40.0, seed);
        let uplinks = 18;
        let uni = flowsim::allocate(&Mesh::uniform(10, uplinks), &tm, 100.0);
        let eng = flowsim::allocate(&engineer(&tm, uplinks), &tm, 100.0);
        prop_assert!(
            eng.throughput >= 0.9 * uni.throughput,
            "TE {} vs uniform {}",
            eng.throughput,
            uni.throughput
        );
    }

    #[test]
    fn flow_rates_respect_demand(seed in 0u64..60, trunk in 50.0f64..200.0) {
        let tm = TrafficMatrix::hotspot(8, 30.0, 4, 10.0, seed);
        let mesh = Mesh::uniform(8, 14);
        let r = flowsim::allocate(&mesh, &tm, trunk);
        for i in 0..8 {
            for j in 0..8 {
                prop_assert!(r.rate[i][j] <= tm.demand(i, j) + 1e-9);
                prop_assert!(r.rate[i][j] >= 0.0);
            }
        }
        prop_assert!(r.mean_fct >= 1.0 - 1e-9, "FCT proxy floor is 1 (fully satisfied)");
    }
}
