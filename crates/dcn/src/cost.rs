//! Component-structure cost and power models.
//!
//! Two comparisons from the paper are reproduced here, both as *structural*
//! models (which components exist in which design) with calibrated unit
//! constants (documented in DESIGN.md §5 — absolute prices are not public,
//! component *structure* is):
//!
//! 1. **Table 1** — three ways to interconnect a 4096-TPU superpod:
//!    an EPS-based DCN fabric (1.24× cost / 1.10× power), a reconfigurable
//!    lightwave fabric (1.06× / 1.01×), and a static fiber shuffle (1×).
//! 2. **Fig. 1 / §4.2** — spine-full Clos versus spine-free DCN:
//!    ~30% capex and ~41% power saving (Poutievski et al. \[47\]).

use serde::{Deserialize, Serialize};

/// Relative unit costs/powers of fabric components.
///
/// Costs are in "engine units" (one WDM transceiver engine = 1.0);
/// powers in watts. Values are calibrated to the published ratios.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostBook {
    /// One WDM engine (one module end of one circuit), cost units.
    pub eng_cost: f64,
    /// One WDM engine, watts.
    pub eng_power: f64,
    /// Installed fiber per circuit, cost units.
    pub fiber_cost: f64,
    /// One OCS duplex port-pair (chassis amortized over 128 usable), cost.
    pub ocs_port_cost: f64,
    /// One OCS chassis, watts (§4.1.1: ≤ 108 W; ~43 W typical draw).
    pub ocs_chassis_power: f64,
    /// One EPS fabric port including switch-silicon share and the
    /// switch-side optics, cost units.
    pub eps_port_cost: f64,
    /// One EPS fabric port, watts (silicon + switch-side optics).
    pub eps_port_power: f64,
    /// Intra-cube electrical ICI power per cube (rack), watts.
    pub ici_power_per_cube: f64,
}

impl Default for CostBook {
    fn default() -> Self {
        CostBook {
            eng_cost: 1.0,
            eng_power: 6.0,
            fiber_cost: 0.2,
            ocs_port_cost: 0.132,
            ocs_chassis_power: 43.0,
            eps_port_cost: 0.53,
            eps_port_power: 6.6,
            ici_power_per_cube: 2600.0,
        }
    }
}

/// The three superpod interconnect options of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuperpodFabric {
    /// Electrical-packet-switched DCN fabric.
    EpsDcn,
    /// Reconfigurable lightwave (OCS) fabric.
    Lightwave,
    /// Static point-to-point fiber shuffle.
    Static,
}

/// Cost and power of one superpod interconnect option.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FabricBill {
    /// Total cost, engine units.
    pub cost: f64,
    /// Total power, watts.
    pub power: f64,
}

/// Inter-cube bidi circuits in a full pod: 64 cubes × 48 face-link pairs.
pub const POD_CIRCUITS: usize = 64 * 48;
/// OCSes in the lightwave option (CWDM4 bidi modules).
pub const POD_OCS: usize = 48;

/// Bill of materials for a superpod interconnect.
pub fn superpod_fabric(kind: SuperpodFabric, book: &CostBook) -> FabricBill {
    let circuits = POD_CIRCUITS as f64;
    let engines = 2.0 * circuits; // one engine at each end of each circuit
    let base_cost = engines * book.eng_cost + circuits * book.fiber_cost;
    let base_power = engines * book.eng_power + 64.0 * book.ici_power_per_cube;
    match kind {
        SuperpodFabric::Static => FabricBill {
            cost: base_cost,
            power: base_power,
        },
        SuperpodFabric::Lightwave => FabricBill {
            cost: base_cost + circuits * book.ocs_port_cost,
            power: base_power + POD_OCS as f64 * book.ocs_chassis_power,
        },
        SuperpodFabric::EpsDcn => FabricBill {
            // Every circuit terminates on an EPS fabric port instead of
            // being patched through; the port bundles switch silicon and
            // switch-side optics.
            cost: base_cost + circuits * book.eps_port_cost,
            power: base_power + circuits * book.eps_port_power,
        },
    }
}

/// Table 1: cost and power of each option normalized to the static fabric.
pub fn table1(book: &CostBook) -> [(SuperpodFabric, f64, f64); 3] {
    let s = superpod_fabric(SuperpodFabric::Static, book);
    let mk = |k| {
        let b = superpod_fabric(k, book);
        (k, b.cost / s.cost, b.power / s.power)
    };
    [
        mk(SuperpodFabric::EpsDcn),
        mk(SuperpodFabric::Lightwave),
        mk(SuperpodFabric::Static),
    ]
}

/// DCN fabric style for the Fig. 1 comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DcnStyle {
    /// Traditional Clos with spine blocks.
    SpineFull,
    /// Spine layer replaced by OCSes (Fig. 1b).
    SpineFree,
}

/// Per-AB-uplink bill for a DCN fabric (aggregation-block internals are a
/// common cost `ab_base` so savings are expressed against a whole fabric,
/// as in \[47\]).
pub fn dcn_per_uplink(style: DcnStyle, book: &CostBook) -> FabricBill {
    // Common: the AB's own switching/serving share per uplink.
    let ab_base_cost = 1.15;
    let ab_base_power = 12.5;
    match style {
        DcnStyle::SpineFull => FabricBill {
            // AB-side engine + spine-side engine + spine switch port.
            cost: ab_base_cost + 2.0 * book.eng_cost + book.fiber_cost + 0.1,
            power: ab_base_power + 2.0 * book.eng_power + 8.0,
        },
        DcnStyle::SpineFree => FabricBill {
            // AB-side engine only; the uplink patches through an OCS port
            // to a peer AB (whose engine is accounted on its own uplink).
            cost: ab_base_cost + book.eng_cost + book.fiber_cost + book.ocs_port_cost / 2.0,
            power: ab_base_power + book.eng_power + book.ocs_chassis_power / 128.0,
        },
    }
}

/// Fig. 1 savings: (capex saving, power saving) of spine-free vs
/// spine-full, as fractions.
pub fn spine_free_savings(book: &CostBook) -> (f64, f64) {
    let full = dcn_per_uplink(DcnStyle::SpineFull, book);
    let free = dcn_per_uplink(DcnStyle::SpineFree, book);
    (1.0 - free.cost / full.cost, 1.0 - free.power / full.power)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_ratios_match_paper() {
        // Table 1: DCN 1.24×/1.10×, Lightwave 1.06×/1.01×, Static 1×/1×.
        let rows = table1(&CostBook::default());
        let find = |k: SuperpodFabric| rows.iter().find(|r| r.0 == k).copied().unwrap();
        let (_, c_eps, p_eps) = find(SuperpodFabric::EpsDcn);
        let (_, c_lw, p_lw) = find(SuperpodFabric::Lightwave);
        let (_, c_st, p_st) = find(SuperpodFabric::Static);
        assert!((c_eps - 1.24).abs() < 0.02, "EPS cost {c_eps:.3}");
        assert!((p_eps - 1.10).abs() < 0.02, "EPS power {p_eps:.3}");
        assert!((c_lw - 1.06).abs() < 0.01, "lightwave cost {c_lw:.3}");
        assert!((p_lw - 1.01).abs() < 0.005, "lightwave power {p_lw:.3}");
        assert_eq!((c_st, p_st), (1.0, 1.0));
    }

    #[test]
    fn lightwave_premium_is_small_absolute() {
        // The abstract's framing: the reconfigurable fabric costs < 6%
        // over static while unlocking the §4.2 gains.
        let book = CostBook::default();
        let s = superpod_fabric(SuperpodFabric::Static, &book);
        let l = superpod_fabric(SuperpodFabric::Lightwave, &book);
        assert!((l.cost - s.cost) / s.cost <= 0.06 + 1e-9);
    }

    #[test]
    fn spine_free_savings_match_poutievski() {
        // §4.2: "30% reduction in CapEx and 41% reduction in OpEx".
        let (capex, power) = spine_free_savings(&CostBook::default());
        assert!((capex - 0.30).abs() < 0.03, "capex saving {capex:.3}");
        assert!((power - 0.41).abs() < 0.03, "power saving {power:.3}");
    }

    #[test]
    fn ocs_chassis_power_stays_within_rating() {
        let book = CostBook::default();
        assert!(book.ocs_chassis_power < 108.0, "under the Palomar max");
    }

    #[test]
    fn eps_always_most_expensive() {
        let book = CostBook::default();
        let e = superpod_fabric(SuperpodFabric::EpsDcn, &book);
        let l = superpod_fabric(SuperpodFabric::Lightwave, &book);
        let s = superpod_fabric(SuperpodFabric::Static, &book);
        assert!(e.cost > l.cost && l.cost > s.cost);
        assert!(e.power > l.power && l.power > s.power);
    }
}
