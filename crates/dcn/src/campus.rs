//! Campus networks: topology engineering that follows service lifecycles.
//!
//! §1/§6: "campus networks that must support a range of cluster-to-cluster
//! communication patterns, shifting with the turnup and turndown of
//! services". This module simulates exactly that regime: services with
//! lifetimes create cluster-to-cluster demand, each epoch the topology is
//! re-engineered for the active set — *with the stability hint*, so only
//! the trunks that must move, move — and the result runs against a static
//! uniform mesh on the same hardware budget.

use crate::flowsim;
use crate::realize::MeshPlacement;
use crate::te::engineer;
use crate::topology::Mesh;
use crate::traffic::TrafficMatrix;
use lightwave_telemetry::rollup::{PortPath, RollupTree};
use lightwave_units::Nanos;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

/// A service: a long-lived cluster-to-cluster flow.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Service {
    /// Source cluster.
    pub src: usize,
    /// Destination cluster.
    pub dst: usize,
    /// Demand, Gb/s (bidirectional).
    pub gbps: f64,
    /// First epoch the service is live.
    pub start: usize,
    /// First epoch the service is gone.
    pub end: usize,
}

/// Per-epoch outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EpochReport {
    /// Epoch index.
    pub epoch: usize,
    /// Live services.
    pub services: usize,
    /// Throughput on the engineered (tracking) topology.
    pub engineered_gbps: f64,
    /// Throughput on the static uniform mesh.
    pub static_gbps: f64,
    /// Trunk-circuits that moved this epoch.
    pub circuits_moved: usize,
    /// Trunk-circuits preserved from the previous epoch.
    pub circuits_preserved: usize,
}

/// Full simulation outcome.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampusReport {
    /// Per-epoch rows.
    pub epochs: Vec<EpochReport>,
}

impl CampusReport {
    /// Aggregate throughput gain of tracking TE over the static mesh.
    pub fn aggregate_gain(&self) -> f64 {
        let eng: f64 = self.epochs.iter().map(|e| e.engineered_gbps).sum();
        let stat: f64 = self.epochs.iter().map(|e| e.static_gbps).sum();
        eng / stat.max(1e-9)
    }

    /// Folds the per-epoch outcomes into the campus rollup tree under
    /// `pod`: throughput, churn, and preservation samples on the DCN
    /// pseudo-switch leaf `u32::MAX`, one leaf port per epoch, stamped
    /// `epoch × epoch_duration` in sim time. This is how the
    /// cluster-to-cluster TE layer reports through the same
    /// `campus_health.json` plane as the OCS/service producers.
    pub fn fold_into_rollup(&self, tree: &mut RollupTree, pod: u32, epoch_duration: Nanos) {
        let eng = tree.metric("te_engineered_gbps");
        let stat = tree.metric("te_static_gbps");
        let moved = tree.metric("te_circuits_moved");
        let kept = tree.metric("te_circuits_preserved");
        for e in &self.epochs {
            let at = Nanos(e.epoch as u64 * epoch_duration.0);
            let path = PortPath::new(pod, u32::MAX, e.epoch as u32);
            tree.ingest(eng, path, at, e.engineered_gbps);
            tree.ingest(stat, path, at, e.static_gbps);
            tree.ingest(moved, path, at, e.circuits_moved as f64);
            tree.ingest(kept, path, at, e.circuits_preserved as f64);
        }
    }

    /// Mean fraction of circuits preserved across epochs (excluding the
    /// first, which builds from scratch).
    pub fn mean_preserved_fraction(&self) -> f64 {
        let rows: Vec<&EpochReport> = self.epochs.iter().skip(1).collect();
        if rows.is_empty() {
            return 1.0;
        }
        rows.iter()
            .map(|e| {
                let total = e.circuits_preserved + e.circuits_moved;
                if total == 0 {
                    1.0
                } else {
                    e.circuits_preserved as f64 / total as f64
                }
            })
            .sum::<f64>()
            / rows.len() as f64
    }
}

/// The campus simulation.
#[derive(Debug, Clone, Copy)]
pub struct CampusSim {
    /// Clusters on the campus.
    pub clusters: usize,
    /// OCS uplinks per cluster.
    pub uplinks: usize,
    /// Capacity per trunk, Gb/s.
    pub trunk_gbps: f64,
    /// Background (always-on) demand per pair, Gb/s.
    pub background_gbps: f64,
}

impl CampusSim {
    /// A representative campus: 12 clusters, 22 uplinks each, 100G trunks.
    pub fn default_campus() -> CampusSim {
        CampusSim {
            clusters: 12,
            uplinks: 22,
            trunk_gbps: 100.0,
            background_gbps: 15.0,
        }
    }

    /// Generates a service schedule: Poisson arrivals, exponential
    /// lifetimes, random cluster pairs, heavy demands.
    pub fn generate_services(&self, epochs: usize, seed: u64) -> Vec<Service> {
        let mut rng = StdRng::seed_from_u64(seed);
        let lifetime = Exp::<f64>::new(1.0 / 6.0).expect("positive rate"); // mean 6 epochs
        let mut services = Vec::new();
        for epoch in 0..epochs {
            // ~2 new services per epoch.
            let arrivals = if rng.random_bool(0.8) { 2 } else { 1 };
            for _ in 0..arrivals {
                let src = rng.random_range(0..self.clusters);
                let mut dst = rng.random_range(0..self.clusters);
                while dst == src {
                    dst = rng.random_range(0..self.clusters);
                }
                let life = (lifetime.sample(&mut rng).ceil() as usize).max(1);
                services.push(Service {
                    src,
                    dst,
                    gbps: rng.random_range(150.0..500.0),
                    start: epoch,
                    end: epoch + life,
                });
            }
        }
        services
    }

    /// The demand matrix of one epoch.
    pub fn matrix_at(&self, services: &[Service], epoch: usize) -> TrafficMatrix {
        let mut demand = vec![vec![self.background_gbps; self.clusters]; self.clusters];
        for (i, row) in demand.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        for s in services {
            if s.start <= epoch && epoch < s.end {
                demand[s.src][s.dst] += s.gbps;
                demand[s.dst][s.src] += s.gbps;
            }
        }
        TrafficMatrix::new(demand)
    }

    /// Runs `epochs` epochs of the campus lifecycle.
    pub fn run(&self, epochs: usize, seed: u64) -> CampusReport {
        assert!(epochs > 0, "need at least one epoch");
        let services = self.generate_services(epochs, seed);
        let static_mesh = Mesh::uniform(self.clusters, self.uplinks);
        let mut prev_placement: Option<MeshPlacement> = None;
        let mut rows = Vec::with_capacity(epochs);
        for epoch in 0..epochs {
            let tm = self.matrix_at(&services, epoch);
            let live = services
                .iter()
                .filter(|s| s.start <= epoch && epoch < s.end)
                .count();
            let mesh = engineer(&tm, self.uplinks);
            let placement =
                MeshPlacement::place_with_hint(&mesh, self.uplinks, prev_placement.as_ref())
                    .expect("degree fits the uplink budget");
            // Circuit-level churn accounting against the previous epoch.
            let (mut preserved, mut moved) = (0usize, 0usize);
            if let Some(prev) = &prev_placement {
                for (pair, legs) in &placement.trunks {
                    let old = prev.trunks.get(pair);
                    for leg in legs {
                        if old.is_some_and(|o| o.contains(leg)) {
                            preserved += 1;
                        } else {
                            moved += 1;
                        }
                    }
                }
            } else {
                moved = placement.circuit_count();
            }
            let engineered = flowsim::allocate(&mesh, &tm, self.trunk_gbps);
            let static_run = flowsim::allocate(&static_mesh, &tm, self.trunk_gbps);
            rows.push(EpochReport {
                epoch,
                services: live,
                engineered_gbps: engineered.throughput,
                static_gbps: static_run.throughput,
                circuits_moved: moved,
                circuits_preserved: preserved,
            });
            prev_placement = Some(placement);
        }
        CampusReport { epochs: rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracking_te_beats_static_in_aggregate() {
        let report = CampusSim::default_campus().run(30, 42);
        let gain = report.aggregate_gain();
        assert!(
            gain > 1.03,
            "tracking TE should beat the static mesh over a service lifecycle: {gain:.3}"
        );
        // And never lose badly in any single epoch.
        for e in &report.epochs {
            assert!(
                e.engineered_gbps > 0.9 * e.static_gbps,
                "epoch {}: engineered {} vs static {}",
                e.epoch,
                e.engineered_gbps,
                e.static_gbps
            );
        }
    }

    #[test]
    fn churn_is_incremental_not_forklift() {
        let report = CampusSim::default_campus().run(30, 7);
        let preserved = report.mean_preserved_fraction();
        assert!(
            preserved > 0.5,
            "epoch-to-epoch reconfiguration should preserve most circuits: {preserved:.2}"
        );
        // The first epoch builds everything.
        assert_eq!(report.epochs[0].circuits_preserved, 0);
        assert!(report.epochs[0].circuits_moved > 0);
    }

    #[test]
    fn service_matrix_is_consistent() {
        let sim = CampusSim::default_campus();
        let services = vec![Service {
            src: 1,
            dst: 4,
            gbps: 200.0,
            start: 2,
            end: 5,
        }];
        let before = sim.matrix_at(&services, 1);
        let during = sim.matrix_at(&services, 3);
        let after = sim.matrix_at(&services, 5);
        assert_eq!(before.demand(1, 4), sim.background_gbps);
        assert_eq!(during.demand(1, 4), sim.background_gbps + 200.0);
        assert_eq!(during.demand(4, 1), sim.background_gbps + 200.0);
        assert_eq!(after.demand(1, 4), sim.background_gbps);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = CampusSim::default_campus().run(10, 3);
        let b = CampusSim::default_campus().run(10, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn report_folds_into_the_campus_rollup() {
        let report = CampusSim::default_campus().run(10, 3);
        let mut tree = RollupTree::new();
        report.fold_into_rollup(&mut tree, 2, Nanos::from_secs_f64(60.0));
        tree.scrape();
        tree.check_consistency().expect("rollup consistent");
        let moved = tree.metric("te_circuits_moved");
        assert_eq!(tree.pod_agg(2, moved).count, 10, "one sample per epoch");
        let total: usize = report.epochs.iter().map(|e| e.circuits_moved).sum();
        // Counts quantize exactly (micro-units of integer values).
        assert_eq!(tree.campus_agg(moved).sum_micros, total as i64 * 1_000_000);
        assert_eq!(tree.ports(), 10, "one leaf per epoch");
    }

    #[test]
    fn service_generation_has_churn() {
        let sim = CampusSim::default_campus();
        let services = sim.generate_services(20, 9);
        assert!(services.len() > 20, "roughly 2 arrivals per epoch");
        assert!(services.iter().all(|s| s.src != s.dst && s.end > s.start));
    }
}
