//! Rapid technology refresh: mixing transceiver generations on one fabric.
//!
//! §2.1: "the expansion capability leads to the ability to connect
//! different-generation ABs running at different data rates ... to the
//! same OCS. Interoperability between heterogeneous ABs is ensured through
//! the compatibility of optical transceiver specifications across multiple
//! generations ... leading to faster introduction of new technology."
//!
//! The model: each aggregation block belongs to a transceiver generation;
//! a trunk between two ABs runs at the *negotiated* (older) generation's
//! rate — the OCS itself is rate-agnostic, so nothing else changes. A
//! rolling upgrade replaces one AB per epoch. The comparison is against a
//! spine-full fabric, where the *spine* must be forklifted to the new rate
//! before any AB-pair benefits (every path crosses the spine, and a path
//! runs at the minimum of its three hops).

use lightwave_optics::modulation::LaneRate;
use serde::{Deserialize, Serialize};

/// A transceiver generation and its per-trunk rate.
pub fn generation_gbps(rate: LaneRate) -> f64 {
    // 4-lane trunks.
    4.0 * rate.bit_rate().gbps()
}

/// A fleet of ABs with per-AB generations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeterogeneousFabric {
    /// Per-AB transceiver generation.
    pub generations: Vec<LaneRate>,
    /// Trunks per AB pair (uniform for this study).
    pub trunks_per_pair: usize,
}

impl HeterogeneousFabric {
    /// A fabric of `n` ABs, all at `rate`.
    pub fn uniform(n: usize, rate: LaneRate, trunks_per_pair: usize) -> HeterogeneousFabric {
        assert!(n >= 2);
        HeterogeneousFabric {
            generations: vec![rate; n],
            trunks_per_pair,
        }
    }

    /// Number of ABs.
    pub fn n(&self) -> usize {
        self.generations.len()
    }

    /// Trunk rate between two ABs on the OCS fabric: both ends negotiate
    /// to the older generation (§3.3.1's multi-rate modules), and the OCS
    /// passes whatever the light carries.
    pub fn pair_gbps_spine_free(&self, i: usize, j: usize) -> f64 {
        let rate = self.generations[i].negotiate(self.generations[j]);
        generation_gbps(rate) * self.trunks_per_pair as f64
    }

    /// Trunk rate between two ABs on a spine-full fabric whose spine runs
    /// at `spine`: the path is AB→spine→AB and runs at the slowest hop.
    pub fn pair_gbps_spine_full(&self, i: usize, j: usize, spine: LaneRate) -> f64 {
        let rate = self.generations[i]
            .negotiate(self.generations[j])
            .negotiate(spine);
        generation_gbps(rate) * self.trunks_per_pair as f64
    }

    /// Aggregate fabric capacity (sum over unordered pairs).
    pub fn capacity_spine_free(&self) -> f64 {
        let n = self.n();
        (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| self.pair_gbps_spine_free(i, j))
            .sum()
    }

    /// Aggregate capacity through a spine of the given generation.
    pub fn capacity_spine_full(&self, spine: LaneRate) -> f64 {
        let n = self.n();
        (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| self.pair_gbps_spine_full(i, j, spine))
            .sum()
    }

    /// Upgrades AB `i` to `rate`.
    pub fn upgrade_ab(&mut self, i: usize, rate: LaneRate) {
        self.generations[i] = rate;
    }
}

/// One epoch of the rolling-upgrade study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RefreshEpoch {
    /// ABs upgraded so far.
    pub upgraded: usize,
    /// Spine-free (OCS) fabric capacity, Gb/s.
    pub spine_free_gbps: f64,
    /// Spine-full capacity with the *old* spine still in place, Gb/s.
    pub spine_full_old_spine_gbps: f64,
}

/// Rolls a fleet of `n` ABs from `old` to `new`, one AB per epoch, and
/// reports capacity under both architectures. The spine-full fabric keeps
/// its old-generation spine throughout (forklifting it is the expensive,
/// disruptive step the OCS removes).
pub fn rolling_upgrade(n: usize, old: LaneRate, new: LaneRate, trunks: usize) -> Vec<RefreshEpoch> {
    let mut fabric = HeterogeneousFabric::uniform(n, old, trunks);
    let mut out = Vec::with_capacity(n + 1);
    for upgraded in 0..=n {
        out.push(RefreshEpoch {
            upgraded,
            spine_free_gbps: fabric.capacity_spine_free(),
            spine_full_old_spine_gbps: fabric.capacity_spine_full(old),
        });
        if upgraded < n {
            fabric.upgrade_ab(upgraded, new);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixed_pairs_negotiate_down_but_new_pairs_fly() {
        let mut f = HeterogeneousFabric::uniform(4, LaneRate::Pam4_50, 4);
        f.upgrade_ab(0, LaneRate::Pam4_100);
        f.upgrade_ab(1, LaneRate::Pam4_100);
        // New↔new at the new rate, mixed and old↔old at the old rate.
        assert!((f.pair_gbps_spine_free(0, 1) - 4.0 * 4.0 * 106.25).abs() < 1.0);
        assert!((f.pair_gbps_spine_free(0, 2) - 4.0 * 4.0 * 53.125).abs() < 1.0);
        assert!((f.pair_gbps_spine_free(2, 3) - 4.0 * 4.0 * 53.125).abs() < 1.0);
    }

    #[test]
    fn old_spine_caps_everything() {
        let mut f = HeterogeneousFabric::uniform(4, LaneRate::Pam4_50, 4);
        f.upgrade_ab(0, LaneRate::Pam4_100);
        f.upgrade_ab(1, LaneRate::Pam4_100);
        // Even the new↔new pair is stuck at the spine's rate.
        assert!((f.pair_gbps_spine_full(0, 1, LaneRate::Pam4_50) - 4.0 * 4.0 * 53.125).abs() < 1.0);
    }

    #[test]
    fn rolling_upgrade_capacity_grows_incrementally_on_ocs_only() {
        let epochs = rolling_upgrade(16, LaneRate::Pam4_50, LaneRate::Pam4_100, 2);
        assert_eq!(epochs.len(), 17);
        // Spine-free capacity is strictly non-decreasing and ends doubled.
        for w in epochs.windows(2) {
            assert!(w[1].spine_free_gbps >= w[0].spine_free_gbps);
        }
        let first = epochs.first().unwrap();
        let last = epochs.last().unwrap();
        assert!((last.spine_free_gbps / first.spine_free_gbps - 2.0).abs() < 1e-9);
        // Spine-full with the old spine never moves at all.
        for e in &epochs {
            assert!((e.spine_full_old_spine_gbps - first.spine_full_old_spine_gbps).abs() < 1e-9);
        }
    }

    #[test]
    fn benefit_starts_with_the_second_upgraded_ab() {
        // One new AB has no new peer to talk fast to; the second creates
        // the first fast pair — incremental, no flag day.
        let epochs = rolling_upgrade(8, LaneRate::Nrz25, LaneRate::Pam4_100, 1);
        assert_eq!(epochs[0].spine_free_gbps, epochs[1].spine_free_gbps);
        assert!(epochs[2].spine_free_gbps > epochs[1].spine_free_gbps);
    }

    #[test]
    fn order_of_magnitude_interop_claim() {
        // §6: "we have maintained interoperability across an order of
        // magnitude difference in data rates (400 Gb/s vs 40 Gb/s)" — the
        // negotiation path spans NRZ25 to PAM4-100 (4×ratio per lane, an
        // order of magnitude per 4-lane trunk vs the 40G QSFP+ era).
        let f = HeterogeneousFabric {
            generations: vec![LaneRate::Nrz25, LaneRate::Pam4_100],
            trunks_per_pair: 1,
        };
        let gbps = f.pair_gbps_spine_free(0, 1);
        assert!(
            (gbps - 4.0 * 25.781_25).abs() < 0.1,
            "runs at the older rate: {gbps}"
        );
    }
}
