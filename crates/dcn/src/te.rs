//! Topology engineering: shape the mesh to the demand.
//!
//! The solver allocates each AB's trunk budget across peers proportionally
//! to (symmetrized) forecast demand, with largest-remainder rounding, a
//! 1-trunk connectivity floor so transit routing always works, and a
//! repair pass that enforces per-AB radix budgets. This is the spirit of
//! Jupiter's topology engineering \[47\]: direct capacity follows long-lived
//! demand, and what cannot go direct rides two-hop transit.

// Index loops below mirror the matrix math (i, j range over AB pairs
// across several parallel matrices); iterator forms obscure that.
#![allow(clippy::needless_range_loop)]

use crate::topology::Mesh;
use crate::traffic::TrafficMatrix;

/// Builds a demand-proportional mesh.
///
/// Every AB pair gets at least one trunk (connectivity floor, so long as
/// the budget allows: `uplinks_per_ab ≥ n−1`), and each AB's remaining
/// budget is split across peers by demand share.
pub fn engineer(tm: &TrafficMatrix, uplinks_per_ab: usize) -> Mesh {
    let n = tm.n();
    assert!(
        uplinks_per_ab >= n - 1,
        "need at least one uplink per peer for the connectivity floor"
    );
    let mut mesh = Mesh::empty(n, uplinks_per_ab);

    // Symmetric demand per unordered pair.
    let pair_demand = |i: usize, j: usize| tm.demand(i, j) + tm.demand(j, i);

    // Ideal (fractional) trunks per pair from each endpoint's budget:
    // proportional to demand share, floored at 1.
    // Work per-AB, then reconcile pairs by taking the min of the two
    // endpoints' wishes (a trunk consumes budget at both ends).
    let mut wish = vec![vec![0usize; n]; n];
    for i in 0..n {
        let total: f64 = (0..n).filter(|&j| j != i).map(|j| pair_demand(i, j)).sum();
        let spare = uplinks_per_ab - (n - 1);
        // Largest-remainder apportionment of the spare trunks.
        let mut shares: Vec<(usize, f64)> = (0..n)
            .filter(|&j| j != i)
            .map(|j| {
                let frac = if total > 0.0 {
                    pair_demand(i, j) / total * spare as f64
                } else {
                    spare as f64 / (n - 1) as f64
                };
                (j, frac)
            })
            .collect();
        let mut alloc: Vec<(usize, usize, f64)> = shares
            .drain(..)
            .map(|(j, f)| (j, f.floor() as usize, f - f.floor()))
            .collect();
        let mut used: usize = alloc.iter().map(|a| a.1).sum();
        alloc.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("finite remainders"));
        let mut k = 0;
        while used < spare && k < alloc.len() {
            alloc[k].1 += 1;
            used += 1;
            k += 1;
        }
        for (j, extra, _) in alloc {
            wish[i][j] = 1 + extra; // the floor plus the demand share
        }
    }

    for i in 0..n {
        for j in (i + 1)..n {
            mesh.set_trunks(i, j, wish[i][j].min(wish[j][i]));
        }
    }
    debug_assert!(mesh.within_budget(), "reconciliation must respect budgets");

    // Reclaim budget stranded by min-reconciliation: greedily add trunks to
    // the highest-demand pair whose both endpoints have spare budget.
    loop {
        let mut best: Option<(usize, usize, f64)> = None;
        for i in 0..n {
            if mesh.degree(i) >= uplinks_per_ab {
                continue;
            }
            for j in (i + 1)..n {
                if mesh.degree(j) >= uplinks_per_ab {
                    continue;
                }
                let d = pair_demand(i, j);
                match best {
                    Some((_, _, bd)) if bd >= d => {}
                    _ => best = Some((i, j, d)),
                }
            }
        }
        match best {
            Some((i, j, _)) => {
                let t = mesh.trunks(i, j);
                mesh.set_trunks(i, j, t + 1);
            }
            None => break,
        }
    }
    mesh
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_demand_yields_uniformish_mesh() {
        let tm = TrafficMatrix::uniform(8, 10.0);
        let mesh = engineer(&tm, 21); // 3 per peer
        for i in 0..8 {
            for j in 0..8 {
                if i != j {
                    assert!(
                        (2..=4).contains(&mesh.trunks(i, j)),
                        "trunks({i},{j}) = {}",
                        mesh.trunks(i, j)
                    );
                }
            }
        }
        assert!(mesh.connected());
        assert!(mesh.within_budget());
    }

    #[test]
    fn hot_pairs_get_more_trunks() {
        let tm = TrafficMatrix::hotspot(8, 2.0, 3, 20.0, 5);
        let mesh = engineer(&tm, 28);
        // Find a hot pair and a cold pair.
        let mut hot_trunks = 0;
        let mut cold_trunks = usize::MAX;
        for i in 0..8 {
            for j in (i + 1)..8 {
                if tm.demand(i, j) > 2.0 + 1e-9 {
                    hot_trunks = hot_trunks.max(mesh.trunks(i, j));
                } else {
                    cold_trunks = cold_trunks.min(mesh.trunks(i, j));
                }
            }
        }
        assert!(
            hot_trunks >= cold_trunks + 2,
            "hot pairs ({hot_trunks}) should clearly out-trunk cold ones ({cold_trunks})"
        );
    }

    #[test]
    fn connectivity_floor_holds_under_extreme_skew() {
        // One pair hogs everything; every pair still gets ≥ 1 trunk.
        let mut demand = vec![vec![0.0; 6]; 6];
        demand[0][1] = 1000.0;
        demand[1][0] = 1000.0;
        // Tiny background so totals are non-zero.
        for i in 0..6 {
            for j in 0..6 {
                if i != j && demand[i][j] == 0.0 {
                    demand[i][j] = 0.001;
                }
            }
        }
        let tm = TrafficMatrix::new(demand);
        let mesh = engineer(&tm, 10);
        assert!(mesh.connected());
        for i in 0..6 {
            for j in 0..6 {
                if i != j {
                    assert!(mesh.trunks(i, j) >= 1, "floor violated at ({i},{j})");
                }
            }
        }
        assert!(
            mesh.trunks(0, 1) >= 4,
            "the elephant pair gets the spare budget"
        );
    }

    #[test]
    fn budgets_always_respected() {
        for seed in 0..5 {
            let tm = TrafficMatrix::gravity(12, 10.0, seed);
            let mesh = engineer(&tm, 22);
            assert!(mesh.within_budget(), "seed {seed}");
            assert!(mesh.connected(), "seed {seed}");
        }
    }

    #[test]
    #[should_panic(expected = "connectivity floor")]
    fn insufficient_budget_rejected() {
        let tm = TrafficMatrix::uniform(10, 1.0);
        let _ = engineer(&tm, 5);
    }
}
