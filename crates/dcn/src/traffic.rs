//! Traffic-matrix generators.
//!
//! Topology engineering pays off on *long-lived, skewed* patterns (§2.1:
//! "optimization of inter-AB bandwidth when there is an increase in
//! long-lived traffic demand between a particular set of ABs"). These
//! generators produce the regimes the evaluation sweeps: uniform
//! (TE-neutral), gravity (mildly skewed), and hotspot (strongly skewed).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// A demand matrix in Gb/s between AB pairs (diagonal is zero).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrafficMatrix {
    n: usize,
    demand: Vec<Vec<f64>>,
}

impl TrafficMatrix {
    /// Builds from a raw matrix.
    ///
    /// # Panics
    /// Panics if the matrix is not square with a zero diagonal and
    /// non-negative entries.
    pub fn new(demand: Vec<Vec<f64>>) -> TrafficMatrix {
        let n = demand.len();
        assert!(n >= 2, "need at least two ABs");
        for (i, row) in demand.iter().enumerate() {
            assert_eq!(row.len(), n, "matrix must be square");
            assert!(row[i] == 0.0, "diagonal must be zero");
            assert!(row.iter().all(|&d| d >= 0.0 && d.is_finite()));
        }
        TrafficMatrix { n, demand }
    }

    /// Uniform all-to-all demand.
    pub fn uniform(n: usize, per_pair_gbps: f64) -> TrafficMatrix {
        let mut demand = vec![vec![per_pair_gbps; n]; n];
        for (i, row) in demand.iter_mut().enumerate() {
            row[i] = 0.0;
        }
        TrafficMatrix::new(demand)
    }

    /// Gravity model: each AB has a log-normal "mass"; demand i→j ∝
    /// mass_i · mass_j, scaled so the mean pair demand is `mean_gbps`.
    pub fn gravity(n: usize, mean_gbps: f64, seed: u64) -> TrafficMatrix {
        let mut rng = StdRng::seed_from_u64(seed);
        let dist = LogNormal::new(0.0, 0.8).expect("valid params");
        let mass: Vec<f64> = (0..n).map(|_| dist.sample(&mut rng)).collect();
        let mut demand = vec![vec![0.0; n]; n];
        let mut total = 0.0;
        for i in 0..n {
            for j in 0..n {
                if i != j {
                    demand[i][j] = mass[i] * mass[j];
                    total += demand[i][j];
                }
            }
        }
        let scale = mean_gbps * (n * (n - 1)) as f64 / total;
        for row in &mut demand {
            for d in row.iter_mut() {
                *d *= scale;
            }
        }
        TrafficMatrix::new(demand)
    }

    /// Hotspot model: a uniform floor plus `hot_pairs` randomly chosen
    /// pairs carrying `hot_factor`× the floor (the long-lived elephant
    /// pattern TE exploits).
    pub fn hotspot(
        n: usize,
        floor_gbps: f64,
        hot_pairs: usize,
        hot_factor: f64,
        seed: u64,
    ) -> TrafficMatrix {
        assert!(hot_pairs <= n * (n - 1) / 2, "too many hot pairs");
        let mut tm = TrafficMatrix::uniform(n, floor_gbps);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut chosen = std::collections::BTreeSet::new();
        while chosen.len() < hot_pairs {
            let i = rng.random_range(0..n);
            let j = rng.random_range(0..n);
            if i < j {
                chosen.insert((i, j));
            }
        }
        for (i, j) in chosen {
            tm.demand[i][j] = floor_gbps * hot_factor;
            tm.demand[j][i] = floor_gbps * hot_factor;
        }
        tm
    }

    /// AB count.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Demand i → j.
    pub fn demand(&self, i: usize, j: usize) -> f64 {
        self.demand[i][j]
    }

    /// Total offered load.
    pub fn total(&self) -> f64 {
        self.demand.iter().flatten().sum()
    }

    /// Skew metric: max pair demand / mean pair demand.
    pub fn skew(&self) -> f64 {
        let n_pairs = (self.n * (self.n - 1)) as f64;
        let mean = self.total() / n_pairs;
        let max = self.demand.iter().flatten().fold(0.0f64, |a, &b| a.max(b));
        max / mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_has_no_skew() {
        let tm = TrafficMatrix::uniform(8, 10.0);
        assert!((tm.skew() - 1.0).abs() < 1e-9);
        assert!((tm.total() - 8.0 * 7.0 * 10.0).abs() < 1e-9);
    }

    #[test]
    fn gravity_is_skewed_but_mean_preserving() {
        let tm = TrafficMatrix::gravity(16, 10.0, 3);
        let mean = tm.total() / (16.0 * 15.0);
        assert!((mean - 10.0).abs() < 1e-9, "mean preserved: {mean}");
        assert!(
            tm.skew() > 2.0,
            "gravity should be visibly skewed: {}",
            tm.skew()
        );
    }

    #[test]
    fn hotspot_raises_selected_pairs() {
        let tm = TrafficMatrix::hotspot(16, 5.0, 6, 10.0, 1);
        // skew = hot/mean where mean is pulled up by the hot entries:
        // mean = (12·50 + 228·5)/240 = 7.25 → skew ≈ 6.9.
        assert!((5.0..10.0).contains(&tm.skew()), "skew {}", tm.skew());
        let hot = tm
            .demand
            .iter()
            .flatten()
            .filter(|&&d| d > 5.0 + 1e-9)
            .count();
        assert_eq!(hot, 12, "6 symmetric hot pairs = 12 entries");
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            TrafficMatrix::gravity(8, 1.0, 7),
            TrafficMatrix::gravity(8, 1.0, 7)
        );
    }

    #[test]
    #[should_panic(expected = "diagonal must be zero")]
    fn bad_diagonal_rejected() {
        let _ = TrafficMatrix::new(vec![vec![1.0, 2.0], vec![2.0, 0.0]]);
    }
}
