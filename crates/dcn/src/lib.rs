//! Datacenter-network models: the spine-free evolution (Fig. 1) and its
//! topology-engineering gains (§2.1, §4.2).
//!
//! The paper's DCN story (detailed in Poutievski et al., SIGCOMM'22, and
//! summarized in §4.2): replacing the spine layer of a Clos fabric with
//! OCSes that directly interconnect aggregation blocks saves ~30% capex
//! and ~41% power, and — because the OCS topology can be *engineered* to
//! match long-lived traffic — improves flow completion time ~10% and TCP
//! throughput ~30% over a uniform mesh.
//!
//! - [`topology`] — aggregation-block graphs: spine-full Clos, uniform
//!   spine-free mesh, and traffic-engineered spine-free mesh.
//! - [`traffic`] — traffic-matrix generators (uniform, gravity, hotspot).
//! - [`te`] — the topology-engineering solver: allocate inter-AB trunks
//!   proportionally to forecast demand (largest-remainder rounding under
//!   per-AB radix budgets).
//! - [`flowsim`] — max-min fair throughput allocation with direct +
//!   two-hop transit routing, yielding throughput and FCT comparisons.
//! - [`realize`] — mapping a logical mesh onto live OCS hardware and
//!   re-engineering it with minimal-delta transactions.
//! - [`campus`] — the campus use case: topology engineering tracking
//!   service turnup/turndown over time (§1, §6).
//! - [`refresh`] — rapid technology refresh: heterogeneous transceiver
//!   generations interoperating on a rate-agnostic OCS (§2.1).
//! - [`cost`] — the component-structure cost/power model behind Table 1
//!   and the Fig. 1 savings.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campus;
pub mod cost;
pub mod flowsim;
pub mod realize;
pub mod refresh;
pub mod te;
pub mod topology;
pub mod traffic;

pub use realize::DcnFabric;
pub use topology::{AbId, Mesh};
pub use traffic::TrafficMatrix;
