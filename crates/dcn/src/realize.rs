//! Realizing a logical mesh on physical OCS hardware.
//!
//! The Fig. 1b architecture: every aggregation block runs one uplink fiber
//! pair to each switch of the OCS layer (the same "one port pair per
//! endpoint per switch" plan as the superpod — AB `i` owns North port `i`
//! and South port `i` on every OCS). A trunk between ABs `i` and `j` is a
//! circuit `North i → South j` on some switch where both ports are free;
//! `t` parallel trunks use `t` different switches.
//!
//! Consequences, both verified by tests:
//!  * any mesh whose per-AB degree fits the OCS-layer size is realizable
//!    (Hall-style greedy works because every switch looks the same);
//!  * re-engineering the topology for a new traffic matrix is a minimal
//!    delta — trunks present in both meshes never blink (§2.1's topology
//!    engineering on live traffic).

use crate::topology::Mesh;
use lightwave_fabric::{
    CommitError, CommitReport, FabricController, FabricTarget, OcsFleet, OcsId,
};
use lightwave_ocs::{PortId, PortMapping};
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Why a mesh could not be mapped onto the OCS layer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum RealizeError {
    /// An AB's degree exceeds the number of switches (it has one port pair
    /// per switch).
    DegreeExceedsSwitches {
        /// The overloaded AB.
        ab: usize,
        /// Its degree.
        degree: usize,
        /// Switches available.
        switches: usize,
    },
    /// Greedy port assignment failed (should not happen within degree
    /// bounds; surfaced rather than panicking).
    AssignmentFailed {
        /// The unplaceable trunk.
        pair: (usize, usize),
    },
}

impl std::fmt::Display for RealizeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RealizeError::DegreeExceedsSwitches {
                ab,
                degree,
                switches,
            } => write!(
                f,
                "AB {ab} needs {degree} trunks but the OCS layer has only {switches} switches"
            ),
            RealizeError::AssignmentFailed { pair } => {
                write!(f, "could not place trunk {pair:?}")
            }
        }
    }
}

impl std::error::Error for RealizeError {}

/// One physical leg of a trunk: the switch carrying it and its port
/// orientation (a trunk between ABs i < j may run North i → South j or,
/// `flipped`, North j → South i — physically identical, but the ports
/// differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrunkLeg {
    /// The switch.
    pub ocs: OcsId,
    /// Whether the higher-numbered AB takes the North port.
    pub flipped: bool,
}

/// A placement of a mesh onto the OCS layer: which switch carries each
/// parallel trunk of each AB pair.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeshPlacement {
    /// trunk assignments: (ab_i, ab_j) → legs carrying the trunks.
    /// (Serialized as an entry list: JSON maps require string keys.)
    #[serde(with = "trunk_map_serde")]
    pub trunks: BTreeMap<(usize, usize), Vec<TrunkLeg>>,
    /// Switches in the OCS layer.
    pub switches: usize,
}

/// Serde representation of the trunk map as a list of entries.
mod trunk_map_serde {
    use super::TrunkLeg;
    use serde::{Deserialize, Deserializer, Serialize, Serializer};
    use std::collections::BTreeMap;

    type Map = BTreeMap<(usize, usize), Vec<TrunkLeg>>;

    pub fn serialize<S: Serializer>(map: &Map, ser: S) -> Result<S::Ok, S::Error> {
        let entries: Vec<(&(usize, usize), &Vec<TrunkLeg>)> = map.iter().collect();
        entries.serialize(ser)
    }

    pub fn deserialize<'de, D: Deserializer<'de>>(de: D) -> Result<Map, D::Error> {
        let entries: Vec<((usize, usize), Vec<TrunkLeg>)> = Vec::deserialize(de)?;
        Ok(entries.into_iter().collect())
    }
}

impl MeshPlacement {
    /// Computes a placement for `mesh` on an OCS layer of `switches`
    /// switches.
    pub fn place(mesh: &Mesh, switches: usize) -> Result<MeshPlacement, RealizeError> {
        Self::place_with_hint(mesh, switches, None)
    }

    /// As [`MeshPlacement::place`], but keeps each trunk on the switches a
    /// previous placement used whenever possible — what turns topology
    /// re-engineering into a minimal fabric delta (§2.1: changing the
    /// logical mesh must not blink the trunks that both meshes share).
    pub fn place_with_hint(
        mesh: &Mesh,
        switches: usize,
        prev: Option<&MeshPlacement>,
    ) -> Result<MeshPlacement, RealizeError> {
        for i in 0..mesh.n() {
            let degree = mesh.degree(i);
            if degree > switches {
                return Err(RealizeError::DegreeExceedsSwitches {
                    ab: i,
                    degree,
                    switches,
                });
            }
        }
        // Per-switch occupancy of each AB's north/south port.
        let mut north_used = vec![vec![false; mesh.n()]; switches];
        let mut south_used = vec![vec![false; mesh.n()]; switches];
        let mut trunks = BTreeMap::new();
        // Place heaviest pairs first so parallel trunks find room.
        let mut pairs: Vec<(usize, usize, usize)> = Vec::new();
        for i in 0..mesh.n() {
            for j in (i + 1)..mesh.n() {
                let t = mesh.trunks(i, j);
                if t > 0 {
                    pairs.push((i, j, t));
                }
            }
        }
        pairs.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(&b.0)).then(a.1.cmp(&b.1)));
        // Pass 1: pin every trunk to the legs the previous placement used
        // (capped at the new trunk count) — those circuits survive the
        // transaction untouched.
        let mut pinned: BTreeMap<(usize, usize), Vec<TrunkLeg>> = BTreeMap::new();
        if let Some(prev) = prev {
            for &(i, j, t) in &pairs {
                if let Some(old) = prev.trunks.get(&(i, j)) {
                    let keep: Vec<TrunkLeg> = old
                        .iter()
                        .copied()
                        .filter(|leg| (leg.ocs as usize) < switches)
                        .take(t)
                        .collect();
                    for leg in &keep {
                        let (n, s_) = if leg.flipped { (j, i) } else { (i, j) };
                        north_used[leg.ocs as usize][n] = true;
                        south_used[leg.ocs as usize][s_] = true;
                    }
                    pinned.insert((i, j), keep);
                }
            }
        }
        // Pass 2: fill the remainder greedily. A trunk is direction-free
        // physically (the circuit North i → South j and North j → South i
        // connect the same ABs), so try both orientations — this is what
        // makes greedy assignment complete in practice: each AB owns one
        // North and one South port per switch, so a switch can host two of
        // its trunks.
        for (i, j, t) in pairs {
            let mut assigned = pinned.remove(&(i, j)).unwrap_or_default();
            for s in 0..switches {
                if assigned.len() == t {
                    break;
                }
                if assigned.iter().any(|leg| leg.ocs as usize == s) {
                    continue;
                }
                if !north_used[s][i] && !south_used[s][j] {
                    north_used[s][i] = true;
                    south_used[s][j] = true;
                    assigned.push(TrunkLeg {
                        ocs: s as OcsId,
                        flipped: false,
                    });
                } else if !north_used[s][j] && !south_used[s][i] {
                    north_used[s][j] = true;
                    south_used[s][i] = true;
                    assigned.push(TrunkLeg {
                        ocs: s as OcsId,
                        flipped: true,
                    });
                }
            }
            if assigned.len() < t {
                return Err(RealizeError::AssignmentFailed { pair: (i, j) });
            }
            assigned.sort_unstable_by_key(|leg| leg.ocs);
            trunks.insert((i, j), assigned);
        }
        Ok(MeshPlacement { trunks, switches })
    }

    /// The fabric target realizing this placement.
    pub fn fabric_target(&self) -> FabricTarget {
        let mut per_switch: BTreeMap<OcsId, Vec<(PortId, PortId)>> = BTreeMap::new();
        for (&(i, j), legs) in &self.trunks {
            for leg in legs {
                let (n, s) = if leg.flipped { (j, i) } else { (i, j) };
                per_switch
                    .entry(leg.ocs)
                    .or_default()
                    .push((n as PortId, s as PortId));
            }
        }
        let mut target = FabricTarget::new();
        for s in 0..self.switches as OcsId {
            let pairs = per_switch.remove(&s).unwrap_or_default();
            target.set(
                s,
                PortMapping::from_pairs(pairs).expect("placement is port-disjoint"),
            );
        }
        target
    }

    /// Total circuits.
    pub fn circuit_count(&self) -> usize {
        self.trunks.values().map(|v| v.len()).sum()
    }
}

/// A spine-free DCN running on live OCS hardware.
#[derive(Debug)]
pub struct DcnFabric {
    controller: FabricController,
    abs: usize,
    current: Option<MeshPlacement>,
}

impl DcnFabric {
    /// Builds an OCS layer of `switches` switches serving `abs`
    /// aggregation blocks.
    ///
    /// # Panics
    /// Panics if `abs` exceeds the 136-port switch radix.
    pub fn new(abs: usize, switches: usize, seed: u64) -> DcnFabric {
        assert!(
            abs <= lightwave_ocs::TOTAL_PORTS,
            "{abs} ABs exceed the switch radix"
        );
        DcnFabric {
            controller: FabricController::new(OcsFleet::build(switches, seed)),
            abs,
            current: None,
        }
    }

    /// Aggregation blocks served.
    pub fn abs(&self) -> usize {
        self.abs
    }

    /// The fabric controller (health, telemetry).
    pub fn controller(&self) -> &FabricController {
        &self.controller
    }

    /// Installs (or re-engineers to) `mesh`, committing the minimal delta
    /// against whatever is currently running.
    pub fn install(&mut self, mesh: &Mesh) -> Result<CommitReport, DcnFabricError> {
        assert_eq!(mesh.n(), self.abs, "mesh must cover every AB");
        let placement = MeshPlacement::place_with_hint(
            mesh,
            self.controller.fleet.len(),
            self.current.as_ref(),
        )
        .map_err(DcnFabricError::Realize)?;
        let report = self
            .controller
            .commit(&placement.fabric_target())
            .map_err(DcnFabricError::Fabric)?;
        self.current = Some(placement);
        Ok(report)
    }

    /// Advances fabric time.
    pub fn advance(&mut self, dt: Nanos) {
        self.controller.advance(dt);
    }

    /// Whether every circuit is aligned.
    pub fn settled(&self) -> bool {
        self.controller.settled()
    }

    /// The current placement, if any.
    pub fn placement(&self) -> Option<&MeshPlacement> {
        self.current.as_ref()
    }
}

/// Errors from [`DcnFabric::install`].
#[derive(Debug)]
pub enum DcnFabricError {
    /// The mesh cannot be placed.
    Realize(RealizeError),
    /// The fabric rejected the transaction.
    Fabric(CommitError),
}

impl std::fmt::Display for DcnFabricError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DcnFabricError::Realize(e) => write!(f, "placement: {e}"),
            DcnFabricError::Fabric(e) => write!(f, "fabric: {e}"),
        }
    }
}

impl std::error::Error for DcnFabricError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::te::engineer;
    use crate::traffic::TrafficMatrix;

    #[test]
    fn uniform_mesh_places_and_installs() {
        let mesh = Mesh::uniform(16, 30);
        let placement = MeshPlacement::place(&mesh, 32).unwrap();
        assert_eq!(placement.circuit_count(), 16 * 30 / 2);
        let mut fabric = DcnFabric::new(16, 32, 1);
        let report = fabric.install(&mesh).unwrap();
        assert_eq!(report.added, 240);
        fabric.advance(Nanos::from_millis(400));
        assert!(fabric.settled());
    }

    #[test]
    fn placement_is_port_disjoint_per_switch() {
        let tm = TrafficMatrix::hotspot(12, 10.0, 5, 20.0, 7);
        let mesh = engineer(&tm, 22);
        let placement = MeshPlacement::place(&mesh, 24).unwrap();
        let mut seen = std::collections::BTreeSet::new();
        for (&(i, j), legs) in &placement.trunks {
            for leg in legs {
                let (n, s) = if leg.flipped { (j, i) } else { (i, j) };
                assert!(
                    seen.insert((leg.ocs, 'n', n)),
                    "north port clash on switch {}",
                    leg.ocs
                );
                assert!(
                    seen.insert((leg.ocs, 's', s)),
                    "south port clash on switch {}",
                    leg.ocs
                );
            }
        }
    }

    #[test]
    fn degree_beyond_switch_count_rejected() {
        let mesh = Mesh::uniform(8, 40);
        match MeshPlacement::place(&mesh, 16) {
            Err(RealizeError::DegreeExceedsSwitches {
                degree, switches, ..
            }) => {
                assert!(degree > switches);
            }
            other => panic!("expected degree error, got {other:?}"),
        }
    }

    #[test]
    fn topology_engineering_on_live_traffic_is_minimal_delta() {
        // Install the uniform mesh, then re-engineer for a hotspot matrix:
        // trunks common to both meshes never blink.
        let mut fabric = DcnFabric::new(16, 32, 5);
        let uniform = Mesh::uniform(16, 30);
        fabric.install(&uniform).unwrap();
        fabric.advance(Nanos::from_millis(400));

        let tm = TrafficMatrix::hotspot(16, 10.0, 6, 25.0, 3);
        let engineered = engineer(&tm, 30);
        let report = fabric.install(&engineered).unwrap();
        assert!(
            report.untouched > 50,
            "a TE shift preserves the shared floor trunks: {} untouched",
            report.untouched
        );
        assert!(
            report.added > 0 && report.removed > 0,
            "and actually moves capacity"
        );
        fabric.advance(Nanos::from_millis(400));
        assert!(fabric.settled());
    }

    #[test]
    fn reinstalling_same_mesh_is_a_noop() {
        let mut fabric = DcnFabric::new(8, 16, 9);
        let mesh = Mesh::uniform(8, 14);
        fabric.install(&mesh).unwrap();
        fabric.advance(Nanos::from_millis(400));
        let report = fabric.install(&mesh).unwrap();
        assert_eq!(report.added, 0);
        assert_eq!(report.removed, 0);
        assert_eq!(report.untouched, 8 * 14 / 2);
    }

    #[test]
    fn fabric_expansion_pay_as_you_grow() {
        // §2.1 "Fabric Expansion": start with 8 ABs, later densify the
        // mesh — no forklift, just more circuits.
        let mut fabric = DcnFabric::new(8, 16, 11);
        fabric.install(&Mesh::uniform(8, 7)).unwrap();
        fabric.advance(Nanos::from_millis(400));
        let before = fabric.controller().fleet.health().circuits;
        let report = fabric.install(&Mesh::uniform(8, 14)).unwrap();
        assert!(report.untouched > 0, "existing trunks keep carrying");
        fabric.advance(Nanos::from_millis(400));
        let after = fabric.controller().fleet.health().circuits;
        assert!(after > before);
    }
}
