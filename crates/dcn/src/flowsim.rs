//! Flow-level evaluation: max-min-ish throughput over a mesh with direct
//! and two-hop transit routing.
//!
//! Spine-free fabrics route most traffic over the direct OCS trunk between
//! two ABs and spill the remainder over two-hop transit through a third AB
//! (Jupiter's non-shortest-path routing \[47\]). The allocator here does
//! exactly that: direct capacity first, then iterative water-filling of
//! residual demand over the best transit paths. Outputs: per-pair achieved
//! rate, total throughput, and a flow-completion-time proxy.

// Index loops below mirror the matrix math (i, j range over AB pairs
// across several parallel matrices); iterator forms obscure that.
#![allow(clippy::needless_range_loop)]

use crate::topology::Mesh;
use crate::traffic::TrafficMatrix;
use serde::{Deserialize, Serialize};

/// Result of a flow allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlowReport {
    /// Achieved rate per pair, Gb/s.
    pub rate: Vec<Vec<f64>>,
    /// Total achieved throughput, Gb/s.
    pub throughput: f64,
    /// Total offered demand, Gb/s.
    pub offered: f64,
    /// Mean flow-completion-time proxy: the demand-weighted mean of
    /// `demand/rate` (time to drain one demand-unit at the achieved rate);
    /// lower is better. Unsatisfiable pairs are capped at `FCT_CAP`.
    pub mean_fct: f64,
}

/// Cap applied to the per-pair FCT proxy when a pair gets (almost) no rate.
pub const FCT_CAP: f64 = 100.0;

/// Allocates demand over `mesh` with `trunk_gbps` per trunk.
pub fn allocate(mesh: &Mesh, tm: &TrafficMatrix, trunk_gbps: f64) -> FlowReport {
    assert_eq!(mesh.n(), tm.n(), "mesh and matrix must agree on AB count");
    assert!(trunk_gbps > 0.0);
    let n = mesh.n();
    // Residual capacity per unordered pair link.
    let mut cap = vec![vec![0.0f64; n]; n];
    for i in 0..n {
        for j in 0..n {
            cap[i][j] = mesh.trunks(i, j) as f64 * trunk_gbps;
        }
    }
    let mut rate = vec![vec![0.0f64; n]; n];
    let mut residual = vec![vec![0.0f64; n]; n];

    // Phase 1: direct. The pair's own trunks serve its demand first,
    // shared between the two directions.
    for i in 0..n {
        for j in 0..n {
            if i == j {
                continue;
            }
            let want = tm.demand(i, j);
            // Each unordered link is full-duplex per direction: direction
            // i→j can use the full pair capacity.
            let got = want.min(cap[i][j]);
            rate[i][j] = got;
            residual[i][j] = want - got;
        }
    }
    // Deduct direct usage: the binding resource is the larger direction.
    for i in 0..n {
        for j in (i + 1)..n {
            let used = rate[i][j].max(rate[j][i]);
            cap[i][j] -= used;
            cap[j][i] = cap[i][j];
        }
    }

    // Phase 2: transit water-filling. Repeatedly grant each unsatisfied
    // demand a quantum along its best (max-bottleneck) two-hop path.
    let total_residual: f64 = residual.iter().flatten().sum();
    if total_residual > 1e-9 {
        let quantum = (total_residual / 256.0).max(1e-3);
        let mut progress = true;
        while progress {
            progress = false;
            for i in 0..n {
                for j in 0..n {
                    if i == j || residual[i][j] <= 1e-9 {
                        continue;
                    }
                    // Best transit k by bottleneck residual capacity.
                    let mut best: Option<(usize, f64)> = None;
                    for k in 0..n {
                        if k == i || k == j {
                            continue;
                        }
                        let b = cap[i][k].min(cap[k][j]);
                        match best {
                            Some((_, bb)) if bb >= b => {}
                            _ => best = Some((k, b)),
                        }
                    }
                    if let Some((k, b)) = best {
                        let grant = quantum.min(residual[i][j]).min(b);
                        if grant > 1e-9 {
                            rate[i][j] += grant;
                            residual[i][j] -= grant;
                            cap[i][k] -= grant;
                            cap[k][i] = cap[i][k];
                            cap[k][j] -= grant;
                            cap[j][k] = cap[k][j];
                            progress = true;
                        }
                    }
                }
            }
        }
    }

    let throughput: f64 = rate.iter().flatten().sum();
    let offered = tm.total();
    let mut fct_num = 0.0;
    let mut fct_den = 0.0;
    for i in 0..n {
        for j in 0..n {
            let d = tm.demand(i, j);
            if i == j || d <= 0.0 {
                continue;
            }
            let fct = if rate[i][j] > 1e-9 {
                (d / rate[i][j]).min(FCT_CAP)
            } else {
                FCT_CAP
            };
            fct_num += d * fct;
            fct_den += d;
        }
    }
    FlowReport {
        rate,
        throughput,
        offered,
        mean_fct: fct_num / fct_den.max(1e-12),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::te::engineer;

    #[test]
    fn underloaded_uniform_mesh_satisfies_everything() {
        let mesh = Mesh::uniform(8, 21); // 3 trunks per pair
        let tm = TrafficMatrix::uniform(8, 10.0); // well under 3×100G
        let r = allocate(&mesh, &tm, 100.0);
        assert!((r.throughput - r.offered).abs() < 1e-6);
        assert!(
            (r.mean_fct - 1.0).abs() < 1e-6,
            "FCT = demand/rate = 1 when satisfied"
        );
    }

    #[test]
    fn transit_rescues_pairs_without_direct_capacity() {
        // Pair (0,1) has no direct trunks but both reach AB 2.
        let mut mesh = Mesh::empty(3, 4);
        mesh.set_trunks(0, 2, 2);
        mesh.set_trunks(1, 2, 2);
        let mut demand = vec![vec![0.0; 3]; 3];
        demand[0][1] = 50.0;
        let tm = TrafficMatrix::new(demand);
        let r = allocate(&mesh, &tm, 100.0);
        assert!(
            (r.rate[0][1] - 50.0).abs() < 1e-6,
            "two-hop transit carries it: {}",
            r.rate[0][1]
        );
    }

    #[test]
    fn te_beats_uniform_on_skewed_traffic() {
        // The §4.2 claim: topology engineering buys ~30% throughput and
        // ~10% FCT on long-lived skewed matrices, versus a uniform mesh.
        // Load the fabric near capacity so routing efficiency matters:
        // transit burns two links per unit where direct burns one, so a
        // mesh whose trunks match the demand carries strictly more.
        let n = 16;
        let uplinks = 30;
        let tm = TrafficMatrix::hotspot(n, 40.0, 8, 30.0, 3);
        let uniform = allocate(&Mesh::uniform(n, uplinks), &tm, 100.0);
        let engineered = allocate(&engineer(&tm, uplinks), &tm, 100.0);
        let tput_gain = engineered.throughput / uniform.throughput;
        let fct_gain = (uniform.mean_fct - engineered.mean_fct) / uniform.mean_fct;
        assert!(
            tput_gain > 1.1,
            "TE throughput gain {tput_gain:.3} should be material"
        );
        assert!(
            fct_gain > 0.02,
            "TE FCT improvement {fct_gain:.3} should be positive"
        );
    }

    #[test]
    fn te_is_neutral_on_uniform_traffic() {
        let n = 12;
        let tm = TrafficMatrix::uniform(n, 12.0);
        let uniform = allocate(&Mesh::uniform(n, 22), &tm, 100.0);
        let engineered = allocate(&engineer(&tm, 22), &tm, 100.0);
        let ratio = engineered.throughput / uniform.throughput;
        assert!((0.95..1.05).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn throughput_never_exceeds_offered() {
        for seed in 0..4 {
            let tm = TrafficMatrix::gravity(10, 20.0, seed);
            let mesh = Mesh::uniform(10, 18);
            let r = allocate(&mesh, &tm, 100.0);
            assert!(r.throughput <= r.offered + 1e-6);
            assert!(r.rate.iter().flatten().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn overload_degrades_gracefully() {
        let tm = TrafficMatrix::uniform(6, 1000.0); // hopeless overload
        let mesh = Mesh::uniform(6, 10);
        let r = allocate(&mesh, &tm, 100.0);
        assert!(r.throughput < r.offered);
        assert!(r.throughput > 0.0);
        assert!(r.mean_fct > 1.0);
    }
}
