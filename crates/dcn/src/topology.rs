//! Aggregation-block topologies.
//!
//! An aggregation block (AB) exposes a fixed number of uplink trunks. In a
//! spine-full Clos, all trunks climb to spine blocks; in a spine-free
//! fabric they land on OCSes that patch them directly to other ABs. The
//! logical inter-AB topology is then a *mesh* with an integer trunk count
//! per AB pair — uniform by default, demand-shaped under topology
//! engineering.

// Index loops below mirror the matrix math (i, j range over AB pairs
// across several parallel matrices); iterator forms obscure that.
#![allow(clippy::needless_range_loop)]

use serde::{Deserialize, Serialize};

/// Aggregation-block index.
pub type AbId = usize;

/// A logical inter-AB mesh: `trunks[i][j]` = number of trunks from AB i to
/// AB j (symmetric).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mesh {
    n: usize,
    uplinks_per_ab: usize,
    trunks: Vec<Vec<usize>>,
}

impl Mesh {
    /// An empty mesh over `n` ABs with `uplinks_per_ab` trunks each.
    pub fn empty(n: usize, uplinks_per_ab: usize) -> Mesh {
        assert!(n >= 2, "a mesh needs at least two ABs");
        Mesh {
            n,
            uplinks_per_ab,
            trunks: vec![vec![0; n]; n],
        }
    }

    /// The canonical uniform mesh: uplinks spread as evenly as possible
    /// over the other `n−1` ABs. Every pair gets the same base trunk
    /// count; leftover budget is placed greedily on the pair whose two
    /// endpoints have the most headroom, keeping degrees balanced.
    pub fn uniform(n: usize, uplinks_per_ab: usize) -> Mesh {
        let mut mesh = Mesh::empty(n, uplinks_per_ab);
        let base = uplinks_per_ab / (n - 1);
        for i in 0..n {
            for j in (i + 1)..n {
                mesh.set_trunks(i, j, base);
            }
        }
        loop {
            let mut best: Option<(usize, usize, usize)> = None;
            for i in 0..n {
                if mesh.degree(i) >= uplinks_per_ab {
                    continue;
                }
                for j in (i + 1)..n {
                    if mesh.degree(j) >= uplinks_per_ab {
                        continue;
                    }
                    let head = 2 * uplinks_per_ab - mesh.degree(i) - mesh.degree(j);
                    match best {
                        Some((_, _, bh)) if bh >= head => {}
                        _ => best = Some((i, j, head)),
                    }
                }
            }
            match best {
                Some((i, j, _)) => {
                    let t = mesh.trunks(i, j);
                    mesh.set_trunks(i, j, t + 1);
                }
                None => break,
            }
        }
        mesh
    }

    /// Number of ABs.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Radix budget per AB.
    pub fn uplinks_per_ab(&self) -> usize {
        self.uplinks_per_ab
    }

    /// Trunk count between two ABs.
    pub fn trunks(&self, i: AbId, j: AbId) -> usize {
        self.trunks[i][j]
    }

    /// Sets the trunk count of a pair (symmetric).
    ///
    /// # Panics
    /// Panics on `i == j`.
    pub fn set_trunks(&mut self, i: AbId, j: AbId, t: usize) {
        assert!(i != j, "no self-trunks");
        self.trunks[i][j] = t;
        self.trunks[j][i] = t;
    }

    /// Total trunks used by AB `i`.
    pub fn degree(&self, i: AbId) -> usize {
        self.trunks[i].iter().sum()
    }

    /// Whether every AB respects its radix budget.
    pub fn within_budget(&self) -> bool {
        (0..self.n).all(|i| self.degree(i) <= self.uplinks_per_ab)
    }

    /// Whether the mesh is connected (every AB reaches every other over
    /// trunks ≥ 1), required for transit routing.
    pub fn connected(&self) -> bool {
        let mut seen = vec![false; self.n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(i) = stack.pop() {
            for j in 0..self.n {
                if !seen[j] && self.trunks[i][j] > 0 {
                    seen[j] = true;
                    stack.push(j);
                }
            }
        }
        seen.into_iter().all(|s| s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_mesh_is_balanced_and_legal() {
        let mesh = Mesh::uniform(16, 60); // 60 uplinks over 15 peers = 4 each
        for i in 0..16 {
            assert_eq!(mesh.degree(i), 60);
            for j in 0..16 {
                if i != j {
                    assert_eq!(mesh.trunks(i, j), 4);
                }
            }
        }
        assert!(mesh.within_budget());
        assert!(mesh.connected());
    }

    #[test]
    fn uniform_mesh_handles_remainders() {
        let mesh = Mesh::uniform(8, 10); // 10 over 7 peers: 1 or 2 each
        for i in 0..8 {
            assert!(mesh.degree(i) <= 10);
            assert!(mesh.degree(i) >= 8, "degree {} at AB {i}", mesh.degree(i));
        }
        assert!(mesh.connected());
    }

    #[test]
    fn set_trunks_is_symmetric() {
        let mut mesh = Mesh::empty(4, 12);
        mesh.set_trunks(0, 3, 5);
        assert_eq!(mesh.trunks(3, 0), 5);
    }

    #[test]
    fn disconnection_is_detected() {
        let mut mesh = Mesh::empty(4, 4);
        mesh.set_trunks(0, 1, 2);
        mesh.set_trunks(2, 3, 2);
        assert!(!mesh.connected());
        mesh.set_trunks(1, 2, 1);
        assert!(mesh.connected());
    }

    #[test]
    #[should_panic(expected = "no self-trunks")]
    fn self_trunks_rejected() {
        Mesh::empty(4, 4).set_trunks(2, 2, 1);
    }
}
