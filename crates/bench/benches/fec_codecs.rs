//! Codec microbenchmarks: the KP4 outer code and the soft inner code.
//!
//! The latency claims of §3.3.2 (< 20 ns inner decode at 200 Gb/s) are
//! about silicon, not software — but software throughput still gates how
//! much Monte-Carlo the waterfall experiments can afford, and the
//! encode/decode asymmetry (syndrome-only vs full BM/Chien/Forney) is
//! worth knowing.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use lightwave_core::fec::hamming::ExtHamming;
use lightwave_core::fec::{ReedSolomon, RsScratch};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::hint::black_box;

fn kp4_encode(c: &mut Criterion) {
    let rs = ReedSolomon::kp4();
    let mut rng = StdRng::seed_from_u64(1);
    let data: Vec<u16> = (0..rs.k()).map(|_| rng.random_range(0..1024u16)).collect();
    let mut g = c.benchmark_group("kp4");
    g.throughput(Throughput::Bytes((rs.k() * 10 / 8) as u64));
    g.bench_function("encode_544_514", |b| {
        b.iter(|| black_box(rs.encode(black_box(&data))))
    });
    g.finish();
}

fn kp4_decode(c: &mut Criterion) {
    let rs = ReedSolomon::kp4();
    let mut rng = StdRng::seed_from_u64(2);
    let data: Vec<u16> = (0..rs.k()).map(|_| rng.random_range(0..1024u16)).collect();
    let clean = rs.encode(&data);
    let mut g = c.benchmark_group("kp4");
    for nerr in [0usize, 5, 15] {
        let mut corrupted = clean.clone();
        for i in 0..nerr {
            corrupted[i * 31] ^= 0x155;
        }
        g.bench_function(format!("decode_{nerr}_errors"), |b| {
            b.iter_batched(
                || corrupted.clone(),
                |mut cw| {
                    rs.decode(&mut cw).expect("correctable");
                    black_box(cw)
                },
                BatchSize::SmallInput,
            )
        });
        // The steady-state shape: caller-owned scratch, zero allocation
        // per decode (the path every hot loop actually takes).
        let mut scratch = RsScratch::new();
        g.bench_function(format!("decode_with_scratch_{nerr}_errors"), |b| {
            b.iter_batched(
                || corrupted.clone(),
                |mut cw| {
                    rs.decode_with(&mut cw, &mut scratch).expect("correctable");
                    black_box(cw)
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn hamming_decoding(c: &mut Criterion) {
    let code = ExtHamming;
    let cw = code.encode(0xDEAD_BEEF_0123_4567u128);
    let corrupted = cw ^ (1u128 << 40) ^ (1u128 << 90);
    let mut rel = [1.0f64; 128];
    rel[40] = 0.1;
    rel[90] = 0.12;
    rel[7] = 0.3;
    let mut g = c.benchmark_group("hamming128");
    g.bench_function("hard_decode", |b| {
        b.iter(|| black_box(code.hard_decode(black_box(cw ^ (1u128 << 40)))))
    });
    g.bench_function("chase_decode_6bits", |b| {
        b.iter(|| black_box(code.chase_decode(black_box(corrupted), &rel, 6)))
    });
    g.finish();
}

criterion_group!(benches, kp4_encode, kp4_decode, hamming_decoding);
criterion_main!(benches);
