//! Planner and analytics benchmarks: the algorithms a control plane runs
//! in its decision loop.

use criterion::{criterion_group, criterion_main, Criterion};
use lightwave_core::availability::{cube_availability, reconfigurable_goodput};
use lightwave_core::dcn::campus::CampusSim;
use lightwave_core::dcn::{flowsim, te, TrafficMatrix};
use lightwave_core::mlperf::{LlmConfig, SliceOptimizer};
use lightwave_core::optics::ber::{mpi_db, Pam4Receiver};
use lightwave_core::superpod::collective_sim::{simulate_torus_all_reduce, Uniform};
use lightwave_core::superpod::slice::SliceShape;
use lightwave_core::transceiver::fleet::fleet_census;
use lightwave_core::transceiver::ModuleFamily;
use lightwave_core::units::{Availability, Ber, Dbm};
use std::hint::black_box;

fn shape_search(c: &mut Criterion) {
    let opt = SliceOptimizer::tpu_v4();
    c.bench_function("slice_shape_search_4096", |b| {
        b.iter(|| black_box(opt.optimize(black_box(&LlmConfig::llm1()), 4096)))
    });
}

fn te_solver(c: &mut Criterion) {
    let tm = TrafficMatrix::gravity(32, 20.0, 7);
    c.bench_function("te_engineer_32_abs", |b| {
        b.iter(|| black_box(te::engineer(black_box(&tm), 62)))
    });
}

fn flow_allocation(c: &mut Criterion) {
    let tm = TrafficMatrix::hotspot(16, 40.0, 8, 30.0, 3);
    let mesh = te::engineer(&tm, 30);
    c.bench_function("flowsim_allocate_16_abs", |b| {
        b.iter(|| black_box(flowsim::allocate(black_box(&mesh), &tm, 100.0)))
    });
}

fn ber_analytics(c: &mut Criterion) {
    let rx = Pam4Receiver::cwdm4_50g();
    c.bench_function("analytic_ber", |b| {
        b.iter(|| black_box(rx.ber(black_box(Dbm(-12.0)), mpi_db(-32.0), None)))
    });
    c.bench_function("sensitivity_bisection", |b| {
        b.iter(|| black_box(rx.sensitivity(Ber::KP4_THRESHOLD, mpi_db(-32.0), None)))
    });
}

fn goodput_analytics(c: &mut Criterion) {
    let ca = cube_availability(Availability::from_nines(3.0));
    c.bench_function("goodput_1024_slice", |b| {
        b.iter(|| black_box(reconfigurable_goodput(16, ca, 0.97)))
    });
}

fn campus_epochs(c: &mut Criterion) {
    let sim = CampusSim::default_campus();
    c.bench_function("campus_10_epochs", |b| b.iter(|| black_box(sim.run(10, 7))));
}

fn collective_step_sim(c: &mut Criterion) {
    let shape = SliceShape::new(16, 16, 16).unwrap();
    c.bench_function("collective_sim_full_pod", |b| {
        b.iter(|| {
            black_box(simulate_torus_all_reduce(
                shape,
                256e6,
                &[0, 1, 2],
                &Uniform(100e9),
                300e-9,
            ))
        })
    });
}

fn fleet_ber_census(c: &mut Criterion) {
    c.bench_function("fleet_census_500_ports", |b| {
        b.iter(|| black_box(fleet_census(500, ModuleFamily::Cwdm4Bidi, 42)))
    });
}

criterion_group!(
    benches,
    shape_search,
    te_solver,
    flow_allocation,
    ber_analytics,
    goodput_analytics,
    campus_epochs,
    collective_step_sim,
    fleet_ber_census
);
criterion_main!(benches);
