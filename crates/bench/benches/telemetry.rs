//! Metric hot-path microbenchmarks.
//!
//! Instrumented crates record through pre-registered handles on every
//! reconfiguration, lane sample, and scheduler step, so the record path
//! must stay O(ns) and allocation-free: a counter increment is an index
//! plus an add, a histogram observe an exponent-field bucket bump. The
//! registration path (string keys, BTreeMap) runs once per instrument
//! and is benchmarked separately to keep the two regimes honest.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use lightwave_core::telemetry::{LogHistogram, MetricsRegistry};
use lightwave_units::Nanos;
use std::hint::black_box;

fn record_hot_path(c: &mut Criterion) {
    let mut reg = MetricsRegistry::new();
    let counter = reg.counter("bench_events_total", &[("switch", "3")]);
    let gauge = reg.gauge("bench_power_w", &[("switch", "3")]);
    let hist = reg.histogram("bench_duration_ms", &[("switch", "3")]);

    let mut g = c.benchmark_group("metrics_record");
    g.throughput(Throughput::Elements(1));
    g.bench_function("counter_inc", |b| {
        let mut at = Nanos(0);
        b.iter(|| {
            at.0 += 1;
            reg.inc(black_box(counter), at, 1);
        })
    });
    g.bench_function("gauge_set", |b| {
        let mut at = Nanos(0);
        b.iter(|| {
            at.0 += 1;
            reg.set(black_box(gauge), at, 42.5);
        })
    });
    g.bench_function("histogram_observe", |b| {
        let mut at = Nanos(0);
        let mut v = 1.0f64;
        b.iter(|| {
            at.0 += 1;
            v = v * 1.5 % 1e6 + 1e-3; // walk the buckets, stay finite
            reg.observe(black_box(hist), at, v);
        })
    });
    g.finish();
}

fn registration_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("metrics_register");
    g.bench_function("lookup_existing", |b| {
        let mut reg = MetricsRegistry::new();
        reg.counter("bench_events_total", &[("switch", "3")]);
        // Re-registration resolves to the same handle through the index.
        b.iter(|| black_box(reg.counter("bench_events_total", &[("switch", "3")])))
    });
    g.finish();
}

fn histogram_merge(c: &mut Criterion) {
    let mut a = LogHistogram::new();
    let mut bh = LogHistogram::new();
    let mut v = 1e-9;
    for i in 0..10_000 {
        v = v * 1.7 % 1e9 + 1e-9;
        if i % 2 == 0 {
            a.record(v);
        } else {
            bh.record(v);
        }
    }
    let mut g = c.benchmark_group("metrics_rollup");
    g.bench_function("histogram_merge", |b| {
        b.iter(|| {
            let mut m = a.clone();
            m.merge(black_box(&bh));
            black_box(m)
        })
    });
    g.finish();
}

criterion_group!(benches, record_hot_path, registration_path, histogram_merge);
criterion_main!(benches);
