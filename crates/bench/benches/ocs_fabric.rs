//! OCS and fabric-transaction benchmarks.
//!
//! The control plane must plan and validate fabric-wide transactions fast
//! (milliseconds of software against milliseconds of mirror settle); these
//! benches keep the delta planner, the full-pod composition, and the
//! optical-core census honest.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use lightwave_core::ocs::loss::OpticalCore;
use lightwave_core::ocs::{Crossbar, PalomarOcs, PortMapping};
use lightwave_core::superpod::slice::{Slice, SliceShape};
use lightwave_core::superpod::Superpod;
use std::hint::black_box;

fn crossbar_delta(c: &mut Criterion) {
    let mut xb = Crossbar::new(136);
    for i in 0..128u16 {
        xb.connect(i, (i * 7 + 3) % 136).unwrap();
    }
    // Target: move half the circuits.
    let target = PortMapping::from_pairs((0..128u16).map(|i| {
        (
            i,
            if i % 2 == 0 {
                (i * 7 + 3) % 136
            } else {
                (i * 11 + 5) % 136
            },
        )
    }))
    .unwrap();
    c.bench_function("crossbar_delta_128_circuits", |b| {
        b.iter(|| black_box(xb.delta_to(black_box(&target))))
    });
}

fn ocs_apply_mapping(c: &mut Criterion) {
    let target = PortMapping::from_pairs((0..64u16).map(|i| (i, i + 64))).unwrap();
    c.bench_function("ocs_apply_mapping_64", |b| {
        b.iter_batched(
            || PalomarOcs::new(0, 42),
            |mut ocs| {
                ocs.apply_mapping(&target).expect("valid");
                black_box(ocs)
            },
            BatchSize::SmallInput,
        )
    });
}

fn optical_census(c: &mut Criterion) {
    let core = OpticalCore::fabricate(136, 7);
    c.bench_function("insertion_loss_census_136x136", |b| {
        b.iter(|| black_box(core.insertion_loss_census()))
    });
}

fn pod_compose_full(c: &mut Criterion) {
    c.bench_function("superpod_compose_4096_chips", |b| {
        b.iter_batched(
            || Superpod::new(1),
            |mut pod| {
                let slice =
                    Slice::new(SliceShape::new(16, 16, 16).unwrap(), (0..64).collect()).unwrap();
                pod.compose(slice).expect("empty pod");
                black_box(pod)
            },
            BatchSize::LargeInput,
        )
    });
}

fn pod_incremental_slice(c: &mut Criterion) {
    c.bench_function("superpod_add_256_chip_slice", |b| {
        b.iter_batched(
            || {
                let mut pod = Superpod::new(2);
                // Pre-existing load: 32 cubes in 4 slices.
                for k in 0..4u8 {
                    let cubes: Vec<u8> = (k * 8..k * 8 + 8).collect();
                    pod.compose(Slice::new(SliceShape::new(8, 8, 8).unwrap(), cubes).unwrap())
                        .unwrap();
                }
                pod
            },
            |mut pod| {
                let cubes: Vec<u8> = (40..44).collect();
                pod.compose(Slice::new(SliceShape::new(16, 4, 4).unwrap(), cubes).unwrap())
                    .expect("fits");
                black_box(pod)
            },
            BatchSize::LargeInput,
        )
    });
}

criterion_group!(
    benches,
    crossbar_delta,
    ocs_apply_mapping,
    optical_census,
    pod_compose_full,
    pod_incremental_slice
);
criterion_main!(benches);
