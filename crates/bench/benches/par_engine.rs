//! Micro-benchmarks for the `lightwave-par` deterministic engine: the
//! Monte-Carlo BER and pool-availability hot paths at 1/2/4 workers, plus
//! the raw dispatch overhead of an (almost) empty shard.
//!
//! On a ≥ 4-core machine the 4-worker rows should land near 4× the
//! 1-worker rows (near-linear scaling); on fewer cores they degrade
//! gracefully toward parity. Scaling is the machine's business — the
//! *results* are bit-identical at every row by the engine's contract.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lightwave_core::availability::{cube_availability, monte_carlo_pool_availability_with_pool};
use lightwave_core::optics::ber::{mpi_db, Pam4Receiver};
use lightwave_core::optics::montecarlo::{simulate_ber_seeded, simulate_ber_with_pool};
use lightwave_core::units::{Availability, Dbm};
use lightwave_par::Pool;

const WORKERS: [usize; 3] = [1, 2, 4];

fn bench_mc_ber(c: &mut Criterion) {
    let rx = Pam4Receiver::cwdm4_50g();
    let symbols = 200_000u64;
    let mut g = c.benchmark_group("par_engine/mc_ber");
    g.throughput(Throughput::Elements(symbols));
    g.bench_function("serial", |b| {
        b.iter(|| {
            black_box(simulate_ber_seeded(
                &rx,
                Dbm(-12.5),
                mpi_db(-32.0),
                None,
                symbols,
                42,
            ))
        })
    });
    for workers in WORKERS {
        let pool = Pool::new(workers);
        g.bench_function(format!("pool_{workers}t"), |b| {
            b.iter(|| {
                black_box(
                    simulate_ber_with_pool(
                        &pool,
                        &rx,
                        Dbm(-12.5),
                        mpi_db(-32.0),
                        None,
                        symbols,
                        42,
                    )
                    .0,
                )
            })
        });
    }
    g.finish();
}

fn bench_pool_availability(c: &mut Criterion) {
    let ca = cube_availability(Availability::new(0.999));
    let trials = 20_000u64;
    let mut g = c.benchmark_group("par_engine/pool_availability");
    g.throughput(Throughput::Elements(trials));
    for workers in WORKERS {
        let pool = Pool::new(workers);
        g.bench_function(format!("pool_{workers}t"), |b| {
            b.iter(|| {
                black_box(monte_carlo_pool_availability_with_pool(
                    &pool, ca, 48, trials, 11,
                ))
            })
        });
    }
    g.finish();
}

fn bench_dispatch_overhead(c: &mut Criterion) {
    // 64 one-trial shards of trivial work: what the scoped pool itself
    // costs (spawn + atomic pulls + ordered merge).
    let mut g = c.benchmark_group("par_engine/dispatch");
    for workers in WORKERS {
        let pool = Pool::new(workers);
        g.bench_function(format!("64_empty_shards_{workers}t"), |b| {
            b.iter(|| {
                let (sum, _) =
                    pool.run_trials(1, 64, 1, |_rng, i| black_box(i), |a, b| a.wrapping_add(b));
                black_box(sum)
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_mc_ber,
    bench_pool_availability,
    bench_dispatch_overhead
);
criterion_main!(benches);
