//! Ablation studies and future-work extensions.
//!
//! DESIGN.md §6 calls out the design choices worth isolating: bidirectional
//! optics, minimal-delta reconfiguration, and the opposing-faces wiring
//! plan. Plus the §6 future-work quantifications: higher-dimensional tori
//! and the hybrid ICI-DCN scale-out regime.

use crate::{Check, ExperimentResult};
use lightwave_core::availability::fabric_availability;
use lightwave_core::availability::timeline::{simulate, TimelineParams};
use lightwave_core::dcn::campus::CampusSim;
use lightwave_core::dcn::refresh::rolling_upgrade;
use lightwave_core::mlperf::{ChipParams, LlmConfig, SliceOptimizer};
use lightwave_core::optics::modulation::LaneRate;
use lightwave_core::superpod::collective::IciParams;
use lightwave_core::superpod::hybrid::{
    bandwidth_asymmetry, hybrid_all_reduce, scaling_efficiency, DcnParams,
};
use lightwave_core::superpod::slice::{Slice, SliceShape};
use lightwave_core::superpod::torus_nd::TorusNd;
use lightwave_core::superpod::Superpod;
use lightwave_core::transceiver::ModuleFamily;
use lightwave_core::units::{Availability, Nanos};

/// Ablation 1 — what bidirectional optics buy (§4.2.2, §4.2.3).
pub fn ablate_bidi() -> ExperimentResult {
    let mut lines =
        vec!["family        | OCS ports/module | pod OCSes | fabric avail @99.9%".into()];
    let mut rows = Vec::new();
    for fam in ModuleFamily::ALL {
        let n = fam.superpod_ocs_count();
        let avail = fabric_availability(Availability::from_nines(3.0), n as u32);
        lines.push(format!(
            "{:<13} | {:>16} | {:>9} | {}",
            format!("{fam:?}"),
            fam.ocs_ports_per_module(),
            n,
            avail
        ));
        rows.push((fam, n, avail.prob()));
    }
    lines.push(
        "each bidi step halves OCS-and-fiber count — '§4.2.3: saves 50% in the cost of \
         the OCSes and fiber' — and compounds into fabric availability"
            .into(),
    );
    let duplex = rows[0].1 as f64;
    let bidi4 = rows[1].1 as f64;
    let bidi8 = rows[2].1 as f64;
    ExperimentResult {
        id: "ablate1",
        title: "Ablation: bidirectional optics vs duplex",
        lines,
        checks: vec![
            Check::abs("CWDM4 bidi OCS saving", 0.5, 1.0 - bidi4 / duplex, 1e-9),
            Check::abs("CWDM8 bidi OCS saving", 0.75, 1.0 - bidi8 / duplex, 1e-9),
            Check::holds(
                "availability ordering",
                "fewer switches → higher fabric availability",
                rows[2].2 > rows[1].2 && rows[1].2 > rows[0].2,
            ),
        ],
    }
}

/// Ablation 2 — minimal-delta reconfiguration vs full rewire (§2.3).
pub fn ablate_reconfig() -> ExperimentResult {
    let slice_a = || Slice::new(SliceShape::new(8, 8, 8).unwrap(), (0..8).collect()).unwrap();
    let slice_b = |cubes: Vec<u8>| Slice::new(SliceShape::new(8, 8, 8).unwrap(), cubes).unwrap();

    // Delta path: recompose only slice B; A is never mentioned.
    let mut pod = Superpod::new(3);
    let (_ha, _) = pod.compose(slice_a()).unwrap();
    let (hb, _) = pod.compose(slice_b((8..16).collect())).unwrap();
    pod.advance(Nanos::from_millis(400));
    pod.release(hb).unwrap();
    let (_h, delta_report) = pod.compose(slice_b((16..24).collect())).unwrap();
    let delta_disturbed = delta_report.added + delta_report.removed;
    let delta_preserved = delta_report.untouched;

    // Full-rewire path: tear everything down and rebuild both slices.
    let mut pod2 = Superpod::new(3);
    let (ha2, _) = pod2.compose(slice_a()).unwrap();
    let (hb2, _) = pod2.compose(slice_b((8..16).collect())).unwrap();
    pod2.advance(Nanos::from_millis(400));
    pod2.release(ha2).unwrap();
    pod2.release(hb2).unwrap();
    let (_, r1) = pod2.compose(slice_a()).unwrap();
    let (_, r2) = pod2.compose(slice_b((16..24).collect())).unwrap();
    let full_disturbed = r1.added + r1.removed + r2.added + r2.removed + 2 * 384; // + the teardowns

    let lines = vec![
        format!(
            "swap one 512-chip slice next to a running neighbour (both 384 circuits):"
        ),
        format!(
            "  minimal delta: {delta_disturbed} circuits touched, {delta_preserved} preserved untouched"
        ),
        format!("  full rewire:   {full_disturbed} circuit operations, 0 preserved"),
    ];
    ExperimentResult {
        id: "ablate2",
        title: "Ablation: minimal-delta vs full-rewire reconfiguration",
        lines,
        checks: vec![
            Check::holds(
                "neighbour isolation",
                "delta path preserves all 384 neighbour circuits",
                delta_preserved == 384,
            ),
            Check::holds(
                "disturbance ratio",
                "full rewire touches ≥ 2× the circuits",
                full_disturbed >= 2 * delta_disturbed,
            ),
        ],
    }
}

/// Ablation 3 — the opposing-faces wiring plan (Appendix A).
pub fn ablate_wiring() -> ExperimentResult {
    // OCS count for full any-to-any hop support, per (wiring, optics):
    // a hop needs its two fibers on the SAME switch. Pairing +d and −d
    // faces fills every 128-port switch completely; keeping faces on
    // separate switches leaves every switch half-useful.
    let paired_bidi = 3 * 16; // the production plan
    let paired_duplex = 3 * 16 * 2; // duplex doubles fibers
    let unpaired_bidi = 6 * 16; // half-filled switches
    let unpaired_duplex = 6 * 16 * 2;
    let lines = vec![
        "OCSes for full any-to-any cube-hop support (64 cubes):".into(),
        format!("  opposing faces paired + bidi optics:   {paired_bidi}  (production)"),
        format!("  opposing faces paired + duplex optics: {paired_duplex}"),
        format!("  faces on separate switches + bidi:     {unpaired_bidi} (every OCS half-used)"),
        format!("  faces on separate switches + duplex:   {unpaired_duplex}"),
        "pairing works because a +d face and a −d face never compete for a port: \
         every cube appears exactly once as North and once as South per switch"
            .into(),
    ];
    ExperimentResult {
        id: "ablate3",
        title: "Ablation: Appendix-A opposing-faces wiring",
        lines,
        checks: vec![
            Check::holds(
                "production plan",
                "48 switches, fully utilized",
                paired_bidi == 48,
            ),
            Check::holds(
                "pairing halves the fleet",
                "unpaired needs 2×",
                unpaired_bidi == 2 * paired_bidi && unpaired_duplex == 2 * paired_duplex,
            ),
        ],
    }
}

/// Extension — hybrid ICI-DCN scale-out (§2.2.2, Fig. 2).
pub fn hybrid1() -> ExperimentResult {
    let ici = IciParams::tpu_v4();
    let dcn = DcnParams::production();
    let asym = bandwidth_asymmetry(4096, &ici, &dcn);

    // LLM1's gradient all-reduce, scaled across pods.
    let opt = SliceOptimizer::tpu_v4();
    let model = LlmConfig::llm1();
    let best = opt.optimize(&model, 4096).expect("feasible");
    let grad = 2.0 * model.params / best.step.mapping.tp as f64 / best.step.mapping.pp as f64;
    let dims = [best.step.mapping.dp];

    let mut lines = vec![format!(
        "ICI:DCN bisection asymmetry of a 4096-chip pod: {asym:.0}x (paper: 50-100x)"
    )];
    lines.push("pods | allreduce total | DCN fraction | scaling efficiency".into());
    // Efficiency against the overlap window that must hide the collective
    // (one pipeline-interleaved chunk of compute), not the whole step —
    // this is where "delays can substantially affect the model
    // throughput" (§2.2.2) shows up.
    let compute = (best.step.compute / 64.0).max(0.2);
    let mut eff4 = 0.0;
    for pods in [1usize, 2, 4, 8] {
        let ar = hybrid_all_reduce(grad, &dims, pods, &ici, &dcn);
        let eff = scaling_efficiency(compute, grad, &dims, pods, &ici, &dcn);
        if pods == 4 {
            eff4 = eff;
        }
        lines.push(format!(
            "{pods:>4} | {:>13.1} ms | {:>11.1}% | {:>17.1}%",
            ar.total() * 1e3,
            ar.dcn_fraction() * 100.0,
            eff * 100.0
        ));
    }
    let two = hybrid_all_reduce(grad, &dims, 4, &ici, &dcn);
    let one = hybrid_all_reduce(
        grad,
        &dims,
        4,
        &ici,
        &DcnParams {
            two_rings: false,
            ..dcn
        },
    );
    lines.push(format!(
        "Fig. 2c two-ring collective: DCN phase {:.1} ms vs {:.1} ms single-ring",
        two.dcn_phase * 1e3,
        one.dcn_phase * 1e3
    ));
    ExperimentResult {
        id: "hybrid1",
        title: "Hybrid ICI-DCN scale-out across pods",
        lines,
        checks: vec![
            Check::holds(
                "bandwidth asymmetry",
                "in the paper's 50-100x band",
                (50.0..=150.0).contains(&asym),
            ),
            Check::holds(
                "two-ring gain",
                "halves the DCN phase",
                (one.dcn_phase / two.dcn_phase - 2.0).abs() < 0.1,
            ),
            Check::holds(
                "cross-pod scaling",
                "efficient but not free (80-99.5% at 4 pods)",
                (0.80..0.995).contains(&eff4),
            ),
        ],
    }
}

/// Extension — a simulated year of pod operation: reconfiguration speed
/// versus hardware repair (the time-domain view of §4.2.2).
pub fn timeline1() -> ExperimentResult {
    let params = TimelineParams::production_year();
    let report = simulate(&params, 42);
    let r = report.reconfigurable;
    let s = report.static_fabric;
    let lines = vec![
        format!(
            "one simulated year, three 1024-chip slices, 16 spare cubes, cube MTBF {:.0} h, MTTR {:.0} h:",
            params.cube_mtbf_hours, params.cube_mttr_hours
        ),
        format!(
            "reconfigurable ({}s swaps): {:.4}% delivered, {:.1} h down across {} slice-failures",
            params.reconfig_secs,
            r.delivered * 100.0,
            r.down_hours,
            r.failures
        ),
        format!(
            "static (repair-bound):      {:.4}% delivered, {:.0} h down across {} slice-failures",
            s.delivered * 100.0,
            s.down_hours,
            s.failures
        ),
    ];
    ExperimentResult {
        id: "timeline1",
        title: "A year of pod availability: swap-in-seconds vs repair-in-hours",
        lines,
        checks: vec![
            Check::holds(
                "reconfigurable delivered fraction",
                "> 99.9% (downtime = failures × seconds)",
                r.delivered > 0.999,
            ),
            Check::holds(
                "static delivered fraction",
                "materially lower (downtime = failures × hours)",
                s.delivered < 0.98,
            ),
            Check::holds(
                "downtime ratio",
                "≥ 50× less downtime with reconfiguration",
                s.down_hours > 50.0 * r.down_hours,
            ),
        ],
    }
}

/// Extension — the campus use case: TE tracking service lifecycles.
pub fn campus1() -> ExperimentResult {
    let report = CampusSim::default_campus().run(40, 42);
    let gain = report.aggregate_gain();
    let preserved = report.mean_preserved_fraction();
    let mut lines = vec![format!(
        "40 epochs of service turnup/turndown on a 12-cluster campus \
         (22 uplinks/cluster, 100G trunks):"
    )];
    lines.push(format!(
        "aggregate throughput: tracking TE {gain:.2}x the static uniform mesh"
    ));
    lines.push(format!(
        "mean circuits preserved across epoch reconfigurations: {:.0}%",
        preserved * 100.0
    ));
    for e in report.epochs.iter().take(8) {
        lines.push(format!(
            "  epoch {:>2}: {:>2} services | TE {:>7.0} Gb/s | static {:>7.0} Gb/s | moved {:>3}, kept {:>3}",
            e.epoch, e.services, e.engineered_gbps, e.static_gbps, e.circuits_moved, e.circuits_preserved
        ));
    }
    lines.push("  ... (remaining epochs elided)".into());
    ExperimentResult {
        id: "campus1",
        title: "Campus use case: TE tracking service lifecycles",
        lines,
        checks: vec![
            Check::holds(
                "tracking TE beats static provisioning",
                "aggregate gain > 1.03x",
                gain > 1.03,
            ),
            Check::holds(
                "reconfiguration is incremental",
                "> 50% of circuits preserved per epoch",
                preserved > 0.5,
            ),
        ],
    }
}

/// Extension — §2.1 rapid technology refresh on a rate-agnostic OCS.
pub fn refresh1() -> ExperimentResult {
    let epochs = rolling_upgrade(16, LaneRate::Pam4_50, LaneRate::Pam4_100, 2);
    let first = epochs.first().expect("non-empty");
    let last = epochs.last().expect("non-empty");
    let mut lines = vec![
        "rolling 16 ABs from 50G-PAM4 to 100G-PAM4 trunks, one AB per epoch:".into(),
        "upgraded | OCS fabric Gb/s | spine-full (old spine) Gb/s".into(),
    ];
    for e in epochs.iter().step_by(4) {
        lines.push(format!(
            "{:>8} | {:>15.0} | {:>12.0}",
            e.upgraded, e.spine_free_gbps, e.spine_full_old_spine_gbps
        ));
    }
    lines.push(format!(
        "{:>8} | {:>15.0} | {:>12.0}",
        last.upgraded, last.spine_free_gbps, last.spine_full_old_spine_gbps
    ));
    lines.push(
        "the OCS is rate-agnostic: capacity grows with every upgraded pair; the \
         spine-full fabric is pinned to the old spine until a forklift day"
            .into(),
    );
    let monotone = epochs
        .windows(2)
        .all(|w| w[1].spine_free_gbps >= w[0].spine_free_gbps);
    ExperimentResult {
        id: "refresh1",
        title: "Rapid technology refresh: heterogeneous generations on one OCS",
        lines,
        checks: vec![
            Check::holds(
                "incremental benefit",
                "OCS capacity non-decreasing each epoch",
                monotone,
            ),
            Check::abs(
                "full-fleet capacity ratio",
                2.0,
                last.spine_free_gbps / first.spine_free_gbps,
                1e-9,
            ),
            Check::holds(
                "spine-full comparison",
                "pinned at old-spine capacity throughout",
                epochs.iter().all(|e| {
                    (e.spine_full_old_spine_gbps - first.spine_full_old_spine_gbps).abs() < 1e-9
                }),
            ),
        ],
    }
}

/// Extension — §6 higher-dimensional tori.
pub fn future1() -> ExperimentResult {
    let mut lines =
        vec!["organization | bisection links | diameter | mean dist | links/chip | OCSes".into()];
    let mut rows = Vec::new();
    for n in [3usize, 4, 6] {
        let t = TorusNd::balanced(4096, n);
        lines.push(format!(
            "{:>10}D | {:>15} | {:>8} | {:>9.2} | {:>10} | {:>5}",
            n,
            t.bisection_links(),
            t.diameter(),
            t.mean_distance(),
            t.links_per_chip(),
            t.ocs_groups()
        ));
        rows.push(t);
    }
    lines.push(
        "higher dimensions buy bisection and latency with more ICI ports per chip and \
         (for 4D at 8-chip extent) more OCS groups — §6's trade stated quantitatively"
            .into(),
    );
    let chip = ChipParams::tpu_v4();
    let _ = chip;
    ExperimentResult {
        id: "future1",
        title: "Future work: 4D/6D torus organizations of 4096 chips",
        lines,
        checks: vec![
            Check::holds(
                "bisection scaling",
                "doubles per added organization step (512/1024/2048)",
                rows[0].bisection_links() == 512
                    && rows[1].bisection_links() == 1024
                    && rows[2].bisection_links() == 2048,
            ),
            Check::holds(
                "latency scaling",
                "diameter 24 → 16 → 12",
                rows[0].diameter() == 24 && rows[1].diameter() == 16 && rows[2].diameter() == 12,
            ),
        ],
    }
}
