//! The experiment harness: one function per table/figure of the paper.
//!
//! Every experiment returns an [`ExperimentResult`] carrying the rendered
//! rows *and* machine-checkable assertions ("paper says X, we measured Y,
//! within tolerance?"), so the same code drives the `repro` binary, the
//! integration tests, and EXPERIMENTS.md.
//!
//! Run everything: `cargo run -p lightwave-bench --release --bin repro`.
//! Run one: `cargo run -p lightwave-bench --release --bin repro fig11`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod experiments;

use std::fmt::Write as _;

/// A reproduced table or figure.
#[derive(Debug, Clone)]
pub struct ExperimentResult {
    /// Experiment id (e.g. "fig11", "tab2").
    pub id: &'static str,
    /// Human title.
    pub title: &'static str,
    /// Rendered output lines (the table/series the paper reports).
    pub lines: Vec<String>,
    /// Shape-fidelity checks: (description, paper value, measured value,
    /// pass).
    pub checks: Vec<Check>,
}

/// One paper-vs-measured comparison.
#[derive(Debug, Clone)]
pub struct Check {
    /// What is being compared.
    pub what: String,
    /// The paper's value, as printed.
    pub paper: String,
    /// Our measured value, as printed.
    pub measured: String,
    /// Whether the measurement is within the declared tolerance.
    pub pass: bool,
}

impl Check {
    /// A numeric check with relative tolerance.
    pub fn rel(what: &str, paper: f64, measured: f64, rel_tol: f64) -> Check {
        Check {
            what: what.to_string(),
            paper: format!("{paper:.3}"),
            measured: format!("{measured:.3}"),
            pass: (measured - paper).abs() <= rel_tol * paper.abs().max(1e-12),
        }
    }

    /// A numeric check with absolute tolerance.
    pub fn abs(what: &str, paper: f64, measured: f64, abs_tol: f64) -> Check {
        Check {
            what: what.to_string(),
            paper: format!("{paper:.3}"),
            measured: format!("{measured:.3}"),
            pass: (measured - paper).abs() <= abs_tol,
        }
    }

    /// A boolean property check.
    pub fn holds(what: &str, expectation: &str, pass: bool) -> Check {
        Check {
            what: what.to_string(),
            paper: expectation.to_string(),
            measured: if pass {
                "holds".into()
            } else {
                "VIOLATED".into()
            },
            pass,
        }
    }
}

impl ExperimentResult {
    /// All checks pass?
    pub fn passed(&self) -> bool {
        self.checks.iter().all(|c| c.pass)
    }

    /// Renders the full block (for the repro binary / EXPERIMENTS.md).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {} — {}", self.id, self.title);
        let _ = writeln!(out);
        for l in &self.lines {
            let _ = writeln!(out, "{l}");
        }
        let _ = writeln!(out);
        let _ = writeln!(out, "| check | paper | measured | status |");
        let _ = writeln!(out, "|---|---|---|---|");
        for c in &self.checks {
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} |",
                c.what,
                c.paper,
                c.measured,
                if c.pass { "✓" } else { "✗ FAIL" }
            );
        }
        out
    }
}

/// Every experiment id, in paper order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "fig10a",
    "fig10b",
    "fig11",
    "fig12",
    "fig13",
    "tab1",
    "tab2",
    "fig15a",
    "fig15b",
    "dcn1",
    "dcn2",
    "tabc1",
    "sched1",
    "deploy1",
    "ocs1",
    "ablate1",
    "ablate2",
    "ablate3",
    "hybrid1",
    "future1",
    "campus1",
    "timeline1",
    "refresh1",
];

/// Runs one experiment by id.
///
/// `quick` trades Monte-Carlo depth for speed (used by tests; the repro
/// binary runs full depth).
pub fn run(id: &str, quick: bool) -> Option<ExperimentResult> {
    use experiments as e;
    Some(match id {
        "fig10a" => e::fig10a(),
        "fig10b" => e::fig10b(),
        "fig11" => e::fig11(quick),
        "fig12" => e::fig12(quick),
        "fig13" => e::fig13(quick),
        "tab1" => e::tab1(),
        "tab2" => e::tab2(),
        "fig15a" => e::fig15a(),
        "fig15b" => e::fig15b(),
        "dcn1" => e::dcn1(),
        "dcn2" => e::dcn2(),
        "tabc1" => e::tabc1(),
        "sched1" => e::sched1(quick),
        "deploy1" => e::deploy1(),
        "ocs1" => e::ocs1(),
        "ablate1" => crate::ablations::ablate_bidi(),
        "ablate2" => crate::ablations::ablate_reconfig(),
        "ablate3" => crate::ablations::ablate_wiring(),
        "hybrid1" => crate::ablations::hybrid1(),
        "future1" => crate::ablations::future1(),
        "campus1" => crate::ablations::campus1(),
        "timeline1" => crate::ablations::timeline1(),
        "refresh1" => crate::ablations::refresh1(),
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn check_constructors() {
        assert!(Check::rel("x", 1.0, 1.05, 0.1).pass);
        assert!(!Check::rel("x", 1.0, 1.2, 0.1).pass);
        assert!(Check::abs("x", 10.0, 10.4, 0.5).pass);
        assert!(!Check::abs("x", 10.0, 11.0, 0.5).pass);
        assert!(Check::holds("x", "expected", true).pass);
        assert!(!Check::holds("x", "expected", false).pass);
    }

    #[test]
    fn render_includes_every_check_row() {
        let r = ExperimentResult {
            id: "demo",
            title: "demo experiment",
            lines: vec!["line one".into()],
            checks: vec![
                Check::abs("a", 1.0, 1.0, 0.1),
                Check::holds("b", "works", false),
            ],
        };
        let text = r.render();
        assert!(text.contains("## demo"));
        assert!(text.contains("line one"));
        assert!(text.contains("| a |"));
        assert!(text.contains("✗ FAIL"));
        assert!(!r.passed());
    }

    #[test]
    fn unknown_experiment_is_none() {
        assert!(run("nope", true).is_none());
    }

    #[test]
    fn cheap_experiments_run_in_tests() {
        // The fully-analytic experiments are fast enough to exercise here;
        // the Monte-Carlo ones are covered by the integration suite.
        for id in [
            "tab1", "fig15a", "fig15b", "dcn1", "tabc1", "ablate3", "future1", "refresh1",
        ] {
            let r = run(id, true).expect("registered");
            assert!(r.passed(), "{id} failed:\n{}", r.render());
            assert!(!r.lines.is_empty());
        }
    }
}
