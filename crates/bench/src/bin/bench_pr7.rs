//! Incremental-commit throughput benchmark → `BENCH_PR7.json`.
//!
//! Measures the service hot paths from `bench_pr6` — pure arrival
//! generation, the loss-mode policy core, and the full sharded open-loop
//! run — now driven by the delta-based (O(slice)) fabric commit path,
//! and re-times the two pod-backed workloads with the shadow cross-check
//! enabled. Shadow mode re-pays the pre-incremental O(pod) full-rebuild
//! cost on every transaction, so the shadow-on runs are an *in-run*
//! baseline: the speedup ratios compare two modes inside one process on
//! one machine, never wall-clock numbers across runs.
//!
//! The perf gate asserts the incremental path beats the in-run
//! full-rebuild baseline by ≥5x on both pod-backed workloads:
//! `open_loop`'s production-mix slices pin real circuits (the full
//! rebuild re-pays the old per-transaction cost across all 48 switches),
//! and `loss_core`'s all-electrical single-cube slices make the
//! incremental path a zero-switch no-op while the full rebuild still
//! walks the whole fleet.
//!
//! ```text
//! cargo run -p lightwave-bench --release --bin bench_pr7              # 1M arrivals
//! cargo run -p lightwave-bench --release --bin bench_pr7 -- --smoke  # CI-sized
//! cargo run -p lightwave-bench --release --bin bench_pr7 -- --out p  # custom path
//! ```

use lightwave_core::par::Pool;
use lightwave_core::service::{arrival, run_sharded, Mix, PolicyConfig, ServiceConfig};
use lightwave_units::Nanos;
use serde::Serialize;
use std::time::Instant;

/// One hot path's measurement.
#[derive(Debug, Serialize)]
struct Workload {
    /// Workload id (`*_shadow` = full-rebuild cross-check enabled).
    id: String,
    /// The unit `per_sec` counts.
    unit: String,
    /// Work units per timed run.
    n: u64,
    /// Units per second (wall time).
    per_sec: f64,
}

/// In-run incremental-vs-full-rebuild ratios (same process, same
/// machine, same arrivals — robust to host speed, unlike cross-run
/// wall-clock comparisons).
#[derive(Debug, Serialize)]
struct Speedups {
    /// `loss_core` / `loss_core_shadow`.
    loss_core: f64,
    /// `open_loop` / `open_loop_shadow`.
    open_loop: f64,
    /// The gate threshold (both ratios must clear it).
    gate: f64,
}

/// Queueing outcomes of the big open-loop run (sim time, not wall time).
#[derive(Debug, Serialize)]
struct ServiceStats {
    /// Arrivals submitted.
    requests: u64,
    /// Admissions (including re-admissions after preemption).
    admitted: u64,
    /// Arrivals turned away at the queue bound.
    blocked: u64,
    /// Evictions by higher-priority admissions.
    preempted: u64,
    /// Requests that served their full hold.
    completed: u64,
    /// blocked / offered.
    blocking_probability: f64,
    /// busy cube-time / pod cube-time.
    utilization: f64,
    /// Median sim-time admission wait, microseconds.
    p50_wait_micros: f64,
    /// p99 sim-time admission wait, microseconds.
    p99_wait_micros: f64,
}

/// The whole report.
#[derive(Debug, Serialize)]
struct Report {
    /// Schema tag for downstream tooling.
    schema: String,
    /// `full` or `smoke`.
    mode: String,
    /// Worker threads the open-loop run used.
    threads: usize,
    /// One record per hot path (incremental first, then shadow).
    workloads: Vec<Workload>,
    /// In-run incremental-vs-full-rebuild ratios.
    speedups: Speedups,
    /// Queueing outcomes of the `open_loop` workload.
    service: ServiceStats,
}

fn timed(id: &str, unit: &str, n: u64, f: impl FnOnce()) -> Workload {
    let t0 = Instant::now();
    f();
    Workload {
        id: id.to_string(),
        unit: unit.to_string(),
        n,
        per_sec: n as f64 / t0.elapsed().as_secs_f64().max(1e-9),
    }
}

/// Pure `(seed, index) -> Arrival` generation, the split-anywhere path.
fn arrival_gen_workload(n: u64) -> Workload {
    timed("arrival_gen", "arrivals_per_sec", n, || {
        let mut holds = 0u64;
        for i in 0..n {
            holds += arrival(42, i, Mix::Production).intent.hold.0;
        }
        assert!(holds > 0);
    })
}

/// The single-cube loss configuration: smallest slices, highest
/// request rate per pod-second — the policy core's worst case.
fn loss_core_workload(pool: &Pool, n: u64, shadow: bool) -> Workload {
    let cfg = ServiceConfig {
        requests: n,
        mean_gap: Nanos::from_millis(2),
        mix: Mix::SingleCube,
        policy: PolicyConfig {
            queue_limit: 0,
            preemption: false,
        },
        shadow,
        ..ServiceConfig::default()
    };
    let id = if shadow {
        "loss_core_shadow"
    } else {
        "loss_core"
    };
    timed(id, "requests_per_sec", n, || {
        let (report, _) = run_sharded(pool, &cfg);
        assert_eq!(report.submitted, n);
    })
}

/// The headline number: sustained requests/sec of the full production
/// open-loop run (validation, WFQ admission, preemption, real pod
/// composes/releases per cell), plus its queueing stats.
fn open_loop_workload(pool: &Pool, n: u64, shadow: bool) -> (Workload, ServiceStats) {
    let cfg = ServiceConfig {
        requests: n,
        shadow,
        ..ServiceConfig::default()
    };
    let id = if shadow {
        "open_loop_shadow"
    } else {
        "open_loop"
    };
    let mut out = None;
    let w = timed(id, "requests_per_sec", n, || {
        let (report, _) = run_sharded(pool, &cfg);
        assert_eq!(report.submitted, n);
        out = Some(report);
    });
    let report = out.expect("timed closure ran");
    let stats = ServiceStats {
        requests: report.submitted,
        admitted: report.classes.iter().map(|c| c.admitted).sum(),
        blocked: report.blocked(),
        preempted: report.preempted(),
        completed: report.completed(),
        blocking_probability: report.blocking_probability(),
        utilization: report.utilization(),
        p50_wait_micros: report.wait_quantile_micros(0.50).unwrap_or(0.0),
        p99_wait_micros: report.wait_quantile_micros(0.99).unwrap_or(0.0),
    };
    (w, stats)
}

/// The perf gate: incremental must beat the in-run full-rebuild
/// baseline by this factor on both pod-backed workloads.
const GATE: f64 = 5.0;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR7.json".to_string());

    let (gen_n, loss_n, open_n) = if smoke {
        (200_000u64, 8_000u64, 15_000u64)
    } else {
        (2_000_000, 200_000, 1_000_000)
    };
    let pool = Pool::from_env();

    let (open, service) = open_loop_workload(&pool, open_n, false);
    // The shadow baselines replay the *same* arrivals with the
    // full-rebuild cross-check on. Shadow-sized down in full mode: the
    // shadow report is not compared (different n), only its rate.
    let shadow_open_n = if smoke { open_n } else { open_n / 10 };
    let shadow_loss_n = if smoke { loss_n } else { loss_n / 10 };
    let (open_shadow, _) = open_loop_workload(&pool, shadow_open_n, true);
    let loss = loss_core_workload(&pool, loss_n, false);
    let loss_shadow = loss_core_workload(&pool, shadow_loss_n, true);

    let speedups = Speedups {
        loss_core: loss.per_sec / loss_shadow.per_sec.max(1e-9),
        open_loop: open.per_sec / open_shadow.per_sec.max(1e-9),
        gate: GATE,
    };

    let report = Report {
        schema: "lightwave/bench-pr7/v1".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        threads: pool.threads(),
        workloads: vec![
            arrival_gen_workload(gen_n),
            loss,
            loss_shadow,
            open,
            open_shadow,
        ],
        speedups,
        service,
    };

    for w in &report.workloads {
        println!("{:<18} n={:<9} {:>14.0} {}", w.id, w.n, w.per_sec, w.unit);
    }
    println!(
        "speedup vs in-run full rebuild: open_loop {:.1}x (gate ≥{:.0}x), loss_core {:.1}x",
        report.speedups.open_loop, GATE, report.speedups.loss_core
    );
    println!(
        "open-loop: {:.2}% blocked, {:.1}% utilization, p99 admit wait {:.0} us",
        report.service.blocking_probability * 100.0,
        report.service.utilization * 100.0,
        report.service.p99_wait_micros
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write BENCH_PR7.json");
    println!("wrote {out}");

    assert!(
        report.speedups.open_loop >= GATE,
        "perf gate: incremental open_loop ({:.0}/s) must beat the in-run \
         full-rebuild baseline ({:.0}/s) by >= {GATE}x, got {:.1}x",
        report.workloads[3].per_sec,
        report.workloads[4].per_sec,
        report.speedups.open_loop
    );
    assert!(
        report.speedups.loss_core >= GATE,
        "perf gate: incremental loss_core ({:.0}/s) must beat the in-run \
         full-rebuild baseline ({:.0}/s) by >= {GATE}x, got {:.1}x",
        report.workloads[1].per_sec,
        report.workloads[2].per_sec,
        report.speedups.loss_core
    );
}
