//! Reproduces the paper's tables and figures.
//!
//! ```text
//! cargo run -p lightwave-bench --release --bin repro            # everything
//! cargo run -p lightwave-bench --release --bin repro fig11 tab2 # a subset
//! cargo run -p lightwave-bench --release --bin repro -- --quick # fast pass
//! ```

use lightwave_bench::{run, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--list") {
        for id in ALL_EXPERIMENTS {
            let r = run(id, true).expect("registry is consistent");
            println!("{:<9} {}", r.id, r.title);
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let requested: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(|s| s.as_str())
        .collect();
    let ids: Vec<&str> = if requested.is_empty() {
        ALL_EXPERIMENTS.to_vec()
    } else {
        requested
    };

    let mut failures = 0usize;
    for id in ids {
        match run(id, quick) {
            Some(result) => {
                println!("{}", result.render());
                if !result.passed() {
                    failures += 1;
                }
            }
            None => {
                eprintln!("unknown experiment: {id} (known: {ALL_EXPERIMENTS:?})");
                std::process::exit(2);
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) had failing checks");
        std::process::exit(1);
    }
    println!("all experiment checks passed");
}
