//! Offline validator for exported trace artifacts.
//!
//! ```text
//! cargo run -p lightwave-bench --release --bin validate_trace -- \
//!     target/trace/trace.json target/trace/flight.jsonl
//! ```
//!
//! Checks a Chrome trace-event file against the subset of the format the
//! exporter emits (see `lightwave-trace::validate` — no network, no
//! external schema) and smoke-checks a flight-recorder bundle as
//! non-empty, parseable JSONL. Exits non-zero with a diagnostic on the
//! first violation, so CI can gate on it.

use lightwave_trace::validate::{validate_chrome_trace, validate_flight_jsonl};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: validate_trace <trace.json> [flight.jsonl]");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (trace_path, flight_path) = match args.as_slice() {
        [t] => (t.clone(), None),
        [t, f] => (t.clone(), Some(f.clone())),
        _ => return usage(),
    };

    let trace = match std::fs::read_to_string(&trace_path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("validate_trace: cannot read {trace_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    match validate_chrome_trace(&trace) {
        Ok(stats) => println!(
            "{trace_path}: OK — {} events ({} spans, {} flows, {} instants, {} metadata)",
            stats.total(),
            stats.complete,
            stats.flows,
            stats.instants,
            stats.metadata
        ),
        Err(e) => {
            eprintln!("{trace_path}: INVALID — {e}");
            return ExitCode::FAILURE;
        }
    }

    if let Some(flight_path) = flight_path {
        let jsonl = match std::fs::read_to_string(&flight_path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("validate_trace: cannot read {flight_path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match validate_flight_jsonl(&jsonl) {
            Ok(lines) => println!("{flight_path}: OK — {lines} JSONL lines"),
            Err(e) => {
                eprintln!("{flight_path}: INVALID — {e}");
                return ExitCode::FAILURE;
            }
        }
    }

    ExitCode::SUCCESS
}
