//! Fabric-as-a-service throughput benchmark → `BENCH_PR6.json`.
//!
//! Measures the service layer's hot paths — pure arrival generation,
//! the policy core with no pod behind it (loss-mode single-cube), and
//! the full sharded open-loop run (real superpods, production mix) —
//! and reports the sustained request rate plus the p50/p99 sim-time
//! admission waits of the big run (schema documented in EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p lightwave-bench --release --bin bench_pr6              # 1M arrivals
//! cargo run -p lightwave-bench --release --bin bench_pr6 -- --smoke  # CI-sized
//! cargo run -p lightwave-bench --release --bin bench_pr6 -- --out p  # custom path
//! ```

use lightwave_core::par::Pool;
use lightwave_core::service::{arrival, run_sharded, Mix, PolicyConfig, ServiceConfig};
use lightwave_units::Nanos;
use serde::Serialize;
use std::time::Instant;

/// One hot path's measurement.
#[derive(Debug, Serialize)]
struct Workload {
    /// Workload id: `arrival_gen`, `loss_core`, or `open_loop`.
    id: String,
    /// The unit `per_sec` counts.
    unit: String,
    /// Work units per timed run.
    n: u64,
    /// Units per second (wall time).
    per_sec: f64,
}

/// Queueing outcomes of the big open-loop run (sim time, not wall time).
#[derive(Debug, Serialize)]
struct ServiceStats {
    /// Arrivals submitted.
    requests: u64,
    /// Admissions (including re-admissions after preemption).
    admitted: u64,
    /// Arrivals turned away at the queue bound.
    blocked: u64,
    /// Evictions by higher-priority admissions.
    preempted: u64,
    /// Requests that served their full hold.
    completed: u64,
    /// blocked / offered.
    blocking_probability: f64,
    /// busy cube-time / pod cube-time.
    utilization: f64,
    /// Median sim-time admission wait, microseconds.
    p50_wait_micros: f64,
    /// p99 sim-time admission wait, microseconds.
    p99_wait_micros: f64,
}

/// The whole report.
#[derive(Debug, Serialize)]
struct Report {
    /// Schema tag for downstream tooling.
    schema: String,
    /// `full` or `smoke`.
    mode: String,
    /// Worker threads the open-loop run used.
    threads: usize,
    /// One record per hot path.
    workloads: Vec<Workload>,
    /// Queueing outcomes of the `open_loop` workload.
    service: ServiceStats,
}

fn timed(id: &str, unit: &str, n: u64, f: impl FnOnce()) -> Workload {
    let t0 = Instant::now();
    f();
    Workload {
        id: id.to_string(),
        unit: unit.to_string(),
        n,
        per_sec: n as f64 / t0.elapsed().as_secs_f64().max(1e-9),
    }
}

/// Pure `(seed, index) -> Arrival` generation, the split-anywhere path.
fn arrival_gen_workload(n: u64) -> Workload {
    timed("arrival_gen", "arrivals_per_sec", n, || {
        let mut holds = 0u64;
        for i in 0..n {
            holds += arrival(42, i, Mix::Production).intent.hold.0;
        }
        assert!(holds > 0);
    })
}

/// The single-cube loss configuration: smallest slices, highest
/// request rate per pod-second — the policy core's worst case.
fn loss_core_workload(pool: &Pool, n: u64) -> Workload {
    let cfg = ServiceConfig {
        requests: n,
        mean_gap: Nanos::from_millis(2),
        mix: Mix::SingleCube,
        policy: PolicyConfig {
            queue_limit: 0,
            preemption: false,
        },
        ..ServiceConfig::default()
    };
    timed("loss_core", "requests_per_sec", n, || {
        let (report, _) = run_sharded(pool, &cfg);
        assert_eq!(report.submitted, n);
    })
}

/// The headline number: sustained requests/sec of the full production
/// open-loop run (validation, WFQ admission, preemption, real pod
/// composes/releases per cell), plus its queueing stats.
fn open_loop_workload(pool: &Pool, n: u64) -> (Workload, ServiceStats) {
    let cfg = ServiceConfig {
        requests: n,
        ..ServiceConfig::default()
    };
    let mut out = None;
    let w = timed("open_loop", "requests_per_sec", n, || {
        let (report, _) = run_sharded(pool, &cfg);
        assert_eq!(report.submitted, n);
        out = Some(report);
    });
    let report = out.expect("timed closure ran");
    let stats = ServiceStats {
        requests: report.submitted,
        admitted: report.classes.iter().map(|c| c.admitted).sum(),
        blocked: report.blocked(),
        preempted: report.preempted(),
        completed: report.completed(),
        blocking_probability: report.blocking_probability(),
        utilization: report.utilization(),
        p50_wait_micros: report.wait_quantile_micros(0.50).unwrap_or(0.0),
        p99_wait_micros: report.wait_quantile_micros(0.99).unwrap_or(0.0),
    };
    (w, stats)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR6.json".to_string());

    let (gen_n, loss_n, open_n) = if smoke {
        (200_000u64, 8_000u64, 15_000u64)
    } else {
        (2_000_000, 200_000, 1_000_000)
    };
    let pool = Pool::from_env();

    let (open, service) = open_loop_workload(&pool, open_n);
    let report = Report {
        schema: "lightwave/bench-pr6/v1".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        threads: pool.threads(),
        workloads: vec![
            arrival_gen_workload(gen_n),
            loss_core_workload(&pool, loss_n),
            open,
        ],
        service,
    };

    for w in &report.workloads {
        println!("{:<16} n={:<9} {:>14.0} {}", w.id, w.n, w.per_sec, w.unit);
    }
    println!(
        "open-loop: {:.2}% blocked, {:.1}% utilization, p99 admit wait {:.0} us",
        report.service.blocking_probability * 100.0,
        report.service.utilization * 100.0,
        report.service.p99_wait_micros
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write BENCH_PR6.json");
    println!("wrote {out}");
}
