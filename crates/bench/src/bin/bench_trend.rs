//! Cross-PR throughput trajectory → a markdown table.
//!
//! Every perf PR pins a `BENCH_PR<N>.json` at the repo root. This tool
//! merges them into one pivot table — rows are workload ids, columns
//! are PRs — so a regression that creeps in across PRs (each one
//! individually under its own gate) is visible at a glance. The table
//! is pinned as a regenerable block in `EXPERIMENTS.md`:
//!
//! ```text
//! cargo run -p lightwave-bench --release --bin bench_trend            # stdout
//! cargo run -p lightwave-bench --release --bin bench_trend -- --out t # file
//! ```
//!
//! Caveat printed with the table: the per-PR numbers are wall-clock
//! measurements from *different* runs (possibly different machines),
//! so the trajectory is indicative; the enforced gates (`bench_pr7`'s
//! shadow speedup, `bench_pr8`'s scope overhead) are in-run ratios and
//! are the numbers that hard-fail.

use serde::Deserialize;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The schema tag, read first to pick a parser.
#[derive(Debug, Deserialize)]
struct SchemaOnly {
    /// `lightwave/bench-prN/v1`.
    schema: String,
}

/// `bench_pr2`-style workload: serial rate plus a parallel sweep.
#[derive(Debug, Deserialize)]
struct Pr2Workload {
    id: String,
    unit: String,
    serial_per_sec: f64,
}

/// `bench_pr2` file shape.
#[derive(Debug, Deserialize)]
struct Pr2File {
    workloads: Vec<Pr2Workload>,
}

/// Flat workload (`bench_pr6` onward): one wall-clock rate.
#[derive(Debug, Deserialize)]
struct FlatWorkload {
    id: String,
    unit: String,
    per_sec: f64,
}

/// Flat file shape (`bench_pr6`, `bench_pr7`, `bench_pr8`, ...).
#[derive(Debug, Deserialize)]
struct FlatFile {
    workloads: Vec<FlatWorkload>,
}

/// One parsed benchmark file.
struct PrBench {
    pr: u32,
    /// (workload id, unit, rate) in file order.
    rows: Vec<(String, String, f64)>,
}

fn parse(pr: u32, text: &str) -> Result<PrBench, String> {
    let tag: SchemaOnly =
        serde_json::from_str(text).map_err(|e| format!("BENCH_PR{pr}: no schema tag: {e}"))?;
    let rows = if tag.schema.starts_with("lightwave/bench-pr2/") {
        let f: Pr2File =
            serde_json::from_str(text).map_err(|e| format!("BENCH_PR{pr}: pr2 shape: {e}"))?;
        f.workloads
            .into_iter()
            .map(|w| (w.id, w.unit, w.serial_per_sec))
            .collect()
    } else {
        let f: FlatFile =
            serde_json::from_str(text).map_err(|e| format!("BENCH_PR{pr}: flat shape: {e}"))?;
        f.workloads
            .into_iter()
            .map(|w| (w.id, w.unit, w.per_sec))
            .collect()
    };
    Ok(PrBench { pr, rows })
}

fn human(rate: f64) -> String {
    if rate >= 1e6 {
        format!("{:.2}M", rate / 1e6)
    } else if rate >= 1e3 {
        format!("{:.1}k", rate / 1e3)
    } else {
        format!("{rate:.0}")
    }
}

fn render(benches: &[PrBench]) -> String {
    // Row order: first PR that reported a workload wins its position.
    let mut order: Vec<String> = Vec::new();
    let mut units: BTreeMap<String, String> = BTreeMap::new();
    let mut cells: BTreeMap<(String, u32), f64> = BTreeMap::new();
    for b in benches {
        for (id, unit, rate) in &b.rows {
            if !order.contains(id) {
                order.push(id.clone());
            }
            units.entry(id.clone()).or_insert_with(|| unit.clone());
            cells.insert((id.clone(), b.pr), *rate);
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "| workload | unit |{} trend |",
        benches
            .iter()
            .map(|b| format!(" PR{} |", b.pr))
            .collect::<String>()
    );
    let _ = writeln!(
        out,
        "|---|---|{} ---|",
        benches.iter().map(|_| "---:|").collect::<String>()
    );
    for id in &order {
        let _ = write!(out, "| `{id}` | {} |", units[id]);
        let mut seen: Vec<f64> = Vec::new();
        for b in benches {
            match cells.get(&(id.clone(), b.pr)) {
                Some(&rate) => {
                    seen.push(rate);
                    let _ = write!(out, " {} |", human(rate));
                }
                None => {
                    let _ = write!(out, " — |");
                }
            }
        }
        let trend = match (seen.first(), seen.last()) {
            (Some(&first), Some(&last)) if seen.len() > 1 && first > 0.0 => {
                format!("{:.2}x", last / first)
            }
            _ => "—".to_string(),
        };
        let _ = writeln!(out, " {trend} |");
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let mut benches = Vec::new();
    for pr in 1..=64u32 {
        let path = format!("BENCH_PR{pr}.json");
        let Ok(text) = std::fs::read_to_string(&path) else {
            continue;
        };
        match parse(pr, &text) {
            Ok(b) => benches.push(b),
            Err(e) => eprintln!("skipping {path}: {e}"),
        }
    }
    if benches.is_empty() {
        eprintln!("no BENCH_PR*.json found in the current directory");
        std::process::exit(1);
    }

    let mut doc = String::from(
        "Throughput trajectory across PR-pinned benchmark artifacts \
         (wall-clock rates from separate runs — indicative, not gated; \
         `trend` = last / first reported):\n\n",
    );
    doc.push_str(&render(&benches));

    print!("{doc}");
    if let Some(p) = out_path {
        std::fs::write(&p, &doc).expect("write trend table");
        println!("\nwrote {p}");
    }
}
