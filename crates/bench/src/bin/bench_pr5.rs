//! Fleet-health analytics throughput benchmark → `BENCH_PR5.json`.
//!
//! Measures the health layer's per-sample hot paths — time-series push
//! (raw ring + downsample tiers), streaming detector ingest (CUSUM +
//! EWMA per drift sample), health-report rendering — and the end-to-end
//! overhead of running the full chaos executor with the health layer
//! wired in, then writes a machine-readable record (schema documented in
//! EXPERIMENTS.md).
//!
//! ```text
//! cargo run -p lightwave-bench --release --bin bench_pr5              # full depth
//! cargo run -p lightwave-bench --release --bin bench_pr5 -- --smoke  # CI-sized
//! cargo run -p lightwave-bench --release --bin bench_pr5 -- --out p  # custom path
//! ```

use lightwave_core::chaos::{run_schedule, ChaosConfig, FaultSchedule};
use lightwave_core::telemetry::{FleetHealth, FleetTelemetry, SeriesConfig, SeriesStore};
use lightwave_units::Nanos;
use serde::Serialize;
use std::time::Instant;

/// One hot path's measurement.
#[derive(Debug, Serialize)]
struct Workload {
    /// Workload id: `series_push`, `detector_ingest`, `report_render`,
    /// or `chaos_overhead`.
    id: String,
    /// The unit `per_sec` counts.
    unit: String,
    /// Work units per timed run.
    n: u64,
    /// Units per second.
    per_sec: f64,
}

/// The whole report.
#[derive(Debug, Serialize)]
struct Report {
    /// Schema tag for downstream tooling.
    schema: String,
    /// `full` or `smoke`.
    mode: String,
    /// One record per hot path.
    workloads: Vec<Workload>,
}

fn timed(id: &str, unit: &str, n: u64, f: impl FnOnce()) -> Workload {
    let t0 = Instant::now();
    f();
    Workload {
        id: id.to_string(),
        unit: unit.to_string(),
        n,
        per_sec: n as f64 / t0.elapsed().as_secs_f64().max(1e-9),
    }
}

/// Raw-ring + tier maintenance cost per sample, across 64 series.
fn series_push_workload(samples: u64) -> Workload {
    let mut store = SeriesStore::new(SeriesConfig::default());
    let ids: Vec<_> = (0..64u32)
        .map(|p| {
            let label = format!("{p}");
            store.series("bench_drift_db", &[("port", &label)])
        })
        .collect();
    timed("series_push", "samples_per_sec", samples, || {
        for i in 0..samples {
            let id = ids[(i % 64) as usize];
            store.push(id, Nanos::from_micros(i * 50), (i % 977) as f64 * 1e-3);
        }
        assert!(store.len() >= 64);
    })
}

/// CUSUM + EWMA ingest per drift sample, alarms wired.
fn detector_ingest_workload(samples: u64) -> Workload {
    let mut sink = FleetTelemetry::new();
    let mut health = FleetHealth::default();
    timed("detector_ingest", "samples_per_sec", samples, || {
        for i in 0..samples {
            // A near-flat dither well under the EWMA threshold and CUSUM
            // slack: measures the steady-state path, not trip handling.
            health.ingest_drift(
                &mut sink,
                Nanos::from_micros(i * 50),
                (i % 48) as u32,
                i % 2 == 0,
                (i % 64) as u16,
                (i % 7) as f64 * 1e-4,
            );
        }
        assert!(health.trips().is_empty(), "flat ingest must not trip");
    })
}

/// Scoring + dashboard + JSONL rendering over a populated fleet.
fn report_render_workload(renders: u64) -> Workload {
    let mut sink = FleetTelemetry::new();
    let mut health = FleetHealth::default();
    for i in 0..10_000u64 {
        health.ingest_drift(
            &mut sink,
            Nanos::from_micros(i * 50),
            (i % 48) as u32,
            true,
            (i % 64) as u16,
            (i % 5) as f64 * 1e-4,
        );
    }
    let now = Nanos::from_millis(500);
    timed("report_render", "renders_per_sec", renders, || {
        let mut bytes = 0usize;
        for _ in 0..renders {
            bytes += health.dashboard(now).len() + health.to_jsonl(now).len();
        }
        assert!(bytes > 0);
    })
}

/// End-to-end chaos schedules with the health layer wired in (the
/// executor's observe loop scrapes, forwards drift, and polls the
/// recorder with counter embedding every event).
fn chaos_overhead_workload(schedules: u64) -> Workload {
    let cfg = ChaosConfig::default();
    timed("chaos_overhead", "schedules_per_sec", schedules, || {
        let mut trips = 0u32;
        for i in 0..schedules {
            trips += run_schedule(&FaultSchedule::generate_degradation(2024, i), &cfg).trend_trips;
        }
        assert!(trips >= schedules as u32, "every degradation trips");
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR5.json".to_string());

    let (samples, renders, schedules) = if smoke {
        (200_000u64, 200u64, 8u64)
    } else {
        (5_000_000, 2_000, 64)
    };

    let report = Report {
        schema: "lightwave/bench-pr5/v1".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        workloads: vec![
            series_push_workload(samples),
            detector_ingest_workload(samples),
            report_render_workload(renders),
            chaos_overhead_workload(schedules),
        ],
    };

    for w in &report.workloads {
        println!("{:<16} n={:<9} {:>14.0} {}", w.id, w.n, w.per_sec, w.unit);
    }

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write BENCH_PR5.json");
    println!("wrote {out}");
}
