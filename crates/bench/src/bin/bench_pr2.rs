//! Parallel-engine throughput benchmark → `BENCH_PR2.json`.
//!
//! Measures the three evaluation-scale hot paths — symbol-level Monte-Carlo
//! BER (Fig. 11a), pool-availability Monte Carlo (Fig. 15), and the fleet
//! transceiver census (Fig. 13) — serially and on the `lightwave-par`
//! engine at 1/2/4 worker threads, then writes a machine-readable record
//! (schema documented in EXPERIMENTS.md) to start the perf trajectory.
//!
//! ```text
//! cargo run -p lightwave-bench --release --bin bench_pr2              # full depth
//! cargo run -p lightwave-bench --release --bin bench_pr2 -- --smoke  # CI-sized
//! cargo run -p lightwave-bench --release --bin bench_pr2 -- --out p  # custom path
//! ```

use lightwave_core::availability::{
    cube_availability, monte_carlo_pool_availability_with_pool, POOL_SHARD_TRIALS,
};
use lightwave_core::optics::ber::{mpi_db, Pam4Receiver};
use lightwave_core::optics::montecarlo::{simulate_ber_seeded, simulate_ber_with_pool};
use lightwave_core::superpod::POD_CUBES;
use lightwave_core::transceiver::fleet::{fleet_census_with_pool, POD_RX_PORTS};
use lightwave_core::transceiver::ModuleFamily;
use lightwave_core::units::{Availability, Dbm};
use lightwave_par::{Pool, THREADS_ENV};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// Thread counts the report sweeps.
const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

/// One engine measurement at a fixed thread count.
#[derive(Debug, Serialize)]
struct ParallelPoint {
    /// Worker threads in the pool.
    threads: usize,
    /// Work units (symbols / trials / ports) per second.
    per_sec: f64,
    /// Engine worker utilization for the timed run, in [0, 1]; 0.0 for
    /// workloads that don't surface engine stats (their wrapper API hides
    /// `RunStats`).
    utilization: f64,
}

/// One hot path's serial-vs-parallel record.
#[derive(Debug, Serialize)]
struct Workload {
    /// Workload id: `mc_ber`, `pool_availability`, or `fleet_census`.
    id: String,
    /// The unit `per_sec` counts.
    unit: String,
    /// Work units per timed run.
    n: u64,
    /// Pre-engine single-stream baseline, units per second.
    serial_per_sec: f64,
    /// Engine throughput at each of [`THREAD_COUNTS`].
    parallel: Vec<ParallelPoint>,
    /// Best parallel throughput ÷ serial baseline.
    speedup_best: f64,
    /// 4-thread engine throughput ÷ serial baseline (the PR-2 acceptance
    /// number; ≥ 2.5 expected on a ≥ 4-core machine).
    speedup_4t: f64,
}

/// The whole report.
#[derive(Debug, Serialize)]
struct Report {
    /// Schema tag for downstream tooling.
    schema: String,
    /// `full` or `smoke`.
    mode: String,
    /// Hardware context: speedups are bounded by physical cores.
    available_parallelism: usize,
    /// The `LIGHTWAVE_THREADS` override in effect, if any.
    threads_env: Option<String>,
    /// One record per hot path.
    workloads: Vec<Workload>,
}

fn time_per_sec(n: u64, f: impl FnOnce()) -> f64 {
    let t0 = Instant::now();
    f();
    n as f64 / t0.elapsed().as_secs_f64().max(1e-9)
}

fn mc_ber_workload(symbols: u64) -> Workload {
    let rx = Pam4Receiver::cwdm4_50g();
    let p = Dbm(-12.5);
    let mpi = mpi_db(-32.0);
    // Warm the caches/branch predictors off the clock.
    let _ = simulate_ber_seeded(&rx, p, mpi, None, (symbols / 20).max(1), 7);

    let serial_per_sec = time_per_sec(symbols, || {
        let r = simulate_ber_seeded(&rx, p, mpi, None, symbols, 42);
        assert!(r.bits == symbols * 2);
    });
    let parallel: Vec<ParallelPoint> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let pool = Pool::new(threads);
            let mut utilization = 0.0;
            let per_sec = time_per_sec(symbols, || {
                let (r, stats) = simulate_ber_with_pool(&pool, &rx, p, mpi, None, symbols, 42);
                assert!(r.bits == symbols * 2);
                utilization = stats.utilization();
            });
            ParallelPoint {
                threads,
                per_sec,
                utilization,
            }
        })
        .collect();
    finish(
        "mc_ber",
        "symbols_per_sec",
        symbols,
        serial_per_sec,
        parallel,
    )
}

fn pool_availability_workload(trials: u64) -> Workload {
    let ca = cube_availability(Availability::new(0.999));
    let need = 48;
    // The pre-engine baseline: one sequential stream over all trials.
    let serial_per_sec = time_per_sec(trials, || {
        let mut rng = StdRng::seed_from_u64(11);
        let mut ok = 0u64;
        for _ in 0..trials {
            let working = (0..POD_CUBES)
                .filter(|_| rng.random_bool(ca.prob()))
                .count();
            ok += u64::from(working >= need);
        }
        assert!(ok <= trials);
    });
    let parallel: Vec<ParallelPoint> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let pool = Pool::new(threads);
            let per_sec = time_per_sec(trials, || {
                let est = monte_carlo_pool_availability_with_pool(&pool, ca, need, trials, 11);
                assert!((0.0..=1.0).contains(&est));
            });
            ParallelPoint {
                threads,
                per_sec,
                utilization: 0.0,
            }
        })
        .collect();
    finish(
        "pool_availability",
        "trials_per_sec",
        trials,
        serial_per_sec,
        parallel,
    )
}

fn fleet_census_workload(ports: u64) -> Workload {
    let family = ModuleFamily::Cwdm4Bidi;
    let serial = Pool::new(1);
    let serial_per_sec = time_per_sec(ports, || {
        let c = fleet_census_with_pool(&serial, ports as usize, family, 42);
        assert!(!c.samples.is_empty());
    });
    let parallel: Vec<ParallelPoint> = THREAD_COUNTS
        .iter()
        .map(|&threads| {
            let pool = Pool::new(threads);
            let per_sec = time_per_sec(ports, || {
                let c = fleet_census_with_pool(&pool, ports as usize, family, 42);
                assert!(!c.samples.is_empty());
            });
            ParallelPoint {
                threads,
                per_sec,
                utilization: 0.0,
            }
        })
        .collect();
    finish(
        "fleet_census",
        "ports_per_sec",
        ports,
        serial_per_sec,
        parallel,
    )
}

fn finish(
    id: &str,
    unit: &str,
    n: u64,
    serial_per_sec: f64,
    parallel: Vec<ParallelPoint>,
) -> Workload {
    let best = parallel.iter().fold(0.0f64, |a, p| a.max(p.per_sec));
    let four = parallel
        .iter()
        .find(|p| p.threads == 4)
        .map(|p| p.per_sec)
        .unwrap_or(0.0);
    Workload {
        id: id.to_string(),
        unit: unit.to_string(),
        n,
        serial_per_sec,
        speedup_best: best / serial_per_sec.max(1e-9),
        speedup_4t: four / serial_per_sec.max(1e-9),
        parallel,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR2.json".to_string());

    let (symbols, trials, ports) = if smoke {
        (200_000, POOL_SHARD_TRIALS * 4 + 123, 128)
    } else {
        (10_000_000, 1_000_000, POD_RX_PORTS as u64)
    };

    let report = Report {
        schema: "lightwave/bench-pr2/v1".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        available_parallelism: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        threads_env: std::env::var(THREADS_ENV).ok(),
        workloads: vec![
            mc_ber_workload(symbols),
            pool_availability_workload(trials),
            fleet_census_workload(ports),
        ],
    };

    for w in &report.workloads {
        println!(
            "{:<17} n={:<9} serial {:>12.0} {}  speedup: best {:.2}x, 4t {:.2}x",
            w.id, w.n, w.serial_per_sec, w.unit, w.speedup_best, w.speedup_4t
        );
        for p in &w.parallel {
            println!(
                "  {} thread(s): {:>12.0} {} (utilization {:.0}%)",
                p.threads,
                p.per_sec,
                w.unit,
                p.utilization * 100.0
            );
        }
    }
    println!(
        "machine: available_parallelism={} ({}={:?})",
        report.available_parallelism, THREADS_ENV, report.threads_env
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write BENCH_PR2.json");
    println!("wrote {out}");
}
