//! FEC/PAM4 kernel throughput benchmark → `BENCH_PR9.json`.
//!
//! Times the serial hot paths reworked in DESIGN §6.8 — RS(544,514)
//! encode/decode and the Monte-Carlo PAM4 symbol loops behind fig11/fig13 —
//! against the frozen textbook implementations that live on as
//! `fec::reference` and `optics::montecarlo::reference`. Both sides run in
//! the same process on the same inputs (and the reference even benefits
//! from the new const GF tables), so the speedup ratios are in-run,
//! robust to runner speed, and honest about where the win comes from.
//!
//! The perf gate asserts ≥5x on the two paths ROADMAP item 3 names: the
//! t = 15 RS decode and the clean PAM4 MC symbol loop. The MPI loop is
//! recorded but ungated — its beat-phase random walk is inherently serial
//! (every symbol's Box–Muller phase step must be computed), which caps its
//! batched speedup well below the clean loop's.
//!
//! Every workload also cross-checks bit-identity fast-vs-reference
//! in-process, and the deterministic `identity` block is byte-compared
//! across `LIGHTWAVE_THREADS` by CI.
//!
//! ```text
//! cargo run -p lightwave-bench --release --bin bench_pr9              # full
//! cargo run -p lightwave-bench --release --bin bench_pr9 -- --smoke  # CI-sized
//! cargo run -p lightwave-bench --release --bin bench_pr9 -- --out p  # custom path
//! ```

use lightwave_core::fec::gf::Gf;
use lightwave_core::fec::reference::ReferenceRs;
use lightwave_core::fec::{ReedSolomon, RsScratch};
use lightwave_core::optics::ber::{mpi_db, Pam4Receiver};
use lightwave_core::optics::montecarlo::{self as mc, McChannel};
use lightwave_core::par::Pool;
use lightwave_units::Dbm;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::Serialize;
use std::time::Instant;

/// The in-run speedup both gated kernels must clear.
const GATE: f64 = 5.0;

/// One kernel's measurement.
#[derive(Debug, Serialize)]
struct Workload {
    /// Kernel id (`*_reference` = frozen textbook path).
    id: String,
    /// The unit `per_sec` counts.
    unit: String,
    /// Work units per timed run.
    n: u64,
    /// Units per second (wall time).
    per_sec: f64,
}

/// In-run fast-vs-reference ratios (same process, same inputs).
#[derive(Debug, Serialize)]
struct Speedups {
    /// `rs_encode` / `rs_encode_reference`.
    rs_encode: f64,
    /// `rs_decode_t15` / `rs_decode_t15_reference` — gated.
    rs_decode_t15: f64,
    /// `rs_decode_clean` / `rs_decode_clean_reference`.
    rs_decode_clean: f64,
    /// `mc_symbol_loop` / `mc_symbol_loop_reference` — gated.
    mc_symbol_loop: f64,
    /// `mc_mpi_loop` / `mc_mpi_loop_reference` (ungated; serial phase walk).
    mc_mpi_loop: f64,
    /// The gate threshold for the two gated ratios.
    gate: f64,
}

/// Deterministic outcomes: identical in every run at every thread count
/// (CI byte-compares this block across `LIGHTWAVE_THREADS`).
#[derive(Debug, Serialize)]
struct Identity {
    /// FNV-1a over every fast-decoded word and result code.
    rs_decode_checksum: u64,
    /// Codewords where fast and reference decode agreed exactly.
    rs_reference_matches: u64,
    /// Symbol corrections reported by the fast decoder.
    rs_corrected_symbols: u64,
    /// Detected-uncorrectable codewords (the t+1 = 16-error set).
    rs_decode_failures: u64,
    /// Clean-channel MC bit errors (fast == reference, asserted).
    mc_clean_errors: u64,
    /// MPI-channel MC bit errors (fast == reference, asserted).
    mc_mpi_errors: u64,
    /// Pooled `simulate_ber_par` bit errors on the ambient pool.
    mc_pooled_errors: u64,
    /// Same pooled run through the reference loop.
    mc_pooled_reference_errors: u64,
}

/// The whole report.
#[derive(Debug, Serialize)]
struct Report {
    /// Schema tag for downstream tooling.
    schema: String,
    /// `full` or `smoke`.
    mode: String,
    /// Worker threads of the ambient pool (pooled identity runs only;
    /// every timed kernel is single-threaded serial code).
    threads: usize,
    /// One record per kernel (fast first, then its reference).
    workloads: Vec<Workload>,
    /// In-run fast-vs-reference ratios.
    speedups: Speedups,
    /// Deterministic cross-thread-count outcomes.
    identity: Identity,
}

/// Times an interleaved fast/reference pair: each rep runs `fast` then
/// `reference` back to back, so both sides of the ratio sample the same
/// scheduler-noise window, and each side keeps its best rep. Both
/// closures must be idempotent — outputs are captured (and
/// cross-checked) outside the timed region. Best-of-reps on adjacent
/// pairs is what keeps the gate stable on CI runners where
/// `LIGHTWAVE_THREADS` oversubscribes the host.
fn timed_pair(
    ids: (&str, &str),
    unit: &str,
    n: u64,
    reps: u32,
    mut fast: impl FnMut(),
    mut reference: impl FnMut(),
) -> (Workload, Workload) {
    let mut best = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps {
        let t0 = Instant::now();
        fast();
        best.0 = best.0.min(t0.elapsed().as_secs_f64().max(1e-9));
        let t1 = Instant::now();
        reference();
        best.1 = best.1.min(t1.elapsed().as_secs_f64().max(1e-9));
    }
    let mk = |id: &str, secs: f64| Workload {
        id: id.to_string(),
        unit: unit.to_string(),
        n,
        per_sec: n as f64 / secs,
    };
    (mk(ids.0, best.0), mk(ids.1, best.1))
}

fn fnv1a(h: &mut u64, v: u64) {
    let mut x = *h;
    for b in v.to_le_bytes() {
        x ^= u64::from(b);
        x = x.wrapping_mul(0x100_0000_01b3);
    }
    *h = x;
}

/// Deterministic corpus: `count` KP4 codewords, each with `nerr` distinct
/// symbol errors injected.
fn corpus(rs: &ReedSolomon, count: usize, nerr: usize, seed: u64) -> Vec<Vec<Gf>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..count)
        .map(|_| {
            let data: Vec<Gf> = (0..rs.k()).map(|_| rng.random_range(0..1024u16)).collect();
            let mut cw = rs.encode(&data);
            let mut positions: Vec<usize> = (0..rs.n()).collect();
            for i in 0..nerr {
                let j = rng.random_range(i..positions.len());
                positions.swap(i, j);
                cw[positions[i]] ^= rng.random_range(1..1024u16);
            }
            cw
        })
        .collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR9.json".to_string());

    let rs = ReedSolomon::kp4();
    let reference = ReferenceRs::new(544, 514);
    let rx = Pam4Receiver::cwdm4_50g();

    // Workload sizes: the reference paths run the same n as the fast
    // paths (they are the denominator of an in-run ratio, and the
    // decoded outputs double as the bit-identity corpus).
    let (enc_n, dec_n, clean_n, mc_n, mpi_n) = if smoke {
        (600usize, 120usize, 300usize, 400_000u64, 150_000u64)
    } else {
        (6_000, 1_200, 3_000, 4_000_000, 1_500_000)
    };

    // --- RS encode ---------------------------------------------------
    let mut enc_rng = StdRng::seed_from_u64(0xE0);
    let messages: Vec<Vec<Gf>> = (0..enc_n)
        .map(|_| {
            (0..rs.k())
                .map(|_| enc_rng.random_range(0..1024u16))
                .collect()
        })
        .collect();
    let mut cw_buf: Vec<Gf> = Vec::new();
    rs.encode_into(&messages[0], &mut cw_buf); // warm
    let reps = 5;
    let enc_sink = std::cell::Cell::new(0u64);
    let (enc, enc_ref) = timed_pair(
        ("rs_encode", "rs_encode_reference"),
        "codewords_per_sec",
        enc_n as u64,
        reps,
        || {
            for m in &messages {
                rs.encode_into(m, &mut cw_buf);
                enc_sink.set(
                    enc_sink
                        .get()
                        .wrapping_add(u64::from(cw_buf[rs.n() - 1]) + 1),
                );
            }
        },
        || {
            for m in &messages {
                let cw = reference.encode(m);
                enc_sink.set(enc_sink.get().wrapping_add(u64::from(cw[rs.n() - 1]) + 1));
            }
        },
    );
    // Bit-identity of the encoders over the whole message set.
    for m in &messages {
        rs.encode_into(m, &mut cw_buf);
        assert_eq!(
            cw_buf,
            reference.encode(m),
            "encode fast/reference diverged"
        );
    }

    // --- RS decode, t = 15 errors ------------------------------------
    let dec_corpus = corpus(&rs, dec_n, rs.t(), 0xD15);
    let mut scratch = RsScratch::new();
    let mut checksum = 0xcbf2_9ce4_8422_2325u64;
    {
        let mut warm = dec_corpus[0].clone();
        let _ = rs.decode_with(&mut warm, &mut scratch);
    }
    let mut word_f: Vec<Gf> = Vec::new();
    let mut word_r: Vec<Gf> = Vec::new();
    let dec_sink = std::cell::Cell::new(0u64);
    let (dec, dec_ref) = timed_pair(
        ("rs_decode_t15", "rs_decode_t15_reference"),
        "codewords_per_sec",
        dec_n as u64,
        reps,
        || {
            for cw in &dec_corpus {
                word_f.clear();
                word_f.extend_from_slice(cw);
                let ok = rs.decode_with(&mut word_f, &mut scratch).is_ok();
                dec_sink.set(dec_sink.get() + u64::from(ok));
            }
        },
        || {
            for cw in &dec_corpus {
                word_r.clear();
                word_r.extend_from_slice(cw);
                dec_sink.set(dec_sink.get() + u64::from(reference.decode(&mut word_r).is_ok()));
            }
        },
    );
    assert_eq!(
        dec_sink.get(),
        2 * u64::from(reps) * dec_n as u64,
        "every t-error decode must succeed"
    );
    // Untimed cross-check + identity accumulation over the same corpus.
    let mut reference_matches = 0u64;
    let mut corrected_symbols = 0u64;
    for cw in &dec_corpus {
        let mut fast_word = cw.clone();
        let mut ref_word = cw.clone();
        let fast_res = rs.decode_with(&mut fast_word, &mut scratch);
        let ref_res = reference.decode(&mut ref_word);
        assert_eq!(fast_res, ref_res, "decode fast/reference result diverged");
        assert_eq!(fast_word, ref_word, "decode fast/reference buffer diverged");
        reference_matches += 1;
        if let Ok(n) = fast_res {
            corrected_symbols += n as u64;
        }
        for &s in &fast_word {
            fnv1a(&mut checksum, u64::from(s));
        }
        fnv1a(&mut checksum, u64::from(fast_res.is_ok()));
    }

    // --- RS decode, clean codewords (syndrome early-out path) --------
    let clean_corpus = corpus(&rs, clean_n, 0, 0xC1EA);
    let clean_sink = std::cell::Cell::new(0u64);
    let (dec_clean, dec_clean_ref) = timed_pair(
        ("rs_decode_clean", "rs_decode_clean_reference"),
        "codewords_per_sec",
        clean_n as u64,
        reps,
        || {
            for cw in &clean_corpus {
                word_f.clear();
                word_f.extend_from_slice(cw);
                let ok = rs.decode_with(&mut word_f, &mut scratch).is_ok();
                clean_sink.set(clean_sink.get() + u64::from(ok));
            }
        },
        || {
            for cw in &clean_corpus {
                word_r.clear();
                word_r.extend_from_slice(cw);
                let ok = reference.decode(&mut word_r).is_ok();
                clean_sink.set(clean_sink.get() + u64::from(ok));
            }
        },
    );
    assert_eq!(
        clean_sink.get(),
        2 * u64::from(reps) * clean_n as u64,
        "clean decodes must succeed"
    );

    // --- RS decode failures at t + 1 (identity corpus, untimed) ------
    let fail_corpus = corpus(&rs, if smoke { 20 } else { 100 }, rs.t() + 1, 0xF16);
    let mut decode_failures = 0u64;
    for cw in &fail_corpus {
        let mut fast_word = cw.clone();
        let mut ref_word = cw.clone();
        let fast_res = rs.decode_with(&mut fast_word, &mut scratch);
        let ref_res = reference.decode(&mut ref_word);
        assert_eq!(fast_res, ref_res, "t+1 fast/reference result diverged");
        assert_eq!(fast_word, ref_word, "t+1 fast/reference buffer diverged");
        decode_failures += u64::from(fast_res.is_err());
        fnv1a(&mut checksum, u64::from(fast_res.is_err()));
    }

    // --- MC clean symbol loop ----------------------------------------
    let clean_chan = McChannel::new(&rx, Dbm(-13.0), 0.0, None);
    let mut mc_clean_errors = 0u64;
    {
        let mut warm_rng = StdRng::seed_from_u64(1);
        let _ = clean_chan.run(10_000, &mut warm_rng);
    }
    let mut mc_ref_errors = 0u64;
    let (mc_fast, mc_ref) = timed_pair(
        ("mc_symbol_loop", "mc_symbol_loop_reference"),
        "symbols_per_sec",
        mc_n,
        reps,
        || {
            let mut rng = StdRng::seed_from_u64(42);
            mc_clean_errors = clean_chan.run(mc_n, &mut rng);
        },
        || {
            let mut rng = StdRng::seed_from_u64(42);
            mc_ref_errors = mc::reference::run(&clean_chan, mc_n, &mut rng);
        },
    );
    assert_eq!(
        mc_clean_errors, mc_ref_errors,
        "clean MC fast/reference diverged"
    );

    // --- MC MPI symbol loop ------------------------------------------
    let mpi_chan = McChannel::new(&rx, Dbm(-12.5), mpi_db(-32.0), None);
    let mut mc_mpi_errors = 0u64;
    let mut mpi_ref_errors = 0u64;
    let (mpi_fast, mpi_ref) = timed_pair(
        ("mc_mpi_loop", "mc_mpi_loop_reference"),
        "symbols_per_sec",
        mpi_n,
        reps,
        || {
            let mut rng = StdRng::seed_from_u64(43);
            mc_mpi_errors = mpi_chan.run(mpi_n, &mut rng);
        },
        || {
            let mut rng = StdRng::seed_from_u64(43);
            mpi_ref_errors = mc::reference::run(&mpi_chan, mpi_n, &mut rng);
        },
    );
    assert_eq!(
        mc_mpi_errors, mpi_ref_errors,
        "MPI MC fast/reference diverged"
    );

    // --- Pooled identity across LIGHTWAVE_THREADS --------------------
    let pool = Pool::from_env();
    let pooled_symbols = mc::DEFAULT_SHARD_SYMBOLS * 3 + 977;
    let pooled = mc::simulate_ber_with_pool(
        &pool,
        &rx,
        Dbm(-12.5),
        mpi_db(-32.0),
        None,
        pooled_symbols,
        42,
    )
    .0;
    let pooled_ref = mc::reference::simulate_ber_with_pool(
        &pool,
        &rx,
        Dbm(-12.5),
        mpi_db(-32.0),
        None,
        pooled_symbols,
        42,
    )
    .0;
    assert_eq!(pooled, pooled_ref, "pooled fast/reference diverged");

    let speedups = Speedups {
        rs_encode: enc.per_sec / enc_ref.per_sec.max(1e-9),
        rs_decode_t15: dec.per_sec / dec_ref.per_sec.max(1e-9),
        rs_decode_clean: dec_clean.per_sec / dec_clean_ref.per_sec.max(1e-9),
        mc_symbol_loop: mc_fast.per_sec / mc_ref.per_sec.max(1e-9),
        mc_mpi_loop: mpi_fast.per_sec / mpi_ref.per_sec.max(1e-9),
        gate: GATE,
    };
    let identity = Identity {
        rs_decode_checksum: checksum,
        rs_reference_matches: reference_matches,
        rs_corrected_symbols: corrected_symbols,
        rs_decode_failures: decode_failures,
        mc_clean_errors,
        mc_mpi_errors,
        mc_pooled_errors: pooled.errors,
        mc_pooled_reference_errors: pooled_ref.errors,
    };
    let report = Report {
        schema: "lightwave/bench-pr9/v1".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        threads: pool.threads(),
        workloads: vec![
            enc,
            enc_ref,
            dec,
            dec_ref,
            dec_clean,
            dec_clean_ref,
            mc_fast,
            mc_ref,
            mpi_fast,
            mpi_ref,
        ],
        speedups,
        identity,
    };

    for w in &report.workloads {
        println!("{:<26} n={:<9} {:>14.0} {}", w.id, w.n, w.per_sec, w.unit);
    }
    println!(
        "in-run speedups: rs_decode_t15 {:.1}x, mc_symbol_loop {:.1}x (gate ≥{GATE:.0}x); \
         rs_encode {:.1}x, rs_decode_clean {:.1}x, mc_mpi_loop {:.1}x",
        report.speedups.rs_decode_t15,
        report.speedups.mc_symbol_loop,
        report.speedups.rs_encode,
        report.speedups.rs_decode_clean,
        report.speedups.mc_mpi_loop,
    );
    println!(
        "identity: rs checksum {:#018x}, {} codewords cross-checked, mc clean/mpi/pooled errors {}/{}/{}",
        report.identity.rs_decode_checksum,
        report.identity.rs_reference_matches,
        report.identity.mc_clean_errors,
        report.identity.mc_mpi_errors,
        report.identity.mc_pooled_errors,
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write BENCH_PR9.json");
    println!("wrote {out}");

    assert!(enc_sink.get() > 0);
    assert!(
        report.speedups.rs_decode_t15 >= GATE,
        "perf gate: fast RS decode ({:.0}/s) must beat the in-process \
         reference ({:.0}/s) by >= {GATE}x, got {:.1}x",
        report.workloads[2].per_sec,
        report.workloads[3].per_sec,
        report.speedups.rs_decode_t15
    );
    assert!(
        report.speedups.mc_symbol_loop >= GATE,
        "perf gate: fast MC symbol loop ({:.0}/s) must beat the in-process \
         reference ({:.0}/s) by >= {GATE}x, got {:.1}x",
        report.workloads[6].per_sec,
        report.workloads[7].per_sec,
        report.speedups.mc_symbol_loop
    );
}
