//! Scope-attribution overhead benchmark → `BENCH_PR8.json`.
//!
//! PR 8 adds `lightwave-scope`, the always-on request-attribution layer
//! (per-request phase timelines folded into exemplar histograms, DESIGN
//! §6.7). Its promise is *low overhead*: the open-loop service hot path
//! must run within 5% of its scope-off throughput even at full (1-in-1)
//! sampling, and indistinguishably at the production 1-in-1024 rate.
//!
//! Like `bench_pr7`'s shadow gate, the baseline is **in-run**: the
//! scope-off and scope-on runs replay the same arrivals in the same
//! process on the same machine, interleaved over three rounds (best of
//! three per mode), so the ratio is robust to host speed and never
//! compares wall-clock numbers across runs.
//!
//! The report also pins a deterministic `scope` section — sampled
//! counts and the per-class critical-path dominants of the full-sampling
//! run — which CI compares byte-for-byte across `LIGHTWAVE_THREADS`.
//!
//! ```text
//! cargo run -p lightwave-bench --release --bin bench_pr8              # full size
//! cargo run -p lightwave-bench --release --bin bench_pr8 -- --smoke  # CI-sized
//! cargo run -p lightwave-bench --release --bin bench_pr8 -- --out p  # custom path
//! ```

use lightwave_core::par::Pool;
use lightwave_core::service::{
    run_sharded, run_sharded_scoped, Mix, PolicyConfig, ScopeProfiler, ScopeReport, ServiceConfig,
};
use lightwave_units::Nanos;
use serde::Serialize;
use std::time::Instant;

/// One hot path's measurement (best wall time of the interleaved rounds).
#[derive(Debug, Serialize)]
struct Workload {
    /// Workload id (`*_scope_*` = attribution enabled at that rate).
    id: String,
    /// The unit `per_sec` counts.
    unit: String,
    /// Work units per timed run.
    n: u64,
    /// Units per second (best of rounds).
    per_sec: f64,
}

/// In-run scope-on vs scope-off throughput ratios (same process, same
/// arrivals; >= `gate` passes). Each ratio is the best *within-round*
/// pairing — the off and on timings of one round run back-to-back, so
/// the ratio cancels slow host drift that a ratio of global bests would
/// not.
#[derive(Debug, Serialize)]
struct Overhead {
    /// `open_loop_scope_full` / `open_loop` (1-in-1 sampling).
    full_vs_off: f64,
    /// `open_loop_scope_1k` / `open_loop` (1-in-1024 sampling).
    sampled_vs_off: f64,
    /// The gate: both ratios must stay at or above this (0.95 = at most
    /// 5% throughput overhead; smoke runs gate looser — sub-second
    /// rounds on shared runners carry more than 5% of timing noise).
    gate: f64,
}

/// Queueing outcomes of the big open-loop run (sim time, not wall time).
#[derive(Debug, Serialize)]
struct ServiceStats {
    /// Arrivals submitted.
    requests: u64,
    /// Admissions (including re-admissions after preemption).
    admitted: u64,
    /// Arrivals turned away at the queue bound.
    blocked: u64,
    /// Evictions by higher-priority admissions.
    preempted: u64,
    /// Requests that served their full hold.
    completed: u64,
    /// blocked / offered.
    blocking_probability: f64,
    /// busy cube-time / pod cube-time.
    utilization: f64,
    /// Median sim-time admission wait, microseconds.
    p50_wait_micros: f64,
    /// p99 sim-time admission wait, microseconds.
    p99_wait_micros: f64,
}

/// One critical-path row of the full-sampling scope report.
#[derive(Debug, Serialize)]
struct CriticalRow {
    /// Priority class name.
    class: String,
    /// Quantile in per-mille (500 / 990 / 999).
    quantile_permille: u32,
    /// The exemplar request's end-to-end sim nanoseconds.
    total_nanos: u64,
    /// The dominant phase's name.
    dominant: String,
    /// The dominant phase's share of the total, in per-mille.
    dominant_permille: u64,
}

/// Deterministic summary of the full-sampling scoped run. Every field
/// is sim-time-exact: CI asserts this section is identical at
/// `LIGHTWAVE_THREADS=1` and `4`.
#[derive(Debug, Serialize)]
struct ScopeStats {
    /// Requests the sampler selected.
    sampled: u64,
    /// Sampled requests that were rejected.
    rejected: u64,
    /// Fabric commits observed (delta-commit touched-switch dist count).
    commits: u64,
    /// Mean switches touched per observed commit.
    mean_touched_switches: f64,
    /// Critical-path attribution per class and tail quantile.
    critical_paths: Vec<CriticalRow>,
}

/// The whole report.
#[derive(Debug, Serialize)]
struct Report {
    /// Schema tag for downstream tooling.
    schema: String,
    /// `full` or `smoke`.
    mode: String,
    /// Worker threads the runs used.
    threads: usize,
    /// One record per hot path.
    workloads: Vec<Workload>,
    /// In-run scope-on vs scope-off ratios.
    overhead: Overhead,
    /// Queueing outcomes of the `open_loop` workload.
    service: ServiceStats,
    /// Deterministic attribution summary (thread-count invariant).
    scope: ScopeStats,
}

/// The overhead gate: scope-on throughput must stay within 5% of the
/// in-run scope-off baseline, even at full sampling.
const GATE: f64 = 0.95;
/// The smoke-mode gate. CI smoke rounds are sub-second on shared
/// runners, where wall-clock noise alone exceeds 5%; the smoke gate
/// still catches gross regressions while the full run holds the 5%
/// line.
const SMOKE_GATE: f64 = 0.80;
/// Interleaved rounds per mode; the best round counts. Five rounds keep
/// the in-run ratio below host noise (single rounds on a shared runner
/// swing by more than the gate margin).
const ROUNDS: usize = 5;

fn open_cfg(n: u64, scope_every: u64) -> ServiceConfig {
    ServiceConfig {
        requests: n,
        scope_every,
        ..ServiceConfig::default()
    }
}

fn loss_cfg(n: u64, scope_every: u64) -> ServiceConfig {
    ServiceConfig {
        requests: n,
        mean_gap: Nanos::from_millis(2),
        mix: Mix::SingleCube,
        policy: PolicyConfig {
            queue_limit: 0,
            preemption: false,
        },
        scope_every,
        ..ServiceConfig::default()
    }
}

/// Times one run of `cfg`, returning `(wall seconds, scope report)`.
fn run_once(
    prof: &mut ScopeProfiler,
    section: &'static str,
    pool: &Pool,
    cfg: &ServiceConfig,
) -> (f64, Option<ScopeReport>) {
    prof.time(section, || {
        let t0 = Instant::now();
        let scope = if cfg.scope_every == 0 {
            let (report, _) = run_sharded(pool, cfg);
            assert_eq!(report.submitted, cfg.requests);
            None
        } else {
            let (report, scope, _) = run_sharded_scoped(pool, cfg);
            assert_eq!(report.submitted, cfg.requests);
            Some(scope)
        };
        (t0.elapsed().as_secs_f64().max(1e-9), scope)
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR8.json".to_string());

    let (open_n, loss_n) = if smoke {
        (10_000u64, 8_000u64)
    } else {
        (100_000, 200_000)
    };
    let pool = Pool::from_env();
    let mut prof = ScopeProfiler::new();

    // Interleave the modes each round so drift (thermal, cache, other
    // tenants) hits every mode equally; keep each mode's best round for
    // the reported rates, and the best *within-round* off/on time ratio
    // for the gate — the two timings of one round run back-to-back, so
    // their ratio is far more drift-robust than a ratio of global bests.
    let mut open_best = [f64::MAX; 3]; // off, full, 1-in-1024
    let mut loss_best = [f64::MAX; 2]; // off, 1-in-1024
    let mut full_ratio = f64::MIN;
    let mut sampled_ratio = f64::MIN;
    let mut full_scope = None;
    for _ in 0..ROUNDS {
        let (t_off, _) = run_once(&mut prof, "open_loop_off", &pool, &open_cfg(open_n, 0));
        open_best[0] = open_best[0].min(t_off);
        let (t_full, s) = run_once(&mut prof, "open_loop_full", &pool, &open_cfg(open_n, 1));
        open_best[1] = open_best[1].min(t_full);
        full_scope = s;
        full_ratio = full_ratio.max(t_off / t_full);
        let (t_1k, _) = run_once(&mut prof, "open_loop_1k", &pool, &open_cfg(open_n, 1024));
        open_best[2] = open_best[2].min(t_1k);
        sampled_ratio = sampled_ratio.max(t_off / t_1k);
        let (t, _) = run_once(&mut prof, "loss_core_off", &pool, &loss_cfg(loss_n, 0));
        loss_best[0] = loss_best[0].min(t);
        let (t, _) = run_once(&mut prof, "loss_core_1k", &pool, &loss_cfg(loss_n, 1024));
        loss_best[1] = loss_best[1].min(t);
    }
    let scope_report = full_scope.expect("full-sampling round ran");

    // Un-timed replay of the off run for its queueing stats (the timed
    // closures drop their reports to keep the hot loop lean).
    let (service_report, _) = run_sharded(&pool, &open_cfg(open_n, 0));
    let service = ServiceStats {
        requests: service_report.submitted,
        admitted: service_report.classes.iter().map(|c| c.admitted).sum(),
        blocked: service_report.blocked(),
        preempted: service_report.preempted(),
        completed: service_report.completed(),
        blocking_probability: service_report.blocking_probability(),
        utilization: service_report.utilization(),
        p50_wait_micros: service_report.wait_quantile_micros(0.50).unwrap_or(0.0),
        p99_wait_micros: service_report.wait_quantile_micros(0.99).unwrap_or(0.0),
    };

    let critical_paths = scope_report
        .critical_paths()
        .iter()
        .map(|p| CriticalRow {
            class: p.class.name().to_string(),
            quantile_permille: p.quantile_permille,
            total_nanos: p.total_nanos,
            dominant: p.dominant.name().to_string(),
            dominant_permille: p.shares_permille[p.dominant.index()],
        })
        .collect();
    let scope = ScopeStats {
        sampled: scope_report.sampled,
        rejected: scope_report.rejected,
        commits: scope_report.touched_switches.count(),
        mean_touched_switches: scope_report.touched_switches.mean(),
        critical_paths,
    };

    let ids: [(&str, u64, f64); 5] = [
        ("open_loop", open_n, open_best[0]),
        ("open_loop_scope_full", open_n, open_best[1]),
        ("open_loop_scope_1k", open_n, open_best[2]),
        ("loss_core", loss_n, loss_best[0]),
        ("loss_core_scope_1k", loss_n, loss_best[1]),
    ];
    let workloads: Vec<Workload> = ids
        .iter()
        .map(|&(id, n, secs)| Workload {
            id: id.to_string(),
            unit: "requests_per_sec".to_string(),
            n,
            per_sec: n as f64 / secs,
        })
        .collect();

    let gate = if smoke { SMOKE_GATE } else { GATE };
    let overhead = Overhead {
        full_vs_off: full_ratio,
        sampled_vs_off: sampled_ratio,
        gate,
    };

    let report = Report {
        schema: "lightwave/bench-pr8/v1".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        threads: pool.threads(),
        workloads,
        overhead,
        service,
        scope,
    };

    for w in &report.workloads {
        println!("{:<22} n={:<9} {:>14.0} {}", w.id, w.n, w.per_sec, w.unit);
    }
    println!(
        "scope overhead (open_loop, best of {ROUNDS} paired rounds): full \
         sampling {:.1}%, 1-in-1024 {:.1}% (gate <= {:.0}%)",
        (1.0 - report.overhead.full_vs_off) * 100.0,
        (1.0 - report.overhead.sampled_vs_off) * 100.0,
        (1.0 - gate) * 100.0,
    );
    println!(
        "scope: {} sampled, {} rejected, {} commits, {:.2} switches/commit",
        report.scope.sampled,
        report.scope.rejected,
        report.scope.commits,
        report.scope.mean_touched_switches
    );
    for p in &report.scope.critical_paths {
        let q = if p.quantile_permille % 10 == 0 {
            format!("p{}", p.quantile_permille / 10)
        } else {
            format!("p{:.1}", p.quantile_permille as f64 / 10.0)
        };
        println!(
            "  {:<12} {:<5} {:>12} ns  {:>4.1}% {}",
            p.class,
            q,
            p.total_nanos,
            p.dominant_permille as f64 / 10.0,
            p.dominant
        );
    }
    print!("{}", prof.render());

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write BENCH_PR8.json");
    println!("wrote {out}");

    assert!(
        report.overhead.full_vs_off >= gate,
        "overhead gate: full-sampling open_loop must stay within {:.0}% of \
         the in-run scope-off baseline, got {:.1}% (best paired round)",
        (1.0 - gate) * 100.0,
        (1.0 - report.overhead.full_vs_off) * 100.0
    );
    assert!(
        report.overhead.sampled_vs_off >= gate,
        "overhead gate: 1-in-1024 open_loop must stay within {:.0}% of the \
         in-run scope-off baseline, got {:.1}% (best paired round)",
        (1.0 - gate) * 100.0,
        (1.0 - report.overhead.sampled_vs_off) * 100.0
    );
}
