//! Campus observability-plane benchmark → `BENCH_PR10.json`.
//!
//! PR 10 adds the hierarchical rollup tree (port → switch → pod →
//! campus, DESIGN §6.9). Two promises are gated **in-run**:
//!
//! 1. **Incremental scrape** — after a burst touching a few hundred
//!    leaves of a ~100k-leaf campus, folding the dirty set up the tree
//!    must beat re-aggregating the whole campus flat by >= 10x
//!    (`scrape_speedup` gate; the smoke tree is smaller, so its gate is
//!    looser but still catches an accidental O(ports) scrape).
//! 2. **Observation overhead** — the fully instrumented service run
//!    ([`run_sharded_campus`]: rollup + burn ledger fed on every event)
//!    must stay within 5% of the observability-off throughput, measured
//!    as the best *within-round* pairing like `bench_pr7`/`bench_pr8`.
//!
//! The report also pins a deterministic `identity` section — the
//! campus snapshot's pod/port counts, ingest tally, and the byte length
//! of `campus_health.json` — which CI compares across
//! `LIGHTWAVE_THREADS=1` and `4`.
//!
//! ```text
//! cargo run -p lightwave-bench --release --bin bench_pr10              # full size
//! cargo run -p lightwave-bench --release --bin bench_pr10 -- --smoke  # CI-sized
//! ```

use lightwave_core::par::{splitmix, Pool};
use lightwave_core::service::{run_sharded, run_sharded_campus, ServiceConfig};
use lightwave_core::telemetry::rollup::{PortPath, RollupTree};
use lightwave_units::Nanos;
use serde::Serialize;
use std::time::Instant;

/// One hot path's measurement (best wall time of the interleaved rounds).
#[derive(Debug, Serialize)]
struct Workload {
    /// Workload id.
    id: String,
    /// The unit `per_sec` counts.
    unit: String,
    /// Work units per timed run.
    n: u64,
    /// Units per second (best of rounds).
    per_sec: f64,
}

/// The two in-run gates.
#[derive(Debug, Serialize)]
struct Gates {
    /// Flat re-aggregation time / incremental scrape time (>= gate).
    scrape_speedup: f64,
    /// Minimum accepted speedup.
    scrape_gate: f64,
    /// Campus-observed / plain service throughput (>= gate).
    observed_vs_off: f64,
    /// Minimum accepted throughput ratio.
    overhead_gate: f64,
}

/// Thread-count-invariant snapshot facts; CI compares this section
/// byte-for-byte at `LIGHTWAVE_THREADS=1` and `4`.
#[derive(Debug, Serialize)]
struct Identity {
    /// Pods in the campus snapshot.
    pods: usize,
    /// Leaf ports in the rollup tree.
    ports: u64,
    /// Samples folded into the tree.
    ingested: u64,
    /// Campus-level compose-moves aggregate: (count, sum_micros).
    compose_count: u64,
    /// Sum of the compose-moves aggregate in micro-units.
    compose_sum_micros: i64,
    /// Byte length of the serialized `campus_health.json`.
    json_bytes: usize,
}

/// The whole report.
#[derive(Debug, Serialize)]
struct Report {
    /// Schema tag for downstream tooling.
    schema: String,
    /// `full` or `smoke`.
    mode: String,
    /// Worker threads the service runs used.
    threads: usize,
    /// One record per hot path.
    workloads: Vec<Workload>,
    /// In-run gate measurements.
    gates: Gates,
    /// Deterministic snapshot facts (thread-count invariant).
    identity: Identity,
}

/// Full-size incremental-scrape speedup gate: the paper-scale campus
/// (~100k leaves) must scrape a small dirty set >= 10x faster than a
/// flat re-aggregation.
const SCRAPE_GATE: f64 = 10.0;
/// Smoke-mode scrape gate (an ~8k-leaf tree leaves less headroom, but
/// an O(ports) scrape would still fail by an order of magnitude).
const SMOKE_SCRAPE_GATE: f64 = 3.0;
/// Observation-overhead gate: full instrumentation within 5%.
const OVERHEAD_GATE: f64 = 0.95;
/// Smoke-mode overhead gate (sub-second rounds on shared runners).
const SMOKE_OVERHEAD_GATE: f64 = 0.80;
/// Interleaved rounds per mode; the best round counts.
const ROUNDS: usize = 5;

/// Builds the synthetic campus: `pods x switches x ports` leaves, one
/// warm sample each, fully scraped (steady state).
fn build_campus(pods: u32, switches: u32, ports: u32) -> RollupTree {
    let mut tree = RollupTree::new();
    let m = tree.metric("port_util");
    for pod in 0..pods {
        for sw in 0..switches {
            for port in 0..ports {
                let v = (pod + sw + port) as f64;
                tree.ingest(m, PortPath::new(pod, sw, port), Nanos(1), v);
            }
        }
    }
    tree.scrape();
    tree
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_PR10.json".to_string());

    let ((pods, switches, ports), touch, requests) = if smoke {
        ((8u32, 32u32, 32u32), 256u64, 10_000u64)
    } else {
        ((24, 64, 64), 512, 100_000)
    };
    let leaves = (pods * switches * ports) as u64;
    let pool = Pool::from_env();

    // ── Gate 1: incremental scrape vs flat re-aggregation ────────────
    let mut tree = build_campus(pods, switches, ports);
    let m = tree.metric("port_util");
    let mut t_scrape = f64::MAX;
    let mut t_flat = f64::MAX;
    let mut speedup = f64::MIN;
    for round in 0..ROUNDS as u64 {
        // A deterministic burst touching `touch` scattered leaves.
        for i in 0..touch {
            let r = splitmix(0xCA_30_05, round * touch + i);
            let path = PortPath::new(
                (r as u32) % pods,
                ((r >> 16) as u32) % switches,
                ((r >> 32) as u32) % ports,
            );
            tree.ingest(m, path, Nanos(2 + round), 1.0);
        }
        let t0 = Instant::now();
        let scraped = tree.scrape();
        let s = t0.elapsed().as_secs_f64().max(1e-9);
        assert!(scraped as u64 <= touch, "scrape visits only touched leaves");
        let t0 = Instant::now();
        let flat = tree.flat_campus();
        let f = t0.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(flat[m.index()], tree.campus_agg(m), "flat sum agrees");
        t_scrape = t_scrape.min(s);
        t_flat = t_flat.min(f);
        // Pair within the round (same cache state), like the service
        // overhead ratio below.
        speedup = speedup.max(f / s);
    }
    tree.check_consistency()
        .expect("rollup consistent after bursts");

    // ── Gate 2: observed vs plain service throughput ─────────────────
    let cfg = ServiceConfig {
        requests,
        shard_size: 2_048,
        ..ServiceConfig::default()
    };
    let mut t_plain = f64::MAX;
    let mut t_campus = f64::MAX;
    let mut ratio = f64::MIN;
    for _ in 0..ROUNDS {
        let t0 = Instant::now();
        let (r, _) = run_sharded(&pool, &cfg);
        let tp = t0.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(r.submitted, requests);
        let t0 = Instant::now();
        let (r, _, _) = run_sharded_campus(&pool, &cfg);
        let tc = t0.elapsed().as_secs_f64().max(1e-9);
        assert_eq!(r.submitted, requests);
        t_plain = t_plain.min(tp);
        t_campus = t_campus.min(tc);
        ratio = ratio.max(tp / tc);
    }

    // ── Identity: the deterministic snapshot facts ───────────────────
    let id_cfg = ServiceConfig {
        requests: 6_000,
        shard_size: 1_024,
        ..ServiceConfig::default()
    };
    let (_, mut obs, _) = run_sharded_campus(&pool, &id_cfg);
    let doc = obs.health_doc();
    let agg = obs.compose_agg();
    let identity = Identity {
        pods: doc.pods.len(),
        ports: doc.ports,
        ingested: obs.rollup.ingested(),
        compose_count: agg.count,
        compose_sum_micros: agg.sum_micros,
        json_bytes: doc.to_json().len(),
    };

    let scrape_gate = if smoke {
        SMOKE_SCRAPE_GATE
    } else {
        SCRAPE_GATE
    };
    let overhead_gate = if smoke {
        SMOKE_OVERHEAD_GATE
    } else {
        OVERHEAD_GATE
    };
    let ids: [(&str, &str, u64, f64); 4] = [
        ("rollup_scrape_incremental", "scrapes_per_sec", 1, t_scrape),
        ("rollup_flat_reaggregate", "scans_per_sec", 1, t_flat),
        ("open_loop", "requests_per_sec", requests, t_plain),
        ("open_loop_campus", "requests_per_sec", requests, t_campus),
    ];
    let workloads: Vec<Workload> = ids
        .iter()
        .map(|&(id, unit, n, secs)| Workload {
            id: id.to_string(),
            unit: unit.to_string(),
            n,
            per_sec: n as f64 / secs,
        })
        .collect();
    let report = Report {
        schema: "lightwave/bench-pr10/v1".to_string(),
        mode: if smoke { "smoke" } else { "full" }.to_string(),
        threads: pool.threads(),
        workloads,
        gates: Gates {
            scrape_speedup: speedup,
            scrape_gate,
            observed_vs_off: ratio,
            overhead_gate,
        },
        identity,
    };

    for w in &report.workloads {
        println!("{:<26} n={:<9} {:>14.0} {}", w.id, w.n, w.per_sec, w.unit);
    }
    println!(
        "scrape: {leaves}-leaf campus, {touch}-leaf burst folds {:.0}x faster \
         than flat re-aggregation (gate >= {:.0}x)",
        report.gates.scrape_speedup, scrape_gate
    );
    println!(
        "observation overhead (best of {ROUNDS} paired rounds): {:.1}% \
         (gate <= {:.0}%)",
        (1.0 - report.gates.observed_vs_off) * 100.0,
        (1.0 - overhead_gate) * 100.0
    );
    println!(
        "identity: {} pods / {} ports / {} ingested / {} json bytes",
        report.identity.pods,
        report.identity.ports,
        report.identity.ingested,
        report.identity.json_bytes
    );

    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&out, json + "\n").expect("write BENCH_PR10.json");
    println!("wrote {out}");

    assert!(
        report.gates.scrape_speedup >= scrape_gate,
        "scrape gate: incremental dirty-set scrape must beat flat \
         re-aggregation by >= {scrape_gate}x, got {:.1}x",
        report.gates.scrape_speedup
    );
    assert!(
        report.gates.observed_vs_off >= overhead_gate,
        "overhead gate: campus-observed run must stay within {:.0}% of the \
         plain run, got {:.1}% (best paired round)",
        (1.0 - overhead_gate) * 100.0,
        (1.0 - report.gates.observed_vs_off) * 100.0
    );
}
