//! Implementations of every reproduced table and figure.

use crate::{Check, ExperimentResult};
use lightwave_core::availability as avail;
use lightwave_core::dcn::cost::{spine_free_savings, table1, CostBook, SuperpodFabric};
use lightwave_core::dcn::TrafficMatrix;
use lightwave_core::fec::analysis::{concatenation_gain, paper_equivalent_inner_threshold};
use lightwave_core::fec::ConcatenatedCode;
use lightwave_core::mlperf::{LlmConfig, SliceOptimizer};
use lightwave_core::ocs::chassis::Chassis;
use lightwave_core::ocs::loss::{OpticalCore, RETURN_LOSS_SPEC_DB};
use lightwave_core::ocs::tech::{select, table_c1, Requirements};
use lightwave_core::ocs::PalomarOcs;
use lightwave_core::optics::ber::{mpi_db, OimConfig, Pam4Receiver};
use lightwave_core::optics::montecarlo::simulate_ber_par;
use lightwave_core::scheduler::deployment::DeploymentPlan;
use lightwave_core::scheduler::sim::default_mix;
use lightwave_core::scheduler::{ClusterSim, Contiguous, Pooled};
use lightwave_core::transceiver::fleet::{fleet_census, POD_RX_PORTS};
use lightwave_core::transceiver::ModuleFamily;
use lightwave_core::units::{Availability, Ber, Dbm, Nanos};
use lightwave_core::{DcnPlanner, LinkDesigner};

/// Fig. 10a — OCS insertion-loss histogram over all 136×136 paths.
pub fn fig10a() -> ExperimentResult {
    let core = OpticalCore::fabricate(136, 7);
    let census = core.insertion_loss_census();
    let n = census.len() as f64;
    let mean = census.iter().sum::<f64>() / n;
    let under2 = census.iter().filter(|&&l| l < 2.0).count() as f64 / n;
    let max = census.iter().fold(0.0f64, |a, &b| a.max(b));

    let mut lines = vec![format!(
        "insertion loss over {} cross-connections: mean {:.2} dB, max {:.2} dB, {:.1}% < 2 dB",
        census.len(),
        mean,
        max,
        under2 * 100.0
    )];
    lines.push("histogram (0.25 dB bins):".into());
    let mut bins = [0usize; 20];
    for &l in &census {
        let b = ((l / 0.25) as usize).min(19);
        bins[b] += 1;
    }
    for (i, &count) in bins.iter().enumerate() {
        if count > 0 {
            let bar = "#".repeat((count as f64 / n * 250.0).ceil() as usize);
            lines.push(format!(
                "  {:>4.2}-{:<4.2} dB | {:>6} {}",
                i as f64 * 0.25,
                (i + 1) as f64 * 0.25,
                count,
                bar
            ));
        }
    }
    ExperimentResult {
        id: "fig10a",
        title: "Palomar OCS insertion-loss histogram (136×136 paths)",
        lines,
        checks: vec![
            Check::holds("typical loss", "< 2 dB for most paths", under2 > 0.85),
            Check::abs("mean path loss (dB)", 1.6, mean, 0.4),
            Check::holds(
                "splice/connector tail",
                "present but bounded",
                max > 2.5 && max < 4.5,
            ),
        ],
    }
}

/// Fig. 10b — return loss versus port number.
pub fn fig10b() -> ExperimentResult {
    let core = OpticalCore::fabricate(136, 3);
    let mut all = Vec::new();
    for p in 0..136 {
        all.push(core.return_loss_north(p).db());
        all.push(core.return_loss_south(p).db());
    }
    let mean = all.iter().sum::<f64>() / all.len() as f64;
    let worst = all.iter().fold(f64::NEG_INFINITY, |a, &b| a.max(b));
    let lines = vec![
        format!(
            "return loss across {} ports: mean {:.1} dB, worst {:.1} dB",
            all.len(),
            mean,
            worst
        ),
        format!("specification: ≤ {RETURN_LOSS_SPEC_DB} dB; typical −46 dB"),
    ];
    ExperimentResult {
        id: "fig10b",
        title: "Palomar OCS return loss vs port",
        lines,
        checks: vec![
            Check::abs("mean return loss (dB)", -46.0, mean, 1.5),
            Check::holds(
                "spec compliance",
                "every port ≤ −38 dB",
                worst <= RETURN_LOSS_SPEC_DB,
            ),
        ],
    }
}

/// Fig. 11 — BER vs received power under MPI, with and without OIM.
pub fn fig11(quick: bool) -> ExperimentResult {
    let rx = Pam4Receiver::cwdm4_50g();
    let oim = OimConfig::default();
    let mpis: [(&str, f64); 4] = [
        ("no MPI", 0.0),
        ("-38 dB", mpi_db(-38.0)),
        ("-32 dB", mpi_db(-32.0)),
        ("-26 dB", mpi_db(-26.0)),
    ];
    let mut lines =
        vec!["analytic BER vs received power (rows: dBm; per MPI: without OIM / with OIM)".into()];
    let mut header = String::from("  dBm  ");
    for (name, _) in &mpis {
        header.push_str(&format!("| {name:>18} "));
    }
    lines.push(header);
    for p10 in (-16..=-7).map(|p| p as f64) {
        let mut row = format!("  {p10:>4} ");
        for &(_, m) in &mpis {
            let b0 = rx.ber(Dbm(p10), m, None);
            let b1 = rx.ber(Dbm(p10), m, Some(oim));
            row.push_str(&format!("| {:>8.1e} {:>8.1e} ", b0.prob(), b1.prob()));
        }
        lines.push(row);
    }

    // Sensitivities at the KP4 threshold.
    let s_clean = rx
        .sensitivity(Ber::KP4_THRESHOLD, 0.0, None)
        .expect("clean link reaches 2e-4");
    let s32_no = rx
        .sensitivity(Ber::KP4_THRESHOLD, mpi_db(-32.0), None)
        .expect("reaches");
    let s32_oim = rx
        .sensitivity(Ber::KP4_THRESHOLD, mpi_db(-32.0), Some(oim))
        .expect("reaches");
    let s26_no = rx.sensitivity(Ber::KP4_THRESHOLD, mpi_db(-26.0), None);
    let oim_gain = (s32_no - s32_oim).db();
    lines.push(format!(
        "sensitivity @2e-4: clean {s_clean}, MPI -32 dB without OIM {s32_no}, with OIM {s32_oim} (gain {oim_gain:.2} dB)"
    ));
    lines.push(format!(
        "MPI -26 dB without OIM: {}",
        match s26_no {
            Some(s) => format!("{s}"),
            None => "BER floor above 2e-4 (unreachable)".into(),
        }
    ));

    // Monte-Carlo cross-check (the figure's "BER: Monte Carlo" panel), on
    // the deterministic parallel engine: same seed, same digits, whatever
    // LIGHTWAVE_THREADS says.
    let symbols = if quick { 300_000 } else { 3_000_000 };
    let p_chk = Dbm(-12.5);
    let analytic = rx.ber(p_chk, mpi_db(-32.0), None).prob();
    let mc = simulate_ber_par(&rx, p_chk, mpi_db(-32.0), None, symbols, 42)
        .ber
        .prob();
    lines.push(format!(
        "Monte-Carlo cross-check at {p_chk}, MPI -32 dB: analytic {analytic:.2e}, simulated {mc:.2e}"
    ));

    ExperimentResult {
        id: "fig11",
        title: "Receiver BER vs power under MPI, ± OIM (50G PAM4 lane)",
        lines,
        checks: vec![
            Check::holds(
                "OIM gain at MPI −32 dB",
                "> 1 dB (§4.1.2)",
                oim_gain > 1.0 && oim_gain < 4.0,
            ),
            Check::holds(
                "MPI −26 dB floor",
                "uncorrectable without OIM",
                s26_no.is_none(),
            ),
            Check::holds(
                "Monte Carlo vs analytic",
                "agree within 2×",
                mc / analytic > 0.5 && mc / analytic < 2.0,
            ),
        ],
    }
}

/// Fig. 12 — receiver sensitivity improvement from the concatenated SFEC.
pub fn fig12(quick: bool) -> ExperimentResult {
    let code = ConcatenatedCode::default();
    let rx = Pam4Receiver::cwdm4_50g();
    let blocks = if quick { 1_500 } else { 12_000 };

    let mut lines = Vec::new();
    let mut gain38 = 0.0;
    let mut gain32 = 0.0;
    for (name, m) in [("-38 dB", mpi_db(-38.0)), ("-32 dB", mpi_db(-32.0))] {
        let g = concatenation_gain(&code, &rx, m, blocks, 5).expect("link reaches both thresholds");
        lines.push(format!(
            "MPI {name}: inner-code raw threshold {} → sensitivity {} (vs {} plain KP4): gain {:.2} dB",
            g.inner_threshold, g.sensitivity_concat, g.sensitivity_plain, g.gain.db()
        ));
        if name == "-32 dB" {
            gain32 = g.gain.db();
        } else {
            gain38 = g.gain.db();
        }
    }
    // The paper's production code at its published 1.6 dB operating point,
    // evaluated on the clean (thermal-limited) link where the operating-
    // point definition lives; under MPI our link model's interference
    // floor amplifies the delivered gain beyond the intrinsic figure.
    let paper_thr = paper_equivalent_inner_threshold();
    let s_plain = rx
        .sensitivity(Ber::KP4_THRESHOLD, 0.0, None)
        .expect("reaches");
    let s_paper = rx.sensitivity(paper_thr, 0.0, None).expect("reaches");
    let paper_gain = (s_plain - s_paper).db();
    lines.push(format!(
        "paper-calibrated inner code (threshold {paper_thr}), clean link: gain {paper_gain:.2} dB (published: 1.6 dB / 45%)"
    ));
    lines.push(
        "note: our open Chase-decoded Hamming(128,120) is the same family as (and close to) \
         the proprietary inner code; at −32 dB MPI our link model's interference floor \
         amplifies the gain beyond the published 1.6 dB (DESIGN.md §5.3)"
            .into(),
    );

    ExperimentResult {
        id: "fig12",
        title: "Concatenated SFEC sensitivity gain",
        lines,
        checks: vec![
            Check::abs("open inner code gain at −38 dB MPI (dB)", 1.6, gain38, 0.35),
            Check::holds(
                "open inner code gain at −32 dB MPI",
                "larger than at −38 dB (floor proximity), 1.6–3 dB",
                gain32 > gain38 && (1.6..3.0).contains(&gain32),
            ),
            Check::abs("paper-calibrated gain (dB)", 1.6, paper_gain, 0.3),
        ],
    }
}

/// Fig. 13 — fleet per-lane BER census.
pub fn fig13(quick: bool) -> ExperimentResult {
    let ports = if quick { 600 } else { POD_RX_PORTS };
    let census = fleet_census(ports, ModuleFamily::Cwdm4Bidi, 42);
    let mut bers: Vec<f64> = census.samples.iter().map(|s| s.ber.prob()).collect();
    bers.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let pct = |q: f64| bers[((bers.len() - 1) as f64 * q) as usize];
    let lines = vec![
        format!(
            "{} lanes across {} receiving ports (CWDM4 bidi, OIM + SFEC active)",
            census.samples.len(),
            ports
        ),
        format!(
            "BER percentiles: p1 {:.1e}  p50 {:.1e}  p99 {:.1e}  max {:.1e}",
            pct(0.01),
            pct(0.5),
            pct(0.99),
            bers.last().copied().unwrap_or(0.0)
        ),
        format!(
            "KP4 threshold 2e-4: {} violations; median margin {:.2} orders of magnitude",
            census.violations, census.median_margin_orders
        ),
    ];
    ExperimentResult {
        id: "fig13",
        title: "Production-link BER census (per-lane, pod scale)",
        lines,
        checks: vec![
            Check::holds(
                "KP4 compliance",
                "every lane < 2e-4",
                census.violations == 0,
            ),
            Check::abs(
                "median margin (orders of magnitude)",
                2.0,
                census.median_margin_orders,
                0.6,
            ),
        ],
    }
}

/// Table 1 — superpod interconnect cost/power, normalized to static.
pub fn tab1() -> ExperimentResult {
    let rows = table1(&CostBook::default());
    let name = |k| match k {
        SuperpodFabric::EpsDcn => "DCN (EPS)",
        SuperpodFabric::Lightwave => "Lightwave",
        SuperpodFabric::Static => "Static",
    };
    let mut lines = vec!["fabric       | rel. cost | rel. power".into()];
    for (k, c, p) in rows {
        lines.push(format!("{:<12} | {:>8.2}x | {:>9.2}x", name(k), c, p));
    }
    let find = |kk: SuperpodFabric| rows.iter().find(|r| r.0 == kk).copied().expect("present");
    let (_, c_e, p_e) = find(SuperpodFabric::EpsDcn);
    let (_, c_l, p_l) = find(SuperpodFabric::Lightwave);
    ExperimentResult {
        id: "tab1",
        title: "Cost and power of three 4096-TPU interconnects",
        lines,
        checks: vec![
            Check::abs("DCN relative cost", 1.24, c_e, 0.02),
            Check::abs("DCN relative power", 1.10, p_e, 0.02),
            Check::abs("lightwave relative cost", 1.06, c_l, 0.01),
            Check::abs("lightwave relative power", 1.01, p_l, 0.005),
        ],
    }
}

/// Table 2 — optimal slice shapes and speedups for three LLMs.
pub fn tab2() -> ExperimentResult {
    let opt = SliceOptimizer::tpu_v4();
    let mut lines = vec!["model | params | optimal config | speedup vs 16x16x16 (paper)".into()];
    let paper: [(&str, [usize; 3], f64); 3] = [
        ("LLM0", [8, 16, 32], 1.54),
        ("LLM1", [4, 4, 256], 3.32),
        ("LLM2", [16, 16, 16], 1.00),
    ];
    let mut checks = Vec::new();
    for (model, (pname, pshape, pspeed)) in LlmConfig::table2().iter().zip(paper) {
        let r = opt.optimize(model, 4096).expect("feasible");
        lines.push(format!(
            "{} | {:>4.0}B | {:>2}x{:>2}x{:<3} | {:.2}x ({:.2}x)",
            model.name,
            model.params / 1e9,
            r.shape.chips[0],
            r.shape.chips[1],
            r.shape.chips[2],
            r.speedup_vs_baseline,
            pspeed
        ));
        checks.push(Check::holds(
            &format!("{pname} optimal shape"),
            &format!("{}x{}x{}", pshape[0], pshape[1], pshape[2]),
            r.shape.chips == pshape,
        ));
        checks.push(Check::rel(
            &format!("{pname} speedup"),
            pspeed,
            r.speedup_vs_baseline,
            0.15,
        ));
    }
    ExperimentResult {
        id: "tab2",
        title: "LLM slice-shape optimization (4096 chips)",
        lines,
        checks,
    }
}

/// Fig. 15a — fabric availability vs OCS availability per transceiver tech.
pub fn fig15a() -> ExperimentResult {
    let techs = [
        ("CWDM4 duplex (96 OCS)", 96u32),
        ("CWDM4 bidi   (48 OCS)", 48),
        ("CWDM8 bidi   (24 OCS)", 24),
    ];
    let mut lines = vec!["OCS avail | 96 OCS | 48 OCS | 24 OCS".into()];
    for a in [0.995, 0.998, 0.999, 0.9995, 0.9999] {
        let f = |n| avail::fabric_availability(Availability::new(a), n).prob();
        lines.push(format!(
            "{:>8.4} | {:.4} | {:.4} | {:.4}",
            a,
            f(96),
            f(48),
            f(24)
        ));
    }
    let at999 = |n| avail::fabric_availability(Availability::new(0.999), n).prob();
    let mut checks = vec![];
    for ((name, n), paper) in techs.iter().zip([0.90, 0.95, 0.98]) {
        checks.push(Check::abs(
            &format!("fabric availability, {name} @ 99.9% OCS"),
            paper,
            at999(*n),
            0.01,
        ));
    }
    ExperimentResult {
        id: "fig15a",
        title: "Fabric availability vs per-OCS availability",
        lines,
        checks,
    }
}

/// Fig. 15b — goodput vs server availability, static vs reconfigurable.
pub fn fig15b() -> ExperimentResult {
    let sizes = [64usize, 128, 256, 512, 1024, 2048];
    let servers = [0.99, 0.995, 0.999];
    let pts = avail::fig15b_sweep(&sizes, &servers, avail::SYSTEM_TARGET);
    let mut lines = vec!["slice | server avail | reconfigurable | static".into()];
    for p in &pts {
        lines.push(format!(
            "{:>5} | {:>11.3} | {:>13.1}% | {:>5.1}%",
            p.slice_chips,
            p.server_avail,
            p.reconfigurable * 100.0,
            p.static_fabric * 100.0
        ));
    }
    let at = |chips: usize, sa: f64| {
        pts.iter()
            .find(|p| p.slice_chips == chips && (p.server_avail - sa).abs() < 1e-12)
            .expect("swept")
    };
    ExperimentResult {
        id: "fig15b",
        title: "Goodput vs server availability at 97% system target",
        lines,
        checks: vec![
            Check::abs(
                "1024-slice @99.9%: reconfigurable",
                0.75,
                at(1024, 0.999).reconfigurable,
                1e-9,
            ),
            Check::abs(
                "1024-slice @99.9%: static",
                0.25,
                at(1024, 0.999).static_fabric,
                1e-9,
            ),
            Check::abs(
                "1024-slice @99.5% converges",
                0.75,
                at(1024, 0.995).reconfigurable,
                1e-9,
            ),
            Check::abs(
                "1024-slice @99%: two slices",
                0.50,
                at(1024, 0.99).reconfigurable,
                1e-9,
            ),
            Check::holds(
                "2048-slice regardless of server availability",
                "50% (one slice)",
                servers
                    .iter()
                    .all(|&sa| (at(2048, sa).reconfigurable - 0.5).abs() < 1e-9),
            ),
            Check::holds(
                "single-cube slices",
                "static == reconfigurable",
                servers
                    .iter()
                    .all(|&sa| at(64, sa).reconfigurable == at(64, sa).static_fabric),
            ),
        ],
    }
}

/// §2.1 / Fig. 1 — spine-free capex and power savings.
pub fn dcn1() -> ExperimentResult {
    let (capex, power) = spine_free_savings(&CostBook::default());
    let lines = vec![format!(
        "spine-free vs spine-full per-uplink bill: capex saving {:.1}%, power saving {:.1}%",
        capex * 100.0,
        power * 100.0
    )];
    ExperimentResult {
        id: "dcn1",
        title: "Spine-free DCN savings (Poutievski et al. summary)",
        lines,
        checks: vec![
            Check::abs("capex saving", 0.30, capex, 0.03),
            Check::abs("power saving", 0.41, power, 0.03),
        ],
    }
}

/// §4.2 — topology engineering vs uniform mesh on skewed traffic.
pub fn dcn2() -> ExperimentResult {
    let planner = DcnPlanner {
        uplinks_per_ab: 30,
        trunk_gbps: 100.0,
    };
    let mut lines = vec!["matrix | TE throughput gain | FCT improvement".into()];
    let mut hot_gain = 0.0;
    let mut hot_fct = 0.0;
    for (name, tm) in [
        ("uniform", TrafficMatrix::uniform(16, 40.0)),
        ("gravity", TrafficMatrix::gravity(16, 40.0, 7)),
        ("hotspot", TrafficMatrix::hotspot(16, 40.0, 8, 30.0, 3)),
    ] {
        let plan = planner.plan(&tm);
        lines.push(format!(
            "{:<7} | {:>17.2}x | {:>14.1}%",
            name,
            plan.throughput_gain(),
            plan.fct_improvement() * 100.0
        ));
        if name == "hotspot" {
            hot_gain = plan.throughput_gain();
            hot_fct = plan.fct_improvement();
        }
    }
    ExperimentResult {
        id: "dcn2",
        title: "Topology engineering vs uniform mesh",
        lines,
        checks: vec![
            Check::holds(
                "TE throughput gain on skewed traffic",
                "material (paper: +30% TCP throughput)",
                hot_gain > 1.10,
            ),
            Check::holds(
                "TE FCT improvement",
                "positive (paper: +10%)",
                hot_fct > 0.02,
            ),
        ],
    }
}

/// Table C.1 — OCS technology comparison.
pub fn tabc1() -> ExperimentResult {
    let mut lines =
        vec!["technology   | cost   | ports      | switching  | loss   | latching".into()];
    for t in table_c1() {
        lines.push(format!(
            "{:<12} | {:<6?} | {:>4}x{:<5} | {:>10} | {:>4.1} dB | {}",
            t.name,
            t.cost,
            t.max_ports,
            t.max_ports,
            t.switching_time.to_string(),
            t.insertion_loss.db(),
            if t.latching { "yes" } else { "no" }
        ));
    }
    let winners = select(&Requirements::paper_use_cases());
    lines.push(format!(
        "selection under the paper's requirements: {:?}",
        winners.iter().map(|t| t.name).collect::<Vec<_>>()
    ));
    ExperimentResult {
        id: "tabc1",
        title: "OCS technology comparison",
        lines,
        checks: vec![Check::holds(
            "technology selection",
            "MEMS is the unique fit (§3.2.1)",
            winners.len() == 1 && winners[0].name == "MEMS",
        )],
    }
}

/// §4.2.4 — pooled vs contiguous scheduling utilization.
pub fn sched1(quick: bool) -> ExperimentResult {
    let horizon = if quick { 800.0 } else { 4000.0 };
    let sim = ClusterSim::new(default_mix(), 0.25);
    let pooled = sim.run(&Pooled, horizon, 42);
    let contiguous = sim.run(&Contiguous, horizon, 42);
    // Defragmentation sidebar (shorter horizon — the repack path is
    // computationally heavy): apples-to-apples against plain contiguous.
    let sub_horizon = horizon.min(600.0);
    let defrag = sim.run_contiguous_with_defrag(sub_horizon, 0.05, 42);
    let plain_sub = sim.run(&Contiguous, sub_horizon, 42);
    let lines = vec![
        format!(
            "pooled (OCS):       utilization {:.1}%, {} jobs, mean wait {:.2} h, {} fragmentation stalls",
            pooled.utilization * 100.0,
            pooled.completed,
            pooled.mean_wait_hours,
            pooled.fragmentation_stalls
        ),
        format!(
            "contiguous:         utilization {:.1}%, {} jobs, mean wait {:.2} h, {} fragmentation stalls",
            contiguous.utilization * 100.0,
            contiguous.completed,
            contiguous.mean_wait_hours,
            contiguous.fragmentation_stalls
        ),
        format!(
            "contiguous+defrag:  utilization {:.1}% vs {:.1}% plain over the same {:.0} h \
             (migrations at 0.05 h each; §4.2.4's defrag, bought with checkpoints)",
            defrag.utilization * 100.0,
            plain_sub.utilization * 100.0,
            sub_horizon
        ),
    ];
    ExperimentResult {
        id: "sched1",
        title: "Slice scheduling: pooled (OCS) vs contiguous (static)",
        lines,
        checks: vec![
            Check::holds(
                "pooled utilization",
                "> 95% under load (paper: > 98% fleet-wide)",
                pooled.utilization > 0.95,
            ),
            Check::holds(
                "contiguous trails pooled",
                "fragmentation costs utilization",
                // At the full 4000 h horizon the measured gap is ~1.6 pp
                // (pooled 99.6% vs contiguous 98.0%): long horizons
                // amortize fragmentation stalls, narrowing the gap below
                // the 2 pp the 800 h quick run shows. 1 pp still pins the
                // qualitative claim at both depths.
                contiguous.utilization < pooled.utilization - 0.01,
            ),
            Check::holds(
                "fragmentation stalls",
                "0 pooled, many contiguous",
                pooled.fragmentation_stalls == 0 && contiguous.fragmentation_stalls > 50,
            ),
            Check::holds(
                "defragmentation",
                "cheap migrations beat plain contiguous",
                defrag.utilization > plain_sub.utilization,
            ),
        ],
    }
}

/// §4.2.3 — incremental vs monolithic deployment.
pub fn deploy1() -> ExperimentResult {
    let plan = DeploymentPlan::default();
    let inc = plan.incremental();
    let mono = plan.monolithic();
    let lines = vec![
        format!(
            "incremental: first capacity day {:.0}, full day {:.0}, {:.0} cube-days banked by full",
            inc.first_capacity_day, inc.full_capacity_day, inc.cube_days_by_full
        ),
        format!(
            "monolithic:  first capacity day {:.0} (= full), 0 cube-days banked",
            mono.first_capacity_day
        ),
    ];
    ExperimentResult {
        id: "deploy1",
        title: "Deployment speed: incremental (lightwave) vs monolithic (v3-style)",
        lines,
        checks: vec![
            Check::holds(
                "incremental first capacity",
                "days, not months",
                inc.first_capacity_day < 5.0,
            ),
            Check::holds(
                "monolithic first capacity",
                "after the last rack + pod verification",
                mono.first_capacity_day > 64.0,
            ),
            Check::holds(
                "banked capacity",
                "> 1500 cube-days of head start",
                inc.cube_days_by_full > 1500.0,
            ),
        ],
    }
}

/// §4.1.1 — OCS chassis power and availability.
pub fn ocs1() -> ExperimentResult {
    let chassis = Chassis::new();
    let a = chassis.availability(8.0 * 8760.0, 4.0);
    let mut ocs = PalomarOcs::new(0, 9);
    let ready = ocs.connect(0, 64).expect("fresh switch connects");
    let full_power = chassis.power_draw_w(136);
    let lines = vec![
        format!("max power at full load: {:.0} W (spec: 108 W)", full_power),
        format!("chassis availability (8 y FRU MTBF, 4 h MTTR): {a}"),
        format!("circuit switching time: {ready}"),
    ];
    ExperimentResult {
        id: "ocs1",
        title: "Palomar chassis power, availability, switching time",
        lines,
        checks: vec![
            Check::holds("power", "≤ 108 W", full_power <= 108.0),
            Check::holds("availability", "≥ 99.98% (§4.1.1)", a.prob() >= 0.9998),
            Check::holds(
                "switching time",
                "milliseconds class (Table C.1)",
                (5.0..60.0).contains(&ready.as_millis_f64()),
            ),
        ],
    }
}

/// Convenience: a healthy nominal link report (used by the quickstart-like
/// smoke path of the repro binary).
pub fn nominal_link_ok() -> bool {
    LinkDesigner::ml_default().evaluate().healthy
}

/// Keep `Nanos` import alive for switching-time rendering.
#[allow(dead_code)]
fn _t(_: Nanos) {}
