//! Property tests for the goodput/availability models.

use lightwave_availability::{
    at_least_k_of_n, cube_availability, fabric_availability, reconfigurable_goodput, static_goodput,
};
use lightwave_units::Availability;
use proptest::prelude::*;

/// Slice sizes that tile the 64-cube pod.
fn pod_divisor() -> impl Strategy<Value = usize> {
    proptest::sample::select(vec![1usize, 2, 4, 8, 16, 32])
}

proptest! {
    #[test]
    fn static_never_beats_reconfigurable_anywhere(
        slice_cubes in pod_divisor(),
        server in 0.95f64..0.9999,
        target in 0.8f64..0.999,
    ) {
        let ca = cube_availability(Availability::new(server));
        let r = reconfigurable_goodput(slice_cubes, ca, target);
        let s = static_goodput(slice_cubes, ca, target);
        prop_assert!(s <= r + 1e-12, "static {s} > reconfigurable {r}");
        prop_assert!((0.0..=1.0).contains(&r));
        prop_assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn goodput_monotone_in_cube_availability(
        slice_cubes in 1usize..=16,
        a1 in 0.7f64..0.99,
        da in 0.001f64..0.01,
    ) {
        let g1 = reconfigurable_goodput(slice_cubes, Availability::new(a1), 0.97);
        let g2 = reconfigurable_goodput(slice_cubes, Availability::new(a1 + da), 0.97);
        prop_assert!(g2 + 1e-12 >= g1);
    }

    #[test]
    fn goodput_anti_monotone_in_target(
        slice_cubes in 1usize..=16,
        t1 in 0.8f64..0.95,
        dt in 0.001f64..0.04,
    ) {
        let ca = cube_availability(Availability::new(0.995));
        let strict = reconfigurable_goodput(slice_cubes, ca, t1 + dt);
        let loose = reconfigurable_goodput(slice_cubes, ca, t1);
        prop_assert!(strict <= loose + 1e-12, "a stricter target cannot allow more goodput");
    }

    #[test]
    fn fabric_availability_multiplies(a in 0.99f64..0.99999, n in 1u32..100) {
        let f = fabric_availability(Availability::new(a), n);
        prop_assert!((f.prob() - a.powi(n as i32)).abs() < 1e-12);
    }

    #[test]
    fn at_least_k_of_n_is_a_probability_and_monotone(n in 1u64..80, k in 1u64..80, p in 0.0f64..=1.0) {
        prop_assume!(k <= n);
        let t = at_least_k_of_n(n, k, p);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&t));
        prop_assert!(at_least_k_of_n(n, k - 1, p) + 1e-12 >= t);
    }
}
