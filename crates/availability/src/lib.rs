//! Fabric availability and goodput models — Fig. 15 of the paper.
//!
//! Two questions drive §4.2.2:
//!
//! 1. **Fabric availability** (Fig. 15a): a slice spanning multiple cubes
//!    needs *every* OCS carrying inter-cube links to be up, so the fabric
//!    availability is `A_ocs^N`. Bidi transceivers halve N (96 → 48 → 24),
//!    which is worth 90% → 95% → 98% at `A_ocs = 99.9%`.
//! 2. **Goodput under a system availability target** (Fig. 15b): to promise
//!    97% availability, capacity must be held back against server
//!    failures. A *reconfigurable* fabric pools all 64 cubes — a slice
//!    works whenever *enough* cubes work, any cubes. A *static* fabric
//!    hard-wires slices to specific cubes — a slice works only if *its own*
//!    cubes all work. The binomial arithmetic of that difference is the
//!    75%-vs-25% goodput gap the paper reports for 1024-chip slices.
//!
//! Both analytic (exact binomial) and Monte-Carlo paths are provided; the
//! property tests check they agree. The [`timeline`] module adds the
//! continuous-time view: reconfiguration in *seconds* versus repair in
//! *hours* is where the delivered availability comes from.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod timeline;

use lightwave_par::Pool;
use lightwave_superpod::POD_CUBES;
use lightwave_units::{math, Availability};
use rand::RngExt;
use serde::{Deserialize, Serialize};

/// Server-equivalent failure units per cube (rack): 16 CPU hosts plus the
/// TPU trays and rack electronics they carry. Calibrated so the goodput
/// anchors of Fig. 15b reproduce (see DESIGN.md §5, substitution 5).
pub const SERVER_UNITS_PER_CUBE: f64 = 24.0;

/// The paper's overall system availability target for Fig. 15b.
pub const SYSTEM_TARGET: f64 = 0.97;

/// Fabric availability of an `n`-OCS fabric where every OCS is required
/// (a multi-cube slice uses all 48/96/24 switches): `A^n`.
pub fn fabric_availability(ocs: Availability, n_ocs: u32) -> Availability {
    ocs.series_of(n_ocs)
}

/// Availability of one cube given per-server availability.
pub fn cube_availability(server: Availability) -> Availability {
    Availability::new(server.prob().powf(SERVER_UNITS_PER_CUBE))
}

/// P(at least `k` of `n` independent components up), exact binomial.
pub fn at_least_k_of_n(n: u64, k: u64, p: f64) -> f64 {
    if k == 0 {
        return 1.0;
    }
    math::binomial_tail_gt(n, k - 1, p)
}

/// Goodput of a *reconfigurable* pod running same-size slices of
/// `slice_cubes` cubes under `target` system availability: the largest
/// number of slices m such that P(working cubes ≥ m·slice_cubes) ≥ target,
/// as a fraction of pod capacity. Any working cube can substitute for any
/// failed one (the OCS re-wires around it).
pub fn reconfigurable_goodput(slice_cubes: usize, cube_avail: Availability, target: f64) -> f64 {
    assert!(
        (1..=POD_CUBES).contains(&slice_cubes),
        "slice must fit the pod"
    );
    let mut best = 0usize;
    for m in 1..=(POD_CUBES / slice_cubes) {
        let need = (m * slice_cubes) as u64;
        if at_least_k_of_n(POD_CUBES as u64, need, cube_avail.prob()) >= target {
            best = m;
        } else {
            break;
        }
    }
    (best * slice_cubes) as f64 / POD_CUBES as f64
}

/// Goodput of a *static* pod: the pod is hard-wired into `64/slice_cubes`
/// fixed slices; a slice works only if all of its own cubes work. Goodput
/// is the largest guaranteed-up slice count g with
/// P(at least g of the wired slices up) ≥ target.
pub fn static_goodput(slice_cubes: usize, cube_avail: Availability, target: f64) -> f64 {
    assert!(
        (1..=POD_CUBES).contains(&slice_cubes),
        "slice must fit the pod"
    );
    let wired = POD_CUBES / slice_cubes;
    let p_slice = cube_avail.prob().powi(slice_cubes as i32);
    let mut best = 0usize;
    for g in 1..=wired {
        if at_least_k_of_n(wired as u64, g as u64, p_slice) >= target {
            best = g;
        } else {
            break;
        }
    }
    (best * slice_cubes) as f64 / POD_CUBES as f64
}

/// One row of the Fig. 15b dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GoodputPoint {
    /// Slice size in chips.
    pub slice_chips: usize,
    /// Per-server availability.
    pub server_avail: f64,
    /// Goodput of the reconfigurable fabric.
    pub reconfigurable: f64,
    /// Goodput of the static fabric.
    pub static_fabric: f64,
}

/// Generates the Fig. 15b sweep: slice sizes × server availabilities.
///
/// Grid points evaluate on the ambient [`Pool`] (honouring
/// `LIGHTWAVE_THREADS`); results are reduced strictly in grid order, so the
/// output is identical at any thread count.
pub fn fig15b_sweep(
    slice_chip_sizes: &[usize],
    server_avails: &[f64],
    target: f64,
) -> Vec<GoodputPoint> {
    let grid: Vec<(usize, f64)> = slice_chip_sizes
        .iter()
        .flat_map(|&chips| {
            assert!(chips % 64 == 0, "slice chips must be whole cubes");
            server_avails.iter().map(move |&sa| (chips, sa))
        })
        .collect();
    lightwave_par::par_map_reduce(
        &grid,
        |&(chips, sa), _| {
            let ca = cube_availability(Availability::new(sa));
            vec![GoodputPoint {
                slice_chips: chips,
                server_avail: sa,
                reconfigurable: reconfigurable_goodput(chips / 64, ca, target),
                static_fabric: static_goodput(chips / 64, ca, target),
            }]
        },
        |mut a, mut b| {
            a.append(&mut b);
            a
        },
    )
    .unwrap_or_default()
}

/// Trials per shard for [`monte_carlo_pool_availability`]: each trial draws
/// [`POD_CUBES`] Bernoulli samples, so 4096 trials is ~260k draws — far
/// above the engine's dispatch overhead, fine-grained enough to balance.
pub const POOL_SHARD_TRIALS: u64 = 4_096;

/// Monte-Carlo estimate of P(working cubes ≥ need) — cross-check for the
/// analytic binomial path — on the ambient [`Pool`] (honouring
/// `LIGHTWAVE_THREADS`). Same seed, same estimate, any thread count.
pub fn monte_carlo_pool_availability(
    cube_avail: Availability,
    need: usize,
    trials: u64,
    seed: u64,
) -> f64 {
    monte_carlo_pool_availability_with_pool(&Pool::from_env(), cube_avail, need, trials, seed)
}

/// [`monte_carlo_pool_availability`] on an explicit pool.
///
/// Trials split into [`POOL_SHARD_TRIALS`]-sized shards with the last shard
/// carrying the remainder, so odd trial counts divide exactly: the estimate
/// is `successes / trials` over *all* requested trials, never a truncated
/// multiple of the shard size.
pub fn monte_carlo_pool_availability_with_pool(
    pool: &Pool,
    cube_avail: Availability,
    need: usize,
    trials: u64,
    seed: u64,
) -> f64 {
    assert!(trials > 0);
    let p = cube_avail.prob();
    let (ok, _stats) = pool.run_trials(
        seed,
        trials,
        POOL_SHARD_TRIALS,
        |rng, _trial| {
            let working = (0..POD_CUBES).filter(|_| rng.random_bool(p)).count();
            u64::from(working >= need)
        },
        |a, b| a + b,
    );
    ok as f64 / trials as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nines(n: f64) -> Availability {
        Availability::from_nines(n)
    }

    #[test]
    fn fig15a_fabric_availability_anchors() {
        // §4.2.2: at 99.9% per-OCS availability, fabric availability is
        // ~90% with 96 OCSes (CWDM4 duplex), ~95% with 48 (CWDM4 bidi),
        // ~98% with 24 (CWDM8 bidi).
        let a = nines(3.0);
        let f96 = fabric_availability(a, 96).prob();
        let f48 = fabric_availability(a, 48).prob();
        let f24 = fabric_availability(a, 24).prob();
        assert!((f96 - 0.90).abs() < 0.01, "96 OCS: {f96:.3}");
        assert!((f48 - 0.95).abs() < 0.01, "48 OCS: {f48:.3}");
        assert!((f24 - 0.98).abs() < 0.01, "24 OCS: {f24:.3}");
    }

    #[test]
    fn fig15b_headline_1024_slice() {
        // "for a server availability of 99.9%, the static configuration
        // can only support a 1024 TPU slice size with 25% goodput, whereas
        // the reconfigurable superpod can support 1024 slice size with 75%
        // goodput."
        let ca = cube_availability(nines(3.0));
        let reconf = reconfigurable_goodput(16, ca, SYSTEM_TARGET);
        let stat = static_goodput(16, ca, SYSTEM_TARGET);
        assert!((reconf - 0.75).abs() < 1e-9, "reconfigurable {reconf}");
        assert!((stat - 0.25).abs() < 1e-9, "static {stat}");
    }

    #[test]
    fn fig15b_convergence_of_999_and_995_at_1024() {
        // "At a slice size of 1024, this leads to the convergence of the
        // goodput for a server availability of 99.9% with ... 99.5%
        // (red curve) ... a goodput of 75% for both."
        let g999 = reconfigurable_goodput(16, cube_availability(nines(3.0)), SYSTEM_TARGET);
        let g995 = reconfigurable_goodput(
            16,
            cube_availability(Availability::new(0.995)),
            SYSTEM_TARGET,
        );
        assert_eq!(g999, g995);
        assert!((g999 - 0.75).abs() < 1e-9);
    }

    #[test]
    fn fig15b_99_percent_gets_two_slices_at_1024() {
        // "only two 1024 slices with a goodput of 50% can be composed for
        // the lower server availability of 99% (blue curve)".
        let g = reconfigurable_goodput(
            16,
            cube_availability(Availability::new(0.99)),
            SYSTEM_TARGET,
        );
        assert!((g - 0.50).abs() < 1e-9, "got {g}");
    }

    #[test]
    fn fig15b_2048_slice_is_50_percent_regardless() {
        // "At a slice size of 2048 ... only one slice can be composed —
        // leading to a goodput of 50% — regardless of the server/host
        // availability".
        for sa in [0.99, 0.995, 0.999] {
            let g =
                reconfigurable_goodput(32, cube_availability(Availability::new(sa)), SYSTEM_TARGET);
            assert!((g - 0.50).abs() < 1e-9, "server {sa}: {g}");
        }
    }

    #[test]
    fn single_cube_slices_equalize_static_and_reconfigurable() {
        // "For a slice that is a single cube, no reconfiguration between
        // cubes is used and thus the goodput is the same for both".
        for sa in [0.99, 0.995, 0.999] {
            let ca = cube_availability(Availability::new(sa));
            let r = reconfigurable_goodput(1, ca, SYSTEM_TARGET);
            let s = static_goodput(1, ca, SYSTEM_TARGET);
            assert_eq!(r, s, "server availability {sa}");
            assert!(
                r > 0.5,
                "even 99% servers deliver most single-cube capacity"
            );
        }
    }

    #[test]
    fn goodput_monotone_in_server_availability() {
        let mut prev = 0.0;
        for sa in [0.985, 0.99, 0.995, 0.999, 0.9995] {
            let g =
                reconfigurable_goodput(8, cube_availability(Availability::new(sa)), SYSTEM_TARGET);
            assert!(g >= prev, "goodput must not decrease with better servers");
            prev = g;
        }
    }

    #[test]
    fn static_never_beats_reconfigurable() {
        for &cubes in &[1usize, 2, 4, 8, 16, 32] {
            for sa in [0.99, 0.995, 0.999] {
                let ca = cube_availability(Availability::new(sa));
                let r = reconfigurable_goodput(cubes, ca, SYSTEM_TARGET);
                let s = static_goodput(cubes, ca, SYSTEM_TARGET);
                assert!(
                    s <= r + 1e-12,
                    "static {s} > reconfigurable {r} at {cubes} cubes, {sa}"
                );
            }
        }
    }

    #[test]
    fn static_degrades_much_faster_with_slice_size() {
        // The visual story of Fig. 15b: dashed (static) lines fall off a
        // cliff as slices grow; solid (reconfigurable) lines degrade
        // gracefully.
        let ca = cube_availability(nines(3.0));
        let r16 = reconfigurable_goodput(16, ca, SYSTEM_TARGET);
        let s16 = static_goodput(16, ca, SYSTEM_TARGET);
        assert!(r16 >= 3.0 * s16 - 1e-12, "reconf {r16} vs static {s16}");
    }

    #[test]
    fn monte_carlo_agrees_with_binomial() {
        let ca = cube_availability(nines(3.0));
        let analytic = at_least_k_of_n(64, 48, ca.prob());
        let mc = monte_carlo_pool_availability(ca, 48, 20_000, 11);
        assert!(
            (analytic - mc).abs() < 0.01,
            "analytic {analytic:.4} vs MC {mc:.4}"
        );
    }

    #[test]
    fn monte_carlo_thread_count_invariant() {
        let ca = cube_availability(Availability::new(0.99));
        let run = |threads| {
            monte_carlo_pool_availability_with_pool(&Pool::new(threads), ca, 56, 30_000, 7)
        };
        let one = run(1);
        assert_eq!(one.to_bits(), run(2).to_bits());
        assert_eq!(one.to_bits(), run(4).to_bits());
    }

    #[test]
    fn monte_carlo_odd_trial_count_unbiased() {
        // Regression: trials not divisible by the shard size must weigh
        // every trial — p = 1 has to come out exactly 1, and a remainder
        // tail must not be dropped or double-counted.
        let certain = Availability::new(1.0);
        for trials in [1, POOL_SHARD_TRIALS - 1, POOL_SHARD_TRIALS + 1, 10_007] {
            let est = monte_carlo_pool_availability(certain, 64, trials, 3);
            assert_eq!(est, 1.0, "trials={trials}");
        }
        let never = Availability::new(0.0);
        let est = monte_carlo_pool_availability(never, 1, 10_007, 3);
        assert_eq!(est, 0.0);
    }

    #[test]
    fn sweep_covers_grid() {
        let pts = fig15b_sweep(&[64, 512, 1024, 2048], &[0.99, 0.995, 0.999], SYSTEM_TARGET);
        assert_eq!(pts.len(), 12);
        assert!(pts
            .iter()
            .all(|p| p.reconfigurable >= p.static_fabric - 1e-12));
    }

    #[test]
    #[should_panic(expected = "slice must fit")]
    fn oversized_slice_rejected() {
        let _ = reconfigurable_goodput(65, Availability::new(0.99), 0.97);
    }
}
