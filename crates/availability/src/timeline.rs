//! Continuous-time availability simulation: why reconfiguration *speed*
//! matters, not just combinatorics.
//!
//! The static analysis in the crate root answers "how much capacity can I
//! promise"; this module answers "what actually happens over a year".
//! Cubes fail as Poisson processes and take hours to repair. A slice on a
//! *static* fabric is down for the whole repair. A slice on a
//! *reconfigurable* fabric swaps the dead cube for a spare in seconds
//! (OCS settle + transceiver bring-up + job restart) — so its downtime
//! per failure is four orders of magnitude shorter, spares permitting.

use lightwave_units::Availability;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

/// Parameters of a timeline run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineParams {
    /// Mean time between failures of one cube, hours.
    pub cube_mtbf_hours: f64,
    /// Mean repair time of a failed cube, hours.
    pub cube_mttr_hours: f64,
    /// Cubes per slice.
    pub slice_cubes: usize,
    /// Number of slices running.
    pub slices: usize,
    /// Spare (idle) cubes in the pool.
    pub spare_cubes: usize,
    /// Time to reconfigure a slice onto a spare, seconds.
    pub reconfig_secs: f64,
    /// Simulated horizon, hours.
    pub horizon_hours: f64,
}

impl TimelineParams {
    /// A year of a production-flavored pod: three 1024-chip slices plus
    /// 16 spare cubes (the Fig. 15b holdback), cube MTBF from 99.9%-
    /// available servers (24 units × their failure rate), 4 h repairs,
    /// 30 s to recompose a slice.
    pub fn production_year() -> TimelineParams {
        // Cube availability 0.976 with 4 h MTTR ⇒ MTBF ≈ 163 h.
        let a = 0.999f64.powf(24.0);
        let mttr = 4.0;
        TimelineParams {
            cube_mtbf_hours: mttr * a / (1.0 - a),
            cube_mttr_hours: mttr,
            slice_cubes: 16,
            slices: 3,
            spare_cubes: 16,
            reconfig_secs: 30.0,
            horizon_hours: 365.25 * 24.0,
        }
    }

    /// The steady-state availability of one cube implied by these rates.
    pub fn cube_availability(&self) -> Availability {
        Availability::new(self.cube_mtbf_hours / (self.cube_mtbf_hours + self.cube_mttr_hours))
    }
}

/// Outcome of one policy over the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Fraction of slice-hours actually delivered.
    pub delivered: f64,
    /// Cube failures that hit a running slice.
    pub failures: u64,
    /// Total slice-down hours.
    pub down_hours: f64,
}

/// Reconfigurable-vs-static outcome of one timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineReport {
    /// The reconfigurable fabric (swap to spare in `reconfig_secs`).
    pub reconfigurable: PolicyOutcome,
    /// The static fabric (down for the repair).
    pub static_fabric: PolicyOutcome,
}

/// Simulates both policies against independent failure traces drawn from
/// the same seed (per-policy traces are statistically identical).
pub fn simulate(params: &TimelineParams, seed: u64) -> TimelineReport {
    TimelineReport {
        reconfigurable: run_policy(params, seed, true),
        static_fabric: run_policy(params, seed, false),
    }
}

fn run_policy(params: &TimelineParams, seed: u64, reconfigurable: bool) -> PolicyOutcome {
    assert!(params.slice_cubes >= 1 && params.slices >= 1);
    assert!(params.horizon_hours > 0.0);
    let mut rng = StdRng::seed_from_u64(seed ^ if reconfigurable { 0xAB } else { 0 });
    let fail = Exp::<f64>::new(1.0 / params.cube_mtbf_hours).expect("positive rate");
    let total_cubes = params.slices * params.slice_cubes + params.spare_cubes;
    let reconfig_hours = params.reconfig_secs / 3600.0;

    // Event-driven over per-cube next-failure times and repair
    // completions. State per slice: up since / down until.
    #[derive(Clone, Copy)]
    struct CubeState {
        next_failure: f64,
        /// Repair completes at this time (cube unusable until then).
        repaired_at: f64,
    }
    let mut cubes: Vec<CubeState> = (0..total_cubes)
        .map(|_| CubeState {
            next_failure: fail.sample(&mut rng),
            repaired_at: 0.0,
        })
        .collect();
    // Slice i currently uses cubes [assignment[i] .. ] — for the static
    // fabric the assignment is fixed; for the reconfigurable one, a
    // failed member is replaced by any repaired/spare cube.
    let mut assignment: Vec<Vec<usize>> = (0..params.slices)
        .map(|s| (s * params.slice_cubes..(s + 1) * params.slice_cubes).collect())
        .collect();
    let mut spares: Vec<usize> = (params.slices * params.slice_cubes..total_cubes).collect();

    let mut down_hours = 0.0f64;
    let mut failures = 0u64;
    let mut now = 0.0f64;
    while now < params.horizon_hours {
        // Next failure of any cube that is currently in service.
        let (idx, t) = cubes
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.next_failure.max(c.repaired_at)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("cubes exist");
        // (A failure scheduled during repair fires after the repair.)
        now = t;
        if now >= params.horizon_hours {
            break;
        }
        let repaired_at = now + params.cube_mttr_hours;
        cubes[idx].repaired_at = repaired_at;
        cubes[idx].next_failure = repaired_at + fail.sample(&mut rng);

        // Which slice (if any) lost a member?
        if let Some(slice) = assignment.iter().position(|a| a.contains(&idx)) {
            failures += 1;
            if reconfigurable {
                // Swap for a spare that is not itself under repair.
                let spare_pos = spares.iter().position(|&s| cubes[s].repaired_at <= now);
                match spare_pos {
                    Some(pos) => {
                        let spare = spares.remove(pos);
                        let member = assignment[slice]
                            .iter_mut()
                            .find(|m| **m == idx)
                            .expect("member present");
                        *member = spare;
                        spares.push(idx); // the broken cube repairs in the pool
                        down_hours += reconfig_hours;
                    }
                    None => {
                        // No spare: the slice waits for this cube's repair.
                        down_hours += params.cube_mttr_hours;
                    }
                }
            } else {
                down_hours += params.cube_mttr_hours;
            }
        }
    }

    let slice_hours = params.slices as f64 * params.horizon_hours;
    PolicyOutcome {
        delivered: 1.0 - (down_hours / slice_hours).min(1.0),
        failures,
        down_hours,
    }
}

/// Parameters of a preempt-vs-react comparison (the fleet-health
/// maintenance-advisor experiment).
///
/// The premise: most hard cube failures are foreshadowed by a detectable
/// degradation trend — optical loss creeping up, relock rates rising —
/// and a streaming detector catches that trend with probability
/// [`detector_recall`](PreemptParams::detector_recall) before the cube
/// actually dies. A *caught* failure becomes planned maintenance: the
/// advisor drains the slice onto a spare in
/// [`drain_secs`](PreemptParams::drain_secs) while everything still
/// works. A *missed* failure is an emergency: detection, alarm
/// correlation, spare swap, camera re-verification and job restart take
/// [`emergency_secs`](PreemptParams::emergency_secs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreemptParams {
    /// Failure/repair statistics and pool shape.
    pub base: TimelineParams,
    /// Probability the detectors flag a failing cube before it dies.
    pub detector_recall: f64,
    /// Planned drain-and-swap time for a caught failure, seconds.
    pub drain_secs: f64,
    /// Emergency swap time for a missed failure, seconds.
    pub emergency_secs: f64,
}

impl PreemptParams {
    /// The production-year pool with the fleet-health advisor in front:
    /// 90% detector recall, 5 s planned drains, 30 s emergency swaps
    /// (the base model's reconfiguration time).
    pub fn production_year() -> PreemptParams {
        let base = TimelineParams::production_year();
        PreemptParams {
            detector_recall: 0.9,
            drain_secs: 5.0,
            emergency_secs: base.reconfig_secs,
            base,
        }
    }
}

/// Preemptive-vs-reactive outcome of one timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PreemptReport {
    /// Advisor on: caught failures drain in `drain_secs`.
    pub preemptive: PolicyOutcome,
    /// Advisor off: every failure is an emergency swap.
    pub reactive: PolicyOutcome,
    /// Failures the detectors caught ahead of time (same count in both
    /// policies — the reactive run draws but ignores the catches).
    pub caught: u64,
}

/// Simulates the advisor-on and advisor-off policies against the *same*
/// failure trace and the *same* detector-catch draws (one seed, one
/// stream), so the comparison is per-event paired, not just
/// statistically matched.
pub fn simulate_preempt(params: &PreemptParams, seed: u64) -> PreemptReport {
    let (preemptive, caught) = run_preempt(params, seed, true);
    let (reactive, _) = run_preempt(params, seed, false);
    PreemptReport {
        preemptive,
        reactive,
        caught,
    }
}

fn run_preempt(params: &PreemptParams, seed: u64, advisor: bool) -> (PolicyOutcome, u64) {
    use rand::Rng;
    let p = &params.base;
    assert!((0.0..=1.0).contains(&params.detector_recall));
    assert!(p.slice_cubes >= 1 && p.slices >= 1 && p.horizon_hours > 0.0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37);
    let fail = Exp::<f64>::new(1.0 / p.cube_mtbf_hours).expect("positive rate");
    let total_cubes = p.slices * p.slice_cubes + p.spare_cubes;
    let drain_hours = params.drain_secs / 3600.0;
    let emergency_hours = params.emergency_secs / 3600.0;

    #[derive(Clone, Copy)]
    struct CubeState {
        next_failure: f64,
        repaired_at: f64,
    }
    let mut cubes: Vec<CubeState> = (0..total_cubes)
        .map(|_| CubeState {
            next_failure: fail.sample(&mut rng),
            repaired_at: 0.0,
        })
        .collect();
    let mut assignment: Vec<Vec<usize>> = (0..p.slices)
        .map(|s| (s * p.slice_cubes..(s + 1) * p.slice_cubes).collect())
        .collect();
    let mut spares: Vec<usize> = (p.slices * p.slice_cubes..total_cubes).collect();

    let mut down_hours = 0.0f64;
    let mut failures = 0u64;
    let mut caught = 0u64;
    let mut now = 0.0f64;
    while now < p.horizon_hours {
        let (idx, t) = cubes
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.next_failure.max(c.repaired_at)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("cubes exist");
        now = t;
        if now >= p.horizon_hours {
            break;
        }
        let repaired_at = now + p.cube_mttr_hours;
        cubes[idx].repaired_at = repaired_at;
        cubes[idx].next_failure = repaired_at + fail.sample(&mut rng);

        if let Some(slice) = assignment.iter().position(|a| a.contains(&idx)) {
            failures += 1;
            // Draw the detector verdict unconditionally so the
            // advisor-off run consumes the identical stream.
            let detected = rng.random_bool(params.detector_recall);
            if detected {
                caught += 1;
            }
            let spare_pos = spares.iter().position(|&s| cubes[s].repaired_at <= now);
            match spare_pos {
                Some(pos) => {
                    let spare = spares.remove(pos);
                    let member = assignment[slice]
                        .iter_mut()
                        .find(|m| **m == idx)
                        .expect("member present");
                    *member = spare;
                    spares.push(idx);
                    down_hours += if advisor && detected {
                        drain_hours
                    } else {
                        emergency_hours
                    };
                }
                None => down_hours += p.cube_mttr_hours,
            }
        }
    }

    let slice_hours = p.slices as f64 * p.horizon_hours;
    (
        PolicyOutcome {
            delivered: 1.0 - (down_hours / slice_hours).min(1.0),
            failures,
            down_hours,
        },
        caught,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconfiguration_speed_is_the_whole_game() {
        // Same failure statistics, four-orders-of-magnitude different
        // per-failure downtime.
        let report = simulate(&TimelineParams::production_year(), 42);
        let r = report.reconfigurable;
        let s = report.static_fabric;
        assert!(
            r.delivered > 0.999,
            "swap-in-seconds keeps slices essentially always up: {}",
            r.delivered
        );
        assert!(
            s.delivered < 0.98,
            "repair-in-hours costs real availability: {}",
            s.delivered
        );
        assert!(r.down_hours < s.down_hours / 50.0);
    }

    #[test]
    fn static_downtime_matches_analytic_expectation() {
        // Expected static slice unavailability ≈ k·MTTR/MTBF (small-rate
        // approximation of 1 − A_c^k).
        let p = TimelineParams::production_year();
        let report = simulate(&p, 7);
        let per_cube_unavail = p.cube_mttr_hours / (p.cube_mtbf_hours + p.cube_mttr_hours);
        let expected = 1.0 - (1.0 - per_cube_unavail).powi(p.slice_cubes as i32);
        let measured = 1.0 - report.static_fabric.delivered;
        assert!(
            (measured / expected - 1.0).abs() < 0.35,
            "measured {measured:.4} vs analytic {expected:.4}"
        );
    }

    #[test]
    fn no_failures_no_downtime() {
        let p = TimelineParams {
            cube_mtbf_hours: 1e12,
            ..TimelineParams::production_year()
        };
        let report = simulate(&p, 3);
        assert_eq!(report.reconfigurable.failures, 0);
        assert_eq!(report.reconfigurable.delivered, 1.0);
        assert_eq!(report.static_fabric.delivered, 1.0);
    }

    #[test]
    fn spare_exhaustion_degrades_gracefully() {
        // Zero spares: the reconfigurable fabric degenerates to static
        // behaviour (nothing to swap in).
        let p = TimelineParams {
            spare_cubes: 0,
            ..TimelineParams::production_year()
        };
        let report = simulate(&p, 11);
        let gap = (report.reconfigurable.delivered - report.static_fabric.delivered).abs();
        assert!(
            gap < 0.01,
            "without spares the policies converge: gap {gap:.4}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = TimelineParams::production_year();
        assert_eq!(simulate(&p, 5), simulate(&p, 5));
    }

    #[test]
    fn preempt_beats_react_on_the_paired_trace() {
        let p = PreemptParams::production_year();
        let report = simulate_preempt(&p, 42);
        // Identical failure traces by construction.
        assert_eq!(report.preemptive.failures, report.reactive.failures);
        assert!(report.caught > 0 && report.caught <= report.preemptive.failures);
        // Every caught failure trades a 30 s emergency for a 5 s drain.
        assert!(report.preemptive.down_hours < report.reactive.down_hours);
        let saved = report.reactive.down_hours - report.preemptive.down_hours;
        let expected = report.caught as f64 * (p.emergency_secs - p.drain_secs) / 3600.0;
        assert!(
            (saved - expected).abs() < 1e-9,
            "saved {saved} vs expected {expected}"
        );
    }

    #[test]
    fn zero_recall_collapses_to_reactive() {
        let p = PreemptParams {
            detector_recall: 0.0,
            ..PreemptParams::production_year()
        };
        let report = simulate_preempt(&p, 9);
        assert_eq!(report.caught, 0);
        assert_eq!(report.preemptive, report.reactive);
    }

    #[test]
    fn preempt_is_deterministic_per_seed() {
        let p = PreemptParams::production_year();
        assert_eq!(simulate_preempt(&p, 5), simulate_preempt(&p, 5));
    }

    #[test]
    fn production_params_are_self_consistent() {
        let p = TimelineParams::production_year();
        // Implied cube availability matches the Fig. 15b model's 0.976.
        assert!((p.cube_availability().prob() - 0.999f64.powf(24.0)).abs() < 1e-9);
    }
}
