//! Continuous-time availability simulation: why reconfiguration *speed*
//! matters, not just combinatorics.
//!
//! The static analysis in the crate root answers "how much capacity can I
//! promise"; this module answers "what actually happens over a year".
//! Cubes fail as Poisson processes and take hours to repair. A slice on a
//! *static* fabric is down for the whole repair. A slice on a
//! *reconfigurable* fabric swaps the dead cube for a spare in seconds
//! (OCS settle + transceiver bring-up + job restart) — so its downtime
//! per failure is four orders of magnitude shorter, spares permitting.

use lightwave_units::Availability;
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, Exp};
use serde::{Deserialize, Serialize};

/// Parameters of a timeline run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineParams {
    /// Mean time between failures of one cube, hours.
    pub cube_mtbf_hours: f64,
    /// Mean repair time of a failed cube, hours.
    pub cube_mttr_hours: f64,
    /// Cubes per slice.
    pub slice_cubes: usize,
    /// Number of slices running.
    pub slices: usize,
    /// Spare (idle) cubes in the pool.
    pub spare_cubes: usize,
    /// Time to reconfigure a slice onto a spare, seconds.
    pub reconfig_secs: f64,
    /// Simulated horizon, hours.
    pub horizon_hours: f64,
}

impl TimelineParams {
    /// A year of a production-flavored pod: three 1024-chip slices plus
    /// 16 spare cubes (the Fig. 15b holdback), cube MTBF from 99.9%-
    /// available servers (24 units × their failure rate), 4 h repairs,
    /// 30 s to recompose a slice.
    pub fn production_year() -> TimelineParams {
        // Cube availability 0.976 with 4 h MTTR ⇒ MTBF ≈ 163 h.
        let a = 0.999f64.powf(24.0);
        let mttr = 4.0;
        TimelineParams {
            cube_mtbf_hours: mttr * a / (1.0 - a),
            cube_mttr_hours: mttr,
            slice_cubes: 16,
            slices: 3,
            spare_cubes: 16,
            reconfig_secs: 30.0,
            horizon_hours: 365.25 * 24.0,
        }
    }

    /// The steady-state availability of one cube implied by these rates.
    pub fn cube_availability(&self) -> Availability {
        Availability::new(self.cube_mtbf_hours / (self.cube_mtbf_hours + self.cube_mttr_hours))
    }
}

/// Outcome of one policy over the horizon.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PolicyOutcome {
    /// Fraction of slice-hours actually delivered.
    pub delivered: f64,
    /// Cube failures that hit a running slice.
    pub failures: u64,
    /// Total slice-down hours.
    pub down_hours: f64,
}

/// Reconfigurable-vs-static outcome of one timeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimelineReport {
    /// The reconfigurable fabric (swap to spare in `reconfig_secs`).
    pub reconfigurable: PolicyOutcome,
    /// The static fabric (down for the repair).
    pub static_fabric: PolicyOutcome,
}

/// Simulates both policies against independent failure traces drawn from
/// the same seed (per-policy traces are statistically identical).
pub fn simulate(params: &TimelineParams, seed: u64) -> TimelineReport {
    TimelineReport {
        reconfigurable: run_policy(params, seed, true),
        static_fabric: run_policy(params, seed, false),
    }
}

fn run_policy(params: &TimelineParams, seed: u64, reconfigurable: bool) -> PolicyOutcome {
    assert!(params.slice_cubes >= 1 && params.slices >= 1);
    assert!(params.horizon_hours > 0.0);
    let mut rng = StdRng::seed_from_u64(seed ^ if reconfigurable { 0xAB } else { 0 });
    let fail = Exp::<f64>::new(1.0 / params.cube_mtbf_hours).expect("positive rate");
    let total_cubes = params.slices * params.slice_cubes + params.spare_cubes;
    let reconfig_hours = params.reconfig_secs / 3600.0;

    // Event-driven over per-cube next-failure times and repair
    // completions. State per slice: up since / down until.
    #[derive(Clone, Copy)]
    struct CubeState {
        next_failure: f64,
        /// Repair completes at this time (cube unusable until then).
        repaired_at: f64,
    }
    let mut cubes: Vec<CubeState> = (0..total_cubes)
        .map(|_| CubeState {
            next_failure: fail.sample(&mut rng),
            repaired_at: 0.0,
        })
        .collect();
    // Slice i currently uses cubes [assignment[i] .. ] — for the static
    // fabric the assignment is fixed; for the reconfigurable one, a
    // failed member is replaced by any repaired/spare cube.
    let mut assignment: Vec<Vec<usize>> = (0..params.slices)
        .map(|s| (s * params.slice_cubes..(s + 1) * params.slice_cubes).collect())
        .collect();
    let mut spares: Vec<usize> = (params.slices * params.slice_cubes..total_cubes).collect();

    let mut down_hours = 0.0f64;
    let mut failures = 0u64;
    let mut now = 0.0f64;
    while now < params.horizon_hours {
        // Next failure of any cube that is currently in service.
        let (idx, t) = cubes
            .iter()
            .enumerate()
            .map(|(i, c)| (i, c.next_failure.max(c.repaired_at)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
            .expect("cubes exist");
        // (A failure scheduled during repair fires after the repair.)
        now = t;
        if now >= params.horizon_hours {
            break;
        }
        let repaired_at = now + params.cube_mttr_hours;
        cubes[idx].repaired_at = repaired_at;
        cubes[idx].next_failure = repaired_at + fail.sample(&mut rng);

        // Which slice (if any) lost a member?
        if let Some(slice) = assignment.iter().position(|a| a.contains(&idx)) {
            failures += 1;
            if reconfigurable {
                // Swap for a spare that is not itself under repair.
                let spare_pos = spares.iter().position(|&s| cubes[s].repaired_at <= now);
                match spare_pos {
                    Some(pos) => {
                        let spare = spares.remove(pos);
                        let member = assignment[slice]
                            .iter_mut()
                            .find(|m| **m == idx)
                            .expect("member present");
                        *member = spare;
                        spares.push(idx); // the broken cube repairs in the pool
                        down_hours += reconfig_hours;
                    }
                    None => {
                        // No spare: the slice waits for this cube's repair.
                        down_hours += params.cube_mttr_hours;
                    }
                }
            } else {
                down_hours += params.cube_mttr_hours;
            }
        }
    }

    let slice_hours = params.slices as f64 * params.horizon_hours;
    PolicyOutcome {
        delivered: 1.0 - (down_hours / slice_hours).min(1.0),
        failures,
        down_hours,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reconfiguration_speed_is_the_whole_game() {
        // Same failure statistics, four-orders-of-magnitude different
        // per-failure downtime.
        let report = simulate(&TimelineParams::production_year(), 42);
        let r = report.reconfigurable;
        let s = report.static_fabric;
        assert!(
            r.delivered > 0.999,
            "swap-in-seconds keeps slices essentially always up: {}",
            r.delivered
        );
        assert!(
            s.delivered < 0.98,
            "repair-in-hours costs real availability: {}",
            s.delivered
        );
        assert!(r.down_hours < s.down_hours / 50.0);
    }

    #[test]
    fn static_downtime_matches_analytic_expectation() {
        // Expected static slice unavailability ≈ k·MTTR/MTBF (small-rate
        // approximation of 1 − A_c^k).
        let p = TimelineParams::production_year();
        let report = simulate(&p, 7);
        let per_cube_unavail = p.cube_mttr_hours / (p.cube_mtbf_hours + p.cube_mttr_hours);
        let expected = 1.0 - (1.0 - per_cube_unavail).powi(p.slice_cubes as i32);
        let measured = 1.0 - report.static_fabric.delivered;
        assert!(
            (measured / expected - 1.0).abs() < 0.35,
            "measured {measured:.4} vs analytic {expected:.4}"
        );
    }

    #[test]
    fn no_failures_no_downtime() {
        let p = TimelineParams {
            cube_mtbf_hours: 1e12,
            ..TimelineParams::production_year()
        };
        let report = simulate(&p, 3);
        assert_eq!(report.reconfigurable.failures, 0);
        assert_eq!(report.reconfigurable.delivered, 1.0);
        assert_eq!(report.static_fabric.delivered, 1.0);
    }

    #[test]
    fn spare_exhaustion_degrades_gracefully() {
        // Zero spares: the reconfigurable fabric degenerates to static
        // behaviour (nothing to swap in).
        let p = TimelineParams {
            spare_cubes: 0,
            ..TimelineParams::production_year()
        };
        let report = simulate(&p, 11);
        let gap = (report.reconfigurable.delivered - report.static_fabric.delivered).abs();
        assert!(
            gap < 0.01,
            "without spares the policies converge: gap {gap:.4}"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let p = TimelineParams::production_year();
        assert_eq!(simulate(&p, 5), simulate(&p, 5));
    }

    #[test]
    fn production_params_are_self_consistent() {
        let p = TimelineParams::production_year();
        // Implied cube availability matches the Fig. 15b model's 0.976.
        assert!((p.cube_availability().prob() - 0.999f64.powf(24.0)).abs() < 1e-9);
    }
}
