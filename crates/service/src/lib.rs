//! # lightwave-service
//!
//! Fabric-as-a-service: a deterministic open-loop workload engine that
//! serves millions of slice requests over the real scheduler → superpod
//! → fabric stack, with admission control, priority classes, preemption,
//! weighted fairness, and mergeable queueing metrics.
//!
//! The paper's fabrics exist to serve *fleets* of jobs (§4.2.4:
//! dynamically scheduled slices that never interfere with running
//! models). This crate is the layer that exercises the stack as a
//! service rather than a scenario script:
//!
//! - [`arrival`] — slice-request arrivals (inference fleets, training
//!   jobs, maintenance windows) as a **pure function of `(seed,
//!   index)`** on the splitmix stream discipline: split-anywhere
//!   deterministic.
//! - [`SliceIntent`] — the northbound API; every request walks
//!   `validate → admit → compose → run → release` (or `reject` /
//!   `preempt`).
//! - [`ServiceCore`] — admission control with a bounded queue, weighted
//!   fair queueing across [`Priority`] classes, and preemption of lower
//!   priorities (the DESIGN §6.5 determinism contract).
//! - [`ServiceReport`] — blocking probability, per-class wait-time
//!   histograms (mergeable log2 buckets), utilization and goodput;
//!   integer-exact merges so sharded runs are byte-identical at any
//!   `LIGHTWAVE_THREADS`.
//! - [`run_sharded`] / [`ServiceEngine`] — the at-scale mode (a year of
//!   arrivals across the pool as independent cells) and the observed
//!   mode (counters, [`RateWindow`](lightwave_telemetry::RateWindow)
//!   rates, queue-depth counter track, SLO hooks, lifecycle spans).
//!
//! ```
//! use lightwave_par::Pool;
//! use lightwave_service::{run_sharded, ServiceConfig};
//!
//! let cfg = ServiceConfig { requests: 2_000, ..ServiceConfig::default() };
//! let (report, _stats) = run_sharded(&Pool::new(2), &cfg);
//! assert_eq!(report.submitted, 2_000);
//! assert!(report.utilization() > 0.0);
//! // Same report, bit for bit, at any thread count:
//! assert_eq!(report, run_sharded(&Pool::new(1), &cfg).0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrivals;
pub mod campus;
pub mod engine;
pub mod intent;
pub mod metrics;
pub mod queue;
pub mod scope;

pub use arrivals::{arrival, chips_for_cubes, Arrival, Mix, SERVICE_STREAM};
pub use campus::{run_cell_campus, run_sharded_campus, CampusObserver, POD_SCOPE_SWITCH};
pub use engine::{
    run_cell, run_cell_scoped, run_sharded, run_sharded_scoped, ServiceConfig, ServiceEngine,
    ADMISSION_SLO_OBJECT, CELL_STREAM,
};
pub use intent::{IntentError, Priority, SliceIntent};
pub use metrics::{erlang_b, ClassSnapshot, ClassStats, ServiceReport, ServiceSnapshot};
pub use queue::{PolicyConfig, RejectReason, ServiceCore, ServiceEvent};
pub use scope::{
    scope_sampled, scope_span_id, ClassScope, CriticalPath, ScopeCollector, ScopeDist, ScopePhase,
    ScopeProfiler, ScopeReport, ScopeSnapshot, ScopeTimeline, SCOPE_STREAM,
};
