//! `lightwave-scope`: request-level critical-path attribution.
//!
//! An aggregate wait histogram says *that* the tail is slow; this module
//! says *why*. A deterministic sampler picks requests purely from
//! `(seed, request_index)`, and for each sampled request the
//! [`ScopeCollector`] folds the [`ServiceEvent`] stream into an
//! integer sim-time phase breakdown of the whole lifecycle:
//!
//! - **queue_wait** — enqueue (or re-queue after preemption) to
//!   admission, summed over admissions;
//! - **admit** — the admission decision itself. The policy decides at
//!   one sim instant, so this phase is structurally zero today; it is
//!   kept as a phase so any future decision cost shows up attributed,
//!   not silently folded into a neighbour;
//! - **compose** — admission to `traffic_ready_at` of the compose
//!   transaction (fabric reconfiguration + link bring-up);
//! - **hold** — time actually serving;
//! - **release** — the release transaction's settle window;
//! - **preempt** — serving time wasted to evictions (the re-queue wait
//!   lands back in queue_wait).
//!
//! Phases aggregate into per-class × per-phase [`ScopeDist`]s whose
//! histograms carry per-bucket
//! [`Exemplar`](lightwave_telemetry::Exemplar)s, so every reported tail
//! bucket names a concrete request *and* the trace span id of its root
//! lifecycle span. Span ids are pre-derived — [`scope_span_id`] is pure
//! in `(seed, request)` — so a sharded, tracer-less run's report links
//! into a traced run's Perfetto export (see
//! [`Tracer::begin_with_id`](lightwave_trace::Tracer::begin_with_id)).
//!
//! Everything here obeys the DESIGN §6.7 determinism contract: event-time
//! stamping, integer arithmetic, lattice-join exemplars, shard-order
//! merges — `scope_report.json` is byte-identical at any
//! `LIGHTWAVE_THREADS`. The only wall-clock type, [`ScopeProfiler`],
//! never feeds an artifact: it is the overhead self-accounting harness.

use crate::intent::Priority;
use crate::queue::ServiceEvent;
use lightwave_par::splitmix;
use lightwave_telemetry::{ExemplarHistogram, ExemplarSnapshot};
use lightwave_trace::{derive_span_id, SpanId};
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Stream offset separating the scope sampler / span-id stream from the
/// arrival stream and every tracer's counter stream. Root lifecycle span
/// ids derive from `seed ^ SCOPE_STREAM`, so they cannot collide with a
/// tracer's counter-derived ids for the same seed (DESIGN §6.7).
pub const SCOPE_STREAM: u64 = 0x5C09_ED15_C0FE_0001;

/// Whether request `request` is scope-sampled: pure in
/// `(seed, request)`, so every cell, thread and rerun agrees. `every`
/// is the sampling period — `0` disables sampling, `1` samples every
/// request, `n` samples ~1-in-`n` via the splitmix stream (not a simple
/// modulus of the index, so periodic workload structure cannot alias
/// with the sampler).
pub fn scope_sampled(seed: u64, request: u64, every: u64) -> bool {
    match every {
        0 => false,
        1 => true,
        n => splitmix(seed ^ SCOPE_STREAM, request).is_multiple_of(n),
    }
}

/// The root lifecycle span id of a sampled request: pure in
/// `(seed, request)` — a sharded run that never builds a tracer reports
/// the same span id a traced run assigns via
/// [`Tracer::begin_with_id`](lightwave_trace::Tracer::begin_with_id).
pub fn scope_span_id(seed: u64, request: u64) -> SpanId {
    derive_span_id(seed ^ SCOPE_STREAM, request)
}

/// One phase of a request's critical path (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScopePhase {
    /// Waiting in the admission queue (including post-preemption
    /// re-queue waits).
    QueueWait,
    /// The admission decision (structurally zero today — see module
    /// docs).
    Admit,
    /// Compose transaction: fabric reconfiguration + link bring-up.
    Compose,
    /// Serving the hold.
    Hold,
    /// Release transaction settle.
    Release,
    /// Serving time wasted to preemption evictions.
    Preempt,
}

impl ScopePhase {
    /// All phases, lifecycle order. Index = position in every
    /// `phase_nanos` array.
    pub const ALL: [ScopePhase; 6] = [
        ScopePhase::QueueWait,
        ScopePhase::Admit,
        ScopePhase::Compose,
        ScopePhase::Hold,
        ScopePhase::Release,
        ScopePhase::Preempt,
    ];

    /// Stable snake_case name (snapshot key).
    pub fn name(self) -> &'static str {
        match self {
            ScopePhase::QueueWait => "queue_wait",
            ScopePhase::Admit => "admit",
            ScopePhase::Compose => "compose",
            ScopePhase::Hold => "hold",
            ScopePhase::Release => "release",
            ScopePhase::Preempt => "preempt",
        }
    }

    /// Position in [`ScopePhase::ALL`].
    pub fn index(self) -> usize {
        match self {
            ScopePhase::QueueWait => 0,
            ScopePhase::Admit => 1,
            ScopePhase::Compose => 2,
            ScopePhase::Hold => 3,
            ScopePhase::Release => 4,
            ScopePhase::Preempt => 5,
        }
    }
}

/// An exemplar-carrying distribution of raw integer samples (phase
/// nanoseconds, or commit-shape counts). Log histograms cannot bucket
/// zero, so exact-zero samples count separately — merge stays
/// integer-exact.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScopeDist {
    /// Exact-zero samples.
    pub zero: u64,
    /// Sum of all samples (raw units, exact).
    pub sum: u128,
    /// Positive samples with per-bucket exemplars.
    pub hist: ExemplarHistogram,
}

impl ScopeDist {
    /// Records one sample; returns whether it is now a retained
    /// exemplar.
    pub fn record(&mut self, value: u64, request: u64, span: u64) -> bool {
        self.sum += value as u128;
        if value == 0 {
            self.zero += 1;
            false
        } else {
            self.hist.record(value as f64, request, span)
        }
    }

    /// Total samples (zeros included).
    pub fn count(&self) -> u64 {
        self.zero + self.hist.count()
    }

    /// Mean sample in raw units.
    pub fn mean(&self) -> f64 {
        if self.count() == 0 {
            return 0.0;
        }
        self.sum as f64 / self.count() as f64
    }

    /// Folds another distribution in (exactly associative and
    /// commutative).
    pub fn merge(&mut self, other: &ScopeDist) {
        self.zero += other.zero;
        self.sum += other.sum;
        self.hist.merge(&other.hist);
    }

    /// Serializable view.
    pub fn snapshot(&self) -> DistSnapshot {
        DistSnapshot {
            zero: self.zero,
            sum: self.sum,
            hist: self.hist.snapshot(),
        }
    }
}

/// Serializable [`ScopeDist`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistSnapshot {
    /// See [`ScopeDist::zero`].
    pub zero: u64,
    /// See [`ScopeDist::sum`].
    pub sum: u128,
    /// See [`ScopeDist::hist`].
    pub hist: ExemplarSnapshot,
}

/// Per-class phase attribution.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassScope {
    /// Sampled requests of this class that ran to completion.
    pub sampled_completed: u64,
    /// Per-phase nanosecond distributions, indexed by
    /// [`ScopePhase::index`].
    pub phases: [ScopeDist; 6],
    /// End-to-end nanoseconds (sum of phases) per completed request.
    pub total: ScopeDist,
}

impl ClassScope {
    /// Folds another class scope in.
    pub fn merge(&mut self, other: &ClassScope) {
        self.sampled_completed += other.sampled_completed;
        for (mine, theirs) in self.phases.iter_mut().zip(&other.phases) {
            mine.merge(theirs);
        }
        self.total.merge(&other.total);
    }
}

/// The retained full timeline of one sampled request — kept only while
/// the request is an exemplar of its class's total-latency histogram, so
/// memory stays O(buckets) however many requests are sampled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeTimeline {
    /// Request index.
    pub request: u64,
    /// Its class.
    pub class: Priority,
    /// Root lifecycle span id ([`scope_span_id`]).
    pub span: u64,
    /// Nanoseconds per phase, indexed by [`ScopePhase::index`].
    pub phase_nanos: [u64; 6],
    /// Sum of `phase_nanos`.
    pub total_nanos: u64,
    /// Admissions (>1 means the request was re-admitted after
    /// preemption).
    pub admissions: u32,
    /// Preemption evictions suffered.
    pub preemptions: u32,
    /// Switches touched across this request's compose commits.
    pub touched_switches: u64,
    /// Circuit pairs added + removed across its compose commits.
    pub delta_pairs: u64,
}

/// One row of the critical-path report: which phase dominates the
/// request exemplifying quantile `q` of a class's end-to-end latency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CriticalPath {
    /// Priority class.
    pub class: Priority,
    /// The quantile, in per-mille (500 / 990 / 999).
    pub quantile_permille: u32,
    /// The exemplar request.
    pub request: u64,
    /// Its root lifecycle span id.
    pub span: u64,
    /// Its end-to-end nanoseconds.
    pub total_nanos: u64,
    /// Each phase's share of the total, in per-mille, indexed by
    /// [`ScopePhase::index`] (integer division — shares can sum < 1000).
    pub shares_permille: [u64; 6],
    /// The largest phase (ties break to the earlier lifecycle phase).
    pub dominant: ScopePhase,
}

/// The quantiles [`ScopeReport::critical_paths`] reports, in per-mille.
pub const CRITICAL_QUANTILES_PERMILLE: [u32; 3] = [500, 990, 999];

/// Completions between collector garbage-collection sweeps of displaced
/// exemplar timelines.
const GC_PERIOD: u64 = 1024;

/// The merged outcome of scope attribution: per-class phase
/// distributions, commit-shape distributions, and exemplar timelines.
/// Merges in shard order like [`ServiceReport`](crate::ServiceReport);
/// the snapshot is byte-identical at any thread count.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScopeReport {
    /// The sampling period the run used (0 = off, 1 = every request).
    pub every: u64,
    /// Sampled requests observed (enqueued or rejected at validation).
    pub sampled: u64,
    /// Sampled requests that terminated rejected (invalid, queue-full,
    /// or fabric-refused).
    pub rejected: u64,
    /// Sampled requests still in flight when the report was taken
    /// (0 after a drained run).
    pub inflight: u64,
    /// Per-class attribution, indexed by [`Priority::rank`].
    pub classes: [ClassScope; 3],
    /// Switches touched per sampled compose commit.
    pub touched_switches: ScopeDist,
    /// Circuit pairs added per sampled compose commit.
    pub pairs_added: ScopeDist,
    /// Circuit pairs removed per sampled compose commit.
    pub pairs_removed: ScopeDist,
    /// Exemplar timelines, keyed by request (see [`ScopeTimeline`]).
    pub timelines: BTreeMap<u64, ScopeTimeline>,
}

impl ScopeReport {
    /// Folds another cell's report in (then drops timelines the merged
    /// exemplar set no longer names). Associative in value; merge in
    /// shard order for byte-stable snapshots.
    pub fn merge(&mut self, other: &ScopeReport) {
        debug_assert!(
            self.every == other.every || self.sampled == 0 || other.sampled == 0,
            "merging scope reports with different sampling periods"
        );
        self.every = self.every.max(other.every);
        self.sampled += other.sampled;
        self.rejected += other.rejected;
        self.inflight += other.inflight;
        for (mine, theirs) in self.classes.iter_mut().zip(&other.classes) {
            mine.merge(theirs);
        }
        self.touched_switches.merge(&other.touched_switches);
        self.pairs_added.merge(&other.pairs_added);
        self.pairs_removed.merge(&other.pairs_removed);
        for (&request, tl) in &other.timelines {
            self.timelines.insert(request, *tl);
        }
        self.gc();
    }

    /// Drops timelines whose request is no longer an exemplar of any
    /// class's total-latency histogram. A displaced exemplar can never
    /// return (joins only replace), so the retained set is a pure
    /// function of the merged histograms — GC timing cannot change the
    /// final report.
    pub fn gc(&mut self) {
        let mut keep = BTreeSet::new();
        for c in &self.classes {
            c.total.hist.exemplar_requests(&mut keep);
        }
        self.timelines.retain(|request, _| keep.contains(request));
    }

    /// Every retained exemplar span id across all distributions — the
    /// set to pass to
    /// [`to_chrome_trace_annotated`](lightwave_trace::to_chrome_trace_annotated)
    /// so exemplar spans are flagged in the export.
    pub fn exemplar_spans(&self) -> BTreeSet<u64> {
        let mut spans = BTreeSet::new();
        for c in &self.classes {
            for p in &c.phases {
                p.hist.exemplar_spans(&mut spans);
            }
            c.total.hist.exemplar_spans(&mut spans);
        }
        self.touched_switches.hist.exemplar_spans(&mut spans);
        self.pairs_added.hist.exemplar_spans(&mut spans);
        self.pairs_removed.hist.exemplar_spans(&mut spans);
        spans
    }

    /// The critical-path rows: for each class and each quantile in
    /// [`CRITICAL_QUANTILES_PERMILLE`], the exemplar request of that
    /// quantile's total-latency bucket, broken down by phase share.
    pub fn critical_paths(&self) -> Vec<CriticalPath> {
        let mut rows = Vec::new();
        for &class in &Priority::ALL {
            let c = &self.classes[class.rank()];
            for q in CRITICAL_QUANTILES_PERMILLE {
                let Some(e) = c.total.hist.quantile_exemplar(q as f64 / 1000.0) else {
                    continue;
                };
                // Exemplars of the total hist are exactly the retained
                // timeline set; a miss would be a GC bug.
                let Some(tl) = self.timelines.get(&e.request) else {
                    continue;
                };
                let total = tl.total_nanos.max(1);
                let mut shares = [0u64; 6];
                for (s, &p) in shares.iter_mut().zip(&tl.phase_nanos) {
                    *s = p.saturating_mul(1000) / total;
                }
                let dominant = ScopePhase::ALL
                    .into_iter()
                    .max_by_key(|p| (tl.phase_nanos[p.index()], usize::MAX - p.index()))
                    .expect("six phases");
                rows.push(CriticalPath {
                    class,
                    quantile_permille: q,
                    request: e.request,
                    span: e.span,
                    total_nanos: tl.total_nanos,
                    shares_permille: shares,
                    dominant,
                });
            }
        }
        rows
    }

    /// Serializable form (schema `lightwave/scope/v1`). Span ids render
    /// as zero-padded hex strings — JSON numbers above 2^53 lose
    /// precision in browser tooling.
    pub fn snapshot(&self) -> ScopeSnapshot {
        ScopeSnapshot {
            schema: "lightwave/scope/v1".to_string(),
            every: self.every,
            sampled: self.sampled,
            rejected: self.rejected,
            inflight: self.inflight,
            classes: Priority::ALL
                .iter()
                .map(|&p| {
                    let c = &self.classes[p.rank()];
                    ClassScopeSnapshot {
                        class: p.name().to_string(),
                        sampled_completed: c.sampled_completed,
                        phases: ScopePhase::ALL
                            .iter()
                            .map(|&ph| PhaseSnapshot {
                                phase: ph.name().to_string(),
                                dist: c.phases[ph.index()].snapshot(),
                            })
                            .collect(),
                        total_nanos: c.total.snapshot(),
                    }
                })
                .collect(),
            touched_switches: self.touched_switches.snapshot(),
            pairs_added: self.pairs_added.snapshot(),
            pairs_removed: self.pairs_removed.snapshot(),
            critical_paths: self
                .critical_paths()
                .into_iter()
                .map(|cp| CriticalPathSnapshot {
                    class: cp.class.name().to_string(),
                    quantile_permille: cp.quantile_permille,
                    request: cp.request,
                    span: format!("{:016x}", cp.span),
                    total_nanos: cp.total_nanos,
                    shares_permille: cp.shares_permille.to_vec(),
                    dominant: cp.dominant.name().to_string(),
                })
                .collect(),
            timelines: self
                .timelines
                .values()
                .map(|tl| TimelineSnapshot {
                    request: tl.request,
                    class: tl.class.name().to_string(),
                    span: format!("{:016x}", tl.span),
                    phase_nanos: tl.phase_nanos.to_vec(),
                    total_nanos: tl.total_nanos,
                    admissions: tl.admissions,
                    preemptions: tl.preemptions,
                    touched_switches: tl.touched_switches,
                    delta_pairs: tl.delta_pairs,
                })
                .collect(),
        }
    }

    /// A deterministic human-readable critical-path summary — the
    /// "p99 of training is 73% compose, 22% queue wait" view.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "scope: 1-in-{} sampling — {} sampled, {} rejected, {} in flight, {} exemplar timeline(s)\n",
            self.every.max(1),
            self.sampled,
            self.rejected,
            self.inflight,
            self.timelines.len(),
        ));
        let mut rows = self.critical_paths();
        rows.sort_by_key(|r| (r.class.rank(), r.quantile_permille));
        for r in rows {
            let mut shares: Vec<(u64, ScopePhase)> = ScopePhase::ALL
                .iter()
                .map(|&p| (r.shares_permille[p.index()], p))
                .filter(|&(s, _)| s > 0)
                .collect();
            shares.sort_by_key(|&(s, p)| (u64::MAX - s, p.index()));
            let breakdown: Vec<String> = shares
                .iter()
                .map(|(s, p)| format!("{} {}.{}%", p.name(), s / 10, s % 10))
                .collect();
            out.push_str(&format!(
                "  {:<12} p{:<4} total {:>10.3} ms = {} (request {}, span {:016x})\n",
                r.class.name(),
                format_permille(r.quantile_permille),
                r.total_nanos as f64 / 1e6,
                breakdown.join(" + "),
                r.request,
                r.span,
            ));
        }
        if self.touched_switches.count() > 0 {
            out.push_str(&format!(
                "  commits: {:.1} switches, +{:.1}/-{:.1} pairs per sampled compose (mean)\n",
                self.touched_switches.mean(),
                self.pairs_added.mean(),
                self.pairs_removed.mean(),
            ));
        }
        out
    }
}

fn format_permille(q: u32) -> String {
    if q.is_multiple_of(10) {
        format!("{}", q / 10)
    } else {
        format!("{}.{}", q / 10, q % 10)
    }
}

/// Serializable [`ScopeReport`] — the `scope_report.json` payload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScopeSnapshot {
    /// Schema tag: `lightwave/scope/v1`.
    pub schema: String,
    /// See [`ScopeReport::every`].
    pub every: u64,
    /// See [`ScopeReport::sampled`].
    pub sampled: u64,
    /// See [`ScopeReport::rejected`].
    pub rejected: u64,
    /// See [`ScopeReport::inflight`].
    pub inflight: u64,
    /// Per-class attribution, highest precedence first.
    pub classes: Vec<ClassScopeSnapshot>,
    /// See [`ScopeReport::touched_switches`].
    pub touched_switches: DistSnapshot,
    /// See [`ScopeReport::pairs_added`].
    pub pairs_added: DistSnapshot,
    /// See [`ScopeReport::pairs_removed`].
    pub pairs_removed: DistSnapshot,
    /// See [`ScopeReport::critical_paths`].
    pub critical_paths: Vec<CriticalPathSnapshot>,
    /// Retained exemplar timelines, ascending by request.
    pub timelines: Vec<TimelineSnapshot>,
}

/// One class of a [`ScopeSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassScopeSnapshot {
    /// Class name.
    pub class: String,
    /// See [`ClassScope::sampled_completed`].
    pub sampled_completed: u64,
    /// Per-phase distributions, lifecycle order.
    pub phases: Vec<PhaseSnapshot>,
    /// See [`ClassScope::total`].
    pub total_nanos: DistSnapshot,
}

/// One phase distribution of a [`ClassScopeSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseSnapshot {
    /// Phase name ([`ScopePhase::name`]).
    pub phase: String,
    /// Nanosecond distribution.
    pub dist: DistSnapshot,
}

/// One row of [`ScopeSnapshot::critical_paths`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CriticalPathSnapshot {
    /// Class name.
    pub class: String,
    /// See [`CriticalPath::quantile_permille`].
    pub quantile_permille: u32,
    /// See [`CriticalPath::request`].
    pub request: u64,
    /// Root span id, zero-padded hex.
    pub span: String,
    /// See [`CriticalPath::total_nanos`].
    pub total_nanos: u64,
    /// See [`CriticalPath::shares_permille`].
    pub shares_permille: Vec<u64>,
    /// Dominant phase name.
    pub dominant: String,
}

/// One retained timeline of a [`ScopeSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimelineSnapshot {
    /// See [`ScopeTimeline::request`].
    pub request: u64,
    /// Class name.
    pub class: String,
    /// Root span id, zero-padded hex.
    pub span: String,
    /// See [`ScopeTimeline::phase_nanos`].
    pub phase_nanos: Vec<u64>,
    /// See [`ScopeTimeline::total_nanos`].
    pub total_nanos: u64,
    /// See [`ScopeTimeline::admissions`].
    pub admissions: u32,
    /// See [`ScopeTimeline::preemptions`].
    pub preemptions: u32,
    /// See [`ScopeTimeline::touched_switches`].
    pub touched_switches: u64,
    /// See [`ScopeTimeline::delta_pairs`].
    pub delta_pairs: u64,
}

/// In-flight state of one sampled request.
#[derive(Debug, Clone, Copy)]
struct LiveScope {
    class: Priority,
    span: u64,
    serving_from: Nanos,
    phase_nanos: [u64; 6],
    admissions: u32,
    preemptions: u32,
    touched_switches: u64,
    delta_pairs: u64,
}

/// Folds a cell's [`ServiceEvent`] stream into a [`ScopeReport`].
///
/// Attribution is event-time stamped: every duration derives from the
/// `at` fields the core emitted, never from when the collector ran —
/// the rule that makes the report thread-count invariant (DESIGN §6.7).
#[derive(Debug, Clone)]
pub struct ScopeCollector {
    seed: u64,
    every: u64,
    live: BTreeMap<u64, LiveScope>,
    report: ScopeReport,
    since_gc: u64,
}

impl ScopeCollector {
    /// A collector sampling 1-in-`every` of `seed`'s arrival stream.
    pub fn new(seed: u64, every: u64) -> ScopeCollector {
        ScopeCollector {
            seed,
            every,
            live: BTreeMap::new(),
            report: ScopeReport {
                every,
                ..ScopeReport::default()
            },
            since_gc: 0,
        }
    }

    /// Whether this collector samples `request` (see [`scope_sampled`]).
    pub fn sampled(&self, request: u64) -> bool {
        scope_sampled(self.seed, request, self.every)
    }

    /// Folds one batch of events in. Call with every batch the core
    /// emits, before the caller clears it.
    pub fn observe(&mut self, events: &[ServiceEvent]) {
        if self.every == 0 {
            return;
        }
        for ev in events {
            match ev {
                ServiceEvent::Enqueued { request, class, .. } => {
                    if !self.sampled(*request) || self.live.contains_key(request) {
                        continue;
                    }
                    self.report.sampled += 1;
                    self.live.insert(
                        *request,
                        LiveScope {
                            class: *class,
                            span: scope_span_id(self.seed, *request).0,
                            serving_from: Nanos(0),
                            phase_nanos: [0; 6],
                            admissions: 0,
                            preemptions: 0,
                            touched_switches: 0,
                            delta_pairs: 0,
                        },
                    );
                }
                ServiceEvent::Rejected { request, .. } => {
                    if !self.sampled(*request) {
                        continue;
                    }
                    if self.live.remove(request).is_none() {
                        // Invalid intents reject before enqueueing:
                        // still a sampled observation.
                        self.report.sampled += 1;
                    }
                    self.report.rejected += 1;
                }
                ServiceEvent::Admitted {
                    request,
                    at,
                    waited,
                    report,
                    ..
                } => {
                    let Some(l) = self.live.get_mut(request) else {
                        continue;
                    };
                    l.admissions += 1;
                    l.phase_nanos[ScopePhase::QueueWait.index()] += waited.0;
                    // The admission decision happens at one sim instant
                    // — Admit stays 0 (recorded as an exact zero at
                    // completion, not dropped).
                    let serving = report.traffic_ready_at.max(*at);
                    l.phase_nanos[ScopePhase::Compose.index()] += serving.saturating_sub(*at).0;
                    l.serving_from = serving;
                    let touched = report.per_switch.len() as u64;
                    l.touched_switches += touched;
                    l.delta_pairs += (report.added + report.removed) as u64;
                    let (req, span) = (*request, l.span);
                    self.report.touched_switches.record(touched, req, span);
                    self.report
                        .pairs_added
                        .record(report.added as u64, req, span);
                    self.report
                        .pairs_removed
                        .record(report.removed as u64, req, span);
                }
                ServiceEvent::Preempted { request, at, .. } => {
                    let Some(l) = self.live.get_mut(request) else {
                        continue;
                    };
                    l.preemptions += 1;
                    l.phase_nanos[ScopePhase::Preempt.index()] +=
                        at.saturating_sub(l.serving_from).0;
                }
                ServiceEvent::Completed {
                    request,
                    at,
                    report,
                    ..
                } => {
                    let Some(mut l) = self.live.remove(request) else {
                        continue;
                    };
                    l.phase_nanos[ScopePhase::Hold.index()] += at.saturating_sub(l.serving_from).0;
                    l.phase_nanos[ScopePhase::Release.index()] +=
                        report.traffic_ready_at.saturating_sub(*at).0;
                    self.complete(*request, l);
                }
            }
        }
    }

    fn complete(&mut self, request: u64, l: LiveScope) {
        let total: u64 = l.phase_nanos.iter().sum();
        let c = &mut self.report.classes[l.class.rank()];
        c.sampled_completed += 1;
        for (i, &p) in l.phase_nanos.iter().enumerate() {
            c.phases[i].record(p, request, l.span);
        }
        let keep = c.total.record(total, request, l.span);
        if keep {
            self.report.timelines.insert(
                request,
                ScopeTimeline {
                    request,
                    class: l.class,
                    span: l.span,
                    phase_nanos: l.phase_nanos,
                    total_nanos: total,
                    admissions: l.admissions,
                    preemptions: l.preemptions,
                    touched_switches: l.touched_switches,
                    delta_pairs: l.delta_pairs,
                },
            );
        }
        self.since_gc += 1;
        if self.since_gc >= GC_PERIOD {
            self.report.gc();
            self.since_gc = 0;
        }
    }

    /// The report so far, without consuming the collector (sampled
    /// requests still in flight count as `inflight`).
    pub fn report_now(&self) -> ScopeReport {
        let mut r = self.report.clone();
        r.inflight += self.live.len() as u64;
        r.gc();
        r
    }

    /// Finishes the cell: in-flight sampled requests become `inflight`,
    /// displaced timelines are dropped, and the report is returned.
    pub fn finish(mut self) -> ScopeReport {
        self.report.inflight += self.live.len() as u64;
        self.report.gc();
        self.report
    }
}

/// Scoped wall-clock self-accounting for the profiler's own overhead.
///
/// This is the *only* wall-clock type in the scope layer, and its output
/// never enters a deterministic artifact — `bench_pr8` prints it and
/// gates on throughput ratios instead.
#[derive(Debug, Clone, Default)]
pub struct ScopeProfiler {
    sections: BTreeMap<&'static str, (u64, std::time::Duration)>,
}

impl ScopeProfiler {
    /// An empty profiler.
    pub fn new() -> ScopeProfiler {
        ScopeProfiler::default()
    }

    /// Runs `f`, charging its wall time to `section`.
    pub fn time<T>(&mut self, section: &'static str, f: impl FnOnce() -> T) -> T {
        let start = std::time::Instant::now();
        let out = f();
        let slot = self.sections.entry(section).or_default();
        slot.0 += 1;
        slot.1 += start.elapsed();
        out
    }

    /// Total wall time charged across sections.
    pub fn total(&self) -> std::time::Duration {
        self.sections.values().map(|&(_, d)| d).sum()
    }

    /// A human-readable table: section, calls, total ms, share.
    pub fn render(&self) -> String {
        let total = self.total().as_secs_f64().max(1e-12);
        let mut rows: Vec<(&'static str, u64, std::time::Duration)> = self
            .sections
            .iter()
            .map(|(&name, &(calls, dur))| (name, calls, dur))
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then(a.0.cmp(b.0)));
        let mut out = String::from("profiler (wall clock, non-deterministic):\n");
        for (name, calls, dur) in rows {
            out.push_str(&format!(
                "  {:<24} {:>8} call(s) {:>10.3} ms {:>5.1}%\n",
                name,
                calls,
                dur.as_secs_f64() * 1e3,
                dur.as_secs_f64() / total * 100.0,
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_pure_and_respects_the_period() {
        for every in [0u64, 1, 2, 64] {
            for request in 0..512u64 {
                assert_eq!(
                    scope_sampled(7, request, every),
                    scope_sampled(7, request, every),
                    "pure in (seed, request, every)"
                );
            }
        }
        assert!(!(0..512).any(|r| scope_sampled(7, r, 0)), "0 disables");
        assert!((0..512).all(|r| scope_sampled(7, r, 1)), "1 samples all");
        let hits = (0..4096u64).filter(|&r| scope_sampled(7, r, 64)).count();
        assert!(
            (16..=128).contains(&hits),
            "1-in-64 over 4096 draws: got {hits}"
        );
        // Different seeds pick different requests.
        let a: Vec<u64> = (0..4096).filter(|&r| scope_sampled(1, r, 64)).collect();
        let b: Vec<u64> = (0..4096).filter(|&r| scope_sampled(2, r, 64)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn span_ids_avoid_the_tracer_counter_stream() {
        let mut tracer_ids = BTreeSet::new();
        for counter in 0..4096u64 {
            tracer_ids.insert(derive_span_id(7, counter).0);
        }
        for request in 0..4096u64 {
            assert!(
                !tracer_ids.contains(&scope_span_id(7, request).0),
                "scope ids live on a distinct stream"
            );
        }
    }

    fn sample_class() -> (ClassScope, BTreeMap<u64, ScopeTimeline>) {
        // Hand-built completions: request 0 is queue-dominated, request
        // 1..=8 are hold-dominated, request 9 is a compose-heavy tail.
        let mut c = ClassScope::default();
        let mut timelines = BTreeMap::new();
        let mut complete = |request: u64, phases: [u64; 6]| {
            let total: u64 = phases.iter().sum();
            for (i, &p) in phases.iter().enumerate() {
                c.phases[i].record(p, request, request + 100);
            }
            if c.total.record(total, request, request + 100) {
                timelines.insert(
                    request,
                    ScopeTimeline {
                        request,
                        class: Priority::Training,
                        span: request + 100,
                        phase_nanos: phases,
                        total_nanos: total,
                        admissions: 1,
                        preemptions: 0,
                        touched_switches: 3,
                        delta_pairs: 12,
                    },
                );
            }
            c.sampled_completed += 1;
        };
        complete(0, [2_900_000, 0, 20_000, 70_000, 10_000, 0]);
        for r in 1..=8 {
            complete(r, [0, 0, 30_000, 800_000, 20_000, 0]);
        }
        complete(9, [100_000, 0, 9_000_000, 800_000, 20_000, 0]);
        (c, timelines)
    }

    #[test]
    fn critical_paths_name_the_dominant_phase() {
        let (c, timelines) = sample_class();
        let report = ScopeReport {
            every: 1,
            sampled: 10,
            classes: [ClassScope::default(), c, ClassScope::default()],
            timelines,
            ..ScopeReport::default()
        };
        let rows = report.critical_paths();
        let row = |q: u32| {
            rows.iter()
                .find(|r| r.class == Priority::Training && r.quantile_permille == q)
                .expect("row present")
        };
        assert_eq!(row(500).dominant, ScopePhase::Hold, "p50 is hold-bound");
        assert_eq!(
            row(999).dominant,
            ScopePhase::Compose,
            "tail is compose-bound"
        );
        assert_eq!(row(999).request, 9);
        let tail = row(999);
        assert!(
            tail.shares_permille[ScopePhase::Compose.index()] > 800,
            "compose share dominates the tail: {:?}",
            tail.shares_permille
        );
        let text = report.render();
        assert!(text.contains("compose"), "render names the phase: {text}");
        assert!(text.contains("p99.9"), "render names the quantile");
    }

    #[test]
    fn merge_matches_single_stream_and_gc_is_timing_free() {
        // Split the same completions across two reports in both orders:
        // merged snapshots are identical, and equal to one stream.
        let build = |which: u8| {
            let mut col = [
                ScopeCollector::new(3, 1),
                ScopeCollector::new(3, 1),
                ScopeCollector::new(3, 1),
            ];
            for r in 0..40u64 {
                let phases = [r * 1000, 0, (r % 7) * 50_000, 1_000_000 + r * r * 999, 0, 0];
                let l = LiveScope {
                    class: Priority::Inference,
                    span: scope_span_id(3, r).0,
                    serving_from: Nanos(0),
                    phase_nanos: phases,
                    admissions: 1,
                    preemptions: 0,
                    touched_switches: 2,
                    delta_pairs: 8,
                };
                let target = match which {
                    0 => 0,
                    _ => 1 + (r % 2) as usize,
                };
                col[target].report.sampled += 1;
                col[target].complete(r, l);
            }
            col
        };
        let [whole, _, _] = build(0);
        let [_, a, b] = build(1);
        let whole = whole.finish();
        let (a, b) = (a.finish(), b.finish());
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b;
        ba.merge(&a);
        let json = |r: &ScopeReport| serde_json::to_string(&r.snapshot()).expect("serializes");
        assert_eq!(json(&ab), json(&ba), "merge commutes");
        assert_eq!(json(&ab), json(&whole), "merge equals single stream");
        // Every retained timeline is an exemplar, and vice versa.
        let mut keep = BTreeSet::new();
        ab.classes[0].total.hist.exemplar_requests(&mut keep);
        assert_eq!(
            ab.timelines.keys().copied().collect::<BTreeSet<_>>(),
            keep,
            "timeline set == exemplar set"
        );
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let (c, timelines) = sample_class();
        let report = ScopeReport {
            every: 8,
            sampled: 10,
            classes: [ClassScope::default(), c, ClassScope::default()],
            timelines,
            ..ScopeReport::default()
        };
        let snap = report.snapshot();
        assert_eq!(snap.schema, "lightwave/scope/v1");
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: ScopeSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.classes.len(), 3);
        assert_eq!(back.classes[1].phases.len(), 6);
        assert!(!back.critical_paths.is_empty());
        assert!(!back.timelines.is_empty());
    }

    #[test]
    fn profiler_accounts_sections() {
        let mut prof = ScopeProfiler::new();
        let v = prof.time("work", || 21 * 2);
        assert_eq!(v, 42);
        prof.time("work", || ());
        prof.time("other", || ());
        assert!(prof.total() >= std::time::Duration::ZERO);
        let text = prof.render();
        assert!(
            text.contains("work") && text.contains("2 call(s)"),
            "{text}"
        );
    }
}
