//! Campus observability for the open-loop engine: every service cell
//! feeds a [`RollupTree`] + [`BurnRateLedger`] pair, and the sharded
//! run merges them in shard order into one queryable
//! [`CampusHealthDoc`].
//!
//! The cell model maps onto the campus hierarchy directly: each shard
//! is one *pod* (its own fresh [`Superpod`]), each pod's OCS switches
//! are the switch level, and admission outcomes drive the pod's
//! error-budget ledger the same way [`crate::engine::ServiceEngine`]
//! drives the flat [`SloTracker`](lightwave_telemetry::SloTracker).
//! Everything folded here is integer-exact ([`Aggregate`] merges /
//! nanosecond ledgers), so `campus_health.json` from
//! [`run_sharded_campus`] is byte-identical at any `LIGHTWAVE_THREADS`
//! (DESIGN §6.9).

use crate::arrivals::arrival;
use crate::engine::{run_cell, ServiceConfig, CELL_STREAM};
use crate::metrics::ServiceReport;
use crate::queue::{RejectReason, ServiceCore, ServiceEvent};
use lightwave_par::{splitmix, Pool, RunStats, Shard};
use lightwave_superpod::Superpod;
use lightwave_telemetry::rollup::{CampusHealthDoc, PortPath, RollupMetric, RollupTree};
use lightwave_telemetry::slo::BurnRateLedger;
use lightwave_telemetry::timeseries::Aggregate;
use lightwave_units::Nanos;

/// Pseudo-switch id for pod-scoped (not per-OCS) service metrics —
/// admission waits and rejects attribute to the pod, not a switch.
pub const POD_SCOPE_SWITCH: u32 = u32::MAX;

/// Campus observability state for one service cell (or the shard-order
/// merge of many): the rollup tree plus the burn-rate ledger, with the
/// pre-interned service metrics.
#[derive(Debug, Clone)]
pub struct CampusObserver {
    /// The port → switch → pod → campus aggregation tree.
    pub rollup: RollupTree,
    /// Per-pod + campus error-budget burn ledger (admission SLO).
    pub burn: BurnRateLedger,
    /// Latest sim time observed (the snapshot stamp).
    pub end: Nanos,
    m_compose: RollupMetric,
    m_release: RollupMetric,
    m_wait: RollupMetric,
    m_rejected: RollupMetric,
}

impl Default for CampusObserver {
    fn default() -> CampusObserver {
        CampusObserver::new()
    }
}

impl CampusObserver {
    /// A fresh observer. Metrics are interned up front in a fixed
    /// order, so every cell's intern table is identical and merged
    /// snapshots never depend on which event fired first.
    pub fn new() -> CampusObserver {
        let mut rollup = RollupTree::new();
        let m_compose = rollup.metric("svc_compose_moves");
        let m_release = rollup.metric("svc_release_moves");
        let m_wait = rollup.metric("svc_wait_ms");
        let m_rejected = rollup.metric("svc_rejected");
        CampusObserver {
            rollup,
            burn: BurnRateLedger::default(),
            end: Nanos(0),
            m_compose,
            m_release,
            m_wait,
            m_rejected,
        }
    }

    /// Folds one event batch from `pod`'s cell into the rollup and the
    /// burn ledger. O(events · touched switches); no propagation (that
    /// is [`RollupTree::scrape`]'s job, paid at snapshot time).
    pub fn observe(&mut self, pod: u32, events: &[ServiceEvent]) {
        for ev in events {
            match ev {
                ServiceEvent::Enqueued { .. } => {}
                ServiceEvent::Rejected { why, at, .. } => {
                    self.end = self.end.max(*at);
                    self.rollup.ingest(
                        self.m_rejected,
                        PortPath::new(pod, POD_SCOPE_SWITCH, 0),
                        *at,
                        1.0,
                    );
                    if *why == RejectReason::QueueFull {
                        self.burn.observe(*at, pod, false);
                    }
                }
                ServiceEvent::Admitted {
                    at, waited, report, ..
                } => {
                    self.end = self.end.max(*at);
                    self.burn.observe(*at, pod, true);
                    // Nanos folded as micro-units render as exact ms.
                    self.rollup.ingest_micros(
                        self.m_wait,
                        PortPath::new(pod, POD_SCOPE_SWITCH, 0),
                        *at,
                        waited.0 as i64,
                    );
                    for (&ocs, r) in &report.per_switch {
                        let moves = (r.added.len() + r.removed.len()) as f64;
                        self.rollup
                            .ingest(self.m_compose, PortPath::new(pod, ocs, 0), *at, moves);
                    }
                }
                ServiceEvent::Preempted { at, report, .. }
                | ServiceEvent::Completed { at, report, .. } => {
                    self.end = self.end.max(*at);
                    for (&ocs, r) in &report.per_switch {
                        let moves = (r.added.len() + r.removed.len()) as f64;
                        self.rollup
                            .ingest(self.m_release, PortPath::new(pod, ocs, 0), *at, moves);
                    }
                }
            }
        }
    }

    /// Merges another observer (consuming it): rollups merge node-wise,
    /// ledgers union by pod, and the stamp takes the max. Exact in
    /// shard order.
    pub fn merge(&mut self, other: CampusObserver) {
        self.rollup.merge(other.rollup);
        self.burn.merge(other.burn);
        self.end = self.end.max(other.end);
    }

    /// Campus-level aggregate of the compose-moves metric (scrape
    /// first) — the bench's quick identity probe.
    pub fn compose_agg(&self) -> Aggregate {
        self.rollup.campus_agg(self.m_compose)
    }

    /// Scrapes pending deltas and builds the versioned
    /// `campus_health.json` snapshot as of the latest observed time.
    pub fn health_doc(&mut self) -> CampusHealthDoc {
        self.rollup.scrape();
        let slo = self.burn.assess(self.end);
        CampusHealthDoc::build(&self.rollup, slo, self.end)
    }
}

/// [`run_cell`] with campus observability: the observer folds each
/// event batch before it is cleared. The service report is identical
/// to [`run_cell`]'s — observation never perturbs policy.
pub fn run_cell_campus(cfg: &ServiceConfig, shard: Shard) -> (ServiceReport, CampusObserver) {
    let mut pod = Superpod::new(splitmix(cfg.seed ^ CELL_STREAM, shard.index));
    pod.set_shadow_check(cfg.shadow);
    let mut core = ServiceCore::new(cfg.policy);
    let mut obs = CampusObserver::new();
    let pod_id = shard.index as u32;
    let mut events = Vec::new();
    let mut now = Nanos(0);
    for i in shard.start..shard.start + shard.len {
        let a = arrival(cfg.seed, i, cfg.mix);
        now += cfg.scaled_gap(a.gap_unit_micros);
        core.advance_to(&mut pod, now, &mut events);
        core.submit(&mut pod, &a.intent, &mut events);
        obs.observe(pod_id, &events);
        events.clear();
    }
    core.drain(&mut pod, &mut events);
    obs.observe(pod_id, &events);
    (core.report().clone(), obs)
}

/// [`run_sharded`](crate::engine::run_sharded) with campus
/// observability: cells run [`run_cell_campus`] and both results merge
/// in shard order, so the report **and** the snapshot built by
/// [`CampusObserver::health_doc`] are byte-identical at any thread
/// count.
pub fn run_sharded_campus(
    pool: &Pool,
    cfg: &ServiceConfig,
) -> (ServiceReport, CampusObserver, RunStats) {
    let ((report, obs), stats) = pool.run_shards(
        cfg.seed,
        cfg.requests,
        cfg.shard_size,
        |_rng, shard| run_cell_campus(cfg, shard),
        |(mut a, mut oa), (b, ob)| {
            a.merge(&b);
            oa.merge(ob);
            (a, oa)
        },
    );
    (report, obs, stats)
}

/// Convenience: the bare (observability-off) cell — re-exported here so
/// `bench_pr10` pairs the two modes side by side.
pub fn run_cell_plain(cfg: &ServiceConfig, shard: Shard) -> ServiceReport {
    run_cell(cfg, shard)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ServiceConfig {
        ServiceConfig {
            requests: 800,
            shard_size: 200,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn campus_run_does_not_perturb_policy() {
        let cfg = cfg();
        let (plain, _) = crate::engine::run_sharded(&Pool::new(2), &cfg);
        let (campus, obs, _) = run_sharded_campus(&Pool::new(2), &cfg);
        assert_eq!(plain, campus);
        assert!(obs.rollup.ingested() > 0, "events were folded");
    }

    #[test]
    fn campus_snapshot_is_thread_count_invariant() {
        let cfg = cfg();
        let (r1, mut o1, _) = run_sharded_campus(&Pool::new(1), &cfg);
        let (r4, mut o4, _) = run_sharded_campus(&Pool::new(4), &cfg);
        assert_eq!(r1, r4);
        let d1 = o1.health_doc().to_json();
        let d4 = o4.health_doc().to_json();
        assert_eq!(d1, d4, "campus_health.json byte-identical");
        o1.rollup.check_consistency().expect("rollup consistent");
    }

    #[test]
    fn pods_map_to_shards_and_doc_drills_down() {
        let cfg = cfg();
        let (_, mut obs, _) = run_sharded_campus(&Pool::new(2), &cfg);
        let doc = obs.health_doc();
        assert_eq!(doc.pods.len(), 4, "800/200 = 4 cells = 4 pods");
        let pod0 = doc.pod(0).expect("pod 0 present");
        assert!(
            pod0.node.metric("svc_compose_moves").is_some(),
            "compose activity rolled up"
        );
        assert!(
            doc.switch(0, POD_SCOPE_SWITCH).is_some(),
            "pod-scoped pseudo-switch present"
        );
        assert!(!doc.top_burners(2).is_empty());
    }
}
