//! The open-loop workload engine: millions of arrivals over real pods.
//!
//! Two drive modes share [`ServiceCore`]:
//!
//! - [`run_sharded`] — the at-scale mode. The arrival index space is
//!   split by [`plan_shards`](lightwave_par::plan_shards) into
//!   independent *cells*: each shard runs its own fresh
//!   [`Superpod`] + [`ServiceCore`] over its index range, and the
//!   per-cell [`ServiceReport`]s merge in shard order. Arrivals are pure
//!   per index and a cell touches nothing outside itself, so the merged
//!   report is **byte-identical at any `LIGHTWAVE_THREADS`** — a year of
//!   arrivals shards the same way a Monte-Carlo run does.
//! - [`ServiceEngine`] — the observed mode. One cell with full
//!   observability: per-class counters and [`RateWindow`] rates, wait
//!   histograms, queue depth as a Perfetto counter track, SLO hooks, and
//!   request-lifecycle spans (`Enqueue → Admit → Compose → Run →
//!   Release`, with `Reject`/`Preempt` off the happy path) chained by
//!   follows-links.

use crate::arrivals::{arrival, Mix};
use crate::intent::Priority;
use crate::metrics::ServiceReport;
use crate::queue::{PolicyConfig, RejectReason, ServiceCore, ServiceEvent};
use crate::scope::{scope_span_id, ScopeCollector, ScopeReport};
use lightwave_par::{splitmix, Pool, RunStats, Shard};
use lightwave_superpod::instrument::{trace_compose, trace_release};
use lightwave_superpod::Superpod;
use lightwave_telemetry::{
    CounterId, FleetTelemetry, HistogramId, RateWindow, SeriesId, SeriesStore,
};
use lightwave_trace::{Lane, RequestStage, SpanId, SpanKind, Tracer};
use lightwave_units::Nanos;
use std::collections::BTreeMap;

/// Stream offset deriving each cell's pod seed from the run seed.
pub const CELL_STREAM: u64 = 0xCE11_0D5E_ED00_0001;

/// SLO object name for admission availability.
pub const ADMISSION_SLO_OBJECT: &str = "svc-admission";

/// One open-loop run's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Arrival-stream seed.
    pub seed: u64,
    /// Total arrivals.
    pub requests: u64,
    /// Mean inter-arrival gap (scales the unit-mean Exp(1) gaps; the
    /// offered-load knob).
    pub mean_gap: Nanos,
    /// Workload mix.
    pub mix: Mix,
    /// Admission policy.
    pub policy: PolicyConfig,
    /// Arrivals per cell in [`run_sharded`].
    pub shard_size: u64,
    /// Requests (by index) given lifecycle spans in [`ServiceEngine`].
    pub trace_requests: u64,
    /// Cross-check every incremental commit against a full rebuild of
    /// the desired state (see `Superpod::set_shadow_check`). Off by
    /// default: it re-pays the old O(pod) cost per transaction and
    /// exists for equivalence proofs and in-run perf baselines.
    pub shadow: bool,
    /// Scope-sampling period for [`run_cell_scoped`] /
    /// [`run_sharded_scoped`] / [`ServiceEngine`]: 0 disables, 1 samples
    /// every request, `n` samples ~1-in-`n` (pure in `(seed, request)` —
    /// see [`crate::scope::scope_sampled`]).
    pub scope_every: u64,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            seed: 0x5EED,
            requests: 10_000,
            mean_gap: Nanos::from_millis(30),
            mix: Mix::Production,
            policy: PolicyConfig::default(),
            shard_size: 4_096,
            trace_requests: 0,
            shadow: false,
            scope_every: 0,
        }
    }
}

impl ServiceConfig {
    /// The gap before arrival `a` in sim time: the unit-mean draw scaled
    /// by `mean_gap` in integer arithmetic (deterministic at any thread
    /// count).
    pub fn scaled_gap(&self, gap_unit_micros: u64) -> Nanos {
        Nanos(gap_unit_micros.saturating_mul(self.mean_gap.0) / 1_000_000)
    }
}

/// Runs one independent service cell over `shard`'s index range and
/// returns its report. Pure: same `(cfg, shard)` → same report.
pub fn run_cell(cfg: &ServiceConfig, shard: Shard) -> ServiceReport {
    let mut pod = Superpod::new(splitmix(cfg.seed ^ CELL_STREAM, shard.index));
    pod.set_shadow_check(cfg.shadow);
    let mut core = ServiceCore::new(cfg.policy);
    let mut events = Vec::new();
    let mut now = Nanos(0);
    for i in shard.start..shard.start + shard.len {
        let a = arrival(cfg.seed, i, cfg.mix);
        now += cfg.scaled_gap(a.gap_unit_micros);
        core.advance_to(&mut pod, now, &mut events);
        core.submit(&mut pod, &a.intent, &mut events);
        events.clear();
    }
    core.drain(&mut pod, &mut events);
    core.report().clone()
}

/// Shards `cfg.requests` arrivals across `pool` as independent cells and
/// merges the reports in shard order. The report (not the
/// [`RunStats`]) is byte-identical at any thread count.
pub fn run_sharded(pool: &Pool, cfg: &ServiceConfig) -> (ServiceReport, RunStats) {
    pool.run_shards(
        cfg.seed,
        cfg.requests,
        cfg.shard_size,
        |_rng, shard| run_cell(cfg, shard),
        |mut a, b| {
            a.merge(&b);
            a
        },
    )
}

/// [`run_cell`] with scope attribution: the collector folds each event
/// batch before it is cleared, so the cell also returns its
/// [`ScopeReport`]. With `cfg.scope_every == 0` the scope report is
/// empty and the service report equals [`run_cell`]'s.
pub fn run_cell_scoped(cfg: &ServiceConfig, shard: Shard) -> (ServiceReport, ScopeReport) {
    let mut pod = Superpod::new(splitmix(cfg.seed ^ CELL_STREAM, shard.index));
    pod.set_shadow_check(cfg.shadow);
    let mut core = ServiceCore::new(cfg.policy);
    let mut scope = ScopeCollector::new(cfg.seed, cfg.scope_every);
    let mut events = Vec::new();
    let mut now = Nanos(0);
    for i in shard.start..shard.start + shard.len {
        let a = arrival(cfg.seed, i, cfg.mix);
        now += cfg.scaled_gap(a.gap_unit_micros);
        core.advance_to(&mut pod, now, &mut events);
        core.submit(&mut pod, &a.intent, &mut events);
        scope.observe(&events);
        events.clear();
    }
    core.drain(&mut pod, &mut events);
    scope.observe(&events);
    (core.report().clone(), scope.finish())
}

/// [`run_sharded`] with scope attribution: cells run
/// [`run_cell_scoped`] and both reports merge in shard order, so the
/// pair is byte-identical at any thread count.
pub fn run_sharded_scoped(
    pool: &Pool,
    cfg: &ServiceConfig,
) -> (ServiceReport, ScopeReport, RunStats) {
    let ((report, scope), stats) = pool.run_shards(
        cfg.seed,
        cfg.requests,
        cfg.shard_size,
        |_rng, shard| run_cell_scoped(cfg, shard),
        |(mut a, mut sa), (b, sb)| {
            a.merge(&b);
            sa.merge(&sb);
            (a, sa)
        },
    );
    (report, scope, stats)
}

struct ClassInstruments {
    offered: CounterId,
    admitted: CounterId,
    rejected: CounterId,
    preempted: CounterId,
    completed: CounterId,
    wait: HistogramId,
    admit_rate: RateWindow,
    reject_rate: RateWindow,
    preempt_rate: RateWindow,
}

/// One fully observed service cell (see module docs). All stores are
/// public: scrape `telemetry`, export `tracer` + `series` with
/// [`to_chrome_trace_with_counters`](lightwave_trace::to_chrome_trace_with_counters).
pub struct ServiceEngine {
    /// Engine configuration.
    pub cfg: ServiceConfig,
    /// The policy state machine.
    pub core: ServiceCore,
    /// The pod being served.
    pub pod: Superpod,
    /// Metrics + events + alarms + SLO.
    pub telemetry: FleetTelemetry,
    /// Request-lifecycle spans.
    pub tracer: Tracer,
    /// Queue-depth time series (a Perfetto counter track).
    pub series: SeriesStore,
    instruments: Vec<ClassInstruments>,
    depth: SeriesId,
    now: Nanos,
    /// Last lifecycle span of each traced request still in flight.
    open: BTreeMap<u64, SpanId>,
    /// Scope attribution (active when `cfg.scope_every > 0`).
    scope: ScopeCollector,
    /// Open root lifecycle span of each scope-sampled request, with id
    /// pre-derived by [`scope_span_id`] so sharded reports resolve into
    /// this engine's trace.
    scope_roots: BTreeMap<u64, SpanId>,
}

impl ServiceEngine {
    /// A fresh observed cell (cell index 0 of `cfg.seed`).
    pub fn new(cfg: ServiceConfig) -> ServiceEngine {
        let mut telemetry = FleetTelemetry::new();
        let mut series = SeriesStore::default();
        let window = Nanos::from_secs_f64(1.0);
        let instruments = Priority::ALL
            .iter()
            .map(|&p| {
                let labels: &[(&str, &str)] = &[("class", p.name())];
                let m = &mut telemetry.metrics;
                let admitted = m.counter("svc_admitted_total", labels);
                let rejected = m.counter("svc_rejected_total", labels);
                let preempted = m.counter("svc_preempted_total", labels);
                ClassInstruments {
                    offered: m.counter("svc_offered_total", labels),
                    admitted,
                    rejected,
                    preempted,
                    completed: m.counter("svc_completed_total", labels),
                    wait: m.histogram("svc_wait_micros", labels),
                    admit_rate: m.rate_window(admitted, "svc_admit_rate_per_sec", labels, window),
                    reject_rate: m.rate_window(rejected, "svc_reject_rate_per_sec", labels, window),
                    preempt_rate: m.rate_window(
                        preempted,
                        "svc_preempt_rate_per_sec",
                        labels,
                        window,
                    ),
                }
            })
            .collect();
        let depth = series.series("svc_queue_depth", &[]);
        let mut pod = Superpod::new(splitmix(cfg.seed ^ CELL_STREAM, 0));
        pod.set_shadow_check(cfg.shadow);
        ServiceEngine {
            core: ServiceCore::new(cfg.policy),
            pod,
            telemetry,
            tracer: Tracer::new(cfg.seed),
            series,
            instruments,
            depth,
            now: Nanos(0),
            open: BTreeMap::new(),
            scope: ScopeCollector::new(cfg.seed, cfg.scope_every),
            scope_roots: BTreeMap::new(),
            cfg,
        }
    }

    /// Runs the configured arrival stream to completion (including the
    /// final drain) and returns the report.
    pub fn run(&mut self) -> ServiceReport {
        let mut events = Vec::new();
        for i in 0..self.cfg.requests {
            let a = arrival(self.cfg.seed, i, self.cfg.mix);
            self.now += self.cfg.scaled_gap(a.gap_unit_micros);
            self.core.advance_to(&mut self.pod, self.now, &mut events);
            self.core.submit(&mut self.pod, &a.intent, &mut events);
            self.apply(&std::mem::take(&mut events));
            self.series
                .push(self.depth, self.now, self.core.queue_depth() as f64);
        }
        self.now = self.core.drain(&mut self.pod, &mut events);
        self.apply(&std::mem::take(&mut events));
        self.series
            .push(self.depth, self.now, self.core.queue_depth() as f64);
        // Close any root lifecycle span whose request never terminated
        // (possible only under injected faults): open spans would
        // otherwise be dropped from the export.
        for (_, span) in std::mem::take(&mut self.scope_roots) {
            self.tracer.end(span, self.now);
        }
        self.core.report().clone()
    }

    /// The scope attribution so far (see
    /// [`ScopeCollector::report_now`]).
    pub fn scope_report(&self) -> ScopeReport {
        self.scope.report_now()
    }

    fn traced(&self, request: u64) -> bool {
        request < self.cfg.trace_requests
    }

    /// A zero-width lifecycle stage span chained after `prev`, parented
    /// under the request's root scope span when one is open.
    fn stage_mark(
        &mut self,
        request: u64,
        stage: RequestStage,
        at: Nanos,
        prev: Option<SpanId>,
    ) -> SpanId {
        let parent = self.scope_roots.get(&request).copied();
        let span = self.tracer.span(
            Lane::Scheduler,
            parent,
            at,
            at,
            SpanKind::ServiceRequest { request, stage },
        );
        if let Some(prev) = prev {
            self.tracer.link_follows(span, prev);
        }
        span
    }

    fn apply(&mut self, events: &[ServiceEvent]) {
        self.scope.observe(events);
        for ev in events {
            match ev {
                ServiceEvent::Enqueued { request, class, at } => {
                    let inst = &self.instruments[class.rank()];
                    self.telemetry.metrics.inc(inst.offered, self.now, 1);
                    if self.scope.sampled(*request) && !self.scope_roots.contains_key(request) {
                        let id = scope_span_id(self.cfg.seed, *request);
                        self.tracer.begin_with_id(
                            id,
                            Lane::Scheduler,
                            None,
                            *at,
                            SpanKind::ServiceRequest {
                                request: *request,
                                stage: RequestStage::Lifecycle,
                            },
                        );
                        self.scope_roots.insert(*request, id);
                    }
                    if self.traced(*request) {
                        let prev = self.open.remove(request);
                        let parent = self.scope_roots.get(request).copied();
                        let span = self.tracer.begin(
                            Lane::Scheduler,
                            parent,
                            self.now,
                            SpanKind::ServiceRequest {
                                request: *request,
                                stage: RequestStage::Enqueue,
                            },
                        );
                        if let Some(prev) = prev {
                            self.tracer.link_follows(span, prev);
                        }
                        self.open.insert(*request, span);
                    }
                }
                ServiceEvent::Rejected {
                    request,
                    class,
                    why,
                    at,
                } => {
                    let inst = &mut self.instruments[class.rank()];
                    self.telemetry.metrics.inc(inst.rejected, self.now, 1);
                    inst.reject_rate
                        .observe(&mut self.telemetry.metrics, self.now);
                    if *why == RejectReason::QueueFull {
                        self.telemetry
                            .slo
                            .observe(self.now, ADMISSION_SLO_OBJECT, false);
                    }
                    if self.traced(*request) {
                        let prev = self.open.remove(request);
                        if let Some(span) = prev {
                            self.tracer.end(span, self.now);
                        }
                        self.stage_mark(*request, RequestStage::Reject, self.now, prev);
                    }
                    if let Some(root) = self.scope_roots.remove(request) {
                        self.tracer.end(root, *at);
                    }
                }
                ServiceEvent::Admitted {
                    request,
                    class,
                    at,
                    cubes,
                    waited,
                    report,
                    ..
                } => {
                    let at = *at;
                    let inst = &mut self.instruments[class.rank()];
                    self.telemetry.metrics.inc(inst.admitted, at, 1);
                    // Zero waits can't land in a log histogram; the
                    // admitted counter still counts them, so the
                    // histogram is the positive-wait tail only.
                    if waited.0 > 0 {
                        self.telemetry
                            .metrics
                            .observe(inst.wait, at, waited.0 as f64 / 1_000.0);
                    }
                    inst.admit_rate.observe(&mut self.telemetry.metrics, at);
                    self.telemetry.slo.observe(at, ADMISSION_SLO_OBJECT, true);
                    if self.traced(*request) {
                        let enqueue = self.open.remove(request);
                        if let Some(span) = enqueue {
                            self.tracer.end(span, at);
                        }
                        let admit = self.stage_mark(*request, RequestStage::Admit, at, enqueue);
                        let ready = report.traffic_ready_at.max(at);
                        let parent = self.scope_roots.get(request).copied();
                        let compose = self.tracer.span(
                            Lane::Scheduler,
                            parent,
                            at,
                            ready,
                            SpanKind::ServiceRequest {
                                request: *request,
                                stage: RequestStage::Compose,
                            },
                        );
                        self.tracer.link_follows(compose, admit);
                        trace_compose(&mut self.tracer, Some(compose), 0, at, *cubes, report);
                        let run = self.tracer.begin(
                            Lane::Scheduler,
                            parent,
                            ready,
                            SpanKind::ServiceRequest {
                                request: *request,
                                stage: RequestStage::Run,
                            },
                        );
                        self.tracer.link_follows(run, compose);
                        self.open.insert(*request, run);
                    }
                }
                ServiceEvent::Preempted {
                    request,
                    class,
                    at,
                    report,
                    ..
                } => {
                    let at = *at;
                    let inst = &mut self.instruments[class.rank()];
                    self.telemetry.metrics.inc(inst.preempted, at, 1);
                    inst.preempt_rate.observe(&mut self.telemetry.metrics, at);
                    if self.traced(*request) {
                        let run = self.open.remove(request);
                        if let Some(span) = run {
                            self.tracer.end(span, at);
                        }
                        let preempt = self.stage_mark(*request, RequestStage::Preempt, at, run);
                        trace_release(&mut self.tracer, Some(preempt), 0, at, 0, report);
                        // The request re-queued: a fresh enqueue span
                        // chains after the eviction.
                        let parent = self.scope_roots.get(request).copied();
                        let enqueue = self.tracer.begin(
                            Lane::Scheduler,
                            parent,
                            at,
                            SpanKind::ServiceRequest {
                                request: *request,
                                stage: RequestStage::Enqueue,
                            },
                        );
                        self.tracer.link_follows(enqueue, preempt);
                        self.open.insert(*request, enqueue);
                    }
                }
                ServiceEvent::Completed {
                    request,
                    class,
                    at,
                    cubes,
                    report,
                    ..
                } => {
                    let at = *at;
                    let inst = &self.instruments[class.rank()];
                    self.telemetry.metrics.inc(inst.completed, at, 1);
                    if self.traced(*request) {
                        let run = self.open.remove(request);
                        if let Some(span) = run {
                            self.tracer.end(span, at);
                        }
                        let release = self.stage_mark(*request, RequestStage::Release, at, run);
                        trace_release(&mut self.tracer, Some(release), 0, at, *cubes, report);
                    }
                    if let Some(root) = self.scope_roots.remove(request) {
                        // The lifecycle ends when the release settles.
                        self.tracer.end(root, report.traffic_ready_at.max(at));
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> ServiceConfig {
        ServiceConfig {
            requests: 600,
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn sharded_report_is_thread_count_invariant() {
        let cfg = small_cfg();
        let (serial, _) = run_sharded(&Pool::new(1), &cfg);
        let (quad, _) = run_sharded(&Pool::new(4), &cfg);
        assert_eq!(serial, quad);
        assert_eq!(serial.submitted, 600);
        assert!(serial.completed() > 0);
        serial.render(); // must not panic
    }

    #[test]
    fn cells_are_independent_of_partitioning() {
        // One 600-request cell vs two 300-request cells: different cell
        // boundaries change per-cell state (fresh pods), but every index
        // is served exactly once and conservation holds in both.
        let cfg = small_cfg();
        let one = run_cell(
            &cfg,
            Shard {
                index: 0,
                start: 0,
                len: 600,
            },
        );
        assert_eq!(one.submitted, 600);
        let shards = lightwave_par::plan_shards(600, 300);
        let mut merged = ServiceReport::default();
        for s in shards {
            merged.merge(&run_cell(&cfg, s));
        }
        assert_eq!(merged.submitted, 600);
        assert_eq!(one.invalid, merged.invalid, "validation is per index");
    }

    #[test]
    fn engine_observes_the_lifecycle() {
        let mut engine = ServiceEngine::new(ServiceConfig {
            requests: 300,
            trace_requests: 40,
            ..ServiceConfig::default()
        });
        let report = engine.run();
        assert_eq!(report.submitted, 300);
        engine.core.conservation().expect("requests conserved");
        let m = &engine.telemetry.metrics;
        let admitted: u64 = Priority::ALL
            .iter()
            .map(|p| {
                m.find("svc_admitted_total", &[("class", p.name())])
                    .map(|v| match v {
                        lightwave_telemetry::metrics::MetricValue::Counter(c) => *c,
                        _ => 0,
                    })
                    .unwrap_or(0)
            })
            .sum();
        assert_eq!(
            admitted,
            report.classes.iter().map(|c| c.admitted).sum::<u64>(),
            "counters mirror the report"
        );
        // The queue-depth counter track and the spans export together.
        let json =
            lightwave_trace::to_chrome_trace_with_counters(&engine.tracer, &engine.series.tracks());
        let stats = lightwave_trace::validate::validate_chrome_trace(&json).expect("valid trace");
        assert!(stats.complete > 0, "lifecycle spans present");
        assert!(stats.counters > 0, "queue depth present");
    }

    #[test]
    fn scoped_run_attributes_the_lifecycle_and_stays_invariant() {
        let cfg = ServiceConfig {
            requests: 800,
            shard_size: 128,
            scope_every: 4,
            ..ServiceConfig::default()
        };
        let (report, scope, _) = run_sharded_scoped(&Pool::new(1), &cfg);
        let (report4, scope4, _) = run_sharded_scoped(&Pool::new(4), &cfg);
        assert_eq!(report, report4, "service report thread-invariant");
        let json = serde_json::to_string(&scope.snapshot()).expect("serializes");
        let json4 = serde_json::to_string(&scope4.snapshot()).expect("serializes");
        assert_eq!(json, json4, "scope snapshot byte-identical");
        // Scoping never perturbs the policy.
        assert_eq!(report, run_sharded(&Pool::new(2), &cfg).0);
        assert!(scope.sampled > 0, "1-in-4 over 800 requests samples some");
        assert_eq!(scope.inflight, 0, "drained run leaves nothing in flight");
        let completed: u64 = scope.classes.iter().map(|c| c.sampled_completed).sum();
        assert_eq!(completed + scope.rejected, scope.sampled);
        assert!(!scope.critical_paths().is_empty());
        assert!(
            scope.touched_switches.count() > 0,
            "compose commits observed"
        );
        // Scope off: empty report, same service outcome.
        let off = ServiceConfig {
            scope_every: 0,
            ..cfg
        };
        let (off_report, off_scope, _) = run_sharded_scoped(&Pool::new(2), &off);
        assert_eq!(off_report, report);
        assert_eq!(off_scope.sampled, 0);
    }

    #[test]
    fn engine_scope_matches_sharded_single_cell_and_annotates_roots() {
        let cfg = ServiceConfig {
            requests: 400,
            shard_size: 400,
            trace_requests: 25,
            scope_every: 2,
            ..ServiceConfig::default()
        };
        let mut engine = ServiceEngine::new(cfg);
        let report = engine.run();
        let (cell_report, cell_scope) = run_cell_scoped(
            &cfg,
            Shard {
                index: 0,
                start: 0,
                len: 400,
            },
        );
        assert_eq!(report, cell_report, "observation does not perturb policy");
        let engine_scope = engine.scope_report();
        assert_eq!(
            serde_json::to_string(&engine_scope.snapshot()).expect("json"),
            serde_json::to_string(&cell_scope.snapshot()).expect("json"),
            "engine and sharded cell agree on attribution"
        );
        // Every exemplar span id resolves to a root lifecycle span in
        // the engine's trace.
        let spans = engine_scope.exemplar_spans();
        assert!(!spans.is_empty());
        let root_ids: std::collections::BTreeSet<u64> = engine
            .tracer
            .spans()
            .iter()
            .filter(|s| {
                matches!(
                    s.kind,
                    SpanKind::ServiceRequest {
                        stage: RequestStage::Lifecycle,
                        ..
                    }
                )
            })
            .map(|s| s.id.0)
            .collect();
        for span in &spans {
            assert!(root_ids.contains(span), "exemplar span {span:x} resolves");
        }
        // The annotated export flags exactly those spans.
        let json = lightwave_trace::to_chrome_trace_annotated(&engine.tracer, &[], &spans);
        assert!(json.contains("\"exemplar\":true"));
        lightwave_trace::validate::validate_chrome_trace(&json).expect("valid trace");
    }

    #[test]
    fn engine_report_matches_unobserved_cell() {
        // Observation must not perturb the policy: the engine's report
        // equals the bare cell's for the same cfg.
        let cfg = ServiceConfig {
            requests: 400,
            trace_requests: 25,
            ..ServiceConfig::default()
        };
        let bare = run_cell(
            &cfg,
            Shard {
                index: 0,
                start: 0,
                len: 400,
            },
        );
        let mut engine = ServiceEngine::new(cfg);
        assert_eq!(engine.run(), bare);
    }
}
