//! The service core: admission control, weighted fairness, priorities
//! and preemption over a live [`Superpod`].
//!
//! The core is deliberately observation-free — every call returns the
//! [`ServiceEvent`]s it caused, and callers (the open-loop engine, the
//! chaos executor) translate those into telemetry, spans and invariant
//! state. That keeps the policy a pure sim-time state machine: same
//! inputs, same events, same [`ServiceReport`], at any thread count.
//!
//! ## Policy (the DESIGN §6.5 contract)
//!
//! - **Blocking**: a new arrival that leaves the queue beyond
//!   `queue_limit` after an admission pass is turned away. `queue_limit
//!   = 0` is the pure-loss (Erlang B) configuration.
//! - **Admission order**: weighted fair queueing across classes — the
//!   class with the least `served_cube_nanos / weight` admits next
//!   (integer cross-multiplication, no floats), ties to the higher
//!   priority; FIFO by request index within a class. The fairness-chosen
//!   head blocks further admission when it cannot be placed, so large
//!   slices cannot be starved by a stream of small ones.
//! - **Preemption**: when the head cannot fit, it may evict running
//!   slices of strictly lower priority — youngest admission first,
//!   larger request index breaking ties — until it fits or no victims
//!   remain. Victims re-queue under their original index (they regain
//!   FIFO position in their class) and restart their full hold when
//!   re-admitted.

use crate::intent::{Priority, SliceIntent};
use crate::metrics::ServiceReport;
use lightwave_fabric::CommitReport;
use lightwave_scheduler::{Allocator, Pooled};
use lightwave_superpod::{Slice, SliceHandle, SliceShape, Superpod};
use lightwave_units::Nanos;
use std::collections::BTreeSet;

/// Admission-policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PolicyConfig {
    /// Arrivals beyond this queue depth are blocked; 0 = pure loss.
    pub queue_limit: usize,
    /// Whether higher-priority requests may evict lower-priority slices.
    pub preemption: bool,
}

impl Default for PolicyConfig {
    fn default() -> PolicyConfig {
        PolicyConfig {
            queue_limit: 256,
            preemption: true,
        }
    }
}

/// Why a request was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// Validation failed (malformed intent).
    Invalid,
    /// The queue was at its bound.
    QueueFull,
    /// The pod refused the compose transaction (fault injection only).
    Fabric,
}

/// What one core call did — the caller's hook for telemetry and traces.
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceEvent {
    /// The intent validated and joined the queue.
    Enqueued {
        /// Request index.
        request: u64,
        /// Its class.
        class: Priority,
        /// Sim time the request joined the queue — the scope profiler's
        /// timeline anchor (event-time stamping, DESIGN §6.7).
        at: Nanos,
    },
    /// The request left the system without running.
    Rejected {
        /// Request index.
        request: u64,
        /// Its class.
        class: Priority,
        /// Why.
        why: RejectReason,
        /// Sim time of the rejection.
        at: Nanos,
    },
    /// Admission composed the request onto the pod.
    Admitted {
        /// Request index.
        request: u64,
        /// Its class.
        class: Priority,
        /// Sim time of the admission (completions mid-advance admit at
        /// the completion instant, not the advance target — span
        /// stamping must use this, or compose spans invert).
        at: Nanos,
        /// Cubes composed.
        cubes: u32,
        /// Sim time spent queued before this admission.
        waited: Nanos,
        /// The pod handle now serving the request.
        handle: SliceHandle,
        /// The composed geometry — invariant checkers re-derive expected
        /// port mappings from it, independent of the pod's bookkeeping.
        slice: Slice,
        /// The fabric transaction.
        report: CommitReport,
    },
    /// A running slice was evicted by a higher-priority admission; the
    /// request re-queued.
    Preempted {
        /// Evicted request.
        request: u64,
        /// Its class.
        class: Priority,
        /// The admission that needed the cubes.
        victim_of: u64,
        /// Sim time of the eviction.
        at: Nanos,
        /// The handle the eviction released.
        handle: SliceHandle,
        /// The release transaction.
        report: CommitReport,
    },
    /// A slice served its full hold and released.
    Completed {
        /// Request index.
        request: u64,
        /// Its class.
        class: Priority,
        /// Sim time of the completion (its `ends_at`).
        at: Nanos,
        /// The handle the completion released.
        handle: SliceHandle,
        /// Cubes freed.
        cubes: u32,
        /// The release transaction (empty when the release was rejected
        /// under faults — see [`ServiceReport::release_failed`]).
        report: CommitReport,
    },
}

#[derive(Debug, Clone)]
struct Queued {
    index: u64,
    class: Priority,
    shape: SliceShape,
    hold: Nanos,
    enqueued_at: Nanos,
}

#[derive(Debug, Clone)]
struct Running {
    index: u64,
    class: Priority,
    shape: SliceShape,
    handle: SliceHandle,
    cubes: u32,
    serving_from: Nanos,
    ends_at: Nanos,
    hold: Nanos,
}

/// The fabric-as-a-service policy state machine (see module docs).
#[derive(Debug)]
pub struct ServiceCore {
    cfg: PolicyConfig,
    now: Nanos,
    queue: Vec<Queued>,
    running: Vec<Running>,
    /// WFQ virtual service per class: cube-nanos charged at admission.
    served_cube_nanos: [u128; 3],
    report: ServiceReport,
}

impl ServiceCore {
    /// An empty core at sim time 0.
    pub fn new(cfg: PolicyConfig) -> ServiceCore {
        let report = ServiceReport {
            cells: 1,
            ..ServiceReport::default()
        };
        ServiceCore {
            cfg,
            now: Nanos(0),
            queue: Vec::new(),
            running: Vec::new(),
            served_cube_nanos: [0; 3],
            report,
        }
    }

    /// Current sim time (last `advance_to` / `submit` stamp).
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Requests waiting for admission.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Requests currently serving: `(request, handle, cubes)`, in
    /// admission order. Invariant checkers compare this against the
    /// pod's live slices.
    pub fn running(&self) -> impl Iterator<Item = (u64, SliceHandle, u32)> + '_ {
        self.running.iter().map(|r| (r.index, r.handle, r.cubes))
    }

    /// The accumulated report.
    pub fn report(&self) -> &ServiceReport {
        &self.report
    }

    /// Checks request conservation: everything submitted is queued,
    /// running, completed, or rejected — nothing leaks. Returns the
    /// discrepancy as text when violated.
    pub fn conservation(&self) -> Result<(), String> {
        let r = &self.report;
        let terminal = r.invalid + r.compose_failed + r.blocked() + r.completed();
        let live = self.queue.len() as u64 + self.running.len() as u64;
        if r.submitted != terminal + live {
            return Err(format!(
                "submitted {} != terminal {} + queued {} + running {}",
                r.submitted,
                terminal,
                self.queue.len(),
                self.running.len()
            ));
        }
        Ok(())
    }

    /// Advances sim time to `now`, completing every slice whose hold
    /// expires on the way (in `(ends_at, request)` order) and re-running
    /// admission after each release — so admission waits are exact, not
    /// quantized to arrival times. The pod's own clock advances in step.
    pub fn advance_to(&mut self, pod: &mut Superpod, now: Nanos, out: &mut Vec<ServiceEvent>) {
        loop {
            let due = self
                .running
                .iter()
                .filter(|r| r.ends_at <= now)
                .map(|r| (r.ends_at, r.index))
                .min();
            let Some((at, index)) = due else { break };
            pod.advance(at.saturating_sub(self.now));
            self.now = at;
            let pos = self
                .running
                .iter()
                .position(|r| r.index == index)
                .expect("due entry present");
            let done = self.running.remove(pos);
            let report = match pod.release(done.handle) {
                Ok(rep) => rep,
                Err(_) => {
                    // Under injected faults a release commit can be
                    // refused; the request still completed its hold.
                    self.report.release_failed += 1;
                    CommitReport {
                        per_switch: Default::default(),
                        untouched: 0,
                        added: 0,
                        removed: 0,
                        traffic_ready_at: at,
                    }
                }
            };
            let served = done.ends_at.saturating_sub(done.serving_from);
            let work = done.cubes as u128 * served.0 as u128;
            self.report.busy_cube_nanos += work;
            self.report.goodput_cube_nanos += work;
            self.report.classes[done.class.rank()].completed += 1;
            out.push(ServiceEvent::Completed {
                request: done.index,
                class: done.class,
                at: self.now,
                handle: done.handle,
                cubes: done.cubes,
                report,
            });
            self.pump(pod, out);
        }
        pod.advance(now.saturating_sub(self.now));
        self.now = self.now.max(now);
        self.report.horizon = self.report.horizon.max(self.now);
    }

    /// Submits one intent at the current sim time (`advance_to` first):
    /// validate → enqueue → admission pass → block if the queue is still
    /// over its bound.
    pub fn submit(
        &mut self,
        pod: &mut Superpod,
        intent: &SliceIntent,
        out: &mut Vec<ServiceEvent>,
    ) {
        self.report.submitted += 1;
        let shape = match intent.validate() {
            Ok(shape) => shape,
            Err(_) => {
                self.report.invalid += 1;
                out.push(ServiceEvent::Rejected {
                    request: intent.request,
                    class: intent.class,
                    why: RejectReason::Invalid,
                    at: self.now,
                });
                return;
            }
        };
        self.report.classes[intent.class.rank()].offered += 1;
        self.queue.push(Queued {
            index: intent.request,
            class: intent.class,
            shape,
            hold: intent.hold,
            enqueued_at: self.now,
        });
        out.push(ServiceEvent::Enqueued {
            request: intent.request,
            class: intent.class,
            at: self.now,
        });
        self.pump(pod, out);
        // The bound applies to the newcomer only: preemption re-queues
        // may transiently exceed it without re-blocking old requests.
        if self.queue.len() > self.cfg.queue_limit {
            if let Some(pos) = self.queue.iter().position(|q| q.index == intent.request) {
                self.queue.remove(pos);
                self.report.classes[intent.class.rank()].blocked += 1;
                out.push(ServiceEvent::Rejected {
                    request: intent.request,
                    class: intent.class,
                    why: RejectReason::QueueFull,
                    at: self.now,
                });
            }
        }
    }

    /// Runs the system dry: no further arrivals, every running request
    /// completes and queued requests admit as capacity frees (requests
    /// that can never be placed — possible only with failed cubes under
    /// chaos — stay queued). Returns the final sim time.
    pub fn drain(&mut self, pod: &mut Superpod, out: &mut Vec<ServiceEvent>) -> Nanos {
        loop {
            self.pump(pod, out);
            let Some(next) = self.running.iter().map(|r| r.ends_at).min() else {
                break;
            };
            self.advance_to(pod, next, out);
        }
        self.now
    }

    /// The WFQ pick: among classes with queued work, least
    /// `served_cube_nanos / weight` first (cross-multiplied), ties to
    /// the higher priority. Within a class, FIFO by request index.
    fn pick(&self) -> Option<usize> {
        let mut best: Option<(Priority, u64, usize)> = None;
        for (pos, q) in self.queue.iter().enumerate() {
            let better = match best {
                None => true,
                Some((class, index, _)) if class == q.class => q.index < index,
                Some((class, _, _)) => {
                    let mine = self.served_cube_nanos[q.class.rank()] * class.weight() as u128;
                    let theirs = self.served_cube_nanos[class.rank()] * q.class.weight() as u128;
                    mine < theirs || (mine == theirs && q.class.rank() < class.rank())
                }
            };
            if better {
                best = Some((q.class, q.index, pos));
            }
        }
        best.map(|(_, _, pos)| pos)
    }

    /// Admission pass: place the fairness-chosen head, preempting lower
    /// priorities when allowed, until the head cannot be placed.
    fn pump(&mut self, pod: &mut Superpod, out: &mut Vec<ServiceEvent>) {
        loop {
            let Some(pos) = self.pick() else { return };
            let cand = self.queue[pos].clone();
            let mut idle: BTreeSet<_> = pod.idle_cubes().into_iter().collect();
            let need = cand.shape.cube_count();
            if idle.len() < need && self.cfg.preemption {
                // Evict strictly-lower-priority victims, youngest first.
                let mut victims: Vec<(Nanos, u64)> = self
                    .running
                    .iter()
                    .filter(|r| r.class.rank() > cand.class.rank())
                    .map(|r| (r.serving_from, r.index))
                    .collect();
                victims.sort_by(|a, b| b.cmp(a));
                for (_, victim_index) in victims {
                    if idle.len() >= need {
                        break;
                    }
                    let vpos = self
                        .running
                        .iter()
                        .position(|r| r.index == victim_index)
                        .expect("victim present");
                    let victim = self.running.remove(vpos);
                    let report = match pod.release(victim.handle) {
                        Ok(rep) => rep,
                        Err(_) => {
                            self.report.release_failed += 1;
                            CommitReport {
                                per_switch: Default::default(),
                                untouched: 0,
                                added: 0,
                                removed: 0,
                                traffic_ready_at: self.now,
                            }
                        }
                    };
                    let wasted = self.now.saturating_sub(victim.serving_from);
                    self.report.busy_cube_nanos += victim.cubes as u128 * wasted.0 as u128;
                    self.report.classes[victim.class.rank()].preempted += 1;
                    // The victim regains its FIFO slot (original index)
                    // and will restart its full hold.
                    self.queue.push(Queued {
                        index: victim.index,
                        class: victim.class,
                        shape: victim.shape,
                        hold: victim.hold,
                        enqueued_at: self.now,
                    });
                    out.push(ServiceEvent::Preempted {
                        request: victim.index,
                        class: victim.class,
                        victim_of: cand.index,
                        at: self.now,
                        handle: victim.handle,
                        report,
                    });
                    idle = pod.idle_cubes().into_iter().collect();
                }
            }
            let Some(cubes) = Pooled.allocate(cand.shape, &idle) else {
                return; // head-of-line blocks: no bypass (see module docs)
            };
            let slice = Slice::new(cand.shape, cubes.clone()).expect("allocator picks valid cubes");
            let geometry = slice.clone();
            match pod.compose(slice) {
                Ok((handle, report)) => {
                    let qpos = self
                        .queue
                        .iter()
                        .position(|q| q.index == cand.index)
                        .expect("candidate still queued");
                    self.queue.remove(qpos);
                    let waited = self.now.saturating_sub(cand.enqueued_at);
                    let serving_from = report.traffic_ready_at.max(self.now);
                    let stats = &mut self.report.classes[cand.class.rank()];
                    stats.admitted += 1;
                    if waited.0 == 0 {
                        stats.immediate += 1;
                    } else {
                        stats.wait_micros.record(waited.0 as f64 / 1_000.0);
                    }
                    self.served_cube_nanos[cand.class.rank()] +=
                        cubes.len() as u128 * cand.hold.0 as u128;
                    self.running.push(Running {
                        index: cand.index,
                        class: cand.class,
                        shape: cand.shape,
                        handle,
                        cubes: cubes.len() as u32,
                        serving_from,
                        ends_at: serving_from + cand.hold,
                        hold: cand.hold,
                    });
                    out.push(ServiceEvent::Admitted {
                        request: cand.index,
                        class: cand.class,
                        at: self.now,
                        cubes: cubes.len() as u32,
                        waited,
                        handle,
                        slice: geometry,
                        report,
                    });
                }
                Err(_) => {
                    // Fault injection can fail a compose (e.g. a cube
                    // died between allocation and commit). Terminal.
                    let qpos = self
                        .queue
                        .iter()
                        .position(|q| q.index == cand.index)
                        .expect("candidate still queued");
                    self.queue.remove(qpos);
                    self.report.compose_failed += 1;
                    out.push(ServiceEvent::Rejected {
                        request: cand.index,
                        class: cand.class,
                        why: RejectReason::Fabric,
                        at: self.now,
                    });
                }
            }
        }
    }
}
