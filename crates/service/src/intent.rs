//! The northbound intent API: what a tenant asks the fabric for.
//!
//! A [`SliceIntent`] is the service's only ingress type — a requested
//! logical topology plus a hold time, stamped with the arrival-stream
//! index that is its identity everywhere downstream (FIFO key, trace
//! span payload, preemption tie-breaker). Validation is the first
//! lifecycle stage: an intent that cannot name a legal
//! [`SliceShape`] is rejected before it ever reaches admission.

use lightwave_superpod::slice::ShapeError;
use lightwave_superpod::SliceShape;
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};

/// Priority class of a slice request. Declaration order is precedence
/// order: an earlier class admits first at equal weighted fair share and
/// may preempt running slices of any strictly later class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Priority {
    /// Inference fleets: latency-sensitive, small slices, short holds.
    Inference,
    /// Training jobs: throughput-oriented, large slices, long holds.
    Training,
    /// Maintenance windows: background work, lowest precedence.
    Maintenance,
}

impl Priority {
    /// All classes, highest precedence first.
    pub const ALL: [Priority; 3] = [
        Priority::Inference,
        Priority::Training,
        Priority::Maintenance,
    ];

    /// Precedence rank: 0 is highest.
    pub fn rank(self) -> usize {
        match self {
            Priority::Inference => 0,
            Priority::Training => 1,
            Priority::Maintenance => 2,
        }
    }

    /// Weighted-fairness share of the pod's cube-time.
    pub fn weight(self) -> u64 {
        match self {
            Priority::Inference => 6,
            Priority::Training => 3,
            Priority::Maintenance => 1,
        }
    }

    /// Metric-label name.
    pub fn name(self) -> &'static str {
        match self {
            Priority::Inference => "inference",
            Priority::Training => "training",
            Priority::Maintenance => "maintenance",
        }
    }
}

impl std::fmt::Display for Priority {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// A slice request as submitted northbound: raw chip dimensions (not yet
/// validated into a [`SliceShape`]) plus the service hold time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SliceIntent {
    /// Arrival-stream index — the request's identity.
    pub request: u64,
    /// Priority class.
    pub class: Priority,
    /// Requested chips per torus dimension.
    pub chips: [usize; 3],
    /// How long the slice serves once running.
    pub hold: Nanos,
}

/// Why an intent failed validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntentError {
    /// The requested dimensions do not name a legal slice shape.
    Shape(ShapeError),
    /// A zero hold time serves nothing.
    ZeroHold,
}

impl std::fmt::Display for IntentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IntentError::Shape(e) => write!(f, "bad shape: {e:?}"),
            IntentError::ZeroHold => write!(f, "zero hold time"),
        }
    }
}

impl std::error::Error for IntentError {}

impl SliceIntent {
    /// Validates the intent into a composable shape — the first stage of
    /// the request lifecycle.
    pub fn validate(&self) -> Result<SliceShape, IntentError> {
        if self.hold == Nanos(0) {
            return Err(IntentError::ZeroHold);
        }
        SliceShape::new(self.chips[0], self.chips[1], self.chips[2]).map_err(IntentError::Shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_are_ordered_by_precedence() {
        assert!(Priority::Inference < Priority::Training);
        assert!(Priority::Training < Priority::Maintenance);
        for (rank, class) in Priority::ALL.iter().enumerate() {
            assert_eq!(class.rank(), rank);
        }
    }

    #[test]
    fn validation_rejects_bad_dimensions_and_zero_hold() {
        let good = SliceIntent {
            request: 0,
            class: Priority::Training,
            chips: [8, 4, 4],
            hold: Nanos::from_millis(100),
        };
        assert_eq!(good.validate().unwrap().cube_count(), 2);

        let bad_dim = SliceIntent {
            chips: [6, 4, 4],
            ..good.clone()
        };
        assert!(matches!(bad_dim.validate(), Err(IntentError::Shape(_))));

        let zero = SliceIntent {
            hold: Nanos(0),
            ..good
        };
        assert_eq!(zero.validate(), Err(IntentError::ZeroHold));
    }
}
