//! The deterministic open-loop arrival stream.
//!
//! Every arrival is a **pure function of `(seed, index)`**: request `i`
//! seeds its own `StdRng` with `splitmix(seed ^ SERVICE_STREAM, i)` and
//! draws class, shape, hold and inter-arrival gap from it. No state
//! crosses requests, so generating indices `[0, n)` in any shard
//! partition equals the monolithic stream — the split-anywhere property
//! the sharded year-run and its proptest rely on.
//!
//! `SERVICE_STREAM` XORs the caller's seed before splitmix expansion —
//! the same stream-offset discipline `generate_degradation` uses — so
//! service arrivals never collide with the chaos fault stream or the
//! pool's own shard streams for the same seed.

use crate::intent::{Priority, SliceIntent};
use lightwave_par::splitmix;
use lightwave_units::Nanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stream offset separating service arrivals from every other consumer
/// of the same seed (see module docs).
pub const SERVICE_STREAM: u64 = 0x5EB1_1CE0_0A5C_11E5;

/// Workload mix the stream draws from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mix {
    /// The production blend: inference fleets (small, short, frequent),
    /// training jobs (large, long), maintenance windows (rare), and
    /// ~0.1% malformed intents that must die at validation.
    Production,
    /// Single-cube inference only, every intent valid — the M/G/64/64
    /// configuration whose blocking probability Erlang B predicts
    /// exactly (EXPERIMENTS.md `faas1`).
    SingleCube,
}

/// One generated arrival: the intent plus its inter-arrival gap in
/// unit-mean microseconds (the engine scales gaps by its configured mean
/// to set offered load; integer scaling keeps the stream deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arrival {
    /// Gap to the *previous* arrival, drawn Exp(1) in microseconds
    /// (mean 1_000_000).
    pub gap_unit_micros: u64,
    /// The request.
    pub intent: SliceIntent,
}

/// The canonical chips-per-dimension for a cube count, shared with the
/// chaos generator's shape menu.
pub fn chips_for_cubes(cubes: usize) -> [usize; 3] {
    match cubes {
        1 => [4, 4, 4],
        2 => [8, 4, 4],
        4 => [8, 8, 4],
        _ => [8, 8, 8],
    }
}

/// Exp(1) in integer microseconds via inverse CDF (never 0, so time
/// always advances between arrivals).
fn exp_unit_micros(rng: &mut StdRng) -> u64 {
    let u: f64 = rng.random_range(0.0f64..1.0);
    let micros = (-(1.0 - u).ln() * 1_000_000.0).ceil();
    (micros as u64).max(1)
}

/// Generates arrival `index` of `seed`'s stream — pure per index.
pub fn arrival(seed: u64, index: u64, mix: Mix) -> Arrival {
    let mut rng = StdRng::seed_from_u64(splitmix(seed ^ SERVICE_STREAM, index));
    let (class, mut chips, hold) = match mix {
        Mix::SingleCube => {
            let hold = Nanos::from_millis(rng.random_range(50..=150));
            (Priority::Inference, chips_for_cubes(1), hold)
        }
        Mix::Production => {
            let class = match rng.random_range(0..100u32) {
                0..=54 => Priority::Inference,
                55..=84 => Priority::Training,
                _ => Priority::Maintenance,
            };
            let (cubes, hold_ms) = match class {
                Priority::Inference => ([1, 1, 1, 2][rng.random_range(0..4usize)], 20..=120u64),
                Priority::Training => ([2, 4, 4, 8][rng.random_range(0..4usize)], 150..=1500),
                Priority::Maintenance => ([1, 2, 4][rng.random_range(0..3usize)], 80..=400),
            };
            let hold = Nanos::from_millis(rng.random_range(hold_ms));
            (class, chips_for_cubes(cubes), hold)
        }
    };
    let gap_unit_micros = exp_unit_micros(&mut rng);
    if mix == Mix::Production && rng.random_range(0..1024u32) == 0 {
        // A malformed intent: 6 chips is not a whole number of cubes.
        // Validation must catch it — this is the reject path's fuel.
        chips[0] = 6;
    }
    Arrival {
        gap_unit_micros,
        intent: SliceIntent {
            request: index,
            class,
            chips,
            hold,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_are_pure_per_index() {
        for i in [0u64, 1, 7, 1_000_003] {
            assert_eq!(
                arrival(42, i, Mix::Production),
                arrival(42, i, Mix::Production)
            );
        }
        assert_ne!(
            arrival(42, 5, Mix::Production),
            arrival(43, 5, Mix::Production),
            "seed must matter"
        );
    }

    #[test]
    fn production_mix_draws_every_class_and_some_invalid() {
        let mut seen = [0u64; 3];
        let mut invalid = 0u64;
        for i in 0..4096 {
            let a = arrival(7, i, Mix::Production);
            seen[a.intent.class.rank()] += 1;
            if a.intent.validate().is_err() {
                invalid += 1;
            }
            assert!(a.gap_unit_micros >= 1, "time always advances");
        }
        assert!(seen.iter().all(|&c| c > 0), "all classes present: {seen:?}");
        assert!(invalid > 0, "the reject path gets fuel");
        assert!(invalid < 40, "but only ~0.1%: {invalid}");
    }

    #[test]
    fn single_cube_mix_is_all_valid_inference() {
        for i in 0..512 {
            let a = arrival(9, i, Mix::SingleCube);
            assert_eq!(a.intent.class, Priority::Inference);
            assert_eq!(a.intent.validate().unwrap().cube_count(), 1);
        }
    }

    #[test]
    fn gaps_have_roughly_unit_mean() {
        let n = 8192u64;
        let total: u64 = (0..n)
            .map(|i| arrival(11, i, Mix::SingleCube).gap_unit_micros)
            .sum();
        let mean = total as f64 / n as f64;
        assert!(
            (700_000.0..1_300_000.0).contains(&mean),
            "Exp(1) micros mean ≈ 1e6, got {mean}"
        );
    }
}
