//! Mergeable queueing metrics: the service's deterministic report.
//!
//! Every field is an integer counter, a mergeable log2 histogram, or a
//! sum of sim-time spans — so reports from independent cells merge
//! associatively in shard order and the merged result is byte-identical
//! at any `LIGHTWAVE_THREADS` (wall-clock never enters). The blocking /
//! utilization / goodput definitions follow the wavelength-allocation
//! simulator pattern: offered = everything submitted, blocked = turned
//! away at capacity, carried = admitted and completed.

use crate::intent::Priority;
use lightwave_telemetry::{HistogramSnapshot, LogHistogram};
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};

/// Per-priority-class tallies.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ClassStats {
    /// Valid intents submitted in this class.
    pub offered: u64,
    /// Requests admitted (counting re-admissions after preemption).
    pub admitted: u64,
    /// Requests turned away because the queue was at its bound.
    pub blocked: u64,
    /// Preemption evictions suffered (the request re-queues, so this can
    /// exceed per-request counts).
    pub preempted: u64,
    /// Requests that ran to completion.
    pub completed: u64,
    /// Admissions with zero sim-time wait (the common uncontended case;
    /// the log histogram can't bucket zero, so it is counted here and
    /// [`ServiceReport::wait_quantile_micros`] folds it back in).
    pub immediate: u64,
    /// *Positive* admission wait times, in microseconds of sim time.
    pub wait_micros: LogHistogram,
}

impl ClassStats {
    /// Folds another cell's tallies in (integer-exact).
    pub fn merge(&mut self, other: &ClassStats) {
        self.offered += other.offered;
        self.admitted += other.admitted;
        self.blocked += other.blocked;
        self.preempted += other.preempted;
        self.completed += other.completed;
        self.immediate += other.immediate;
        self.wait_micros.merge(&other.wait_micros);
    }
}

/// The deterministic outcome of a service run (one cell, or any merge of
/// cells). Contains **no wall-clock observations** — see
/// [`RunStats`](lightwave_par::RunStats) for those.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServiceReport {
    /// Total intents submitted (valid or not).
    pub submitted: u64,
    /// Intents rejected at validation.
    pub invalid: u64,
    /// Admitted requests the pod refused to compose (possible only under
    /// fault injection; terminal).
    pub compose_failed: u64,
    /// Completed slices whose release transaction was rejected (possible
    /// only under fault injection; the cubes stay owned by the pod).
    pub release_failed: u64,
    /// Per-class tallies, indexed by [`Priority::rank`].
    pub classes: [ClassStats; 3],
    /// Cube-nanoseconds of occupancy (admission to release or eviction).
    pub busy_cube_nanos: u128,
    /// Cube-nanoseconds of *completed* service — occupancy that was not
    /// wasted by a later eviction.
    pub goodput_cube_nanos: u128,
    /// Sim-time served, summed over cells.
    pub horizon: Nanos,
    /// Independent cells merged into this report.
    pub cells: u64,
}

/// Cubes per pod, for utilization math.
pub const POD_CUBES: u128 = lightwave_superpod::POD_CUBES as u128;

impl ServiceReport {
    /// Folds another cell's report in. Associative and
    /// order-independent in value; merge in shard order anyway so
    /// byte-level comparisons stay trivial.
    pub fn merge(&mut self, other: &ServiceReport) {
        self.submitted += other.submitted;
        self.invalid += other.invalid;
        self.compose_failed += other.compose_failed;
        self.release_failed += other.release_failed;
        for (mine, theirs) in self.classes.iter_mut().zip(&other.classes) {
            mine.merge(theirs);
        }
        self.busy_cube_nanos += other.busy_cube_nanos;
        self.goodput_cube_nanos += other.goodput_cube_nanos;
        self.horizon += other.horizon;
        self.cells += other.cells;
    }

    /// Valid intents offered across classes.
    pub fn offered(&self) -> u64 {
        self.classes.iter().map(|c| c.offered).sum()
    }

    /// Requests blocked at the queue bound, across classes.
    pub fn blocked(&self) -> u64 {
        self.classes.iter().map(|c| c.blocked).sum()
    }

    /// Completions across classes.
    pub fn completed(&self) -> u64 {
        self.classes.iter().map(|c| c.completed).sum()
    }

    /// Preemption evictions across classes.
    pub fn preempted(&self) -> u64 {
        self.classes.iter().map(|c| c.preempted).sum()
    }

    /// Blocking probability: blocked / valid offered.
    pub fn blocking_probability(&self) -> f64 {
        if self.offered() == 0 {
            return 0.0;
        }
        self.blocked() as f64 / self.offered() as f64
    }

    /// Mean cube occupancy over the served horizon, `[0, 1]`.
    pub fn utilization(&self) -> f64 {
        if self.horizon.0 == 0 {
            return 0.0;
        }
        self.busy_cube_nanos as f64 / (POD_CUBES * self.horizon.0 as u128) as f64
    }

    /// Fraction of occupancy that completed (1.0 = no work wasted to
    /// preemption).
    pub fn goodput_fraction(&self) -> f64 {
        if self.busy_cube_nanos == 0 {
            return 1.0;
        }
        self.goodput_cube_nanos as f64 / self.busy_cube_nanos as f64
    }

    /// Admission-wait quantile in microseconds, merged across classes.
    /// Zero-wait admissions are part of the distribution (as exact 0.0),
    /// so at low load every quantile is 0.
    pub fn wait_quantile_micros(&self, q: f64) -> Option<f64> {
        let mut all = LogHistogram::new();
        let mut immediate = 0;
        for c in &self.classes {
            immediate += c.immediate;
            all.merge(&c.wait_micros);
        }
        quantile_with_immediate(immediate, &all, q)
    }

    /// Serializable form for artifacts and byte-level comparison.
    pub fn snapshot(&self) -> ServiceSnapshot {
        ServiceSnapshot {
            schema: "lightwave/service-report/v1".to_string(),
            submitted: self.submitted,
            invalid: self.invalid,
            compose_failed: self.compose_failed,
            release_failed: self.release_failed,
            classes: Priority::ALL
                .iter()
                .map(|&p| {
                    let c = &self.classes[p.rank()];
                    ClassSnapshot {
                        class: p.name().to_string(),
                        offered: c.offered,
                        admitted: c.admitted,
                        blocked: c.blocked,
                        preempted: c.preempted,
                        completed: c.completed,
                        immediate: c.immediate,
                        wait_micros: c.wait_micros.snapshot(),
                    }
                })
                .collect(),
            busy_cube_nanos: self.busy_cube_nanos,
            goodput_cube_nanos: self.goodput_cube_nanos,
            horizon_nanos: self.horizon.0,
            cells: self.cells,
        }
    }

    /// A deterministic human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "service: {} submitted over {} cell(s), {:.3}s served\n",
            self.submitted,
            self.cells,
            self.horizon.as_secs_f64()
        ));
        out.push_str(&format!(
            "  blocking {:.4}%  utilization {:.1}%  goodput {:.1}%  invalid {}  compose-failed {}\n",
            self.blocking_probability() * 100.0,
            self.utilization() * 100.0,
            self.goodput_fraction() * 100.0,
            self.invalid,
            self.compose_failed,
        ));
        for &p in &Priority::ALL {
            let c = &self.classes[p.rank()];
            let p50 = quantile_with_immediate(c.immediate, &c.wait_micros, 0.50).unwrap_or(0.0);
            let p99 = quantile_with_immediate(c.immediate, &c.wait_micros, 0.99).unwrap_or(0.0);
            out.push_str(&format!(
                "  {:<12} offered {:<8} admitted {:<8} blocked {:<6} preempted {:<5} done {:<8} wait p50/p99 {:.0}/{:.0} us\n",
                p.name(),
                c.offered,
                c.admitted,
                c.blocked,
                c.preempted,
                c.completed,
                p50,
                p99,
            ));
        }
        out
    }
}

/// Serializable [`ServiceReport`] (histograms as sparse snapshots).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceSnapshot {
    /// Schema tag: `lightwave/service-report/v1`.
    pub schema: String,
    /// See [`ServiceReport::submitted`].
    pub submitted: u64,
    /// See [`ServiceReport::invalid`].
    pub invalid: u64,
    /// See [`ServiceReport::compose_failed`].
    pub compose_failed: u64,
    /// See [`ServiceReport::release_failed`].
    pub release_failed: u64,
    /// Per-class tallies, highest precedence first.
    pub classes: Vec<ClassSnapshot>,
    /// See [`ServiceReport::busy_cube_nanos`].
    pub busy_cube_nanos: u128,
    /// See [`ServiceReport::goodput_cube_nanos`].
    pub goodput_cube_nanos: u128,
    /// See [`ServiceReport::horizon`].
    pub horizon_nanos: u64,
    /// See [`ServiceReport::cells`].
    pub cells: u64,
}

/// One class of a [`ServiceSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClassSnapshot {
    /// Class name.
    pub class: String,
    /// See [`ClassStats::offered`].
    pub offered: u64,
    /// See [`ClassStats::admitted`].
    pub admitted: u64,
    /// See [`ClassStats::blocked`].
    pub blocked: u64,
    /// See [`ClassStats::preempted`].
    pub preempted: u64,
    /// See [`ClassStats::completed`].
    pub completed: u64,
    /// See [`ClassStats::immediate`].
    pub immediate: u64,
    /// Positive-wait histogram snapshot (microseconds).
    pub wait_micros: HistogramSnapshot,
}

/// Quantile of the union of `immediate` exact-zero waits and the
/// positive waits in `hist`. Zeros sort first, so when the target rank
/// falls inside them the quantile is exactly 0.0; otherwise the rank is
/// shifted into the histogram.
fn quantile_with_immediate(immediate: u64, hist: &LogHistogram, q: f64) -> Option<f64> {
    let total = immediate + hist.count();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    let target = ((q * total as f64).ceil() as u64).max(1);
    if target <= immediate {
        return Some(0.0);
    }
    hist.quantile((target - immediate) as f64 / hist.count() as f64)
}

/// Erlang B blocking probability for `erlangs` of offered load on
/// `servers` circuits, via the numerically stable recurrence
/// `B(E, m) = E·B(E, m-1) / (m + E·B(E, m-1))`. The `faas1` experiment
/// checks the single-cube mix against this at low load.
pub fn erlang_b(erlangs: f64, servers: u32) -> f64 {
    let mut b = 1.0;
    for m in 1..=servers {
        b = erlangs * b / (m as f64 + erlangs * b);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_integer_exact_and_commutative_in_value() {
        let mut a = ServiceReport {
            submitted: 10,
            busy_cube_nanos: 1_000,
            horizon: Nanos(500),
            cells: 1,
            ..ServiceReport::default()
        };
        a.classes[0].offered = 9;
        a.classes[0].wait_micros.record(125.0);
        let mut b = ServiceReport {
            submitted: 4,
            cells: 1,
            ..ServiceReport::default()
        };
        b.classes[0].offered = 4;
        b.classes[0].wait_micros.record(3_000.0);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.submitted, 14);
        assert_eq!(ab.classes[0].wait_micros, ba.classes[0].wait_micros);
        assert_eq!(ab.cells, 2);
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let mut r = ServiceReport {
            submitted: 3,
            cells: 1,
            ..ServiceReport::default()
        };
        r.classes[1].offered = 3;
        r.classes[1].wait_micros.record(42.0);
        let snap = r.snapshot();
        let json = serde_json::to_string(&snap).expect("serializes");
        let back: ServiceSnapshot = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, snap);
        assert_eq!(back.classes.len(), 3);
        assert_eq!(back.classes[1].class, "training");
    }

    #[test]
    fn erlang_b_matches_known_values() {
        // B(E=1, m=1) = 1/2; B(E=2, m=2) = 2/5.
        assert!((erlang_b(1.0, 1) - 0.5).abs() < 1e-12);
        assert!((erlang_b(2.0, 2) - 0.4).abs() < 1e-12);
        // Monotone in load, vanishing at low load on 64 servers.
        assert!(erlang_b(4.0, 64) < 1e-9);
        assert!(erlang_b(90.0, 64) > erlang_b(60.0, 64));
    }

    #[test]
    fn zero_waits_are_part_of_the_quantile() {
        let mut r = ServiceReport::default();
        // 98 instant admissions, 2 slow ones: p50 is exactly 0, p99 is
        // in the slow tail.
        r.classes[0].immediate = 98;
        r.classes[0].wait_micros.record(1_000.0);
        r.classes[0].wait_micros.record(2_000.0);
        assert_eq!(r.wait_quantile_micros(0.50), Some(0.0));
        assert!(r.wait_quantile_micros(0.99).unwrap() >= 1_000.0);
        // All-immediate: every quantile is zero, not `None`.
        let mut s = ServiceReport::default();
        s.classes[2].immediate = 7;
        assert_eq!(s.wait_quantile_micros(0.99), Some(0.0));
    }

    #[test]
    fn ratios_handle_empty_reports() {
        let r = ServiceReport::default();
        assert_eq!(r.blocking_probability(), 0.0);
        assert_eq!(r.utilization(), 0.0);
        assert_eq!(r.goodput_fraction(), 1.0);
        assert!(r.wait_quantile_micros(0.99).is_none());
    }
}
