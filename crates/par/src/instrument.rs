//! Renders a sharded engine run on the trace timeline's *virtual* worker
//! lanes.
//!
//! The engine's determinism contract says thread count never changes an
//! answer — and the trace is part of the answer. So shards do **not**
//! render on the OS threads that happened to execute them: each shard
//! lands on lane `shard.index % TRACE_LANES` with a synthetic sim-time
//! cursor per lane, all of it a pure function of the shard plan. A run at
//! `LIGHTWAVE_THREADS=1` and at `=4` therefore exports byte-identical
//! timelines (DESIGN.md §6.2).

use crate::{plan_shards, Pool, RunStats, Shard};
use lightwave_trace::{Lane, SpanId, SpanKind, Tracer};
use lightwave_units::Nanos;
use rand::rngs::StdRng;

/// Number of virtual worker lanes shards render across. Fixed — never the
/// runtime thread count, which would break trace byte-identity.
pub const TRACE_LANES: u32 = 8;

/// The virtual lane for a shard: a pure function of its index.
pub fn shard_lane(shard_index: u64) -> Lane {
    Lane::Worker((shard_index % TRACE_LANES as u64) as u32)
}

/// Renders a shard plan as [`SpanKind::WorkerShard`] spans on the virtual
/// worker lanes, starting at sim-time `base` and costing `per_trial` per
/// trial. Each lane keeps its own cursor (shards on one lane are
/// back-to-back and linked follows-from, like a worker draining a queue);
/// lanes advance independently. Returns the span ids in shard order.
pub fn trace_shards(
    tracer: &mut Tracer,
    parent: Option<SpanId>,
    base: Nanos,
    per_trial: Nanos,
    shards: &[Shard],
) -> Vec<SpanId> {
    let mut cursors = [base; TRACE_LANES as usize];
    let mut last_on_lane: [Option<SpanId>; TRACE_LANES as usize] = [None; TRACE_LANES as usize];
    let mut ids = Vec::with_capacity(shards.len());
    for shard in shards {
        let lane_idx = (shard.index % TRACE_LANES as u64) as usize;
        let start = cursors[lane_idx];
        let end = start + per_trial * shard.len;
        let id = tracer.span(
            shard_lane(shard.index),
            parent,
            start,
            end,
            SpanKind::WorkerShard {
                shard: shard.index,
                trials: shard.len,
            },
        );
        if let Some(prev) = last_on_lane[lane_idx] {
            tracer.link_follows(id, prev);
        }
        last_on_lane[lane_idx] = Some(id);
        cursors[lane_idx] = end;
        ids.push(id);
    }
    ids
}

/// [`Pool::run_shards`] plus the virtual-lane rendering of
/// [`trace_shards`]: the same computation, with one [`SpanKind::WorkerShard`]
/// span per shard. The rendering depends only on `(n, shard_size, base,
/// per_trial)` — never on the pool's thread count — so the trace is
/// byte-identical at any parallelism.
#[allow(clippy::too_many_arguments)]
pub fn run_shards_traced<T, F, M>(
    pool: &Pool,
    tracer: &mut Tracer,
    parent: Option<SpanId>,
    base: Nanos,
    per_trial: Nanos,
    seed: u64,
    n: u64,
    shard_size: u64,
    run_shard: F,
    merge: M,
) -> (T, RunStats)
where
    T: Send,
    F: Fn(&mut StdRng, Shard) -> T + Sync,
    M: FnMut(T, T) -> T,
{
    let out = pool.run_shards(seed, n, shard_size, run_shard, merge);
    trace_shards(tracer, parent, base, per_trial, &plan_shards(n, shard_size));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::splitmix;
    use lightwave_trace::derive_span_id;

    #[test]
    fn span_id_derivation_matches_the_engine_shard_derivation() {
        // `lightwave-trace` duplicates the SplitMix64 derivation because
        // it sits below this crate in the workspace DAG; pin the two
        // implementations equal so they can never drift apart.
        for seed in [0u64, 1, 42, u64::MAX] {
            for idx in [0u64, 1, 7, 63, 1 << 40] {
                assert_eq!(
                    derive_span_id(seed, idx).0,
                    splitmix(seed, idx),
                    "seed={seed} idx={idx}"
                );
            }
        }
    }

    #[test]
    fn shards_render_on_virtual_lanes_independent_of_thread_count() {
        let render = |threads: usize| {
            let mut tracer = Tracer::new(5);
            let pool = Pool::new(threads);
            let (sum, _) = run_shards_traced(
                &pool,
                &mut tracer,
                None,
                Nanos(1_000),
                Nanos(10),
                3,
                1_000,
                64,
                |_rng, shard| shard.len,
                |a, b| a + b,
            );
            (sum, tracer.spans().to_vec())
        };
        let (sum1, spans1) = render(1);
        let (sum4, spans4) = render(4);
        assert_eq!(sum1, 1_000);
        assert_eq!(sum1, sum4);
        assert_eq!(spans1, spans4, "trace is thread-count invariant");
        // 1000/64 ⇒ 15 shards across 8 lanes: lanes 0..6 get two shards.
        assert_eq!(spans1.len(), 15);
        let on_lane0: Vec<_> = spans1
            .iter()
            .filter(|s| s.lane == Lane::Worker(0))
            .collect();
        assert_eq!(on_lane0.len(), 2);
        assert_eq!(
            on_lane0[1].start, on_lane0[0].end,
            "lane cursor advances back-to-back"
        );
        assert_eq!(
            on_lane0[1].follows,
            Some(on_lane0[0].id),
            "queue-drain chain linked"
        );
    }
}
