//! # lightwave-par
//!
//! A small, dependency-free deterministic parallel execution engine for the
//! workspace's evaluation-scale loops: symbol-level Monte-Carlo BER runs
//! (Fig. 11a), pool-availability Monte Carlo (Fig. 15), and fleet-wide
//! transceiver/OCS censuses (Fig. 13). No rayon, no crossbeam — a scoped
//! `std::thread` worker pool over a shared atomic work index.
//!
//! ## The determinism contract
//!
//! Parallelism must never change an answer. The engine guarantees that the
//! same seed yields **bit-identical** output at any thread count — including
//! `f64` accumulations — by construction:
//!
//! 1. Work is split into **fixed-size shards** by [`plan_shards`], a pure
//!    function of `(n, shard_size)`. Thread count never influences the
//!    decomposition; the last shard carries the remainder when `n` is not
//!    divisible by `shard_size`, so no trial is ever dropped.
//! 2. Each shard gets its own generator, derived as
//!    `StdRng::seed_from_u64(splitmix(seed, shard.index))` — independent
//!    streams, no draw ever crosses a shard boundary.
//! 3. Shard results are buffered per shard and **merged in shard-index
//!    order** on the calling thread after all workers finish. Floating-point
//!    reduction is therefore always the same left fold over the same
//!    per-shard values in the same order, no matter which worker computed
//!    which shard or in what order they completed.
//!
//! The contract is *thread-count* invariance at a fixed `shard_size`, not
//! shard-size invariance: changing `shard_size` re-partitions the RNG
//! streams and regroups the f64 fold, which is a different (equally valid,
//! equally deterministic) estimate. Integer merges (error counts, trial
//! tallies) are associative and therefore also shard-size invariant — the
//! property tests pin both facts.
//!
//! ## Thread count
//!
//! [`Pool::from_env`] honours the `LIGHTWAVE_THREADS` environment variable
//! and falls back to [`std::thread::available_parallelism`]. Setting
//! `LIGHTWAVE_THREADS=1` reproduces any parallel run exactly.
//!
//! ```
//! use lightwave_par::{par_trials, Pool};
//!
//! // Estimate π: 4 · P(point in quarter circle). Same answer at any
//! // thread count.
//! let hits = |pool: &Pool| {
//!     pool.run_trials(42, 100_000, 4_096, |rng, _trial| {
//!         use rand::RngExt;
//!         let (x, y): (f64, f64) = (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
//!         u64::from(x * x + y * y <= 1.0)
//!     }, |a, b| a + b).0
//! };
//! assert_eq!(hits(&Pool::new(1)), hits(&Pool::new(4)));
//! let pi = 4.0 * hits(&Pool::from_env()) as f64 / 100_000.0;
//! assert!((pi - std::f64::consts::PI).abs() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod instrument;

use lightwave_telemetry::MetricsRegistry;
use lightwave_units::Nanos;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Environment variable controlling the worker count ([`Pool::from_env`]).
pub const THREADS_ENV: &str = "LIGHTWAVE_THREADS";

/// SplitMix64 finalizer: a bijective avalanche mix of 64 bits.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the seed for shard `shard_index` of a run seeded with `seed`.
///
/// Two SplitMix64 rounds over `(seed, index)` so that neighbouring shard
/// indices (and neighbouring user seeds) land in well-separated regions of
/// the generator's state space. The shard generator is then
/// `StdRng::seed_from_u64(splitmix(seed, shard_index))`, which itself runs
/// SplitMix64 expansion — three avalanche layers between `seed + 1` shards
/// and `seed` shards.
pub fn splitmix(seed: u64, shard_index: u64) -> u64 {
    splitmix64(seed ^ splitmix64(shard_index))
}

/// One contiguous slice of a sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Shard {
    /// Shard number (0-based); also the RNG derivation index.
    pub index: u64,
    /// Global index of the shard's first trial.
    pub start: u64,
    /// Trials in this shard (the last shard carries the remainder).
    pub len: u64,
}

/// Splits `n` trials into shards of `shard_size`, the last shard carrying
/// the remainder (`n % shard_size` extra trials) so every trial runs
/// exactly once and no estimate is silently biased by a dropped tail.
///
/// A pure function of `(n, shard_size)` — thread count never changes the
/// decomposition, which is the root of the determinism contract.
///
/// # Panics
/// Panics if `n == 0` or `shard_size == 0`.
pub fn plan_shards(n: u64, shard_size: u64) -> Vec<Shard> {
    assert!(n > 0, "cannot shard an empty run");
    assert!(shard_size > 0, "shard size must be positive");
    let count = (n / shard_size).max(1);
    (0..count)
        .map(|i| {
            let start = i * shard_size;
            let len = if i + 1 == count {
                n - start
            } else {
                shard_size
            };
            Shard {
                index: i,
                start,
                len,
            }
        })
        .collect()
}

/// Parses a thread-count override (the `LIGHTWAVE_THREADS` value): a
/// positive integer wins; absent, empty, zero, or unparsable falls back to
/// `default`.
pub fn parse_threads(raw: Option<&str>, default: usize) -> usize {
    match raw.map(str::trim) {
        Some(s) if !s.is_empty() => match s.parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default,
        },
        _ => default,
    }
}

/// Wall-clock observations from one engine run — fuel for telemetry.
///
/// The *results* of a run are deterministic; these timings are not (they
/// measure this machine, this run). Keep them out of golden exports and
/// byte-identical comparisons; [`RunStats::record_into`] is for live
/// dashboards.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Shards executed (= planned: the pool never drops work).
    pub shards: u64,
    /// Worker threads used (≤ pool size; never more than shards).
    pub workers: usize,
    /// Wall-clock duration of the run, in nanoseconds.
    pub wall_nanos: u64,
    /// Per-worker busy time (inside shard closures), in nanoseconds.
    pub busy_nanos: Vec<u64>,
}

impl RunStats {
    /// Fraction of worker wall-time spent inside shard closures, in
    /// `[0, 1]`. Near 1.0 means the pool scales; low values mean shards
    /// are too small for the dispatch overhead or workers starved.
    pub fn utilization(&self) -> f64 {
        let busy: u64 = self.busy_nanos.iter().sum();
        let capacity = self.wall_nanos.saturating_mul(self.workers as u64);
        if capacity == 0 {
            return 0.0;
        }
        (busy as f64 / capacity as f64).min(1.0)
    }

    /// Records the run into a [`MetricsRegistry`]: the
    /// `par_shards_completed` counter and the `par_workers` /
    /// `par_worker_utilization` gauges, stamped at sim-time `at`.
    pub fn record_into(&self, metrics: &mut MetricsRegistry, at: Nanos) {
        let shards = metrics.counter("par_shards_completed", &[]);
        metrics.inc(shards, at, self.shards);
        let workers = metrics.gauge("par_workers", &[]);
        metrics.set(workers, at, self.workers as f64);
        let util = metrics.gauge("par_worker_utilization", &[]);
        metrics.set(util, at, self.utilization());
    }
}

/// A deterministic scoped-thread worker pool.
///
/// Holds no threads between runs: each `run_*` call opens a
/// [`std::thread::scope`], spawns up to `threads` workers that pull shard
/// indices from a shared atomic counter, and joins them before returning.
/// All result merging happens on the calling thread, in shard-index order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool {
            threads: threads.max(1),
        }
    }

    /// A pool sized from `LIGHTWAVE_THREADS`, falling back to the
    /// machine's available parallelism.
    pub fn from_env() -> Pool {
        let default = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let raw = std::env::var(THREADS_ENV).ok();
        Pool::new(parse_threads(raw.as_deref(), default))
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `n` trials split into `shard_size` shards, one closure call
    /// **per shard**: `run_shard(rng, shard)` owns the shard's whole trial
    /// range, so per-run state (e.g. a wandering interferer phase) can
    /// persist across trials within a shard. Shard results merge in
    /// shard-index order.
    ///
    /// This is the engine's core primitive; [`Pool::run_trials`] is the
    /// per-trial convenience over it.
    pub fn run_shards<T, F, M>(
        &self,
        seed: u64,
        n: u64,
        shard_size: u64,
        run_shard: F,
        mut merge: M,
    ) -> (T, RunStats)
    where
        T: Send,
        F: Fn(&mut StdRng, Shard) -> T + Sync,
        M: FnMut(T, T) -> T,
    {
        let shards = plan_shards(n, shard_size);
        let (slots, stats) = self.execute(seed, &shards, &run_shard);
        let mut results = slots.into_iter().map(|r| r.expect("every shard ran"));
        let mut acc = results.next().expect("at least one shard");
        for r in results {
            acc = merge(acc, r);
        }
        (acc, stats)
    }

    /// Runs `n` trials with one closure call **per trial**:
    /// `per_trial(rng, global_trial_index)`. Within a shard, trial results
    /// fold left-to-right through `merge`; shards then merge in index
    /// order. `merge` must therefore be shareable across workers (`Sync`).
    pub fn run_trials<T, F, M>(
        &self,
        seed: u64,
        n: u64,
        shard_size: u64,
        per_trial: F,
        merge: M,
    ) -> (T, RunStats)
    where
        T: Send,
        F: Fn(&mut StdRng, u64) -> T + Sync,
        M: Fn(T, T) -> T + Sync,
    {
        let merge_ref = &merge;
        self.run_shards(
            seed,
            n,
            shard_size,
            |rng, shard| {
                let mut acc = per_trial(rng, shard.start);
                for trial in shard.start + 1..shard.start + shard.len {
                    acc = merge_ref(acc, per_trial(rng, trial));
                }
                acc
            },
            merge_ref,
        )
    }

    /// Maps every item through `map(item, index)` on the pool and reduces
    /// the results **strictly in item order** — the reduction grouping is
    /// identical to a serial left fold regardless of thread count or
    /// internal chunking. Returns `None` for an empty slice.
    pub fn map_reduce<I, T, F, M>(
        &self,
        items: &[I],
        map: F,
        mut reduce: M,
    ) -> (Option<T>, RunStats)
    where
        I: Sync,
        T: Send,
        F: Fn(&I, usize) -> T + Sync,
        M: FnMut(T, T) -> T,
    {
        if items.is_empty() {
            return (
                None,
                RunStats {
                    shards: 0,
                    workers: 0,
                    wall_nanos: 0,
                    busy_nanos: Vec::new(),
                },
            );
        }
        // Chunk for dispatch locality only; results are stored per item, so
        // the reduction below never sees chunk boundaries.
        let chunk = (items.len() / (self.threads * 8)).max(1);
        let shards = plan_shards(items.len() as u64, chunk as u64);
        let run = |_rng: &mut StdRng, shard: Shard| {
            (shard.start..shard.start + shard.len)
                .map(|i| map(&items[i as usize], i as usize))
                .collect::<Vec<T>>()
        };
        let (slots, stats) = self.execute(0, &shards, &run);
        let mut per_item = slots.into_iter().flat_map(|r| r.expect("every chunk ran"));
        let mut acc = per_item.next().expect("non-empty input");
        for r in per_item {
            acc = reduce(acc, r);
        }
        (Some(acc), stats)
    }

    /// Executes planned shards on the pool: workers pull shard indices from
    /// a shared atomic counter; each shard gets its derived generator (RNG-
    /// free map work simply never draws). Returns one slot per shard, in
    /// shard-index order, plus timing stats.
    fn execute<T, F>(&self, seed: u64, shards: &[Shard], run: &F) -> (Vec<Option<T>>, RunStats)
    where
        T: Send,
        F: Fn(&mut StdRng, Shard) -> T + Sync,
    {
        let workers = self.threads.min(shards.len());
        let started = Instant::now();
        let slots: Vec<Mutex<Option<T>>> = shards.iter().map(|_| Mutex::new(None)).collect();
        let busy: Vec<AtomicU64> = (0..workers).map(|_| AtomicU64::new(0)).collect();
        let next = AtomicUsize::new(0);

        let work = |worker: usize| loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            let Some(&shard) = shards.get(i) else { break };
            let mut rng = StdRng::seed_from_u64(splitmix(seed, shard.index));
            let t0 = Instant::now();
            let result = run(&mut rng, shard);
            busy[worker].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            *slots[i].lock().expect("slot lock never poisoned") = Some(result);
        };

        if workers <= 1 {
            work(0);
        } else {
            std::thread::scope(|s| {
                for w in 0..workers {
                    s.spawn(move || work(w));
                }
            });
        }

        let stats = RunStats {
            shards: shards.len() as u64,
            workers,
            wall_nanos: started.elapsed().as_nanos() as u64,
            busy_nanos: busy.into_iter().map(AtomicU64::into_inner).collect(),
        };
        let results = slots
            .into_iter()
            .map(|m| m.into_inner().expect("slot lock never poisoned"))
            .collect();
        (results, stats)
    }
}

impl Default for Pool {
    fn default() -> Pool {
        Pool::from_env()
    }
}

/// Runs `n` Monte-Carlo trials on the [`Pool::from_env`] pool — the
/// function named by the engine's contract:
/// `par_trials(seed, n, shard_size, per_trial, merge)`.
///
/// Work splits into `shard_size` shards (last carries the remainder), each
/// shard draws from `StdRng::seed_from_u64(splitmix(seed, shard_index))`,
/// and results merge in shard-index order — same seed, same answer, any
/// thread count.
pub fn par_trials<T, F, M>(seed: u64, n: u64, shard_size: u64, per_trial: F, merge: M) -> T
where
    T: Send,
    F: Fn(&mut StdRng, u64) -> T + Sync,
    M: Fn(T, T) -> T + Sync,
{
    Pool::from_env()
        .run_trials(seed, n, shard_size, per_trial, merge)
        .0
}

/// Maps `items` on the [`Pool::from_env`] pool and reduces strictly in item
/// order (`None` for empty input). RNG-free counterpart of [`par_trials`]
/// for fleet censuses and parameter sweeps.
pub fn par_map_reduce<I, T, F, M>(items: &[I], map: F, reduce: M) -> Option<T>
where
    I: Sync,
    T: Send,
    F: Fn(&I, usize) -> T + Sync,
    M: FnMut(T, T) -> T,
{
    Pool::from_env().map_reduce(items, map, reduce).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn shard_plan_covers_every_trial_with_remainder_in_last() {
        let shards = plan_shards(10_007, 1_000);
        assert_eq!(shards.len(), 10);
        assert_eq!(
            shards[0],
            Shard {
                index: 0,
                start: 0,
                len: 1_000
            }
        );
        assert_eq!(
            *shards.last().expect("non-empty"),
            Shard {
                index: 9,
                start: 9_000,
                len: 1_007
            }
        );
        let total: u64 = shards.iter().map(|s| s.len).sum();
        assert_eq!(total, 10_007);
    }

    #[test]
    fn short_runs_get_one_shard() {
        let shards = plan_shards(7, 1_000);
        assert_eq!(
            shards,
            vec![Shard {
                index: 0,
                start: 0,
                len: 7
            }]
        );
    }

    #[test]
    #[should_panic(expected = "empty run")]
    fn zero_trials_rejected() {
        let _ = plan_shards(0, 10);
    }

    #[test]
    fn thread_parsing() {
        assert_eq!(parse_threads(Some("4"), 8), 4);
        assert_eq!(parse_threads(Some(" 2 "), 8), 2);
        assert_eq!(parse_threads(Some("0"), 8), 8);
        assert_eq!(parse_threads(Some("many"), 8), 8);
        assert_eq!(parse_threads(Some(""), 8), 8);
        assert_eq!(parse_threads(None, 8), 8);
    }

    #[test]
    fn splitmix_separates_neighbouring_shards() {
        let a = splitmix(42, 0);
        let b = splitmix(42, 1);
        let c = splitmix(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        // Avalanche: neighbouring indices differ in many bits.
        assert!((a ^ b).count_ones() > 16);
    }

    #[test]
    fn trial_counts_exact_for_odd_n() {
        // Regression for the remainder bias: every trial runs exactly once.
        for (n, size) in [(10_007u64, 1_000u64), (5, 8), (64, 64), (65, 64), (129, 64)] {
            let ran = par_trials(1, n, size, |_rng, _i| 1u64, |a, b| a + b);
            assert_eq!(ran, n, "n={n} shard_size={size}");
        }
    }

    #[test]
    fn every_global_index_visits_once_in_order() {
        let (indices, _) = Pool::new(3).run_trials(
            9,
            1_000,
            64,
            |_rng, i| vec![i],
            |mut a, mut b| {
                a.append(&mut b);
                a
            },
        );
        assert_eq!(indices, (0..1_000).collect::<Vec<u64>>());
    }

    #[test]
    fn f64_accumulation_bit_identical_across_thread_counts() {
        let run = |threads: usize| {
            Pool::new(threads)
                .run_trials(
                    7,
                    50_000,
                    512,
                    |rng, _| rng.random_range(0.0f64..1.0),
                    |a, b| a + b,
                )
                .0
        };
        let serial = run(1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(
                serial.to_bits(),
                run(threads).to_bits(),
                "{threads} threads"
            );
        }
    }

    #[test]
    fn map_reduce_preserves_item_order_and_serial_grouping() {
        let items: Vec<f64> = (0..997).map(|i| 1.0 / (i as f64 + 1.0)).collect();
        let serial = items
            .iter()
            .copied()
            .reduce(|a, b| a + b)
            .expect("non-empty");
        for threads in [1, 2, 4] {
            let (sum, stats) = Pool::new(threads).map_reduce(&items, |&x, _| x, |a, b| a + b);
            assert_eq!(sum.expect("non-empty").to_bits(), serial.to_bits());
            assert!(stats.shards > 0);
        }
    }

    #[test]
    fn map_reduce_empty_is_none() {
        let (sum, stats) = Pool::new(4).map_reduce::<u64, u64, _, _>(&[], |&x, _| x, |a, b| a + b);
        assert_eq!(sum, None);
        assert_eq!(stats.shards, 0);
    }

    #[test]
    fn stats_count_shards_and_workers() {
        let (_, stats) = Pool::new(4).run_trials(3, 1_000, 100, |_rng, _| 1u64, |a, b| a + b);
        assert_eq!(stats.shards, 10);
        assert!(stats.workers <= 4 && stats.workers >= 1);
        assert_eq!(stats.busy_nanos.len(), stats.workers);
        let u = stats.utilization();
        assert!((0.0..=1.0).contains(&u), "utilization {u}");
    }

    #[test]
    fn workers_never_exceed_shards() {
        let (_, stats) = Pool::new(16).run_trials(10, 10, 100, |_rng, _| 1u64, |a, b| a + b);
        assert_eq!(stats.shards, 1);
        assert_eq!(stats.workers, 1);
    }

    #[test]
    fn stats_record_into_metrics() {
        let stats = RunStats {
            shards: 12,
            workers: 4,
            wall_nanos: 1_000,
            busy_nanos: vec![900, 800, 850, 950],
        };
        let mut m = MetricsRegistry::new();
        stats.record_into(&mut m, Nanos::from_millis(5));
        let shards = m.counter("par_shards_completed", &[]);
        assert_eq!(m.counter_value(shards), 12);
        let util = m.gauge("par_worker_utilization", &[]);
        assert!((m.gauge_value(util) - 0.875).abs() < 1e-12);
    }
}
