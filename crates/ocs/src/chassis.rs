//! Chassis, field-replaceable units, power, and hot-swap semantics.
//!
//! §3.2.2 and Fig. 7: the Palomar back chassis carries the CPU, FPGA, and
//! high-voltage (HV) mirror-driver boards; power supplies and fans are
//! redundant and hot-swappable *without* losing mirror state, while HV
//! driver boards are field-replaceable but drop the mirror state of the
//! ports they drive ("the HV drivers for the mirrors was one of the largest
//! reliability challenges for the switch"). §4.1.1: maximum system power is
//! 108 W; field availability typically exceeds 99.98%.

use lightwave_units::{Availability, Nanos};
use serde::{Deserialize, Serialize};

/// Maximum chassis power draw, watts (§4.1.1).
pub const MAX_POWER_W: f64 = 108.0;

/// Field availability the design typically achieves (§4.1.1).
pub const TYPICAL_AVAILABILITY: f64 = 0.9998;

/// Kinds of field-replaceable units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FruKind {
    /// Redundant power supply (2 installed, 1 required).
    PowerSupply,
    /// Redundant fan module (N+1).
    Fan,
    /// High-voltage mirror driver board; swapping drops mirror state for
    /// its port group.
    HvDriver,
    /// Control CPU board.
    Cpu,
    /// Mirror-control FPGA board.
    Fpga,
}

impl FruKind {
    /// Whether this FRU can be swapped with the data plane staying up.
    pub fn hot_swappable(self) -> bool {
        matches!(self, FruKind::PowerSupply | FruKind::Fan)
    }

    /// Whether a swap of this FRU drops mirror (circuit) state.
    pub fn swap_drops_mirror_state(self) -> bool {
        matches!(self, FruKind::HvDriver | FruKind::Fpga)
    }
}

/// Health of one FRU slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FruHealth {
    /// Operating normally.
    Healthy,
    /// Failed; awaiting replacement.
    Failed,
}

/// One FRU slot in the chassis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FruSlot {
    /// What is installed here.
    pub kind: FruKind,
    /// Current health.
    pub health: FruHealth,
}

/// Number of ports driven per HV driver board.
pub const PORTS_PER_HV_DRIVER: usize = 34; // 136 / 4 boards per die side

/// The chassis model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Chassis {
    slots: Vec<FruSlot>,
}

/// What a FRU swap did to the switch.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SwapEffect {
    /// Ports whose circuits must be re-established (mirror state lost).
    pub disturbed_ports: Vec<u16>,
    /// Whether the whole data plane blinked (non-hot-swappable FRU).
    pub full_outage: bool,
}

impl Default for Chassis {
    fn default() -> Self {
        Chassis::new()
    }
}

impl Chassis {
    /// A fully-populated healthy chassis: 2 PSUs, 4 fans, 8 HV drivers
    /// (4 per die), 1 CPU, 1 FPGA.
    pub fn new() -> Chassis {
        let mut slots = Vec::new();
        for _ in 0..2 {
            slots.push(FruSlot {
                kind: FruKind::PowerSupply,
                health: FruHealth::Healthy,
            });
        }
        for _ in 0..4 {
            slots.push(FruSlot {
                kind: FruKind::Fan,
                health: FruHealth::Healthy,
            });
        }
        for _ in 0..8 {
            slots.push(FruSlot {
                kind: FruKind::HvDriver,
                health: FruHealth::Healthy,
            });
        }
        slots.push(FruSlot {
            kind: FruKind::Cpu,
            health: FruHealth::Healthy,
        });
        slots.push(FruSlot {
            kind: FruKind::Fpga,
            health: FruHealth::Healthy,
        });
        Chassis { slots }
    }

    /// All slots.
    pub fn slots(&self) -> &[FruSlot] {
        &self.slots
    }

    /// Whether the switch is operational: at least one healthy PSU, at
    /// least 3 healthy fans, CPU and FPGA healthy. (Individual HV-driver
    /// failures degrade only their port group.)
    pub fn is_operational(&self) -> bool {
        let healthy = |k: FruKind| {
            self.slots
                .iter()
                .filter(|s| s.kind == k && s.health == FruHealth::Healthy)
                .count()
        };
        healthy(FruKind::PowerSupply) >= 1
            && healthy(FruKind::Fan) >= 3
            && healthy(FruKind::Cpu) >= 1
            && healthy(FruKind::Fpga) >= 1
    }

    /// Ports currently degraded by failed HV drivers.
    pub fn degraded_ports(&self) -> Vec<u16> {
        let mut out = Vec::new();
        let mut hv_index = 0usize;
        for s in &self.slots {
            if s.kind == FruKind::HvDriver {
                if s.health == FruHealth::Failed {
                    let base = (hv_index % 4) * PORTS_PER_HV_DRIVER;
                    out.extend((base..base + PORTS_PER_HV_DRIVER).map(|p| p as u16));
                }
                hv_index += 1;
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Fails the `idx`-th slot.
    ///
    /// # Panics
    /// Panics on an out-of-range slot index.
    pub fn fail_slot(&mut self, idx: usize) {
        self.slots[idx].health = FruHealth::Failed;
    }

    /// Replaces the FRU in `idx` (field service), returning what the swap
    /// disturbed.
    pub fn replace_slot(&mut self, idx: usize) -> SwapEffect {
        let kind = self.slots[idx].kind;
        self.slots[idx].health = FruHealth::Healthy;
        let disturbed_ports = if kind.swap_drops_mirror_state() {
            match kind {
                FruKind::Fpga => (0..136u16).collect(),
                FruKind::HvDriver => {
                    let hv_index = self.slots[..idx]
                        .iter()
                        .filter(|s| s.kind == FruKind::HvDriver)
                        .count();
                    let base = (hv_index % 4) * PORTS_PER_HV_DRIVER;
                    (base..base + PORTS_PER_HV_DRIVER)
                        .map(|p| p as u16)
                        .collect()
                }
                _ => Vec::new(),
            }
        } else {
            Vec::new()
        };
        SwapEffect {
            disturbed_ports,
            full_outage: !kind.hot_swappable() && kind == FruKind::Cpu,
        }
    }

    /// Power draw estimate: base electronics plus per-active-circuit HV
    /// bias, capped at [`MAX_POWER_W`].
    pub fn power_draw_w(&self, active_circuits: usize) -> f64 {
        let base = 62.0;
        let per_circuit = 0.33;
        (base + per_circuit * active_circuits as f64).min(MAX_POWER_W)
    }

    /// Steady-state chassis availability from per-FRU MTBF/MTTR, composing
    /// redundancy: PSUs parallel, fans 3-of-4, CPU/FPGA in series.
    ///
    /// `mttr` is the field replacement time (hot-swappable FRUs repair
    /// without downtime and only matter through double-failure windows).
    pub fn availability(&self, mtbf_hours: f64, mttr_hours: f64) -> Availability {
        assert!(mtbf_hours > 0.0 && mttr_hours > 0.0);
        let unit = Availability::new(mtbf_hours / (mtbf_hours + mttr_hours));
        let psu_pair = unit.parallel(unit);
        // 3-of-4 fans: 1 - P(≥2 down).
        let q = unit.unavailability();
        let fans = Availability::new(
            1.0 - (6.0 * q * q * (1.0 - q) * (1.0 - q) + 4.0 * q * q * q * (1.0 - q) + q.powi(4)),
        );
        // CPU, FPGA, and the optical core electronics in series.
        Availability::series([psu_pair, fans, unit, unit])
    }

    /// Approximate repair-visit duration for planning models.
    pub fn nominal_mttr() -> Nanos {
        Nanos::from_secs_f64(4.0 * 3600.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn healthy_chassis_is_operational() {
        assert!(Chassis::new().is_operational());
    }

    #[test]
    fn single_psu_or_fan_failure_is_survivable() {
        let mut c = Chassis::new();
        c.fail_slot(0); // a PSU
        assert!(c.is_operational(), "redundant PSU covers");
        c.fail_slot(2); // a fan
        assert!(c.is_operational(), "N+1 fans cover");
    }

    #[test]
    fn double_psu_failure_downs_the_switch() {
        let mut c = Chassis::new();
        c.fail_slot(0);
        c.fail_slot(1);
        assert!(!c.is_operational());
    }

    #[test]
    fn hv_driver_failure_degrades_only_its_ports() {
        let mut c = Chassis::new();
        // Slots: 0-1 PSU, 2-5 fans, 6-13 HV drivers.
        c.fail_slot(6);
        assert!(c.is_operational(), "switch stays up");
        let degraded = c.degraded_ports();
        assert_eq!(degraded.len(), PORTS_PER_HV_DRIVER);
        assert_eq!(degraded[0], 0);
    }

    #[test]
    fn hv_swap_disturbs_its_port_group_only() {
        let mut c = Chassis::new();
        c.fail_slot(7); // second HV driver
        let effect = c.replace_slot(7);
        assert_eq!(effect.disturbed_ports.len(), PORTS_PER_HV_DRIVER);
        assert_eq!(effect.disturbed_ports[0], PORTS_PER_HV_DRIVER as u16);
        assert!(!effect.full_outage);
        assert!(c.degraded_ports().is_empty(), "repair clears degradation");
    }

    #[test]
    fn psu_swap_disturbs_nothing() {
        let mut c = Chassis::new();
        c.fail_slot(1);
        let effect = c.replace_slot(1);
        assert!(effect.disturbed_ports.is_empty());
        assert!(!effect.full_outage);
    }

    #[test]
    fn power_stays_within_rating() {
        let c = Chassis::new();
        assert!(c.power_draw_w(0) >= 50.0);
        assert!(c.power_draw_w(136) <= MAX_POWER_W);
        // An EPS of the same capacity burns kilowatts; the OCS burns ~100 W.
        assert!(c.power_draw_w(136) < 150.0);
    }

    #[test]
    fn availability_matches_field_experience() {
        // MTBF 8 years per FRU, 4 h repair → chassis ≥ 99.98% (§4.1.1).
        let c = Chassis::new();
        let a = c.availability(8.0 * 8760.0, 4.0);
        assert!(
            a.prob() >= TYPICAL_AVAILABILITY,
            "chassis availability {a} below the paper's 99.98% field figure"
        );
    }

    #[test]
    fn fru_semantics() {
        assert!(FruKind::PowerSupply.hot_swappable());
        assert!(!FruKind::HvDriver.hot_swappable());
        assert!(FruKind::HvDriver.swap_drops_mirror_state());
        assert!(!FruKind::Fan.swap_drops_mirror_state());
    }
}
