//! Camera-based closed-loop mirror alignment.
//!
//! §3.2.2: the "novel design choice that enabled us to realize a low-cost,
//! manufacturable OCS was the use of two cameras, one per MEMS array, for
//! closed-loop alignment". An 850 nm monitor beam illuminates the mirrors;
//! the camera images them through dichroic splitters, and image processing
//! servoes each mirror's tilt toward minimum loss — replacing per-mirror
//! photodetector hardware with software.
//!
//! The loop model: after an actuation step the mirror's pointing error is
//! large; each camera frame measures the error (with sensor noise) and a
//! proportional controller removes a fixed fraction. The loop converges
//! geometrically to a noise floor. This yields both the *switching time*
//! (actuation settle + frames-to-converge × frame time) and the residual
//! pointing error that [`crate::loss`] converts into excess insertion loss.

use lightwave_units::Nanos;
use rand::rngs::StdRng;
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Parameters of the camera servo loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AlignmentLoop {
    /// Camera frame period.
    pub frame_time: Nanos,
    /// Fraction of the measured error removed per frame (loop gain), (0,1).
    pub gain: f64,
    /// RMS measurement noise re-injected per frame, in normalized pointing
    /// units (1.0 = the full post-actuation error).
    pub noise_floor: f64,
    /// Mechanical settling time of the mirror after the open-loop step.
    pub actuation_settle: Nanos,
    /// Give-up bound on frames (declares the mirror failed).
    pub max_frames: u32,
}

impl Default for AlignmentLoop {
    fn default() -> Self {
        AlignmentLoop {
            // 500 fps machine-vision camera.
            frame_time: Nanos::from_millis(2),
            gain: 0.65,
            noise_floor: 2e-3,
            // Open-loop MEMS step + ring-down.
            actuation_settle: Nanos::from_millis(5),
            max_frames: 64,
        }
    }
}

/// Result of one alignment convergence.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Convergence {
    /// Camera frames consumed.
    pub frames: u32,
    /// Residual pointing error (normalized units).
    pub residual_error: f64,
    /// Total time from actuation command to "aligned" (settle + frames).
    pub switching_time: Nanos,
    /// Whether the loop converged within the frame budget.
    pub converged: bool,
}

impl AlignmentLoop {
    /// Runs the servo from a post-actuation pointing error of 1.0
    /// (normalized) down to `tolerance`.
    pub fn converge(&self, tolerance: f64, rng: &mut StdRng) -> Convergence {
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "tolerance must be in (0,1), got {tolerance}"
        );
        assert!(
            self.gain > 0.0 && self.gain < 1.0,
            "loop gain must be in (0,1)"
        );
        let noise = Normal::new(0.0, self.noise_floor).expect("valid sigma");
        let mut err: f64 = 1.0;
        let mut frames = 0u32;
        while err.abs() > tolerance && frames < self.max_frames {
            // Proportional correction on a noisy measurement.
            let measured = err + noise.sample(rng);
            err -= self.gain * measured;
            frames += 1;
        }
        Convergence {
            frames,
            residual_error: err.abs(),
            switching_time: self.actuation_settle + self.frame_time * frames as u64,
            converged: err.abs() <= tolerance,
        }
    }

    /// Expected switching time for a typical convergence (deterministic
    /// estimate used by planners): settle + frames for a pure geometric
    /// decay to `tolerance`.
    pub fn nominal_switching_time(&self, tolerance: f64) -> Nanos {
        assert!(tolerance > 0.0 && tolerance < 1.0);
        let per_frame_factor = 1.0 - self.gain;
        let frames = (tolerance.ln() / per_frame_factor.ln()).ceil().max(1.0) as u64;
        self.actuation_settle + self.frame_time * frames
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn converges_to_tolerance() {
        let mut rng = StdRng::seed_from_u64(1);
        let loop_ = AlignmentLoop::default();
        let c = loop_.converge(0.01, &mut rng);
        assert!(c.converged);
        assert!(c.residual_error <= 0.01);
        assert!(c.frames >= 3, "cannot converge instantly from full error");
    }

    #[test]
    fn switching_time_is_milliseconds_class() {
        // Table C.1: MEMS OCS switching time is "milliseconds". Our loop
        // should land in the 5–50 ms window, not µs or seconds.
        let mut rng = StdRng::seed_from_u64(2);
        let c = AlignmentLoop::default().converge(0.01, &mut rng);
        let ms = c.switching_time.as_millis_f64();
        assert!(
            (5.0..50.0).contains(&ms),
            "switching time {ms} ms out of MEMS class"
        );
    }

    #[test]
    fn tighter_tolerance_needs_more_frames() {
        let mut rng_a = StdRng::seed_from_u64(3);
        let mut rng_b = StdRng::seed_from_u64(3);
        let l = AlignmentLoop::default();
        let coarse = l.converge(0.1, &mut rng_a);
        let fine = l.converge(0.005, &mut rng_b);
        assert!(fine.frames > coarse.frames);
    }

    #[test]
    fn noise_floor_limits_achievable_tolerance() {
        // Demanding tolerance at the measurement-noise level should fail
        // to converge (or barely), exercising the give-up path.
        let l = AlignmentLoop {
            noise_floor: 0.2,
            max_frames: 16,
            ..AlignmentLoop::default()
        };
        let mut rng = StdRng::seed_from_u64(4);
        let mut failures = 0;
        for _ in 0..20 {
            if !l.converge(0.01, &mut rng).converged {
                failures += 1;
            }
        }
        assert!(
            failures > 0,
            "noise at 20× tolerance must sometimes defeat the loop"
        );
    }

    #[test]
    fn nominal_estimate_brackets_stochastic_runs() {
        let l = AlignmentLoop::default();
        let nominal = l.nominal_switching_time(0.01);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..50 {
            let c = l.converge(0.01, &mut rng);
            let ratio = c.switching_time.as_secs_f64() / nominal.as_secs_f64();
            assert!(
                (0.5..2.0).contains(&ratio),
                "stochastic run {} vs nominal {}",
                c.switching_time,
                nominal
            );
        }
    }

    #[test]
    #[should_panic(expected = "tolerance must be in (0,1)")]
    fn rejects_silly_tolerance() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = AlignmentLoop::default().converge(0.0, &mut rng);
    }
}
