//! Bridges one switch's telemetry surface into the fleet observability
//! subsystem (`lightwave-telemetry`).
//!
//! The split mirrors the paper's architecture: each Palomar exposes raw
//! counters and alarms (§3.2.2, [`crate::telemetry`]), and a fleet
//! control plane scrapes them into aggregated metrics, correlated
//! incidents, and availability SLOs. [`OcsInstruments`] is the per-switch
//! scraper: registered once, then recorded through copy handles on the
//! hot path.

use crate::palomar::{OcsHealth, PalomarOcs, ReconfigReport};
use crate::telemetry::{Alarm, AlarmCode};
use lightwave_telemetry::rollup::{PortPath, RollupTree};
use lightwave_telemetry::{
    AlarmCause, AlarmRecord, CounterId, EventKind, FleetHealth, FleetTelemetry, GaugeId,
    HistogramId, RateWindow,
};
use lightwave_trace::{reconfig_phase_spans, Lane, SpanId, SpanKind, Tracer};
use lightwave_units::{Db, Nanos};

/// Fleet-metric handles for one switch, labeled `{switch=<id>}`.
#[derive(Debug, Clone)]
pub struct OcsInstruments {
    switch: u32,
    reconfigs: CounterId,
    circuits_preserved: CounterId,
    alarms_forwarded: CounterId,
    relocks: CounterId,
    switch_duration_ms: HistogramId,
    loss_drift_db: HistogramId,
    circuits: GaugeId,
    spares_north: GaugeId,
    spares_south: GaugeId,
    power_w: GaugeId,
    reconfig_rate: RateWindow,
    relock_rate: RateWindow,
    /// How many per-switch alarms have already been forwarded (the
    /// switch's alarm log is append-only, so this is a scrape cursor).
    cursor: usize,
    /// Alignment events already mirrored into the fleet relock counter.
    relocks_seen: u64,
    /// Drift-log entries already forwarded to the health layer.
    drift_cursor: usize,
}

impl OcsInstruments {
    /// Registers the per-switch instruments in `sink`'s metrics registry.
    pub fn register(sink: &mut FleetTelemetry, switch: u32) -> OcsInstruments {
        let id = switch.to_string();
        let labels: &[(&str, &str)] = &[("switch", &id)];
        let m = &mut sink.metrics;
        let reconfigs = m.counter("ocs_reconfigs_total", labels);
        let relocks = m.counter("ocs_relocks_total", labels);
        let rate_window = Nanos::from_secs_f64(1.0);
        OcsInstruments {
            switch,
            reconfigs,
            circuits_preserved: m.counter("ocs_circuits_preserved_total", labels),
            alarms_forwarded: m.counter("ocs_alarms_forwarded_total", labels),
            relocks,
            switch_duration_ms: m.histogram("ocs_switch_duration_ms", labels),
            loss_drift_db: m.histogram("ocs_loss_drift_db", labels),
            circuits: m.gauge("ocs_circuits", labels),
            spares_north: m.gauge("ocs_mirror_spares_north", labels),
            spares_south: m.gauge("ocs_mirror_spares_south", labels),
            power_w: m.gauge("ocs_power_w", labels),
            reconfig_rate: m.rate_window(reconfigs, "ocs_reconfigs_per_sec", labels, rate_window),
            relock_rate: m.rate_window(relocks, "ocs_relocks_per_sec", labels, rate_window),
            cursor: 0,
            relocks_seen: 0,
            drift_cursor: 0,
        }
    }

    /// Records a completed bulk reconfiguration: switch duration
    /// histogram, delta counters, and a [`EventKind::Reconfig`] event.
    ///
    /// `started` is the simulation time the reconfiguration was issued;
    /// the duration is `report.ready_at - started` (zero when the delta
    /// added nothing).
    pub fn record_reconfig(
        &mut self,
        sink: &mut FleetTelemetry,
        started: Nanos,
        report: &ReconfigReport,
    ) {
        let duration = report.ready_at.saturating_sub(started);
        sink.metrics.inc(self.reconfigs, started, 1);
        sink.metrics
            .inc(self.circuits_preserved, started, report.untouched as u64);
        if !report.added.is_empty() {
            sink.metrics
                .observe(self.switch_duration_ms, started, duration.as_millis_f64());
        }
        sink.events.emit(
            started,
            "ocs",
            EventKind::Reconfig {
                switch: self.switch,
                added: report.added.len() as u32,
                removed: report.removed.len() as u32,
                untouched: report.untouched as u32,
                duration,
            },
        );
    }

    /// [`Self::record_reconfig`] plus a causal span on the switch's
    /// timeline lane: one [`SpanKind::ReconfigCommit`] covering
    /// `started..report.ready_at`, with the four reconfiguration phases
    /// (drain → mirror-settle → camera-verify → undrain) as child spans
    /// when the delta actually moved mirrors. Returns the commit span so
    /// callers can hang further causality off it.
    pub fn record_reconfig_traced(
        &mut self,
        sink: &mut FleetTelemetry,
        tracer: &mut Tracer,
        parent: Option<SpanId>,
        started: Nanos,
        report: &ReconfigReport,
    ) -> SpanId {
        self.record_reconfig(sink, started, report);
        let span = tracer.span(
            Lane::Switch(self.switch),
            parent,
            started,
            report.ready_at.max(started),
            SpanKind::ReconfigCommit {
                switch: self.switch,
                added: report.added.len() as u32,
                removed: report.removed.len() as u32,
                untouched: report.untouched as u32,
            },
        );
        if !report.added.is_empty() {
            reconfig_phase_spans(tracer, span, self.switch, started, report.ready_at);
        }
        span
    }

    /// Records a health snapshot: circuit/spare/power gauges plus the
    /// up/down observation feeding the availability SLO for `ocs-<id>`.
    pub fn record_health(&mut self, sink: &mut FleetTelemetry, at: Nanos, health: &OcsHealth) {
        sink.metrics.set(self.circuits, at, health.circuits as f64);
        sink.metrics
            .set(self.spares_north, at, health.mirror_spares.0 as f64);
        sink.metrics
            .set(self.spares_south, at, health.mirror_spares.1 as f64);
        sink.metrics.set(self.power_w, at, health.power_w);
        sink.slo
            .observe(at, &format!("ocs-{}", self.switch), health.operational);
    }

    /// Records the proactive-maintenance drift census: every port whose
    /// serving mirror drifted past `threshold` feeds the loss-drift
    /// histogram.
    pub fn record_drift(&mut self, sink: &mut FleetTelemetry, at: Nanos, ocs: &PalomarOcs) {
        for (_, _, drift) in ocs.drift_report(Db(0.0)) {
            sink.metrics.observe(self.loss_drift_db, at, drift.db());
        }
    }

    /// Mirrors the switch's alignment (relock) tally into the fleet
    /// `ocs_relocks_total` counter as an exact integer delta, then rolls
    /// the per-second rate windows. The published rates are a pure
    /// function of the counter history and the scrape stamps, so they
    /// replay bit-identically (DESIGN.md §6.4).
    pub fn record_rates(&mut self, sink: &mut FleetTelemetry, at: Nanos, ocs: &PalomarOcs) {
        let total = ocs.telemetry().counters.alignments;
        let delta = total.saturating_sub(self.relocks_seen);
        if delta > 0 {
            sink.metrics.inc(self.relocks, at, delta);
        }
        self.relocks_seen = total;
        self.relock_rate.observe(&mut sink.metrics, at);
        self.reconfig_rate.observe(&mut sink.metrics, at);
    }

    /// Forwards drift-log entries appended since the last scrape into the
    /// fleet-health detector bank (CUSUM + EWMA per port). Returns how
    /// many entries were forwarded — the log is append-only, so each
    /// scrape costs `O(changed)`.
    pub fn forward_drift(
        &mut self,
        sink: &mut FleetTelemetry,
        health: &mut FleetHealth,
        ocs: &PalomarOcs,
    ) -> usize {
        let log = ocs.drift_log();
        let fresh = &log[self.drift_cursor.min(log.len())..];
        let n = fresh.len();
        for change in fresh {
            health.ingest_drift(
                sink,
                change.at,
                self.switch,
                change.north,
                change.port,
                change.drift_db,
            );
        }
        self.drift_cursor = log.len();
        n
    }

    /// Forwards any alarms the switch raised since the last scrape into
    /// the fleet aggregator (debounce + blast-radius correlation happen
    /// there). Returns how many alarms were forwarded.
    pub fn forward_alarms(&mut self, sink: &mut FleetTelemetry, ocs: &PalomarOcs) -> usize {
        let alarms = ocs.telemetry().alarms();
        let fresh = &alarms[self.cursor.min(alarms.len())..];
        let n = fresh.len();
        for alarm in fresh {
            let rec = alarm_record(self.switch, alarm);
            sink.metrics.inc(self.alarms_forwarded, alarm.at, 1);
            sink.ingest_alarm(rec);
        }
        self.cursor = alarms.len();
        n
    }

    /// Folds a completed reconfiguration into the campus rollup tree:
    /// circuits moved plus (when mirrors actually moved) the switch
    /// duration in ms, attributed to this switch's leaf under `pod`.
    pub fn roll_reconfig(
        &self,
        tree: &mut RollupTree,
        pod: u32,
        started: Nanos,
        report: &ReconfigReport,
    ) {
        let path = PortPath::new(pod, self.switch, 0);
        let moves = (report.added.len() + report.removed.len()) as f64;
        tree.record("ocs_reconfig_moves", path, started, moves);
        if !report.added.is_empty() {
            let duration = report.ready_at.saturating_sub(started);
            tree.record(
                "ocs_switch_duration_ms",
                path,
                started,
                duration.as_millis_f64(),
            );
        }
    }

    /// Folds the proactive-maintenance drift census into per-port
    /// campus leaves: one sample per drifted port, north ports at their
    /// id and south ports offset by `1 << 16` (port ids are `u16`).
    pub fn roll_drift(&self, tree: &mut RollupTree, pod: u32, at: Nanos, ocs: &PalomarOcs) {
        let m = tree.metric("ocs_loss_drift_db");
        for (north, port, drift) in ocs.drift_report(Db(0.0)) {
            let leaf = port as u32 | ((!north as u32) << 16);
            tree.ingest(m, PortPath::new(pod, self.switch, leaf), at, drift.db());
        }
    }

    /// One full scrape: health gauges, drift census, relock/reconfig
    /// rates, alarm forwarding.
    pub fn scrape(&mut self, sink: &mut FleetTelemetry, at: Nanos, ocs: &PalomarOcs) {
        let health = ocs.health();
        self.record_health(sink, at, &health);
        self.record_drift(sink, at, ocs);
        self.record_rates(sink, at, ocs);
        self.forward_alarms(sink, ocs);
    }
}

/// Converts a per-switch [`Alarm`] into the fleet aggregator's record.
///
/// The only lossy step is [`AlarmCode::HighLoss`]'s `f64` reading, which
/// is quantized to milli-dB so the fleet cause is hashable/orderable.
pub fn alarm_record(switch: u32, alarm: &Alarm) -> AlarmRecord {
    let cause = match alarm.code {
        AlarmCode::MirrorFailed {
            north_die,
            port,
            spare_used,
        } => AlarmCause::MirrorFailed {
            north_die,
            port,
            spare_used,
        },
        AlarmCode::AlignmentTimeout { north } => AlarmCause::AlignmentTimeout { north },
        AlarmCode::FruFailed { slot } => AlarmCause::FruFailed { slot: slot as u32 },
        AlarmCode::ChassisDown => AlarmCause::ChassisDown,
        AlarmCode::HighLoss {
            north,
            south,
            loss_db,
        } => AlarmCause::HighLoss {
            north,
            south,
            loss_mdb: (loss_db * 1000.0).round() as i32,
        },
    };
    AlarmRecord {
        at: alarm.at,
        severity: alarm.severity,
        switch,
        cause,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossbar::PortMapping;
    use crate::telemetry::Severity;

    #[test]
    fn reconfig_feeds_metrics_and_events() {
        let mut sink = FleetTelemetry::new();
        let mut ocs = PalomarOcs::new(3, 42);
        let mut inst = OcsInstruments::register(&mut sink, 3);
        let target = PortMapping::from_pairs([(0, 10), (1, 11)]).unwrap();
        let started = ocs.now();
        let report = ocs.apply_mapping(&target).unwrap();
        inst.record_reconfig(&mut sink, started, &report);
        assert_eq!(
            sink.metrics.counter_value(inst.reconfigs),
            1,
            "one reconfig recorded"
        );
        let h = sink.metrics.histogram_value(inst.switch_duration_ms);
        assert_eq!(h.count(), 1);
        assert!(h.max().unwrap() > 1.0, "ms-class switch duration");
        assert!(matches!(
            sink.events.recent().last().unwrap().kind,
            EventKind::Reconfig {
                switch: 3,
                added: 2,
                ..
            }
        ));
    }

    #[test]
    fn alarm_forwarding_is_incremental() {
        let mut sink = FleetTelemetry::new();
        let mut ocs = PalomarOcs::new(0, 4);
        let mut inst = OcsInstruments::register(&mut sink, 0);
        ocs.fail_mirror(true, 9);
        assert_eq!(inst.forward_alarms(&mut sink, &ocs), 1);
        assert_eq!(inst.forward_alarms(&mut sink, &ocs), 0, "cursor advanced");
        ocs.fail_mirror(true, 9);
        assert_eq!(inst.forward_alarms(&mut sink, &ocs), 1);
        assert_eq!(sink.alarms.ingested(), 2);
    }

    #[test]
    fn high_loss_quantizes_to_milli_db() {
        let alarm = Alarm {
            at: Nanos(5),
            severity: Severity::Warning,
            code: AlarmCode::HighLoss {
                north: 1,
                south: 2,
                loss_db: 2.1234,
            },
        };
        let rec = alarm_record(7, &alarm);
        assert_eq!(
            rec.cause,
            AlarmCause::HighLoss {
                north: 1,
                south: 2,
                loss_mdb: 2123
            }
        );
        assert_eq!(rec.switch, 7);
    }

    #[test]
    fn rates_mirror_alignments_and_publish_per_second() {
        let mut sink = FleetTelemetry::new();
        let mut ocs = PalomarOcs::new(1, 11);
        let mut inst = OcsInstruments::register(&mut sink, 1);
        for i in 0..4u16 {
            ocs.connect(i, i + 64).unwrap();
        }
        inst.record_rates(&mut sink, Nanos(0), &ocs);
        assert_eq!(sink.metrics.counter_value(inst.relocks), 4);
        // Second scrape with no new alignments adds nothing.
        inst.record_rates(&mut sink, Nanos(1), &ocs);
        assert_eq!(sink.metrics.counter_value(inst.relocks), 4);
        // After the 1 s window rolls over, the rate gauge publishes.
        inst.record_rates(&mut sink, Nanos::from_secs_f64(1.5), &ocs);
        assert_eq!(sink.metrics.gauge_value(inst.relock_rate.gauge()), 4.0);
    }

    #[test]
    fn drift_forwarding_is_incremental_and_feeds_health() {
        let mut sink = FleetTelemetry::new();
        let mut health = FleetHealth::default();
        let mut ocs = PalomarOcs::new(5, 21);
        let mut inst = OcsInstruments::register(&mut sink, 5);
        ocs.degrade_mirror(true, 3, 0.03);
        ocs.degrade_mirror(true, 3, 0.03);
        assert_eq!(inst.forward_drift(&mut sink, &mut health, &ocs), 2);
        assert_eq!(inst.forward_drift(&mut sink, &mut health, &ocs), 0);
        ocs.degrade_mirror(true, 3, 0.03);
        assert_eq!(inst.forward_drift(&mut sink, &mut health, &ocs), 1);
        // The health layer retained the samples under this switch's label.
        assert_eq!(health.store().recent_for_switch(5, 8).len(), 3);
    }

    #[test]
    fn health_scrape_drives_slo() {
        let mut sink = FleetTelemetry::new();
        let mut ocs = PalomarOcs::new(2, 8);
        let mut inst = OcsInstruments::register(&mut sink, 2);
        inst.scrape(&mut sink, Nanos(0), &ocs);
        ocs.fail_fru(0);
        ocs.fail_fru(1); // both PSUs: chassis down
        ocs.advance(Nanos::from_secs_f64(10.0));
        inst.scrape(&mut sink, ocs.now(), &ocs);
        let report = sink.slo.report(Nanos::from_secs_f64(20.0));
        let o = report.objects.iter().find(|o| o.object == "ocs-2").unwrap();
        assert!(o.in_violation, "10 s+ outage blows the 99.98% budget");
        assert!(o.downtime >= Nanos::from_secs_f64(10.0));
    }
}
