//! The Palomar OCS facade: optical core + crossbar + chassis + telemetry
//! under one simulation clock.

use crate::camera::AlignmentLoop;
use crate::chassis::Chassis;
use crate::crossbar::{ConnectionState, Crossbar, CrossbarError, PortId, PortMapping};
use crate::loss::OpticalCore;
use crate::telemetry::{AlarmCode, Severity, Telemetry};
use lightwave_units::{Db, Nanos};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Errors from OCS operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OcsError {
    /// Crossbar-level failure.
    Crossbar(CrossbarError),
    /// The chassis is not operational (e.g. dual PSU failure).
    ChassisDown,
    /// The port is degraded (failed HV driver, exhausted mirror spares).
    PortDegraded(PortId),
}

impl From<CrossbarError> for OcsError {
    fn from(e: CrossbarError) -> Self {
        OcsError::Crossbar(e)
    }
}

impl std::fmt::Display for OcsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OcsError::Crossbar(e) => write!(f, "crossbar: {e}"),
            OcsError::ChassisDown => write!(f, "chassis not operational"),
            OcsError::PortDegraded(p) => write!(f, "port {p} degraded"),
        }
    }
}

impl std::error::Error for OcsError {}

/// What a bulk reconfiguration did.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigReport {
    /// Circuits torn down (north ports).
    pub removed: Vec<PortId>,
    /// Circuits newly established.
    pub added: Vec<(PortId, PortId)>,
    /// Circuits left untouched — their light never blinked.
    pub untouched: usize,
    /// Simulation time at which every new circuit is aligned and carrying.
    pub ready_at: Nanos,
}

/// Snapshot of switch health.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcsHealth {
    /// Chassis operational?
    pub operational: bool,
    /// Live circuits.
    pub circuits: usize,
    /// Circuits still aligning.
    pub pending: usize,
    /// Degraded (unusable) ports.
    pub degraded_ports: Vec<PortId>,
    /// Remaining mirror spares (north die, south die).
    pub mirror_spares: (usize, usize),
    /// Present power draw, watts.
    pub power_w: f64,
}

/// Loss drift (dB) above which a spare-mirror swap raises a HighLoss
/// anomaly alarm. The mirror population is tight (σ ≈ 0.08 dB), so even
/// the bottom of the spare barrel is only ~0.2 dB worse than as-built —
/// small, but the bidi link budget is counted in tenths (§3.2.1's "optical
/// link budget is a precious commodity"), hence the tight threshold.
pub const DRIFT_ALARM_DB: f64 = 0.12;

/// One change to a port's cumulative loss drift, recorded whenever the
/// mirror serving the port changes character — a silent degradation step
/// or a spare swap. The log is append-only and scraped by cursor (the
/// fleet-health layer keeps `O(changed)` per poll, never rescanning all
/// 272 mirrors per switch).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftChange {
    /// Simulation time of the change.
    pub at: Nanos,
    /// Which die (true = north).
    pub north: bool,
    /// Affected port.
    pub port: PortId,
    /// Cumulative drift from as-built after the change, dB.
    pub drift_db: f64,
}

/// Reusable scratch space for delta validation, kept on the switch so the
/// steady-state incremental path ([`PalomarOcs::apply_delta`]) allocates
/// nothing once the buffers have grown to the working delta size.
#[derive(Debug, Default)]
struct DeltaScratch {
    norths: Vec<PortId>,
    souths: Vec<PortId>,
}

/// A simulated Palomar optical circuit switch.
#[derive(Debug)]
pub struct PalomarOcs {
    id: u32,
    now: Nanos,
    core: OpticalCore,
    crossbar: Crossbar,
    chassis: Chassis,
    telemetry: Telemetry,
    align: AlignmentLoop,
    rng: StdRng,
    /// north port → time its circuit finishes aligning.
    pending: BTreeMap<PortId, Nanos>,
    /// Ports unusable due to exhausted spares.
    dead_ports: BTreeSet<PortId>,
    /// Append-only record of per-port drift changes (see [`DriftChange`]).
    drift_log: Vec<DriftChange>,
    /// Scratch buffers for [`PalomarOcs::apply_delta`] validation.
    scratch: DeltaScratch,
}

impl PalomarOcs {
    /// Builds switch `id` with a deterministic manufacturing seed.
    pub fn new(id: u32, seed: u64) -> PalomarOcs {
        Self::with_ports(id, seed, crate::TOTAL_PORTS)
    }

    /// Builds a switch with an arbitrary radix — e.g. the §6
    /// next-generation 300×300 part. The system-level architecture
    /// "abstracts the underlying physical mechanisms" (§7): everything
    /// above the optical core is radix-agnostic.
    pub fn with_ports(id: u32, seed: u64, ports: usize) -> PalomarOcs {
        PalomarOcs {
            id,
            now: Nanos(0),
            core: OpticalCore::fabricate(ports, seed),
            crossbar: Crossbar::new(ports),
            chassis: Chassis::new(),
            telemetry: Telemetry::new(),
            align: AlignmentLoop::default(),
            rng: StdRng::seed_from_u64(seed ^ 0xA5A5_5A5A_0F0F_F0F0),
            pending: BTreeMap::new(),
            dead_ports: BTreeSet::new(),
            drift_log: Vec::new(),
            scratch: DeltaScratch::default(),
        }
    }

    /// Switch identity.
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Current simulation time.
    pub fn now(&self) -> Nanos {
        self.now
    }

    /// Ports per side.
    pub fn ports(&self) -> usize {
        self.crossbar.ports()
    }

    /// Telemetry surface.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The optical core (for loss census etc.).
    pub fn optical_core(&self) -> &OpticalCore {
        &self.core
    }

    /// Current port mapping.
    pub fn mapping(&self) -> PortMapping {
        self.crossbar.mapping()
    }

    /// Whether the data plane is up at all.
    pub fn is_up(&self) -> bool {
        self.chassis.is_operational()
    }

    fn check_usable(&self, p: PortId) -> Result<(), OcsError> {
        if self.dead_ports.contains(&p) {
            return Err(OcsError::PortDegraded(p));
        }
        if self.chassis.degraded_ports().contains(&p) {
            return Err(OcsError::PortDegraded(p));
        }
        Ok(())
    }

    /// Establishes a circuit North `n` → South `s`. Returns the time at
    /// which the circuit will be aligned and carrying light.
    pub fn connect(&mut self, n: PortId, s: PortId) -> Result<Nanos, OcsError> {
        if !self.chassis.is_operational() {
            return Err(OcsError::ChassisDown);
        }
        self.check_usable(n)?;
        self.check_usable(s)?;
        self.crossbar.connect(n, s)?;
        let ready = self.run_alignment(n);
        self.telemetry.counters.connects += 1;
        Ok(ready)
    }

    /// Runs the camera loop for the circuit on north port `n`, registering
    /// it as pending; returns the ready time.
    fn run_alignment(&mut self, n: PortId) -> Nanos {
        self.telemetry.counters.alignments += 1;
        let mut attempts = 0;
        let mut elapsed = Nanos(0);
        loop {
            let conv = self.align.converge(0.01, &mut self.rng);
            elapsed += conv.switching_time;
            attempts += 1;
            if conv.converged {
                break;
            }
            self.telemetry.counters.alignment_failures += 1;
            self.telemetry.raise(
                self.now,
                Severity::Warning,
                AlarmCode::AlignmentTimeout { north: n },
            );
            if attempts >= 3 {
                break; // leave pending; health shows it stuck
            }
        }
        let ready = self.now + elapsed;
        self.pending.insert(n, ready);
        ready
    }

    /// Tears down the circuit on North port `n`.
    pub fn disconnect(&mut self, n: PortId) -> Result<(), OcsError> {
        self.crossbar.disconnect(n)?;
        self.pending.remove(&n);
        self.telemetry.counters.disconnects += 1;
        Ok(())
    }

    /// Applies a target mapping as a minimal delta: circuits present in
    /// both old and new configurations are never touched.
    pub fn apply_mapping(&mut self, target: &PortMapping) -> Result<ReconfigReport, OcsError> {
        if !self.chassis.is_operational() {
            return Err(OcsError::ChassisDown);
        }
        self.crossbar.validate(target)?;
        // Port-usability applies to the delta, not the whole target:
        // circuits already carrying on a since-degraded port stay as they
        // are (tearing them down would turn the degradation into an
        // outage) — only circuits the delta must (re)establish need
        // healthy drive on both ports.
        let delta = self.crossbar.delta_to(target);
        for &(n, s) in &delta.add {
            self.check_usable(n)?;
            self.check_usable(s)?;
        }
        for &n in &delta.remove {
            self.crossbar.disconnect(n)?;
            self.pending.remove(&n);
            self.telemetry.counters.disconnects += 1;
        }
        let mut ready_at = self.now;
        for &(n, s) in &delta.add {
            self.crossbar.connect(n, s)?;
            let ready = self.run_alignment(n);
            self.telemetry.counters.connects += 1;
            ready_at = ready_at.max(ready);
        }
        self.telemetry.counters.reconfigs += 1;
        self.telemetry.counters.circuits_preserved += delta.unchanged.len() as u64;
        Ok(ReconfigReport {
            removed: delta.remove,
            added: delta.add,
            untouched: delta.unchanged.len(),
            ready_at,
        })
    }

    /// Validates an incremental reconfiguration without applying it:
    /// `remove` circuits (by north port) must exist, `add` pairs must land
    /// on usable, structurally free ports once the removes are accounted
    /// for. Port-usability covers exactly the delta — untouched circuits
    /// are never re-vetted (the same contract as [`PalomarOcs::apply_mapping`]).
    ///
    /// Takes `&mut self` only to reuse the internal scratch buffers; no
    /// observable state changes.
    pub fn validate_delta(
        &mut self,
        add: &[(PortId, PortId)],
        remove: &[PortId],
    ) -> Result<(), OcsError> {
        if !self.chassis.is_operational() {
            return Err(OcsError::ChassisDown);
        }
        let ports = self.crossbar.ports();
        for &n in remove {
            if self.crossbar.circuit(n).is_none() {
                return Err(CrossbarError::NotConnected(n).into());
            }
        }
        for &(n, s) in add {
            if n as usize >= ports {
                return Err(CrossbarError::PortOutOfRange(n).into());
            }
            if s as usize >= ports {
                return Err(CrossbarError::PortOutOfRange(s).into());
            }
            self.check_usable(n)?;
            self.check_usable(s)?;
            if self.crossbar.circuit(n).is_some() && !remove.contains(&n) {
                return Err(CrossbarError::NorthBusy(n).into());
            }
            if let Some(owner) = self.crossbar.south_owner(s) {
                if !remove.contains(&owner) {
                    return Err(CrossbarError::SouthBusy(s).into());
                }
            }
        }
        // Intra-delta duplicates, caught via the reusable sorted scratch
        // (clear keeps capacity: zero allocation at steady state).
        self.scratch.norths.clear();
        self.scratch.norths.extend(remove.iter().copied());
        self.scratch.norths.sort_unstable();
        if let Some(w) = self.scratch.norths.windows(2).find(|w| w[0] == w[1]) {
            return Err(CrossbarError::NotConnected(w[0]).into());
        }
        self.scratch.norths.clear();
        self.scratch.norths.extend(add.iter().map(|&(n, _)| n));
        self.scratch.norths.sort_unstable();
        if let Some(w) = self.scratch.norths.windows(2).find(|w| w[0] == w[1]) {
            return Err(CrossbarError::NorthBusy(w[0]).into());
        }
        self.scratch.souths.clear();
        self.scratch.souths.extend(add.iter().map(|&(_, s)| s));
        self.scratch.souths.sort_unstable();
        if let Some(w) = self.scratch.souths.windows(2).find(|w| w[0] == w[1]) {
            return Err(CrossbarError::NotBijective { south: w[0] }.into());
        }
        Ok(())
    }

    /// Applies an incremental reconfiguration: tears down the `remove`
    /// circuits, establishes the `add` pairs, touches nothing else. The
    /// O(delta) counterpart of [`PalomarOcs::apply_mapping`] — no full
    /// mapping is collected or diffed, and validation runs on reusable
    /// scratch buffers. On error nothing has been applied.
    pub fn apply_delta(
        &mut self,
        add: &[(PortId, PortId)],
        remove: &[PortId],
    ) -> Result<ReconfigReport, OcsError> {
        self.validate_delta(add, remove)?;
        let untouched = self.crossbar.circuit_count() - remove.len();
        for &n in remove {
            self.crossbar.disconnect(n).expect("delta validated");
            self.pending.remove(&n);
            self.telemetry.counters.disconnects += 1;
        }
        let mut ready_at = self.now;
        for &(n, s) in add {
            self.crossbar.connect(n, s).expect("delta validated");
            let ready = self.run_alignment(n);
            self.telemetry.counters.connects += 1;
            ready_at = ready_at.max(ready);
        }
        self.telemetry.counters.reconfigs += 1;
        self.telemetry.counters.circuits_preserved += untouched as u64;
        Ok(ReconfigReport {
            removed: remove.to_vec(),
            added: add.to_vec(),
            untouched,
            ready_at,
        })
    }

    /// Advances simulation time, completing any alignments that finish.
    pub fn advance(&mut self, dt: Nanos) {
        self.now += dt;
        let now = self.now;
        let finished: Vec<PortId> = self
            .pending
            .iter()
            .filter(|&(_, &t)| t <= now)
            .map(|(&n, _)| n)
            .collect();
        for n in finished {
            self.pending.remove(&n);
            // The circuit may have been torn down while aligning.
            if self.crossbar.circuit(n).is_some() {
                self.crossbar
                    .mark_connected(n)
                    .expect("pending circuit exists");
            }
        }
    }

    /// Whether the circuit on north port `n` is aligned and carrying light.
    pub fn circuit_ready(&self, n: PortId) -> bool {
        matches!(
            self.crossbar.circuit(n),
            Some((_, ConnectionState::Connected))
        )
    }

    /// Insertion loss of the live circuit on north port `n`.
    pub fn insertion_loss(&self, n: PortId) -> Option<Db> {
        let (s, _) = self.crossbar.circuit(n)?;
        let mut il = self.core.insertion_loss(n as usize, s as usize);
        if let Some((_, ConnectionState::Connecting)) = self.crossbar.circuit(n) {
            // Unconverged pointing adds excess loss.
            il += Db(6.0);
        }
        Some(il)
    }

    /// Fails the mirror serving `port` on the chosen die, swapping in a
    /// spare if one remains. Live circuits on the port are re-aligned.
    pub fn fail_mirror(&mut self, north_die: bool, port: PortId) {
        self.telemetry.counters.mirror_failures += 1;
        let die = if north_die {
            &mut self.core.die_north
        } else {
            &mut self.core.die_south
        };
        let spare_used = die.fail_and_swap(port as usize);
        if spare_used {
            self.telemetry.counters.spares_consumed += 1;
            // A swapped-in spare sits at a different point of the loss
            // barrel: the port's drift changed, log it for the health
            // layer (the abrupt counterpart of slow degradation).
            self.log_drift(north_die, port);
        } else {
            self.dead_ports.insert(port);
        }
        self.telemetry.raise(
            self.now,
            if spare_used {
                Severity::Warning
            } else {
                Severity::Critical
            },
            AlarmCode::MirrorFailed {
                north_die,
                port,
                spare_used,
            },
        );
        // Any circuit using the port must re-align onto the new mirror.
        if spare_used {
            let affected: Option<PortId> = if north_die {
                self.crossbar.circuit(port).map(|_| port)
            } else {
                self.crossbar.south_owner(port)
            };
            if let Some(n) = affected {
                // Demote to Connecting and re-run the camera loop.
                let (s, _) = self.crossbar.circuit(n).expect("affected circuit exists");
                self.crossbar.disconnect(n).expect("exists");
                self.crossbar.connect(n, s).expect("ports were just freed");
                self.run_alignment(n);
                // Anomaly detection: a drifted path eats link budget even
                // though the circuit "works" — surface it before the
                // transceiver margin does (§3.2.2).
                if self.core.port_drift(north_die, port as usize).db() > DRIFT_ALARM_DB {
                    let loss = self.core.insertion_loss(n as usize, s as usize);
                    self.telemetry.raise(
                        self.now,
                        Severity::Warning,
                        AlarmCode::HighLoss {
                            north: n,
                            south: s,
                            loss_db: loss.db(),
                        },
                    );
                }
            }
        }
    }

    /// Degrades the mirror serving `port` on the chosen die by `loss_db`
    /// of extra intrinsic loss — the slow, silent optical creep
    /// (contamination, actuator relaxation) that erodes the link budget
    /// in tenths of a dB. Deliberately raises **no alarm** and changes
    /// **no** chassis, circuit, or spare state: the only observable
    /// effects are higher insertion loss on the served path and an entry
    /// in the [`PalomarOcs::drift_log`] for the fleet-health detectors to
    /// catch before the port fails hard.
    pub fn degrade_mirror(&mut self, north_die: bool, port: PortId, loss_db: f64) {
        let die = if north_die {
            &mut self.core.die_north
        } else {
            &mut self.core.die_south
        };
        die.degrade(port as usize, loss_db);
        self.log_drift(north_die, port);
    }

    fn log_drift(&mut self, north: bool, port: PortId) {
        let drift = self.core.port_drift(north, port as usize);
        self.drift_log.push(DriftChange {
            at: self.now,
            north,
            port,
            drift_db: drift.db(),
        });
    }

    /// The append-only drift-change log. Consumers scrape incrementally
    /// by remembering how many entries they have already seen.
    pub fn drift_log(&self) -> &[DriftChange] {
        &self.drift_log
    }

    /// Ports whose serving mirror has drifted more than `threshold` dB
    /// from the as-built baseline — the proactive-maintenance list.
    pub fn drift_report(&self, threshold: Db) -> Vec<(bool, PortId, Db)> {
        let mut out = Vec::new();
        for port in 0..self.ports() {
            for north in [true, false] {
                let d = self.core.port_drift(north, port);
                if d.db() > threshold.db() {
                    out.push((north, port as PortId, d));
                }
            }
        }
        out
    }

    /// Fails a chassis FRU slot.
    pub fn fail_fru(&mut self, slot: usize) {
        self.chassis.fail_slot(slot);
        self.telemetry
            .raise(self.now, Severity::Warning, AlarmCode::FruFailed { slot });
        if !self.chassis.is_operational() {
            self.telemetry
                .raise(self.now, Severity::Critical, AlarmCode::ChassisDown);
        }
    }

    /// Field-replaces a FRU slot; circuits whose mirror state was dropped
    /// by the swap re-align automatically.
    pub fn replace_fru(&mut self, slot: usize) {
        let effect = self.chassis.replace_slot(slot);
        for port in effect.disturbed_ports {
            if self.crossbar.circuit(port).is_some() {
                let (s, _) = self.crossbar.circuit(port).expect("checked");
                self.crossbar.disconnect(port).expect("exists");
                self.crossbar.connect(port, s).expect("just freed");
                self.run_alignment(port);
            }
        }
    }

    /// Health snapshot.
    pub fn health(&self) -> OcsHealth {
        let mut degraded: Vec<PortId> = self.dead_ports.iter().copied().collect();
        degraded.extend(self.chassis.degraded_ports());
        degraded.sort_unstable();
        degraded.dedup();
        OcsHealth {
            operational: self.chassis.is_operational(),
            circuits: self.crossbar.circuit_count(),
            pending: self.pending.len(),
            degraded_ports: degraded,
            mirror_spares: (
                self.core.die_north.spares_remaining(),
                self.core.die_south.spares_remaining(),
            ),
            power_w: self.chassis.power_draw_w(self.crossbar.circuit_count()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn settled(ocs: &mut PalomarOcs) {
        ocs.advance(Nanos::from_millis(200));
    }

    #[test]
    fn connect_aligns_then_carries() {
        let mut ocs = PalomarOcs::new(0, 42);
        let ready = ocs.connect(3, 77).unwrap();
        assert!(!ocs.circuit_ready(3), "must align first");
        assert!(ready > Nanos(0));
        ocs.advance(ready);
        assert!(ocs.circuit_ready(3));
        let il = ocs.insertion_loss(3).unwrap();
        assert!(il.db() < 4.0, "aligned circuit loss {il} sane");
    }

    #[test]
    fn reconfig_preserves_untouched_circuits() {
        let mut ocs = PalomarOcs::new(0, 1);
        ocs.connect(0, 10).unwrap();
        ocs.connect(1, 11).unwrap();
        settled(&mut ocs);
        assert!(ocs.circuit_ready(0) && ocs.circuit_ready(1));
        // New mapping keeps 0→10, moves 1→20, adds 2→12.
        let target = PortMapping::from_pairs([(0, 10), (1, 20), (2, 12)]).unwrap();
        let report = ocs.apply_mapping(&target).unwrap();
        assert_eq!(report.untouched, 1);
        assert_eq!(report.removed, vec![1]);
        assert_eq!(report.added, vec![(1, 20), (2, 12)]);
        // The untouched circuit is *still carrying light* mid-reconfig.
        assert!(ocs.circuit_ready(0), "non-disruption guarantee violated");
        assert!(!ocs.circuit_ready(1), "moved circuit must re-align");
        settled(&mut ocs);
        assert!(ocs.circuit_ready(1) && ocs.circuit_ready(2));
    }

    #[test]
    fn switching_time_is_ms_class() {
        let mut ocs = PalomarOcs::new(0, 9);
        let ready = ocs.connect(0, 0).unwrap();
        let ms = ready.as_millis_f64();
        assert!((5.0..60.0).contains(&ms), "switching time {ms} ms");
    }

    #[test]
    fn chassis_failure_blocks_new_circuits() {
        let mut ocs = PalomarOcs::new(0, 2);
        ocs.fail_fru(0);
        ocs.fail_fru(1); // both PSUs
        assert!(!ocs.is_up());
        assert_eq!(ocs.connect(0, 1), Err(OcsError::ChassisDown));
        let crit = ocs
            .telemetry()
            .alarms_at_least(crate::telemetry::Severity::Critical)
            .count();
        assert_eq!(crit, 1, "ChassisDown alarm raised");
    }

    #[test]
    fn mirror_failure_consumes_spare_and_realigns() {
        let mut ocs = PalomarOcs::new(0, 3);
        ocs.connect(5, 50).unwrap();
        settled(&mut ocs);
        assert!(ocs.circuit_ready(5));
        let spares_before = ocs.health().mirror_spares.0;
        ocs.fail_mirror(true, 5);
        assert_eq!(ocs.health().mirror_spares.0, spares_before - 1);
        assert!(!ocs.circuit_ready(5), "circuit re-aligning on spare mirror");
        settled(&mut ocs);
        assert!(ocs.circuit_ready(5), "spare restored the circuit");
    }

    #[test]
    fn south_die_mirror_failure_realigns_owner() {
        let mut ocs = PalomarOcs::new(0, 8);
        ocs.connect(7, 70).unwrap();
        settled(&mut ocs);
        ocs.fail_mirror(false, 70);
        assert!(!ocs.circuit_ready(7));
        settled(&mut ocs);
        assert!(ocs.circuit_ready(7));
    }

    #[test]
    fn exhausted_spares_kill_the_port() {
        let mut ocs = PalomarOcs::new(0, 4);
        // Burn all north-die spares on port 9.
        while ocs.health().mirror_spares.0 > 0 {
            ocs.fail_mirror(true, 9);
        }
        ocs.fail_mirror(true, 9); // one more: no spare left
        assert_eq!(ocs.connect(9, 1), Err(OcsError::PortDegraded(9)));
        assert!(ocs.health().degraded_ports.contains(&9));
    }

    #[test]
    fn hv_driver_swap_realigns_its_ports() {
        let mut ocs = PalomarOcs::new(0, 5);
        ocs.connect(2, 40).unwrap(); // port 2 is in HV group 0 (ports 0..34)
        ocs.connect(100, 101).unwrap(); // port 100 in a different group
        settled(&mut ocs);
        // Fail + replace HV driver slot 6 (first driver, ports 0..34).
        ocs.fail_fru(6);
        assert_eq!(ocs.connect(3, 41), Err(OcsError::PortDegraded(3)));
        ocs.replace_fru(6);
        assert!(
            !ocs.circuit_ready(2),
            "swap drops mirror state for its group"
        );
        assert!(ocs.circuit_ready(100), "other groups unaffected");
        settled(&mut ocs);
        assert!(ocs.circuit_ready(2));
    }

    #[test]
    fn power_is_a_fraction_of_eps() {
        let mut ocs = PalomarOcs::new(0, 6);
        for i in 0..64u16 {
            ocs.connect(i, i + 64).unwrap();
        }
        let h = ocs.health();
        assert!(h.power_w <= crate::chassis::MAX_POWER_W);
        assert_eq!(h.circuits, 64);
    }

    #[test]
    fn telemetry_counts_reconfigs_and_preservation() {
        let mut ocs = PalomarOcs::new(0, 7);
        let m1 = PortMapping::from_pairs([(0, 1), (2, 3)]).unwrap();
        ocs.apply_mapping(&m1).unwrap();
        settled(&mut ocs);
        let m2 = PortMapping::from_pairs([(0, 1), (2, 4)]).unwrap();
        ocs.apply_mapping(&m2).unwrap();
        let c = &ocs.telemetry().counters;
        assert_eq!(c.reconfigs, 2);
        assert_eq!(c.circuits_preserved, 1); // (0,1) survived
        assert_eq!(c.connects, 3);
        assert_eq!(c.disconnects, 1);
    }

    #[test]
    fn apply_delta_touches_only_the_delta() {
        let mut ocs = PalomarOcs::new(0, 21);
        ocs.apply_delta(&[(0, 10), (1, 11)], &[]).unwrap();
        settled(&mut ocs);
        assert!(ocs.circuit_ready(0) && ocs.circuit_ready(1));
        // Move (1, 11) → (1, 20), add (2, 12), leave (0, 10) alone.
        let report = ocs.apply_delta(&[(1, 20), (2, 12)], &[1]).unwrap();
        assert_eq!(report.untouched, 1);
        assert_eq!(report.removed, vec![1]);
        assert_eq!(report.added, vec![(1, 20), (2, 12)]);
        assert!(ocs.circuit_ready(0), "untouched circuit kept carrying");
        assert!(!ocs.circuit_ready(1), "moved circuit re-aligns");
        settled(&mut ocs);
        assert!(ocs.circuit_ready(1) && ocs.circuit_ready(2));
        // Matches what apply_mapping on the equivalent target would say.
        let c = &ocs.telemetry().counters;
        assert_eq!(c.reconfigs, 2);
        assert_eq!(c.circuits_preserved, 1);
    }

    #[test]
    fn apply_delta_rejects_without_applying() {
        let mut ocs = PalomarOcs::new(0, 22);
        ocs.apply_delta(&[(0, 10)], &[]).unwrap();
        settled(&mut ocs);
        // South 10 is held by north 0 and the delta does not free it.
        let err = ocs.apply_delta(&[(5, 10)], &[]).unwrap_err();
        assert_eq!(err, OcsError::Crossbar(CrossbarError::SouthBusy(10)));
        // Removing a circuit that does not exist rejects too.
        let err = ocs.apply_delta(&[], &[7]).unwrap_err();
        assert_eq!(err, OcsError::Crossbar(CrossbarError::NotConnected(7)));
        // Intra-delta conflicts are structural errors, not panics.
        let err = ocs.apply_delta(&[(3, 30), (4, 30)], &[]).unwrap_err();
        assert_eq!(
            err,
            OcsError::Crossbar(CrossbarError::NotBijective { south: 30 })
        );
        assert_eq!(ocs.mapping().len(), 1, "nothing applied on any error");
        assert!(ocs.circuit_ready(0));
    }

    #[test]
    fn apply_delta_checks_only_delta_ports() {
        let mut ocs = PalomarOcs::new(0, 23);
        ocs.apply_delta(&[(2, 40), (100, 101)], &[]).unwrap();
        settled(&mut ocs);
        // HV driver slot 6 fails: ports 0..34 degrade under circuit (2, 40).
        ocs.fail_fru(6);
        // A delta leaving the degraded circuit alone still commits.
        let report = ocs.apply_delta(&[(120, 121)], &[100]).unwrap();
        assert_eq!(report.untouched, 1);
        // But a delta (re)establishing on a degraded port rejects.
        assert_eq!(
            ocs.apply_delta(&[(3, 50)], &[]).unwrap_err(),
            OcsError::PortDegraded(3)
        );
    }

    #[test]
    fn next_gen_300_port_switch_works() {
        // §6: the 300×300 development part drops into the same stack.
        let mut ocs = PalomarOcs::with_ports(1, 77, 300);
        assert_eq!(ocs.ports(), 300);
        let ready = ocs.connect(299, 0).unwrap();
        ocs.advance(ready);
        assert!(ocs.circuit_ready(299));
        assert!(ocs.insertion_loss(299).unwrap().db() < 4.5);
        // Full 300-circuit permutation is realizable (still non-blocking).
        for i in 0..299u16 {
            ocs.connect(i, i + 1).unwrap();
        }
        assert_eq!(ocs.health().circuits, 300);
    }

    #[test]
    fn drift_anomalies_surface_after_spare_churn() {
        let mut ocs = PalomarOcs::new(0, 12);
        ocs.connect(5, 50).unwrap();
        settled(&mut ocs);
        // Churn spares until the drift alarm fires (the spare pool is
        // quality-ordered, so repeated failures walk down the barrel).
        let mut fired = false;
        for _ in 0..ocs.health().mirror_spares.0 {
            ocs.fail_mirror(true, 5);
            settled(&mut ocs);
            let high_loss = ocs
                .telemetry()
                .alarms()
                .iter()
                .any(|a| matches!(a.code, crate::telemetry::AlarmCode::HighLoss { .. }));
            if high_loss {
                fired = true;
                break;
            }
        }
        assert!(fired, "enough spare churn must trip the HighLoss anomaly");
        let report = ocs.drift_report(lightwave_units::Db(DRIFT_ALARM_DB));
        assert!(
            report.iter().any(|&(north, port, _)| north && port == 5),
            "the drift report lists the churned port: {report:?}"
        );
        // Fresh ports report no drift.
        assert!(report.iter().all(|&(_, port, _)| port == 5));
    }

    #[test]
    fn degrade_mirror_is_silent_but_logged() {
        let mut ocs = PalomarOcs::new(0, 13);
        ocs.connect(6, 60).unwrap();
        settled(&mut ocs);
        let alarms_before = ocs.telemetry().alarms().len();
        let loss_before = ocs.insertion_loss(6).unwrap();
        ocs.degrade_mirror(true, 6, 0.03);
        ocs.degrade_mirror(true, 6, 0.03);
        // Silent: no alarm, chassis up, circuit still carrying.
        assert_eq!(ocs.telemetry().alarms().len(), alarms_before);
        assert!(ocs.is_up());
        assert!(ocs.circuit_ready(6));
        // But the path got lossier and the log recorded each step.
        let loss_after = ocs.insertion_loss(6).unwrap();
        assert!((loss_after.db() - loss_before.db() - 0.06).abs() < 1e-9);
        let log = ocs.drift_log();
        assert_eq!(log.len(), 2);
        assert!(log.iter().all(|d| d.north && d.port == 6));
        assert!(log[1].drift_db > log[0].drift_db);
        // Spare swaps land in the same log (abrupt drift changes).
        ocs.fail_mirror(true, 6);
        assert_eq!(ocs.drift_log().len(), 3);
    }

    #[test]
    fn disconnect_while_aligning_is_clean() {
        let mut ocs = PalomarOcs::new(0, 10);
        ocs.connect(4, 44).unwrap();
        ocs.disconnect(4).unwrap(); // still aligning
        settled(&mut ocs); // must not panic on vanished pending circuit
        assert!(ocs.mapping().is_empty());
    }
}
