//! Per-path insertion and return loss of the optical core (Fig. 10).
//!
//! §4.1.1: "Insertion losses are typically less than 2 dB for all 136×136
//! permutations of connectivity. The tail in the distributions is nominally
//! due to fiber splice and connector loss variation. Return loss caused by
//! reflections is typically −46 dB, with a nominal specification of less
//! than −38 dB. The major components of optical reflection come from the
//! fiber collimators."
//!
//! The model composes a path loss from: the North-port collimator, the
//! mirror on each die serving the path, the South-port collimator, plus a
//! small pairwise residual (pointing-dependent coupling) and an occasional
//! splice-variation outlier that produces the histogram's tail.

use crate::mems::MemsDie;
use lightwave_units::Db;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Per-port fixed optical characteristics, sampled at manufacturing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortOptics {
    /// Collimator coupling loss, dB.
    pub collimator_loss_db: f64,
    /// Port return loss, dB (negative).
    pub return_loss_db: f64,
}

/// The optical core: two dies plus the collimator arrays.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpticalCore {
    seed: u64,
    /// MEMS die on the North side.
    pub die_north: MemsDie,
    /// MEMS die on the South side.
    pub die_south: MemsDie,
    north_ports: Vec<PortOptics>,
    south_ports: Vec<PortOptics>,
    /// As-built per-port mirror loss (north die), the anomaly baseline.
    as_built_north: Vec<f64>,
    /// As-built per-port mirror loss (south die).
    as_built_south: Vec<f64>,
}

/// Return-loss specification limit from the paper, dB.
pub const RETURN_LOSS_SPEC_DB: f64 = -38.0;

impl OpticalCore {
    /// Builds a core with `ports` ports per side (dies sized with the
    /// production ~29% spare margin).
    ///
    /// # Panics
    /// Panics if either die fails fabrication yield at the given seed
    /// (95% mirror yield, which fabricates reliably at this margin).
    pub fn fabricate(ports: usize, seed: u64) -> OpticalCore {
        // Production margin: 176 fabricated for 136 served ≈ 1.29×.
        let fabricated = ports * 176 / 136 + 1;
        let die_north = MemsDie::fabricate_sized(
            seed.wrapping_mul(0x9E37_79B9).wrapping_add(1),
            0.95,
            fabricated,
            ports,
        )
        .expect("95% mirror yield fabricates a die");
        let die_south = MemsDie::fabricate_sized(
            seed.wrapping_mul(0x9E37_79B9).wrapping_add(2),
            0.95,
            fabricated,
            ports,
        )
        .expect("95% mirror yield fabricates a die");
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9).wrapping_add(3));
        let coll = Normal::<f64>::new(0.5, 0.12).expect("valid sigma");
        let rl = Normal::<f64>::new(-46.0, 2.5).expect("valid sigma");
        let sample_ports = |rng: &mut StdRng| -> Vec<PortOptics> {
            (0..ports)
                .map(|_| PortOptics {
                    collimator_loss_db: coll.sample(rng).max(0.2),
                    return_loss_db: rl.sample(rng).clamp(-55.0, -38.5),
                })
                .collect()
        };
        let north_ports = sample_ports(&mut rng);
        let south_ports = sample_ports(&mut rng);
        let as_built_north = (0..ports)
            .map(|p| die_north.mirror_for_port(p).intrinsic_loss_db)
            .collect();
        let as_built_south = (0..ports)
            .map(|p| die_south.mirror_for_port(p).intrinsic_loss_db)
            .collect();
        OpticalCore {
            seed,
            die_north,
            die_south,
            north_ports,
            south_ports,
            as_built_north,
            as_built_south,
        }
    }

    /// Loss drift of a port's serving mirror versus the as-built baseline
    /// (positive = worse). Spare swaps rotate in progressively worse
    /// mirrors; this is the §3.2.2 anomaly-detection signal.
    pub fn port_drift(&self, north_die: bool, port: usize) -> Db {
        let (die, baseline) = if north_die {
            (&self.die_north, &self.as_built_north)
        } else {
            (&self.die_south, &self.as_built_south)
        };
        Db(die.mirror_for_port(port).intrinsic_loss_db - baseline[port])
    }

    /// Ports per side.
    pub fn ports(&self) -> usize {
        self.north_ports.len()
    }

    /// Stable per-pair residual loss: pointing-dependent coupling plus the
    /// occasional splice/connector outlier responsible for the Fig. 10 tail.
    fn pair_residual_db(&self, north: usize, south: usize) -> f64 {
        // Deterministic per (core, pair): the same cross-connection always
        // measures the same loss, as on real hardware.
        let h = self
            .seed
            .wrapping_mul(0x2545_F491_4F6C_DD1D)
            .wrapping_add((north as u64) << 32 | south as u64);
        let mut rng = StdRng::seed_from_u64(h);
        let base = Normal::<f64>::new(0.15, 0.08)
            .expect("valid sigma")
            .sample(&mut rng)
            .max(0.0);
        // ~4% of paths hit a splice/connector outlier.
        let outlier = if rng.random_bool(0.04) {
            rng.random_range(0.3..1.2)
        } else {
            0.0
        };
        base + outlier
    }

    /// Insertion loss of the path North `north` → South `south`.
    ///
    /// # Panics
    /// Panics if a port index is out of range.
    pub fn insertion_loss(&self, north: usize, south: usize) -> Db {
        let n = &self.north_ports[north];
        let s = &self.south_ports[south];
        let mirrors = self.die_north.mirror_for_port(north).intrinsic_loss_db
            + self.die_south.mirror_for_port(south).intrinsic_loss_db;
        Db(n.collimator_loss_db
            + s.collimator_loss_db
            + mirrors
            + self.pair_residual_db(north, south))
    }

    /// Return loss seen looking into a North port.
    pub fn return_loss_north(&self, north: usize) -> Db {
        Db(self.north_ports[north].return_loss_db)
    }

    /// Return loss seen looking into a South port.
    pub fn return_loss_south(&self, south: usize) -> Db {
        Db(self.south_ports[south].return_loss_db)
    }

    /// Full insertion-loss census over every N×S cross-connection — the
    /// data behind the Fig. 10a histogram.
    pub fn insertion_loss_census(&self) -> Vec<f64> {
        let p = self.ports();
        let mut out = Vec::with_capacity(p * p);
        for n in 0..p {
            for s in 0..p {
                out.push(self.insertion_loss(n, s).db());
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_loss_is_under_2db() {
        let core = OpticalCore::fabricate(136, 7);
        let census = core.insertion_loss_census();
        let under_2db = census.iter().filter(|&&l| l < 2.0).count() as f64 / census.len() as f64;
        assert!(
            under_2db > 0.85,
            "only {:.1}% of paths under 2 dB; paper says 'typically less than 2 dB'",
            under_2db * 100.0
        );
        let mean = census.iter().sum::<f64>() / census.len() as f64;
        assert!((1.2..2.0).contains(&mean), "mean loss {mean} out of band");
    }

    #[test]
    fn loss_distribution_has_a_tail() {
        // Fig. 10a shows a tail from splice/connector variation: some paths
        // exceed 2.5 dB, but none are absurd.
        let core = OpticalCore::fabricate(136, 7);
        let census = core.insertion_loss_census();
        let over_25 = census.iter().filter(|&&l| l > 2.5).count();
        assert!(over_25 > 0, "expected a loss tail");
        assert!(
            (over_25 as f64) < census.len() as f64 * 0.05,
            "tail too fat: {over_25} paths > 2.5 dB"
        );
        assert!(
            census.iter().all(|&l| l < 4.5),
            "no physically silly losses"
        );
    }

    #[test]
    fn return_loss_meets_spec_with_margin() {
        let core = OpticalCore::fabricate(136, 3);
        let mut sum = 0.0;
        for p in 0..136 {
            let n = core.return_loss_north(p).db();
            let s = core.return_loss_south(p).db();
            assert!(
                n <= RETURN_LOSS_SPEC_DB - 0.4,
                "north port {p} RL {n} violates spec"
            );
            assert!(
                s <= RETURN_LOSS_SPEC_DB - 0.4,
                "south port {p} RL {s} violates spec"
            );
            sum += n + s;
        }
        let mean = sum / 272.0;
        assert!(
            (-48.0..=-44.0).contains(&mean),
            "mean RL {mean} should be near the typical −46 dB"
        );
    }

    #[test]
    fn loss_is_reproducible_per_path() {
        let core = OpticalCore::fabricate(136, 11);
        assert_eq!(core.insertion_loss(5, 99), core.insertion_loss(5, 99));
        // Different paths differ (almost surely).
        assert_ne!(
            core.insertion_loss(5, 99).db(),
            core.insertion_loss(5, 98).db()
        );
    }

    #[test]
    fn different_seeds_give_different_cores() {
        let a = OpticalCore::fabricate(16, 1);
        let b = OpticalCore::fabricate(16, 2);
        assert_ne!(a.insertion_loss(0, 0).db(), b.insertion_loss(0, 0).db());
    }

    #[test]
    fn census_covers_all_pairs() {
        let core = OpticalCore::fabricate(16, 5);
        assert_eq!(core.insertion_loss_census().len(), 256);
    }
}
