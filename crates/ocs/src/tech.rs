//! OCS technology comparison (Table C.1) and selection logic.
//!
//! Appendix C compares the optical-switching technologies that could build
//! a large-radix OCS. The paper's conclusion (§3.2.1): "MEMS OCS technology
//! currently provides the best match for meeting the system-level
//! challenges and the practical constraints of scale and economics for both
//! the datacenter and ML use cases."

use lightwave_units::{Db, Nanos};
use serde::{Deserialize, Serialize};

/// Relative cost class at the stated scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum CostClass {
    /// Lowest cost per port.
    Low,
    /// Mid-range.
    Medium,
    /// Highest cost per port.
    High,
    /// Not yet established commercially.
    Tbd,
}

/// One row of Table C.1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OcsTechnology {
    /// Technology name.
    pub name: &'static str,
    /// Relative cost at the stated scale.
    pub cost: CostClass,
    /// Maximum demonstrated port count (square radix).
    pub max_ports: u32,
    /// Reconfiguration time.
    pub switching_time: Nanos,
    /// Worst-case insertion loss including connectors.
    pub insertion_loss: Db,
    /// Mirror/actuator driving voltage, volts (0 = none).
    pub driving_voltage: f64,
    /// Whether the switch holds state across power failure.
    pub latching: bool,
}

/// All rows of Table C.1.
pub fn table_c1() -> Vec<OcsTechnology> {
    vec![
        OcsTechnology {
            name: "MEMS",
            cost: CostClass::Medium,
            max_ports: 320,
            switching_time: Nanos::from_millis(10),
            insertion_loss: Db(3.0),
            driving_voltage: 100.0,
            latching: false,
        },
        OcsTechnology {
            name: "Robotic",
            cost: CostClass::Medium,
            max_ports: 1008,
            switching_time: Nanos::from_secs_f64(60.0), // minutes per connection
            insertion_loss: Db(1.0),
            driving_voltage: 0.0,
            latching: true,
        },
        OcsTechnology {
            name: "Piezo",
            cost: CostClass::High,
            max_ports: 576,
            switching_time: Nanos::from_millis(10),
            insertion_loss: Db(2.5),
            driving_voltage: 10.0,
            latching: false,
        },
        OcsTechnology {
            name: "Guided Wave",
            cost: CostClass::Low,
            max_ports: 16,
            switching_time: Nanos(100), // nanoseconds
            insertion_loss: Db(6.0),
            driving_voltage: 1.0,
            latching: false,
        },
        OcsTechnology {
            name: "Wavelength",
            cost: CostClass::Tbd,
            max_ports: 100,
            switching_time: Nanos(100),
            insertion_loss: Db(6.0),
            driving_voltage: 0.0,
            latching: true,
        },
    ]
}

/// Requirements for an OCS selection (§2.3 distilled).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Requirements {
    /// Minimum square radix needed.
    pub min_ports: u32,
    /// Maximum tolerable insertion loss (link-budget driven).
    pub max_insertion_loss: Db,
    /// Maximum tolerable switching time.
    pub max_switching_time: Nanos,
    /// Whether High cost class is acceptable.
    pub allow_high_cost: bool,
}

impl Requirements {
    /// The paper's datacenter/ML requirements: ≥ 128 usable duplex ports,
    /// < 3 dB loss (cost-effective transceivers, §3.2.1), switching in
    /// seconds is fine (topologies are long-lived), commodity economics.
    pub fn paper_use_cases() -> Requirements {
        Requirements {
            min_ports: 136,
            max_insertion_loss: Db(3.0),
            max_switching_time: Nanos::from_secs_f64(10.0),
            allow_high_cost: false,
        }
    }
}

/// Technologies satisfying the requirements, in table order.
pub fn select(reqs: &Requirements) -> Vec<OcsTechnology> {
    table_c1()
        .into_iter()
        .filter(|t| {
            t.max_ports >= reqs.min_ports
                && t.insertion_loss.db() <= reqs.max_insertion_loss.db()
                && t.switching_time <= reqs.max_switching_time
                && (reqs.allow_high_cost || t.cost != CostClass::High)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_five_rows() {
        assert_eq!(table_c1().len(), 5);
    }

    #[test]
    fn mems_wins_the_paper_requirements() {
        // The paper's own conclusion falls out of the table: MEMS is the
        // only technology meeting radix + loss + cost simultaneously.
        let winners = select(&Requirements::paper_use_cases());
        assert_eq!(winners.len(), 1, "expected a unique winner: {winners:?}");
        assert_eq!(winners[0].name, "MEMS");
    }

    #[test]
    fn robotic_fails_on_switching_time() {
        let mut reqs = Requirements::paper_use_cases();
        reqs.max_switching_time = Nanos::from_secs_f64(3600.0);
        let names: Vec<_> = select(&reqs).iter().map(|t| t.name).collect();
        assert!(names.contains(&"Robotic"), "relaxing time admits Robotic");
    }

    #[test]
    fn guided_wave_fails_on_radix_and_loss() {
        let gw = table_c1()
            .into_iter()
            .find(|t| t.name == "Guided Wave")
            .unwrap();
        let reqs = Requirements::paper_use_cases();
        assert!(gw.max_ports < reqs.min_ports);
        assert!(gw.insertion_loss.db() > reqs.max_insertion_loss.db());
    }

    #[test]
    fn fast_switching_technologies_exist_for_future_use_cases() {
        // §6: nanosecond/microsecond switching motivates other techs.
        let fast: Vec<_> = table_c1()
            .into_iter()
            .filter(|t| t.switching_time < Nanos::from_micros(1))
            .map(|t| t.name)
            .collect();
        assert_eq!(fast, vec!["Guided Wave", "Wavelength"]);
    }
}
