//! The non-blocking N→S connection state machine.
//!
//! A Palomar crossbar holds a *partial bijection* from North ports to South
//! ports: any North port may connect to any South port, no two connections
//! may share a port, and — because the optical core is free-space — any
//! bijection is realizable (strictly non-blocking). The paper leans on two
//! consequences (§2.3, §4.2.4): new circuits can be added without touching
//! existing ones, and reconfiguration can be expressed as a *delta* so
//! running jobs on untouched ports see zero disturbance.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// A port index on one side of the switch (0-based).
pub type PortId = u16;

/// State of a single connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectionState {
    /// Mirrors are actuating/aligning; light is not yet flowing.
    Connecting,
    /// Aligned; circuit is carrying (or ready to carry) light.
    Connected,
}

/// Errors from crossbar operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossbarError {
    /// Port index ≥ the port count.
    PortOutOfRange(PortId),
    /// The North port is already in use.
    NorthBusy(PortId),
    /// The South port is already in use.
    SouthBusy(PortId),
    /// No such connection.
    NotConnected(PortId),
    /// The requested mapping is not injective (two norths share a south).
    NotBijective {
        /// The South port claimed twice.
        south: PortId,
    },
}

impl std::fmt::Display for CrossbarError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CrossbarError::PortOutOfRange(p) => write!(f, "port {p} out of range"),
            CrossbarError::NorthBusy(p) => write!(f, "north port {p} already connected"),
            CrossbarError::SouthBusy(p) => write!(f, "south port {p} already connected"),
            CrossbarError::NotConnected(p) => write!(f, "north port {p} not connected"),
            CrossbarError::NotBijective { south } => {
                write!(f, "mapping assigns south port {south} twice")
            }
        }
    }
}

impl std::error::Error for CrossbarError {}

/// A desired full or partial configuration: North port → South port.
///
/// Stored as a sorted map so diffs and iteration are deterministic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortMapping {
    map: BTreeMap<PortId, PortId>,
}

impl PortMapping {
    /// Empty mapping.
    pub fn new() -> PortMapping {
        PortMapping::default()
    }

    /// Builds from pairs, validating injectivity.
    pub fn from_pairs(
        pairs: impl IntoIterator<Item = (PortId, PortId)>,
    ) -> Result<PortMapping, CrossbarError> {
        let mut map = BTreeMap::new();
        let mut used_south = std::collections::BTreeSet::new();
        for (n, s) in pairs {
            if !used_south.insert(s) {
                return Err(CrossbarError::NotBijective { south: s });
            }
            map.insert(n, s);
        }
        if map.len() != used_south.len() {
            // A north inserted twice overwrote an entry, leaving a stale
            // south in `used_south`; treat as non-bijective.
            return Err(CrossbarError::NotBijective {
                south: *used_south.iter().next().expect("non-empty"),
            });
        }
        Ok(PortMapping { map })
    }

    /// Adds or replaces one pair. Returns an error if `south` is already
    /// targeted by a different north port.
    pub fn insert(&mut self, north: PortId, south: PortId) -> Result<(), CrossbarError> {
        if self.map.iter().any(|(&n, &s)| s == south && n != north) {
            return Err(CrossbarError::NotBijective { south });
        }
        self.map.insert(north, south);
        Ok(())
    }

    /// The South port for a North port, if mapped.
    pub fn get(&self, north: PortId) -> Option<PortId> {
        self.map.get(&north).copied()
    }

    /// Number of circuits in the mapping.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if no circuits.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates `(north, south)` pairs in port order.
    pub fn pairs(&self) -> impl Iterator<Item = (PortId, PortId)> + '_ {
        self.map.iter().map(|(&n, &s)| (n, s))
    }
}

/// The diff between the current configuration and a target mapping.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MappingDelta {
    /// Circuits to tear down (north ports).
    pub remove: Vec<PortId>,
    /// Circuits to establish.
    pub add: Vec<(PortId, PortId)>,
    /// Circuits left completely untouched.
    pub unchanged: Vec<(PortId, PortId)>,
}

/// The live crossbar state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Crossbar {
    ports: usize,
    /// north → (south, state)
    connections: BTreeMap<PortId, (PortId, ConnectionState)>,
    /// south → north reverse index.
    south_owner: BTreeMap<PortId, PortId>,
}

impl Crossbar {
    /// A crossbar with `ports` ports per side.
    pub fn new(ports: usize) -> Crossbar {
        assert!(ports > 0 && ports <= u16::MAX as usize, "port count sane");
        Crossbar {
            ports,
            connections: BTreeMap::new(),
            south_owner: BTreeMap::new(),
        }
    }

    /// Ports per side.
    pub fn ports(&self) -> usize {
        self.ports
    }

    /// Number of live circuits.
    pub fn circuit_count(&self) -> usize {
        self.connections.len()
    }

    fn check_port(&self, p: PortId) -> Result<(), CrossbarError> {
        if (p as usize) < self.ports {
            Ok(())
        } else {
            Err(CrossbarError::PortOutOfRange(p))
        }
    }

    /// Establishes a circuit; it starts in [`ConnectionState::Connecting`].
    pub fn connect(&mut self, north: PortId, south: PortId) -> Result<(), CrossbarError> {
        self.check_port(north)?;
        self.check_port(south)?;
        if self.connections.contains_key(&north) {
            return Err(CrossbarError::NorthBusy(north));
        }
        if self.south_owner.contains_key(&south) {
            return Err(CrossbarError::SouthBusy(south));
        }
        self.connections
            .insert(north, (south, ConnectionState::Connecting));
        self.south_owner.insert(south, north);
        Ok(())
    }

    /// Tears down the circuit on a North port.
    pub fn disconnect(&mut self, north: PortId) -> Result<PortId, CrossbarError> {
        self.check_port(north)?;
        match self.connections.remove(&north) {
            Some((south, _)) => {
                self.south_owner.remove(&south);
                Ok(south)
            }
            None => Err(CrossbarError::NotConnected(north)),
        }
    }

    /// Marks a connecting circuit as aligned and carrying light.
    pub fn mark_connected(&mut self, north: PortId) -> Result<(), CrossbarError> {
        match self.connections.get_mut(&north) {
            Some((_, state)) => {
                *state = ConnectionState::Connected;
                Ok(())
            }
            None => Err(CrossbarError::NotConnected(north)),
        }
    }

    /// Looks up the circuit on a North port.
    pub fn circuit(&self, north: PortId) -> Option<(PortId, ConnectionState)> {
        self.connections.get(&north).copied()
    }

    /// The North port holding a South port, if any.
    pub fn south_owner(&self, south: PortId) -> Option<PortId> {
        self.south_owner.get(&south).copied()
    }

    /// The current configuration as a [`PortMapping`].
    pub fn mapping(&self) -> PortMapping {
        PortMapping {
            map: self
                .connections
                .iter()
                .map(|(&n, &(s, _))| (n, s))
                .collect(),
        }
    }

    /// Computes the minimal delta from the current state to `target`.
    ///
    /// A circuit appears in `unchanged` only if the exact (north, south)
    /// pair survives — those ports will not be disturbed when the delta is
    /// applied. Everything else is torn down and re-established.
    pub fn delta_to(&self, target: &PortMapping) -> MappingDelta {
        let mut delta = MappingDelta::default();
        for (&n, &(s, _)) in &self.connections {
            match target.get(n) {
                Some(ts) if ts == s => delta.unchanged.push((n, s)),
                _ => delta.remove.push(n),
            }
        }
        for (n, s) in target.pairs() {
            match self.connections.get(&n) {
                Some(&(cur, _)) if cur == s => {}
                _ => delta.add.push((n, s)),
            }
        }
        delta
    }

    /// Validates that `target` is applicable: all ports in range, bijective
    /// (guaranteed by construction of `PortMapping`).
    pub fn validate(&self, target: &PortMapping) -> Result<(), CrossbarError> {
        for (n, s) in target.pairs() {
            self.check_port(n)?;
            self.check_port(s)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_disconnect_roundtrip() {
        let mut xb = Crossbar::new(136);
        xb.connect(3, 77).unwrap();
        assert_eq!(xb.circuit(3), Some((77, ConnectionState::Connecting)));
        assert_eq!(xb.south_owner(77), Some(3));
        xb.mark_connected(3).unwrap();
        assert_eq!(xb.circuit(3), Some((77, ConnectionState::Connected)));
        assert_eq!(xb.disconnect(3).unwrap(), 77);
        assert_eq!(xb.circuit(3), None);
        assert_eq!(xb.south_owner(77), None);
    }

    #[test]
    fn port_conflicts_rejected() {
        let mut xb = Crossbar::new(136);
        xb.connect(1, 2).unwrap();
        assert_eq!(xb.connect(1, 50), Err(CrossbarError::NorthBusy(1)));
        assert_eq!(xb.connect(9, 2), Err(CrossbarError::SouthBusy(2)));
        assert_eq!(xb.connect(200, 0), Err(CrossbarError::PortOutOfRange(200)));
        assert_eq!(xb.disconnect(5), Err(CrossbarError::NotConnected(5)));
    }

    #[test]
    fn any_full_permutation_is_realizable() {
        // Strictly non-blocking: a full 136-circuit permutation connects.
        let mut xb = Crossbar::new(136);
        for i in 0..136u16 {
            xb.connect(i, (i * 7 + 3) % 136).unwrap();
        }
        assert_eq!(xb.circuit_count(), 136);
    }

    #[test]
    fn mapping_rejects_non_bijection() {
        let err = PortMapping::from_pairs([(0, 5), (1, 5)]).unwrap_err();
        assert_eq!(err, CrossbarError::NotBijective { south: 5 });
        let mut m = PortMapping::new();
        m.insert(0, 9).unwrap();
        assert!(m.insert(4, 9).is_err());
        // Re-inserting the same pair is fine.
        m.insert(0, 9).unwrap();
    }

    #[test]
    fn delta_preserves_untouched_circuits() {
        let mut xb = Crossbar::new(136);
        xb.connect(0, 10).unwrap();
        xb.connect(1, 11).unwrap();
        xb.connect(2, 12).unwrap();
        // Target: keep 0→10, move 1→20, drop 2, add 5→15.
        let target = PortMapping::from_pairs([(0, 10), (1, 20), (5, 15)]).unwrap();
        let delta = xb.delta_to(&target);
        assert_eq!(delta.unchanged, vec![(0, 10)]);
        assert_eq!(delta.remove, vec![1, 2]);
        assert_eq!(delta.add, vec![(1, 20), (5, 15)]);
    }

    #[test]
    fn delta_to_identical_mapping_is_empty() {
        let mut xb = Crossbar::new(8);
        xb.connect(0, 1).unwrap();
        xb.connect(2, 3).unwrap();
        let delta = xb.delta_to(&xb.mapping());
        assert!(delta.remove.is_empty());
        assert!(delta.add.is_empty());
        assert_eq!(delta.unchanged.len(), 2);
    }

    #[test]
    fn self_loop_north_to_same_index_south_allowed() {
        // N_i → S_i is a legitimate circuit (used for single-cube torus
        // wraparound in the superpod wiring).
        let mut xb = Crossbar::new(136);
        xb.connect(42, 42).unwrap();
        assert_eq!(xb.circuit(42), Some((42, ConnectionState::Connecting)));
    }

    #[test]
    fn mapping_is_deterministic_in_iteration_order() {
        let m = PortMapping::from_pairs([(5, 1), (0, 3), (2, 2)]).unwrap();
        let pairs: Vec<_> = m.pairs().collect();
        assert_eq!(pairs, vec![(0, 3), (2, 2), (5, 1)]);
    }
}
