//! Telemetry and anomaly reporting.
//!
//! §3.2.2: "We invested heavily in improving telemetry and anomaly
//! reporting to account for the complexity of the hardware and the software
//! interactions that manage it ... The ability to deeply integrate the
//! control and monitoring software with the rest of our network
//! infrastructure was essential given that the switches had a large 'blast
//! radius'." This module is the per-switch counter/alarm surface a fleet
//! control plane scrapes.

use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};

/// Severity of an alarm.
///
/// This is the fleet-wide scale from `lightwave-telemetry`, re-exported so
/// per-switch alarms and fleet incidents share one explicit is-worse-than
/// ordering (`Info < Warning < Critical`, see [`Severity::is_worse_than`]).
pub use lightwave_telemetry::Severity;

/// A timestamped alarm.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Alarm {
    /// When it fired (simulation time).
    pub at: Nanos,
    /// How bad.
    pub severity: Severity,
    /// Machine-parseable alarm code.
    pub code: AlarmCode,
}

/// Alarm codes raised by the simulated Palomar.
///
/// Not `Eq`: [`AlarmCode::HighLoss`] carries the measured loss as `f64`
/// (the raw telemetry reading). The fleet aggregator's `AlarmCause`
/// quantizes that to milli-dB so incidents can be hashed and map-keyed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum AlarmCode {
    /// A mirror failed in the field; spare swapped if available.
    MirrorFailed {
        /// North (true) or South (false) die.
        north_die: bool,
        /// Port whose mirror failed.
        port: u16,
        /// Whether a spare restored the port.
        spare_used: bool,
    },
    /// Alignment loop failed to converge on a circuit.
    AlignmentTimeout {
        /// North port of the circuit.
        north: u16,
    },
    /// A FRU failed.
    FruFailed {
        /// Slot index in the chassis.
        slot: usize,
    },
    /// The chassis dropped below operational redundancy.
    ChassisDown,
    /// A path's measured insertion loss exceeded its alarm threshold.
    HighLoss {
        /// North port.
        north: u16,
        /// South port.
        south: u16,
        /// Measured loss, dB.
        loss_db: f64,
    },
}

/// Monotonic counters (Prometheus-style) for one switch.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Circuits established since boot.
    pub connects: u64,
    /// Circuits torn down since boot.
    pub disconnects: u64,
    /// Bulk reconfigurations applied.
    pub reconfigs: u64,
    /// Circuits that were left undisturbed across reconfigs (the
    /// non-disruption guarantee, counted for audit).
    pub circuits_preserved: u64,
    /// Alignment convergences run.
    pub alignments: u64,
    /// Alignment failures.
    pub alignment_failures: u64,
    /// Field mirror failures.
    pub mirror_failures: u64,
    /// Spare mirrors consumed.
    pub spares_consumed: u64,
}

/// The telemetry surface of one switch.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Telemetry {
    /// Counter block.
    pub counters: Counters,
    alarms: Vec<Alarm>,
}

impl Telemetry {
    /// Creates an empty telemetry block.
    pub fn new() -> Telemetry {
        Telemetry::default()
    }

    /// Raises an alarm.
    pub fn raise(&mut self, at: Nanos, severity: Severity, code: AlarmCode) {
        self.alarms.push(Alarm { at, severity, code });
    }

    /// All alarms since boot, oldest first.
    pub fn alarms(&self) -> &[Alarm] {
        &self.alarms
    }

    /// Alarms at or above a severity.
    pub fn alarms_at_least(&self, severity: Severity) -> impl Iterator<Item = &Alarm> {
        self.alarms.iter().filter(move |a| a.severity >= severity)
    }

    /// Clears acknowledged alarms below `severity` (an operator "ack").
    pub fn acknowledge_below(&mut self, severity: Severity) {
        self.alarms.retain(|a| a.severity >= severity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alarm_filtering_by_severity() {
        let mut t = Telemetry::new();
        t.raise(Nanos(1), Severity::Info, AlarmCode::ChassisDown);
        t.raise(Nanos(2), Severity::Critical, AlarmCode::ChassisDown);
        t.raise(
            Nanos(3),
            Severity::Warning,
            AlarmCode::AlignmentTimeout { north: 4 },
        );
        assert_eq!(t.alarms().len(), 3);
        assert_eq!(t.alarms_at_least(Severity::Warning).count(), 2);
        assert_eq!(t.alarms_at_least(Severity::Critical).count(), 1);
    }

    #[test]
    fn acknowledge_clears_low_severity() {
        let mut t = Telemetry::new();
        t.raise(Nanos(1), Severity::Info, AlarmCode::ChassisDown);
        t.raise(Nanos(2), Severity::Critical, AlarmCode::ChassisDown);
        t.acknowledge_below(Severity::Critical);
        assert_eq!(t.alarms().len(), 1);
        assert_eq!(t.alarms()[0].severity, Severity::Critical);
    }

    #[test]
    fn severity_orders() {
        assert!(Severity::Critical > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        // The re-exported type keeps the explicit is-worse-than relation.
        assert!(Severity::Critical.is_worse_than(Severity::Warning));
        assert!(!Severity::Info.is_worse_than(Severity::Info));
    }
}
