//! MEMS mirror dies: fabrication yield, qualification, spares, failures.
//!
//! §3.2.2: "To increase yield and redundancy, 176 micro-mirrors were
//! fabricated on each MEMS die from which the best 136 mirrors were used
//! for the switch with additional qualified connections used as
//! manufacturing spares." Each of the two dies in the optical core steers
//! one axis of the path; a port is served by one mirror per die.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use rand_distr::{Distribution, Normal};
use serde::{Deserialize, Serialize};

/// Mirrors fabricated per die.
pub const FABRICATED_MIRRORS: usize = 176;
/// Mirrors placed in service per die.
pub const SERVICE_MIRRORS: usize = 136;

/// Operational state of one micro-mirror.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MirrorState {
    /// In service, steering a port.
    Active,
    /// Qualified at manufacturing but held as a spare.
    Spare,
    /// Failed qualification (bad loss, stiction, dead actuator).
    RejectedAtFab,
    /// Failed in the field (stuck or drifting); needs spare swap.
    Failed,
}

/// One micro-mirror with its quality figure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Mirror {
    /// Intrinsic excess loss of this mirror at perfect pointing, dB —
    /// mirror curvature/roughness variation from fabrication.
    pub intrinsic_loss_db: f64,
    /// Current state.
    pub state: MirrorState,
}

/// A MEMS die: 176 fabricated mirrors, the best 136 active.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemsDie {
    mirrors: Vec<Mirror>,
    /// `port_to_mirror[p]` = index of the mirror currently serving port p.
    port_to_mirror: Vec<usize>,
}

impl MemsDie {
    /// Fabricates the production Palomar die: [`FABRICATED_MIRRORS`]
    /// fabricated, best [`SERVICE_MIRRORS`] in service.
    pub fn fabricate(seed: u64, yield_prob: f64) -> Result<MemsDie, DieYieldError> {
        Self::fabricate_sized(seed, yield_prob, FABRICATED_MIRRORS, SERVICE_MIRRORS)
    }

    /// Fabricates a die of arbitrary size — e.g. the §6 next-generation
    /// 300-port part ("our current internal development efforts to
    /// manufacture a larger 300×300 MEMS-based OCS").
    ///
    /// `yield_prob` is the probability a fabricated mirror qualifies at
    /// all; fabrication fails if fewer than `service` mirrors qualify.
    pub fn fabricate_sized(
        seed: u64,
        yield_prob: f64,
        fabricated: usize,
        service: usize,
    ) -> Result<MemsDie, DieYieldError> {
        assert!(
            (0.0..=1.0).contains(&yield_prob),
            "yield must be a probability"
        );
        assert!(
            service <= fabricated,
            "cannot field more mirrors than fabricated"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let loss_dist = Normal::<f64>::new(0.25, 0.08).expect("valid sigma");
        let mut mirrors: Vec<Mirror> = (0..fabricated)
            .map(|_| {
                let qualifies = rng.random_bool(yield_prob);
                Mirror {
                    intrinsic_loss_db: loss_dist.sample(&mut rng).max(0.05),
                    state: if qualifies {
                        MirrorState::Spare
                    } else {
                        MirrorState::RejectedAtFab
                    },
                }
            })
            .collect();

        // Rank qualified mirrors by loss; the best `service` go active.
        let mut qualified: Vec<usize> = (0..fabricated)
            .filter(|&i| mirrors[i].state == MirrorState::Spare)
            .collect();
        if qualified.len() < service {
            return Err(DieYieldError {
                qualified: qualified.len(),
                needed: service,
            });
        }
        qualified.sort_by(|&a, &b| {
            mirrors[a]
                .intrinsic_loss_db
                .partial_cmp(&mirrors[b].intrinsic_loss_db)
                .expect("losses are finite")
        });
        let port_to_mirror: Vec<usize> = qualified[..service].to_vec();
        for &m in &port_to_mirror {
            mirrors[m].state = MirrorState::Active;
        }
        Ok(MemsDie {
            mirrors,
            port_to_mirror,
        })
    }

    /// The mirror currently serving `port`.
    ///
    /// # Panics
    /// Panics if `port ≥ 136`.
    pub fn mirror_for_port(&self, port: usize) -> &Mirror {
        &self.mirrors[self.port_to_mirror[port]]
    }

    /// Number of healthy spares remaining.
    pub fn spares_remaining(&self) -> usize {
        self.mirrors
            .iter()
            .filter(|m| m.state == MirrorState::Spare)
            .count()
    }

    /// Number of ports this die serves.
    pub fn service_ports(&self) -> usize {
        self.port_to_mirror.len()
    }

    /// Marks the mirror serving `port` failed and swaps in the best spare.
    ///
    /// Returns `true` if a spare was available (port restored), `false` if
    /// the die is out of spares (port permanently degraded — a field
    /// replacement of the whole core is needed).
    pub fn fail_and_swap(&mut self, port: usize) -> bool {
        let old = self.port_to_mirror[port];
        self.mirrors[old].state = MirrorState::Failed;
        let best_spare = (0..self.mirrors.len())
            .filter(|&i| self.mirrors[i].state == MirrorState::Spare)
            .min_by(|&a, &b| {
                self.mirrors[a]
                    .intrinsic_loss_db
                    .partial_cmp(&self.mirrors[b].intrinsic_loss_db)
                    .expect("losses are finite")
            });
        match best_spare {
            Some(s) => {
                self.mirrors[s].state = MirrorState::Active;
                self.port_to_mirror[port] = s;
                true
            }
            None => false,
        }
    }

    /// Degrades the mirror currently serving `port` by `loss_db` of
    /// additional intrinsic loss — the slow optical creep (contamination,
    /// actuator drift) that the 850 nm monitor path exists to catch
    /// (§3.2.2: the link budget erodes in tenths of a dB, silently).
    ///
    /// The mirror stays `Active`: degradation raises the served path's
    /// loss and drift but, unlike [`MemsDie::fail_and_swap`], changes no
    /// state and raises no alarm — detection is the health layer's job.
    pub fn degrade(&mut self, port: usize, loss_db: f64) {
        self.mirrors[self.port_to_mirror[port]].intrinsic_loss_db += loss_db.max(0.0);
    }

    /// Count of mirrors in each state `(active, spare, rejected, failed)`.
    pub fn census(&self) -> (usize, usize, usize, usize) {
        let mut c = (0, 0, 0, 0);
        for m in &self.mirrors {
            match m.state {
                MirrorState::Active => c.0 += 1,
                MirrorState::Spare => c.1 += 1,
                MirrorState::RejectedAtFab => c.2 += 1,
                MirrorState::Failed => c.3 += 1,
            }
        }
        c
    }
}

/// A die failed fabrication: not enough qualifying mirrors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DieYieldError {
    /// How many mirrors qualified.
    pub qualified: usize,
    /// How many were needed.
    pub needed: usize,
}

impl std::fmt::Display for DieYieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "die yield failure: only {} mirrors qualified (need {})",
            self.qualified, self.needed
        )
    }
}

impl std::error::Error for DieYieldError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fabrication_activates_best_136() {
        let die = MemsDie::fabricate(1, 0.95).expect("95% yield fabricates");
        let (active, spare, rejected, failed) = die.census();
        assert_eq!(active, SERVICE_MIRRORS);
        assert_eq!(active + spare + rejected + failed, FABRICATED_MIRRORS);
        assert_eq!(failed, 0);
        // Every active mirror is at least as good as every spare.
        let worst_active = (0..SERVICE_MIRRORS)
            .map(|p| die.mirror_for_port(p).intrinsic_loss_db)
            .fold(0.0f64, f64::max);
        let best_spare = die
            .mirrors
            .iter()
            .filter(|m| m.state == MirrorState::Spare)
            .map(|m| m.intrinsic_loss_db)
            .fold(f64::INFINITY, f64::min);
        assert!(worst_active <= best_spare + 1e-12);
    }

    #[test]
    fn low_yield_fails_fabrication() {
        // At 50% yield, expect ~88 qualified of 176 — not enough.
        let err = MemsDie::fabricate(2, 0.5).unwrap_err();
        assert!(err.qualified < SERVICE_MIRRORS);
    }

    #[test]
    fn spare_swap_restores_port() {
        let mut die = MemsDie::fabricate(3, 0.95).unwrap();
        let spares_before = die.spares_remaining();
        assert!(spares_before > 0, "healthy die has spares");
        let old_loss = die.mirror_for_port(7).intrinsic_loss_db;
        assert!(die.fail_and_swap(7));
        assert_eq!(die.spares_remaining(), spares_before - 1);
        assert_eq!(die.mirror_for_port(7).state, MirrorState::Active);
        // Swapped-in spare is (weakly) worse than the original best pick.
        assert!(die.mirror_for_port(7).intrinsic_loss_db >= old_loss - 1e-12);
    }

    #[test]
    fn degrade_raises_loss_without_changing_state() {
        let mut die = MemsDie::fabricate(5, 0.95).unwrap();
        let (active, spare, _, failed) = die.census();
        let before = die.mirror_for_port(11).intrinsic_loss_db;
        die.degrade(11, 0.03);
        die.degrade(11, 0.03);
        let after = die.mirror_for_port(11).intrinsic_loss_db;
        assert!((after - before - 0.06).abs() < 1e-12);
        assert_eq!(die.mirror_for_port(11).state, MirrorState::Active);
        assert_eq!(die.census(), (active, spare, 176 - active - spare, failed));
        // Negative deltas are clamped: degradation only accumulates.
        die.degrade(11, -1.0);
        assert_eq!(die.mirror_for_port(11).intrinsic_loss_db, after);
    }

    #[test]
    fn exhausting_spares_reports_failure() {
        let mut die = MemsDie::fabricate(4, 0.95).unwrap();
        let mut port = 0usize;
        while die.spares_remaining() > 0 {
            assert!(die.fail_and_swap(port % SERVICE_MIRRORS));
            port += 1;
        }
        assert!(!die.fail_and_swap(0), "no spares left");
    }

    #[test]
    fn next_gen_300_port_die_fabricates() {
        // §6: the 300×300 part needs ~380 fabricated mirrors at 95% yield
        // to field 300 with spares left over.
        let die = MemsDie::fabricate_sized(21, 0.95, 380, 300).expect("yields");
        assert_eq!(die.service_ports(), 300);
        assert!(die.spares_remaining() > 20);
    }

    #[test]
    fn fabrication_is_deterministic_per_seed() {
        let a = MemsDie::fabricate(9, 0.95).unwrap();
        let b = MemsDie::fabricate(9, 0.95).unwrap();
        assert_eq!(a, b);
    }
}
