//! The Palomar optical circuit switch, simulated.
//!
//! Palomar (§3.2 of the paper) is a 136×136-port free-space MEMS OCS: light
//! enters through 2D fiber-collimator arrays, bounces off two MEMS mirror
//! arrays whose individually tiltable mirrors steer any North port to any
//! South port, and exits — broadband, reciprocal, bidirectional, with no
//! per-packet processing. Two cameras watch 850 nm monitor beams
//! superimposed on the signal path and close the mirror-alignment loop in
//! software.
//!
//! This crate simulates that machine faithfully enough to reproduce the
//! paper's hardware evaluation (§4.1.1):
//!
//! - [`mems`] — mirror dies: 176 mirrors fabricated per die, the best 136
//!   qualified for service, the rest manufacturing spares; per-mirror
//!   failure and spare-swap semantics.
//! - [`camera`] — the closed-loop image-based alignment: iterative
//!   convergence of pointing error, which sets both switching time and the
//!   residual (pointing-dependent) excess loss.
//! - [`crossbar`] — the non-blocking bijective N→S connection state
//!   machine, with *non-disruptive delta reconfiguration*: applying a new
//!   mapping only touches ports whose assignment changed (§2.3's
//!   "keep certain connections undisturbed while making changes
//!   elsewhere").
//! - [`loss`] — per-path insertion/return loss sampling (Fig. 10).
//! - [`chassis`] — FRUs, redundant PSUs/fans, hot-swap semantics (mirror
//!   state is lost when an HV driver board is swapped, §3.2.2), and the
//!   108 W power model.
//! - [`telemetry`] — the counters and alarms a production control plane
//!   scrapes ("we invested heavily in improving telemetry", §3.2.2).
//! - [`instrument`] — the scraper bridging one switch into the fleet
//!   observability subsystem (`lightwave-telemetry`).
//! - [`tech`] — the OCS technology-comparison data of Table C.1.
//!
//! The facade type is [`PalomarOcs`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod camera;
pub mod chassis;
pub mod crossbar;
pub mod instrument;
pub mod loss;
pub mod mems;
pub mod tech;
pub mod telemetry;

mod palomar;

pub use crossbar::{ConnectionState, Crossbar, CrossbarError, PortId, PortMapping};
pub use palomar::{DriftChange, OcsError, OcsHealth, PalomarOcs, ReconfigReport};

/// Total duplex ports per Palomar OCS (including the 8 spares used for
/// link testing and repairs — Appendix A).
pub const TOTAL_PORTS: usize = 136;

/// Ports available to the fabric after reserving spares.
pub const USABLE_PORTS: usize = 128;

/// Spare ports reserved for testing and repair.
pub const SPARE_PORTS: usize = TOTAL_PORTS - USABLE_PORTS;
