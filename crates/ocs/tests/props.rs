//! Property tests for the Palomar OCS state machines.

use lightwave_ocs::{ConnectionState, Crossbar, PalomarOcs, PortMapping};
use lightwave_units::Nanos;
use proptest::prelude::*;

/// A random crossbar operation.
#[derive(Debug, Clone)]
enum Op {
    Connect(u16, u16),
    Disconnect(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u16..32, 0u16..32).prop_map(|(n, s)| Op::Connect(n, s)),
        (0u16..32).prop_map(Op::Disconnect),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Under any operation sequence the crossbar stays a partial bijection
    /// with a consistent reverse index.
    #[test]
    fn crossbar_invariants_under_random_ops(ops in proptest::collection::vec(op_strategy(), 0..60)) {
        let mut xb = Crossbar::new(32);
        for op in ops {
            match op {
                Op::Connect(n, s) => {
                    let _ = xb.connect(n, s);
                }
                Op::Disconnect(n) => {
                    let _ = xb.disconnect(n);
                }
            }
        }
        // Bijectivity: every connected south port has exactly one owner,
        // and the reverse index agrees with the forward map.
        let mapping = xb.mapping();
        let mut souths = std::collections::BTreeSet::new();
        for (n, s) in mapping.pairs() {
            prop_assert!(souths.insert(s), "south port {s} claimed twice");
            prop_assert_eq!(xb.south_owner(s), Some(n));
        }
        prop_assert_eq!(mapping.len(), xb.circuit_count());
    }

    /// delta_to is idempotent: applying the delta then diffing again
    /// yields an empty delta.
    #[test]
    fn crossbar_delta_idempotent(
        initial in proptest::collection::vec((0u16..24, 0u16..24), 0..12),
        target in proptest::collection::vec((0u16..24, 0u16..24), 0..12),
    ) {
        let mut xb = Crossbar::new(24);
        for (n, s) in initial {
            let _ = xb.connect(n, s);
        }
        let mut tgt = PortMapping::new();
        for (n, s) in target {
            let _ = tgt.insert(n, s);
        }
        let delta = xb.delta_to(&tgt);
        for &n in &delta.remove {
            xb.disconnect(n).expect("valid removal");
        }
        for &(n, s) in &delta.add {
            xb.connect(n, s).expect("valid add");
        }
        let second = xb.delta_to(&tgt);
        prop_assert!(second.remove.is_empty());
        prop_assert!(second.add.is_empty());
    }

    /// A switch that applies any valid mapping and settles reports every
    /// circuit Connected, and reapplying the same mapping disturbs nothing.
    #[test]
    fn palomar_settles_any_mapping(seed in 0u64..100, pairs in proptest::collection::vec((0u16..64, 64u16..128), 1..20)) {
        let mut tgt = PortMapping::new();
        for (n, s) in pairs {
            let _ = tgt.insert(n, s);
        }
        let mut ocs = PalomarOcs::new(0, seed);
        ocs.apply_mapping(&tgt).expect("valid mapping");
        ocs.advance(Nanos::from_millis(500));
        for (n, _) in tgt.pairs() {
            prop_assert!(ocs.circuit_ready(n), "port {n} should be carrying");
        }
        let report = ocs.apply_mapping(&tgt).expect("same mapping");
        prop_assert_eq!(report.added.len(), 0);
        prop_assert_eq!(report.removed.len(), 0);
        prop_assert_eq!(report.untouched, tgt.len());
        // Still carrying.
        for (n, _) in tgt.pairs() {
            prop_assert!(matches!(
                ocs.mapping().get(n).map(|_| ConnectionState::Connected),
                Some(ConnectionState::Connected)
            ));
        }
    }

    /// Insertion loss is stable and bounded for every path of a healthy
    /// switch.
    #[test]
    fn loss_bounded_everywhere(seed in 0u64..20, n in 0usize..136, s in 0usize..136) {
        let ocs = PalomarOcs::new(0, seed);
        let il = ocs.optical_core().insertion_loss(n, s);
        prop_assert!(il.db() > 0.3 && il.db() < 4.5, "loss {il} out of band");
        prop_assert_eq!(il, ocs.optical_core().insertion_loss(n, s));
    }
}
