//! Runnable JSONL repro format for (shrunk) fault schedules.
//!
//! Line 1 is a header object pinning the format version, the stream
//! coordinates `(seed, index)` that reconstruct the world, the planted
//! bug (if any), and the invariant the repro demonstrates. Each
//! following line is one [`FaultKind`] event. The format is
//! line-oriented so a repro can be read, diffed, and truncated with
//! ordinary text tooling.

use crate::executor::{run_schedule, ChaosConfig, InjectedBug, ScheduleOutcome};
use crate::invariant::InvariantKind;
use crate::schedule::{FaultKind, FaultSchedule};
use serde::{Deserialize, Serialize};

/// The format tag of header line 1.
pub const REPRO_FORMAT: &str = "lightwave/chaos-repro/v1";

/// Header line of a repro file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct ReproHeader {
    format: String,
    seed: u64,
    index: u64,
    events: usize,
    inject: Option<InjectedBug>,
    invariant: Option<InvariantKind>,
}

/// A parsed repro: everything needed to replay a run byte-identically.
#[derive(Debug, Clone, PartialEq)]
pub struct Repro {
    /// The schedule (seed/index reconstruct the world; events drive it).
    pub schedule: FaultSchedule,
    /// Executor configuration (the planted bug, if the repro needs one).
    pub config: ChaosConfig,
    /// The invariant the repro claims to violate (`None` for clean runs).
    pub invariant: Option<InvariantKind>,
}

impl Repro {
    /// Replays the repro through the real control plane.
    pub fn replay(&self) -> ScheduleOutcome {
        run_schedule(&self.schedule, &self.config)
    }
}

/// Serializes a schedule (plus the config it ran under and the
/// invariant it violates) to repro JSONL.
pub fn write_repro(
    schedule: &FaultSchedule,
    config: &ChaosConfig,
    invariant: Option<InvariantKind>,
) -> String {
    let header = ReproHeader {
        format: REPRO_FORMAT.to_string(),
        seed: schedule.seed,
        index: schedule.index,
        events: schedule.events.len(),
        inject: config.inject,
        invariant,
    };
    let mut out = serde_json::to_string(&header).expect("header serializes");
    out.push('\n');
    for ev in &schedule.events {
        out.push_str(&serde_json::to_string(ev).expect("event serializes"));
        out.push('\n');
    }
    out
}

/// Parses repro JSONL back into a runnable [`Repro`].
pub fn parse_repro(text: &str) -> Result<Repro, String> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header_line = lines.next().ok_or("empty repro")?;
    let header: ReproHeader =
        serde_json::from_str(header_line).map_err(|e| format!("bad header: {e}"))?;
    if header.format != REPRO_FORMAT {
        return Err(format!(
            "unsupported format {:?}, want {REPRO_FORMAT:?}",
            header.format
        ));
    }
    let mut events: Vec<FaultKind> = Vec::with_capacity(header.events);
    for (i, line) in lines.enumerate() {
        events.push(
            serde_json::from_str(line).map_err(|e| format!("bad event on line {}: {e}", i + 2))?,
        );
    }
    if events.len() != header.events {
        return Err(format!(
            "header declares {} events, file has {}",
            header.events,
            events.len()
        ));
    }
    Ok(Repro {
        schedule: FaultSchedule {
            seed: header.seed,
            index: header.index,
            events,
        },
        config: ChaosConfig {
            inject: header.inject,
        },
        invariant: header.invariant,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_preserves_everything() {
        let s = FaultSchedule::generate(21, 7);
        let cfg = ChaosConfig {
            inject: Some(InjectedBug::SkipFlightPoll),
        };
        let text = write_repro(&s, &cfg, Some(InvariantKind::CriticalWithoutDump));
        let r = parse_repro(&text).unwrap();
        assert_eq!(r.schedule, s);
        assert_eq!(r.config, cfg);
        assert_eq!(r.invariant, Some(InvariantKind::CriticalWithoutDump));
        // Writing the parsed repro back is byte-identical.
        assert_eq!(write_repro(&r.schedule, &r.config, r.invariant), text);
    }

    #[test]
    fn replay_reproduces_the_violation() {
        let s = FaultSchedule {
            seed: 1,
            index: 0,
            events: vec![FaultKind::RelockStorm { ocs: 3, ports: 12 }],
        };
        let cfg = ChaosConfig {
            inject: Some(InjectedBug::SkipFlightPoll),
        };
        let text = write_repro(&s, &cfg, Some(InvariantKind::CriticalWithoutDump));
        let out = parse_repro(&text).unwrap().replay();
        let v = out.violation.expect("repro replays to its violation");
        assert_eq!(v.invariant, InvariantKind::CriticalWithoutDump);
    }

    #[test]
    fn malformed_inputs_are_rejected_with_context() {
        assert!(parse_repro("").is_err());
        assert!(parse_repro(
            "{\"format\":\"other/v9\",\"seed\":0,\"index\":0,\"events\":0,\"inject\":null,\"invariant\":null}"
        )
        .unwrap_err()
        .contains("unsupported format"));
        let truncated = "{\"format\":\"lightwave/chaos-repro/v1\",\"seed\":0,\"index\":0,\"events\":2,\"inject\":null,\"invariant\":null}\n\"Preempt\"\n";
        assert!(parse_repro(truncated).unwrap_err().contains("declares 2"));
    }
}
