//! Delta-debugging schedule shrinking.
//!
//! Given a schedule whose execution violates an invariant, [`shrink`]
//! reduces the event list to a locally minimal one that still violates
//! the *same* invariant. Soundness rests on the executor's purity
//! contract (see `executor.rs`): the world seed is `(seed, index)`, not
//! the event list, so dropping events never perturbs the behavior of
//! the events that remain — every candidate is a faithful sub-run.
//!
//! The reducer is classic ddmin over complements (Zeller & Hildebrandt)
//! followed by a one-at-a-time sweep to a fixpoint, so the result is
//! 1-minimal: removing any single remaining event loses the violation.

use crate::executor::{run_schedule, ChaosConfig};
use crate::invariant::Violation;
use crate::schedule::{FaultKind, FaultSchedule};

/// The outcome of shrinking one violating schedule.
#[derive(Debug, Clone)]
pub struct ShrinkResult {
    /// The minimal schedule (same `seed`/`index`, reduced events).
    pub schedule: FaultSchedule,
    /// The violation the minimal schedule still triggers.
    pub violation: Violation,
    /// Events in the original schedule.
    pub original_events: usize,
    /// Executor runs spent shrinking.
    pub runs: u32,
}

/// Shrinks `schedule` to a 1-minimal event list that still violates the
/// same [`crate::invariant::InvariantKind`] as the full schedule under
/// `cfg`. Returns
/// `None` if the full schedule does not violate anything.
pub fn shrink(schedule: &FaultSchedule, cfg: &ChaosConfig) -> Option<ShrinkResult> {
    let full = run_schedule(schedule, cfg);
    let target = full.violation?.invariant;
    let mut runs = 0u32;
    let mut test = |events: &[FaultKind]| -> Option<Violation> {
        runs += 1;
        let candidate = FaultSchedule {
            seed: schedule.seed,
            index: schedule.index,
            events: events.to_vec(),
        };
        run_schedule(&candidate, cfg)
            .violation
            .filter(|v| v.invariant == target)
    };

    let mut cur = schedule.events.clone();
    let mut n = 2usize;
    while cur.len() >= 2 {
        let mut reduced = false;
        for i in 0..n {
            let complement = drop_chunk(&cur, n, i);
            if test(&complement).is_some() {
                cur = complement;
                reduced = true;
                break;
            }
        }
        if reduced {
            n = 2.max(n - 1);
        } else {
            if n >= cur.len() {
                break;
            }
            n = (2 * n).min(cur.len());
        }
    }
    // One-at-a-time sweep: ddmin at max granularity already tried every
    // single removal, but removals can unlock each other — iterate to a
    // fixpoint for true 1-minimality.
    loop {
        let mut improved = false;
        for i in 0..cur.len() {
            let mut candidate = cur.clone();
            candidate.remove(i);
            if test(&candidate).is_some() {
                cur = candidate;
                improved = true;
                break;
            }
        }
        if !improved {
            break;
        }
    }

    let minimal = FaultSchedule {
        seed: schedule.seed,
        index: schedule.index,
        events: cur,
    };
    let violation = run_schedule(&minimal, cfg)
        .violation
        .expect("minimal schedule still violates by construction");
    Some(ShrinkResult {
        schedule: minimal,
        violation,
        original_events: schedule.events.len(),
        runs: runs + 1,
    })
}

/// `events` with chunk `i` of an `n`-way partition removed.
fn drop_chunk(events: &[FaultKind], n: usize, i: usize) -> Vec<FaultKind> {
    let len = events.len();
    let chunk = len.div_ceil(n);
    let start = (i * chunk).min(len);
    let end = ((i + 1) * chunk).min(len);
    let mut out = Vec::with_capacity(len - (end - start));
    out.extend_from_slice(&events[..start]);
    out.extend_from_slice(&events[end..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::InjectedBug;
    use crate::invariant::InvariantKind;

    #[test]
    fn drop_chunk_partitions_exactly() {
        let ev: Vec<FaultKind> = (0..5).map(|i| FaultKind::Advance { millis: i }).collect();
        // 2-way partition of 5: chunks [0..3), [3..5).
        assert_eq!(drop_chunk(&ev, 2, 0).len(), 2);
        assert_eq!(drop_chunk(&ev, 2, 1).len(), 3);
        // n == len: single-event removals.
        for i in 0..5 {
            let d = drop_chunk(&ev, 5, i);
            assert_eq!(d.len(), 4);
            assert!(!d.contains(&FaultKind::Advance { millis: i as u32 }));
        }
    }

    #[test]
    fn clean_schedule_does_not_shrink() {
        let s = FaultSchedule::generate(11, 0);
        assert!(shrink(&s, &ChaosConfig::default()).is_none());
    }

    #[test]
    fn planted_violation_shrinks_to_the_essential_events() {
        // Pad a known 2-event repro with noise the shrinker must strip.
        let s = FaultSchedule {
            seed: 5,
            index: 0,
            events: vec![
                FaultKind::Compose { cubes: 1 },
                FaultKind::Advance { millis: 5 },
                FaultKind::LinkFlap { ocs: 9, port: 3 },
                FaultKind::Compose { cubes: 2 },
                FaultKind::RelockStorm { ocs: 3, ports: 12 },
                FaultKind::Advance { millis: 20 },
                FaultKind::Preempt,
            ],
        };
        let cfg = ChaosConfig {
            inject: Some(InjectedBug::SkipFlightPoll),
        };
        let r = shrink(&s, &cfg).expect("full schedule violates");
        assert_eq!(r.violation.invariant, InvariantKind::CriticalWithoutDump);
        // The storm alone escalates to Critical: a 1-event repro.
        assert_eq!(
            r.schedule.events,
            vec![FaultKind::RelockStorm { ocs: 3, ports: 12 }]
        );
        assert_eq!(r.original_events, 7);
        // The minimal schedule is independently runnable.
        let replay = run_schedule(&r.schedule, &cfg);
        assert_eq!(replay.violation, Some(r.violation));
    }
}
