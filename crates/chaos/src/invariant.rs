//! Control-plane invariants, checked after every injected event.
//!
//! Each check re-derives its expectation independently of the executor's
//! own bookkeeping wherever possible — the point is to catch the control
//! plane (or the harness's model of it) lying, not to compare a variable
//! with itself.

use crate::executor::World;
use crate::schedule::FaultKind;
use lightwave_fabric::OcsId;
use lightwave_telemetry::Severity;
use lightwave_trace::{ReconfigPhase, SpanId, SpanKind, SpanRecord};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The invariant library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum InvariantKind {
    /// Traffic admitted on a link whose circuit is not camera-verified
    /// (`Connected`) on an operational switch.
    TrafficOnUnverifiedLink,
    /// Slice composition double-books a switch port or exceeds the
    /// switch radix, or a synced switch's live mapping disagrees with
    /// the union of active slices.
    RadixExceeded,
    /// A Critical incident without exactly one flight-recorder dump.
    CriticalWithoutDump,
    /// SLO downtime accounting disagrees with the injected fault
    /// timeline.
    SloDowntimeMismatch,
    /// Drain → mirror-settle → camera-verify → undrain phases of one
    /// switch reconfiguration are missing, out of order, overlapping,
    /// or escape their commit window.
    PhaseInterleaving,
    /// The fabric rejected the release of a live slice — a resource
    /// leak: the control plane must always be able to free capacity.
    ReleaseRejected,
    /// The service core leaked a request: submitted requests no longer
    /// partition into queued + running + completed + rejected.
    ServiceConservation,
    /// A service request the core believes is running has no live slice
    /// in the pod (or in the harness model) — admitted-implies-composed
    /// was broken without a preemption or completion.
    AdmittedWithoutSlice,
    /// The incremental campus rollup diverged from the flat ground
    /// truth: some switch/pod/campus node no longer equals the fold of
    /// its leaves (dirty-set propagation lost or double-counted a
    /// delta).
    RollupDivergence,
}

impl std::fmt::Display for InvariantKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            InvariantKind::TrafficOnUnverifiedLink => "traffic-on-unverified-link",
            InvariantKind::RadixExceeded => "radix-exceeded",
            InvariantKind::CriticalWithoutDump => "critical-without-dump",
            InvariantKind::SloDowntimeMismatch => "slo-downtime-mismatch",
            InvariantKind::PhaseInterleaving => "phase-interleaving",
            InvariantKind::ReleaseRejected => "release-rejected",
            InvariantKind::ServiceConservation => "service-conservation",
            InvariantKind::AdmittedWithoutSlice => "admitted-without-slice",
            InvariantKind::RollupDivergence => "rollup-divergence",
        };
        f.write_str(s)
    }
}

/// One invariant violation, with enough context to reproduce and read.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Which invariant broke.
    pub invariant: InvariantKind,
    /// Index of the event after which the check failed.
    pub event_index: u32,
    /// The event itself.
    pub event: FaultKind,
    /// Deterministic human-readable context.
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} after event #{} ({:?}): {}",
            self.invariant, self.event_index, self.event, self.detail
        )
    }
}

/// Runs every invariant; returns the first violation in library order.
pub fn check_all(w: &World, event_index: u32, event: FaultKind) -> Option<Violation> {
    let mk = |invariant, detail| Violation {
        invariant,
        event_index,
        event,
        detail,
    };
    if let Some(detail) = w.action_violation.clone() {
        return Some(mk(InvariantKind::ReleaseRejected, detail));
    }
    if let Some(d) = no_traffic_on_unverified(w) {
        return Some(mk(InvariantKind::TrafficOnUnverifiedLink, d));
    }
    if let Some(d) = radix_and_mapping(w) {
        return Some(mk(InvariantKind::RadixExceeded, d));
    }
    if let Some(d) = critical_dumped_exactly_once(w) {
        return Some(mk(InvariantKind::CriticalWithoutDump, d));
    }
    if let Some(d) = slo_matches_timeline(w) {
        return Some(mk(InvariantKind::SloDowntimeMismatch, d));
    }
    if let Some(d) = phases_legal(w) {
        return Some(mk(InvariantKind::PhaseInterleaving, d));
    }
    if let Some(d) = w.svc.conservation().err() {
        return Some(mk(InvariantKind::ServiceConservation, d));
    }
    if let Some(d) = service_running_backed(w) {
        return Some(mk(InvariantKind::AdmittedWithoutSlice, d));
    }
    // Invariant (h): after every event the scraped rollup nodes must
    // equal a flat re-fold of their leaves — check_consistency
    // re-derives the expectation from the leaf totals alone.
    if let Some(d) = w.rollup.check_consistency().err() {
        return Some(mk(InvariantKind::RollupDivergence, d));
    }
    None
}

/// Invariant (g): every request the service core believes is running
/// must be backed by a live slice — in the pod's own table *and* in the
/// harness's independent slice list (which admitted it via
/// [`ServiceEvent::Admitted`](lightwave_service::ServiceEvent)). A
/// running request can only leave via completion or preemption, both of
/// which retire the handle from all three in the same event.
fn service_running_backed(w: &World) -> Option<String> {
    for (request, handle, _cubes) in w.svc.running() {
        if w.pod.slice(handle).is_none() {
            return Some(format!(
                "service request {request} is running but handle {} is not live in the pod",
                handle.0
            ));
        }
        if !w.slices.iter().any(|ls| ls.handle == handle) {
            return Some(format!(
                "service request {request} is running but handle {} is unmirrored in the harness",
                handle.0
            ));
        }
    }
    None
}

/// Invariant (a): every circuit of every *admitted* slice must be
/// camera-verified (`Connected`) on every operational, reconciled
/// switch. Walks the fabric directly, not the executor's readiness
/// cache. Down and desynced switches are exempt — the slice runs
/// degraded there by design (§4.2.2), there is no light to admit.
fn no_traffic_on_unverified(w: &World) -> Option<String> {
    for ls in &w.slices {
        if !ls.admitted {
            continue;
        }
        for hop in ls.slice.required_hops() {
            for c in hop.circuits() {
                let Some(ocs) = w.pod.fabric().fleet.get(c.ocs) else {
                    continue;
                };
                if w.synced.contains(&c.ocs) && !ocs.circuit_ready(c.north) {
                    return Some(format!(
                        "slice {} admitted but circuit ocs={} {}->{} is not camera-verified",
                        ls.handle.0, c.ocs, c.north, c.south
                    ));
                }
            }
        }
    }
    None
}

/// Invariant (b): the union of active slices never double-books a north
/// or south port on any switch and never exceeds the switch radix; and
/// on every operational, reconciled switch the live crossbar mapping is
/// exactly that union.
fn radix_and_mapping(w: &World) -> Option<String> {
    let mut expected: BTreeMap<OcsId, BTreeMap<u16, u16>> = BTreeMap::new();
    let mut south_used: BTreeMap<OcsId, BTreeSet<u16>> = BTreeMap::new();
    for ls in &w.slices {
        for hop in ls.slice.required_hops() {
            for c in hop.circuits() {
                let per = expected.entry(c.ocs).or_default();
                if per.insert(c.north, c.south).is_some() {
                    return Some(format!(
                        "north port {} on ocs {} allocated by two slices",
                        c.north, c.ocs
                    ));
                }
                if !south_used.entry(c.ocs).or_default().insert(c.south) {
                    return Some(format!(
                        "south port {} on ocs {} allocated by two slices",
                        c.south, c.ocs
                    ));
                }
            }
        }
    }
    for (&id, ocs) in w.pod.fabric().fleet.iter() {
        let want = expected.remove(&id).unwrap_or_default();
        if want.len() > ocs.ports() {
            return Some(format!(
                "ocs {} asked for {} circuits > radix {}",
                id,
                want.len(),
                ocs.ports()
            ));
        }
        if !ocs.is_up() || !w.synced.contains(&id) {
            continue;
        }
        let have: BTreeMap<u16, u16> = ocs.mapping().pairs().collect();
        if have != want {
            return Some(format!(
                "ocs {} mapping has {} circuits, slices require {}",
                id,
                have.len(),
                want.len()
            ));
        }
    }
    None
}

/// Invariant (c): every Critical incident has exactly one flight dump.
fn critical_dumped_exactly_once(w: &World) -> Option<String> {
    let critical: BTreeSet<u64> = w
        .telemetry
        .alarms
        .incidents()
        .iter()
        .filter(|i| i.severity == Severity::Critical)
        .map(|i| i.id)
        .collect();
    let mut dumped: BTreeSet<u64> = BTreeSet::new();
    for d in w.recorder.dumps() {
        if !dumped.insert(d.incident) {
            return Some(format!("incident {} dumped more than once", d.incident));
        }
    }
    if let Some(&id) = critical.difference(&dumped).next() {
        return Some(format!("Critical incident {id} has no flight dump"));
    }
    if let Some(&id) = dumped.difference(&critical).next() {
        return Some(format!("flight dump for non-Critical incident {id}"));
    }
    None
}

/// Invariant (d): per-switch SLO downtime equals the downtime implied by
/// the injected fault timeline (the executor's chassis model, fed only
/// by the schedule's FRU events).
fn slo_matches_timeline(w: &World) -> Option<String> {
    let now = w.now();
    let report = w.telemetry.slo.report(now);
    for (&id, model) in &w.models {
        let injected = model.downtime_at(now);
        let name = format!("ocs-{id}");
        let observed = report
            .objects
            .iter()
            .find(|o| o.object == name)
            .map(|o| o.downtime)
            .unwrap_or_default();
        if observed != injected {
            return Some(format!(
                "{name}: SLO downtime {}ns != injected timeline {}ns",
                observed.0, injected.0
            ));
        }
    }
    None
}

/// Invariant (e): the four reconfiguration phases of every commit on
/// every switch are present exactly once, causally chained, contiguous,
/// inside the commit window; and commits on one switch never start out
/// of issue order.
fn phases_legal(w: &World) -> Option<String> {
    let spans = w.tracer.spans();
    let by_id: BTreeMap<SpanId, &SpanRecord> = spans.iter().map(|s| (s.id, s)).collect();
    // Phase children grouped under their commit span, in creation order.
    let mut children: BTreeMap<SpanId, Vec<&SpanRecord>> = BTreeMap::new();
    for s in spans {
        if let SpanKind::Phase { .. } = s.kind {
            let parent = s.parent?;
            children.entry(parent).or_default().push(s);
        }
    }
    for (commit_id, phases) in &children {
        let commit = match by_id.get(commit_id) {
            Some(c) => c,
            None => return Some(format!("phase chain under unknown span {}", commit_id.0)),
        };
        let switch = match commit.kind {
            SpanKind::ReconfigCommit { switch, .. } => switch,
            _ => return Some(format!("phase chain under non-commit span {}", commit_id.0)),
        };
        if phases.len() != ReconfigPhase::ALL.len() {
            return Some(format!(
                "switch {}: commit has {} phases, want 4",
                switch,
                phases.len()
            ));
        }
        let mut cursor = commit.start;
        let mut prev: Option<SpanId> = None;
        for (i, want) in ReconfigPhase::ALL.into_iter().enumerate() {
            let p = phases[i];
            match p.kind {
                SpanKind::Phase { phase, .. } if phase == want => {}
                _ => {
                    return Some(format!(
                        "switch {switch}: phase {i} is {:?}, want {want:?}",
                        p.kind
                    ))
                }
            }
            if p.start != cursor {
                return Some(format!(
                    "switch {switch}: {want:?} starts at {} but previous phase ended at {}",
                    p.start.0, cursor.0
                ));
            }
            if p.end < p.start || p.end > commit.end {
                return Some(format!(
                    "switch {switch}: {want:?} escapes its commit window"
                ));
            }
            if p.follows != prev {
                return Some(format!(
                    "switch {switch}: {want:?} breaks the follows-from chain"
                ));
            }
            prev = Some(p.id);
            cursor = p.end;
        }
        if cursor != commit.end {
            return Some(format!(
                "switch {switch}: phases cover to {} but commit ends at {}",
                cursor.0, commit.end.0
            ));
        }
    }
    // Commits on one switch must start in issue order (spans() is
    // append-only, so record order is issue order).
    let mut last_start: BTreeMap<u32, lightwave_units::Nanos> = BTreeMap::new();
    for s in spans {
        if let SpanKind::ReconfigCommit { switch, .. } = s.kind {
            if let Some(&prev) = last_start.get(&switch) {
                if s.start < prev {
                    return Some(format!(
                        "switch {switch}: commit issued at {} after one at {}",
                        s.start.0, prev.0
                    ));
                }
            }
            last_start.insert(switch, s.start);
        }
    }
    None
}
