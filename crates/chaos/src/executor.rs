//! The invariant-checking executor: drives the *real* control plane
//! (ocs → fabric → scheduler → superpod → telemetry → trace) through a
//! [`FaultSchedule`], re-checking the invariant library after every
//! event.
//!
//! The executor itself draws no randomness — a schedule's execution is a
//! pure function of its event list plus the world seed derived from
//! `(seed, index)` — which is what makes delta-debugging sound: dropping
//! events never perturbs the behavior of the events that remain.

use crate::invariant::{check_all, Violation};
use crate::schedule::{FaultKind, FaultSchedule};
use lightwave_fabric::maintenance::{execute, plan_replacement};
use lightwave_fabric::OcsId;
use lightwave_ocs::instrument::OcsInstruments;
use lightwave_ocs::PortId;
use lightwave_scheduler::alloc::{Allocator, Pooled};
use lightwave_service::{arrival, Mix, PolicyConfig, ServiceCore, ServiceEvent};
use lightwave_superpod::instrument::{
    record_resync, roll_topology_change, trace_compose, trace_release,
};
use lightwave_superpod::pod::{SliceHandle, Superpod};
use lightwave_superpod::slice::{Slice, SliceShape};
use lightwave_superpod::wiring::SUPERPOD_OCS_COUNT;
use lightwave_telemetry::rollup::{PortPath, RollupTree};
use lightwave_telemetry::{AlarmCause, AlarmRecord, FleetHealth, FleetTelemetry, Severity};
use lightwave_trace::{FlightRecorder, Tracer};
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Test-only defects the harness can plant in its own control-plane
/// driver, so the invariant library and the shrinker can be validated
/// against *known* violations without breaking the product code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum InjectedBug {
    /// Never revoke traffic admission when a fault de-verifies a live
    /// circuit — invariant (a) must catch it.
    SkipAdmissionRevoke,
    /// Never poll the flight recorder — invariant (c) must catch the
    /// first Critical incident without a dump.
    SkipFlightPoll,
}

/// Executor configuration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Test-only planted defect (`None` = honest control plane).
    pub inject: Option<InjectedBug>,
}

/// One slice the executor is tracking, with its admission state — the
/// harness's model of "is traffic allowed on these links right now".
#[derive(Debug)]
pub struct LiveSlice {
    /// Pod handle.
    pub handle: SliceHandle,
    /// The slice geometry (kept locally: invariants re-derive expected
    /// port mappings from it, independent of the pod's own bookkeeping).
    pub slice: Slice,
    /// When the composing transaction promised traffic readiness.
    pub traffic_ready_at: Nanos,
    /// Whether traffic is currently admitted.
    pub admitted: bool,
}

/// The executor's shadow of one switch's chassis, fed *only* by the
/// schedule's FRU events — the independent timeline invariant (d)
/// reconciles the SLO tracker against.
#[derive(Debug, Clone)]
pub struct SwitchModel {
    slots: [bool; 16],
    down_since: Option<Nanos>,
    downtime: Nanos,
}

impl SwitchModel {
    fn new() -> SwitchModel {
        SwitchModel {
            slots: [true; 16],
            down_since: None,
            downtime: Nanos(0),
        }
    }

    /// `Chassis::is_operational`, re-derived: ≥1 PSU (slots 0–1), ≥3 fans
    /// (2–5), CPU (14) and FPGA (15) healthy.
    fn operational(&self) -> bool {
        let healthy = |r: std::ops::Range<usize>| self.slots[r].iter().filter(|h| **h).count();
        healthy(0..2) >= 1 && healthy(2..6) >= 3 && self.slots[14] && self.slots[15]
    }

    fn apply(&mut self, now: Nanos, slot: usize, healthy: bool) {
        let was = self.operational();
        self.slots[slot] = healthy;
        match (was, self.operational()) {
            (true, false) => self.down_since = Some(now),
            (false, true) => {
                if let Some(t0) = self.down_since.take() {
                    self.downtime += now.saturating_sub(t0);
                }
            }
            _ => {}
        }
    }

    /// Cumulative downtime implied by the fault timeline as of `now`.
    pub fn downtime_at(&self, now: Nanos) -> Nanos {
        self.downtime
            + self
                .down_since
                .map(|t0| now.saturating_sub(t0))
                .unwrap_or(Nanos(0))
    }
}

/// One injected fault's recovery attribution: when it struck, how long
/// the anti-entropy resync needed to settle, and how long until the
/// system next admitted work — the scope layer's "fault inject → resync
/// → first post-fault admit" chain, per fault, per schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultRecovery {
    /// Index of the schedule event that injected the fault.
    pub event: u32,
    /// Sim time the fault was injected.
    pub at_nanos: u64,
    /// Resync settle window: the latest `traffic_ready_at` across the
    /// fault's anti-entropy reconfigurations, relative to the fault
    /// instant (0 when no switch needed resync).
    pub resync_nanos: u64,
    /// Sim time from the fault to the first admission after it (harness
    /// compose or service admission); `None` if nothing admitted before
    /// the schedule ended.
    pub first_admit_nanos: Option<u64>,
}

/// The full system under test plus the harness's independent models.
#[derive(Debug)]
pub struct World {
    /// The real control plane.
    pub pod: Superpod,
    /// The real observability stack.
    pub telemetry: FleetTelemetry,
    /// The real tracing stack.
    pub tracer: Tracer,
    /// The real flight recorder.
    pub recorder: FlightRecorder,
    /// The fleet-health analytics tier: per-port drift detectors and
    /// per-switch relock-rate detectors, fed from the switches' drift
    /// logs and link-flap events as part of the per-event observe pass.
    pub health: FleetHealth,
    /// Live slices with admission state.
    pub slices: Vec<LiveSlice>,
    /// Up switches whose mapping is reconciled with the slice union.
    pub synced: BTreeSet<OcsId>,
    /// Per-switch fault-timeline shadows for invariant (d).
    pub models: BTreeMap<OcsId, SwitchModel>,
    /// Set when the event itself did something illegal (release of a
    /// live slice rejected).
    pub action_violation: Option<String>,
    /// The embedded fabric-as-a-service core, fed by
    /// [`FaultKind::Arrival`] events. Its admitted slices are mirrored
    /// into [`World::slices`] so the radix/mapping and admission
    /// invariants cover them like any harness-composed slice.
    pub svc: ServiceCore,
    /// Per-fault recovery attribution, in injection order (one entry per
    /// FRU fail/replace/maintenance event).
    pub recoveries: Vec<FaultRecovery>,
    /// The campus-health rollup tree, fed alongside the flat telemetry
    /// by every producer the world drives (slice churn, FRU events,
    /// link relocks). The [`RollupDivergence`](crate::invariant::InvariantKind)
    /// invariant re-checks its internal consistency — interior node
    /// totals vs leaf sums — after every event.
    pub rollup: RollupTree,
    insts: BTreeMap<OcsId, OcsInstruments>,
    cfg: ChaosConfig,
    now: Nanos,
    event_cursor: u32,
    world_seed: u64,
    svc_release_failed_seen: u64,
    composes: u32,
    releases: u32,
    rejected: u32,
}

/// What one schedule's execution did.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleOutcome {
    /// Schedule index within its hunt.
    pub index: u64,
    /// Events applied (stops at the first violation).
    pub events_applied: u32,
    /// Successful slice compositions.
    pub composes: u32,
    /// Successful releases (including preemptions).
    pub releases: u32,
    /// Operations legitimately rejected (no idle cubes, degraded ports).
    pub rejected: u32,
    /// Raw alarms ingested by the fleet aggregator.
    pub alarms: u64,
    /// Flight-recorder dumps taken (== Critical incidents, or invariant
    /// (c) would have fired).
    pub critical_dumps: u32,
    /// Fleet-health detector trips (trend anomalies). The clean corpus
    /// must keep this at zero — a trip there is a false positive.
    pub trend_trips: u32,
    /// Service requests admitted by the embedded fabric-as-a-service
    /// core (nonzero only for schedules carrying `Arrival` events).
    pub svc_admitted: u64,
    /// Service requests blocked at the admission-queue bound.
    pub svc_blocked: u64,
    /// Service slices preempted by higher-priority admissions.
    pub svc_preempted: u64,
    /// Service requests that served their full hold.
    pub svc_completed: u64,
    /// Per-fault recovery attribution (see [`FaultRecovery`]), in
    /// injection order.
    pub recoveries: Vec<FaultRecovery>,
    /// The first invariant violation, if any.
    pub violation: Option<Violation>,
}

impl World {
    /// Builds the system under test for one schedule. The world seed —
    /// switch manufacturing and span ids — is `splitmix(seed, index)`,
    /// the same stream selector as the schedule generator, so a repro
    /// needs nothing beyond `(seed, index, events)`.
    pub fn new(seed: u64, index: u64) -> World {
        let world_seed = lightwave_par::splitmix(seed, index);
        let mut telemetry = FleetTelemetry::new();
        let mut insts = BTreeMap::new();
        let mut models = BTreeMap::new();
        for id in 0..SUPERPOD_OCS_COUNT as OcsId {
            insts.insert(id, OcsInstruments::register(&mut telemetry, id));
            models.insert(id, SwitchModel::new());
        }
        // Shadow cross-checking makes every chaos schedule a
        // behavioral-equivalence proof: each incremental commit is
        // checked against a full desired-state rebuild, panicking (and
        // thus failing the hunt) on any divergence.
        let mut pod = Superpod::new(world_seed);
        pod.set_shadow_check(true);
        World {
            pod,
            telemetry,
            tracer: Tracer::new(world_seed),
            recorder: FlightRecorder::new(256),
            health: FleetHealth::default(),
            slices: Vec::new(),
            synced: (0..SUPERPOD_OCS_COUNT as OcsId).collect(),
            models,
            action_violation: None,
            // A deliberately tight queue bound: with a dozen-odd
            // arrivals per schedule, 256 would never block and the
            // QueueFull path would go untested under faults.
            svc: ServiceCore::new(PolicyConfig {
                queue_limit: 4,
                preemption: true,
            }),
            recoveries: Vec::new(),
            rollup: RollupTree::new(),
            insts,
            cfg: ChaosConfig::default(),
            now: Nanos(0),
            event_cursor: 0,
            world_seed,
            svc_release_failed_seen: 0,
            composes: 0,
            releases: 0,
            rejected: 0,
        }
    }

    /// Current simulation time (advanced only by [`FaultKind::Advance`]).
    pub fn now(&self) -> Nanos {
        self.now
    }

    fn shape_for(cubes: u8) -> SliceShape {
        let (a, b, c) = match cubes {
            1 => (4, 4, 4),
            2 => (8, 4, 4),
            4 => (8, 8, 4),
            _ => (8, 8, 8),
        };
        SliceShape::new(a, b, c).expect("menu shapes are valid")
    }

    /// Marks an admission at `at`: every fault still waiting for its
    /// first post-fault admit is now attributed.
    fn note_admission(&mut self, at: Nanos) {
        for rec in &mut self.recoveries {
            if rec.first_admit_nanos.is_none() {
                rec.first_admit_nanos = Some(at.0.saturating_sub(rec.at_nanos));
            }
        }
    }

    fn compose(&mut self, cubes: u8) {
        let shape = Self::shape_for(cubes);
        let idle: BTreeSet<_> = self.pod.idle_cubes().into_iter().collect();
        let picked = match Pooled.allocate(shape, &idle) {
            Some(p) => p,
            None => {
                self.rejected += 1;
                return;
            }
        };
        let slice = Slice::new(shape, picked).expect("allocator returned a valid cube set");
        let geometry = slice.clone();
        match self.pod.compose(slice) {
            Ok((handle, report)) => {
                trace_compose(&mut self.tracer, None, 0, self.now, cubes as u32, &report);
                roll_topology_change(&mut self.rollup, 0, self.now, &report);
                self.slices.push(LiveSlice {
                    handle,
                    slice: geometry,
                    traffic_ready_at: report.traffic_ready_at,
                    admitted: false,
                });
                self.composes += 1;
                self.note_admission(self.now);
            }
            Err(_) => self.rejected += 1,
        }
    }

    fn release_at(&mut self, i: usize) {
        let ls = &self.slices[i];
        let cubes = ls.slice.cubes.len() as u32;
        match self.pod.release(ls.handle) {
            Ok(report) => {
                trace_release(&mut self.tracer, None, 0, self.now, cubes, &report);
                roll_topology_change(&mut self.rollup, 0, self.now, &report);
                self.slices.remove(i);
                self.releases += 1;
            }
            Err(e) => {
                // A live slice the control plane cannot free is a
                // capacity leak — this is invariant (f), not a
                // legitimate rejection.
                self.action_violation =
                    Some(format!("release of slice {} rejected: {e}", ls.handle.0));
            }
        }
    }

    fn fru_event(&mut self, ocs: OcsId, slot: usize, heal: bool, maintenance: bool) {
        if maintenance {
            let plan = match plan_replacement(&self.pod.fabric().fleet, ocs, slot) {
                Ok(p) => p,
                Err(_) => return,
            };
            execute(&mut self.pod.fabric_mut().fleet, &plan).expect("planned switch exists");
            // Fail + replace at one timestamp: the shadow nets zero
            // downtime, exactly what the SLO must account.
            let model = self.models.get_mut(&ocs).expect("modeled switch");
            model.apply(self.now, slot, false);
            model.apply(self.now, slot, true);
        } else {
            let sw = self
                .pod
                .fabric_mut()
                .fleet
                .get_mut(ocs)
                .expect("generator stays in range");
            if heal {
                sw.replace_fru(slot);
            } else {
                sw.fail_fru(slot);
            }
            self.models
                .get_mut(&ocs)
                .expect("modeled switch")
                .apply(self.now, slot, heal);
        }
        self.rollup.record(
            "chaos_fru_events",
            PortPath::new(0, ocs, slot as u32),
            self.now,
            1.0,
        );
        // Anti-entropy: a revived switch reconciles its stale mapping.
        let reports = self.pod.resync();
        record_resync(&mut self.telemetry, 0, self.now, &reports);
        let resync_nanos = reports
            .iter()
            .filter_map(|(_, r)| r.as_ref().ok())
            .map(|r| r.ready_at.saturating_sub(self.now).0)
            .max()
            .unwrap_or(0);
        self.recoveries.push(FaultRecovery {
            event: self.event_cursor,
            at_nanos: self.now.0,
            resync_nanos,
            first_admit_nanos: None,
        });
        for (id, result) in reports {
            if let Ok(report) = result {
                let inst = self.insts.get_mut(&id).expect("registered switch");
                inst.record_reconfig_traced(
                    &mut self.telemetry,
                    &mut self.tracer,
                    None,
                    self.now,
                    &report,
                );
            }
        }
    }

    /// Folds service-core events into the harness model: admitted slices
    /// join [`World::slices`] so the radix/mapping and admission
    /// invariants cover them like harness-composed slices; completions
    /// and preemptions leave it; a pod-refused service release raises
    /// the same capacity-leak flag as a refused harness release.
    fn absorb_service(&mut self, evs: Vec<ServiceEvent>) {
        for ev in evs {
            match ev {
                ServiceEvent::Admitted {
                    at,
                    handle,
                    slice,
                    report,
                    ..
                } => {
                    let cubes = slice.cubes.len() as u32;
                    trace_compose(&mut self.tracer, None, 0, at, cubes, &report);
                    roll_topology_change(&mut self.rollup, 0, at, &report);
                    self.slices.push(LiveSlice {
                        handle,
                        slice,
                        traffic_ready_at: report.traffic_ready_at,
                        admitted: false,
                    });
                    self.composes += 1;
                    self.note_admission(at);
                }
                ServiceEvent::Completed {
                    at,
                    handle,
                    cubes,
                    report,
                    ..
                } => {
                    trace_release(&mut self.tracer, None, 0, at, cubes, &report);
                    roll_topology_change(&mut self.rollup, 0, at, &report);
                    self.slices.retain(|ls| ls.handle != handle);
                    self.releases += 1;
                }
                ServiceEvent::Preempted {
                    at, handle, report, ..
                } => {
                    let cubes = self
                        .slices
                        .iter()
                        .find(|ls| ls.handle == handle)
                        .map(|ls| ls.slice.cubes.len() as u32)
                        .unwrap_or(0);
                    trace_release(&mut self.tracer, None, 0, at, cubes, &report);
                    roll_topology_change(&mut self.rollup, 0, at, &report);
                    self.slices.retain(|ls| ls.handle != handle);
                    self.releases += 1;
                }
                ServiceEvent::Enqueued { .. } | ServiceEvent::Rejected { .. } => {}
            }
        }
        let failed = self.svc.report().release_failed;
        if failed > self.svc_release_failed_seen {
            self.action_violation = Some(format!(
                "service release rejected ({} so far this schedule)",
                failed
            ));
            self.svc_release_failed_seen = failed;
        }
    }

    fn verify_reject(&mut self, ocs: OcsId) {
        let sw = match self.pod.fabric().fleet.get(ocs) {
            Some(s) if s.is_up() => s,
            _ => return,
        };
        let degraded = sw.health().degraded_ports;
        let target = sw.mapping().pairs().find(|&(n, s)| {
            !sw.circuit_ready(n) && !degraded.contains(&n) && !degraded.contains(&s)
        });
        if let Some((n, s)) = target {
            let sw = self.pod.fabric_mut().fleet.get_mut(ocs).expect("present");
            sw.disconnect(n).expect("circuit exists");
            sw.connect(n, s).expect("ports were just freed and usable");
        }
    }

    fn link_alarm(&mut self, ocs: OcsId, port: u32) {
        self.telemetry.ingest_alarm(AlarmRecord {
            at: self.now,
            severity: Severity::Warning,
            switch: ocs,
            cause: AlarmCause::RateFallback { port },
        });
        self.rollup
            .record("chaos_relocks", PortPath::new(0, ocs, port), self.now, 1.0);
        // Every relock also feeds the per-switch rate-spike detector; a
        // sustained elevated rate (not one storm instant) trips a trend
        // warning before occurrence-count escalation goes Critical.
        self.health
            .ingest_relock(&mut self.telemetry, self.now, ocs, port as u16);
    }

    fn apply(&mut self, ev: FaultKind) {
        self.action_violation = None;
        match ev {
            FaultKind::Compose { cubes } => self.compose(cubes),
            FaultKind::Release { nth } => {
                if !self.slices.is_empty() {
                    let i = nth as usize % self.slices.len();
                    self.release_at(i);
                }
            }
            FaultKind::Preempt => {
                if !self.slices.is_empty() {
                    self.release_at(self.slices.len() - 1);
                }
            }
            FaultKind::Advance { millis } => {
                // Routed through the service core: it advances the pod
                // in step while completing every service hold that
                // expires on the way (a no-op pass-through when no
                // Arrival event ever ran).
                let target = self.now + Nanos::from_millis(millis as u64);
                let mut evs = Vec::new();
                self.svc.advance_to(&mut self.pod, target, &mut evs);
                self.now = target;
                self.absorb_service(evs);
            }
            FaultKind::FailFru { ocs, slot } => {
                self.fru_event(ocs as OcsId, slot as usize, false, false)
            }
            FaultKind::ReplaceFru { ocs, slot } => {
                self.fru_event(ocs as OcsId, slot as usize, true, false)
            }
            FaultKind::Maintenance { ocs, slot } => {
                self.fru_event(ocs as OcsId, slot as usize, false, true)
            }
            FaultKind::FailMirror { ocs, north, port } => {
                if let Some(sw) = self.pod.fabric_mut().fleet.get_mut(ocs as OcsId) {
                    sw.fail_mirror(north, port as PortId);
                }
            }
            FaultKind::VerifyReject { ocs } => self.verify_reject(ocs as OcsId),
            FaultKind::Arrival { nth } => {
                // Arrival content is pure in (world_seed, nth): dropping
                // other events never changes what this one submits.
                let a = arrival(self.world_seed, nth as u64, Mix::Production);
                let mut evs = Vec::new();
                self.svc.submit(&mut self.pod, &a.intent, &mut evs);
                self.absorb_service(evs);
            }
            FaultKind::LinkFlap { ocs, port } => self.link_alarm(ocs as OcsId, port as u32),
            FaultKind::RelockStorm { ocs, ports } => {
                for p in 0..ports {
                    self.link_alarm(ocs as OcsId, p as u32);
                }
            }
            FaultKind::DegradeMirror {
                ocs,
                north,
                port,
                mdb,
            } => {
                if let Some(sw) = self.pod.fabric_mut().fleet.get_mut(ocs as OcsId) {
                    sw.degrade_mirror(north, port as PortId, mdb as f64 / 1000.0);
                }
            }
        }
        self.observe();
    }

    /// The control-plane housekeeping a production fleet runs
    /// continuously: health/SLO scrape, alarm forwarding, incident
    /// aging, admission control, flight-recorder polling.
    fn observe(&mut self) {
        let now = self.now;
        for (&id, sw) in self.pod.fabric().fleet.iter() {
            let inst = self.insts.get_mut(&id).expect("registered switch");
            inst.record_health(&mut self.telemetry, now, &sw.health());
            // Deliberately no drift census here: it is O(ports) per
            // switch per event and irrelevant to the invariants. The
            // health layer's drift feed is cursor-scraped instead —
            // O(changed), like alarm forwarding.
            inst.forward_drift(&mut self.telemetry, &mut self.health, sw);
            inst.forward_alarms(&mut self.telemetry, sw);
        }
        self.telemetry.advance(now);
        self.update_admission();
        if self.cfg.inject != Some(InjectedBug::SkipFlightPoll) {
            // Postmortem bundles embed the incident switch's recent
            // health counter samples (blast-radius context).
            self.recorder
                .poll_with_series(&self.tracer, &self.telemetry, self.health.store(), 16);
        }
        self.synced = self
            .pod
            .fabric()
            .fleet
            .iter()
            .filter(|(id, sw)| sw.is_up() && !self.pod.desynced().contains(id))
            .map(|(&id, _)| id)
            .collect();
        // Fold pending rollup samples up the tree so the invariant
        // library sees a fully-propagated hierarchy after every event.
        self.rollup.scrape();
    }

    fn update_admission(&mut self) {
        let fleet = &self.pod.fabric().fleet;
        let synced_up = |id: OcsId| {
            fleet.get(id).map(|s| s.is_up()).unwrap_or(false) && !self.pod.desynced().contains(&id)
        };
        for ls in &mut self.slices {
            let verified = ls.slice.required_hops().iter().all(|hop| {
                hop.circuits().all(|c| {
                    !synced_up(c.ocs) || fleet.get(c.ocs).expect("present").circuit_ready(c.north)
                })
            });
            if verified && self.now >= ls.traffic_ready_at {
                ls.admitted = true;
            } else if !verified && self.cfg.inject != Some(InjectedBug::SkipAdmissionRevoke) {
                ls.admitted = false;
            }
        }
    }
}

/// Runs one schedule to completion or first violation.
pub fn run_schedule(schedule: &FaultSchedule, cfg: &ChaosConfig) -> ScheduleOutcome {
    run_schedule_world(schedule, cfg).0
}

/// [`run_schedule`], also returning the final world so callers can
/// export its trace, telemetry, and flight dumps.
pub fn run_schedule_world(schedule: &FaultSchedule, cfg: &ChaosConfig) -> (ScheduleOutcome, World) {
    let mut w = World::new(schedule.seed, schedule.index);
    w.cfg = *cfg;
    let mut violation = None;
    let mut applied = 0u32;
    for (i, &ev) in schedule.events.iter().enumerate() {
        w.event_cursor = i as u32;
        w.apply(ev);
        applied += 1;
        if let Some(v) = check_all(&w, i as u32, ev) {
            violation = Some(v);
            break;
        }
    }
    let svc = w.svc.report();
    let outcome = ScheduleOutcome {
        index: schedule.index,
        events_applied: applied,
        composes: w.composes,
        releases: w.releases,
        rejected: w.rejected,
        alarms: w.telemetry.alarms.ingested(),
        critical_dumps: w.recorder.dumps().len() as u32,
        trend_trips: w.health.trips().len() as u32,
        svc_admitted: svc.classes.iter().map(|c| c.admitted).sum(),
        svc_blocked: svc.blocked(),
        svc_preempted: svc.preempted(),
        svc_completed: svc.completed(),
        recoveries: w.recoveries.clone(),
        violation,
    };
    (outcome, w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_schedule_runs_violation_free() {
        let s = FaultSchedule::generate(11, 0);
        let out = run_schedule(&s, &ChaosConfig::default());
        assert_eq!(out.events_applied as usize, s.events.len());
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert!(out.composes >= 1, "schedules always open with a compose");
    }

    #[test]
    fn execution_is_a_pure_function_of_the_schedule() {
        let s = FaultSchedule::generate(11, 3);
        let a = run_schedule(&s, &ChaosConfig::default());
        let b = run_schedule(&s, &ChaosConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn skipped_flight_poll_is_caught_on_first_critical() {
        // A 10-port relock storm escalates its Link incident to Critical;
        // with the poll skipped, invariant (c) must fire.
        let s = FaultSchedule {
            seed: 1,
            index: 0,
            events: vec![
                FaultKind::Compose { cubes: 1 },
                FaultKind::RelockStorm { ocs: 3, ports: 12 },
            ],
        };
        let cfg = ChaosConfig {
            inject: Some(InjectedBug::SkipFlightPoll),
        };
        let out = run_schedule(&s, &cfg);
        let v = out.violation.expect("planted bug must be caught");
        assert_eq!(
            v.invariant,
            crate::invariant::InvariantKind::CriticalWithoutDump
        );
        // The honest control plane passes the same schedule.
        assert!(run_schedule(&s, &ChaosConfig::default())
            .violation
            .is_none());
    }

    #[test]
    fn loss_creep_trips_detectors_before_the_chassis_dies() {
        let s = FaultSchedule::generate_degradation(2024, 0);
        assert!(s
            .events
            .iter()
            .any(|e| matches!(e, FaultKind::DegradeMirror { .. })));
        let (out, w) = run_schedule_world(&s, &ChaosConfig::default());
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert!(out.trend_trips >= 1, "creep must trip a detector");
        let trip = w.health.first_trip_at().expect("tripped");
        let critical = w
            .telemetry
            .alarms
            .incidents()
            .iter()
            .find(|i| i.severity == Severity::Critical)
            .expect("FPGA death goes Critical");
        assert!(
            trip < critical.last_at,
            "detector trip ({trip:?}) precedes the hard failure"
        );
        // The degradation itself stayed silent: the only Warning the
        // health layer raised is the trend anomaly.
        assert!(w
            .health
            .trips()
            .iter()
            .all(|t| t.signal == lightwave_telemetry::TrendSignal::LossDrift));
    }

    #[test]
    fn relock_creep_trips_rate_spike_before_escalation() {
        let s = FaultSchedule::generate_degradation(2024, 1);
        let (out, w) = run_schedule_world(&s, &ChaosConfig::default());
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert!(out.trend_trips >= 1, "sustained flapping must trip");
        let trip = w.health.first_trip_at().expect("tripped");
        let critical = w
            .telemetry
            .alarms
            .incidents()
            .iter()
            .find(|i| i.severity == Severity::Critical)
            .expect("occurrence storm escalates the Link incident");
        assert!(trip < critical.last_at, "trip precedes escalation");
        assert!(
            out.critical_dumps >= 1,
            "the escalated incident dumped a postmortem"
        );
        // The postmortem embeds the switch's relock counter history.
        let dump = w.recorder.latest_dump().expect("dumped");
        assert!(
            !dump.counters.is_empty(),
            "blast-radius counters in the bundle"
        );
        assert!(dump
            .counters
            .iter()
            .any(|c| c.series.contains("health_relocks_total")));
    }

    #[test]
    fn single_relock_storm_does_not_trip_the_rate_detector() {
        // One instant of 16 flaps is an incident for the correlator, not
        // a *trend*: the rate-spike detector needs contiguous windows.
        let s = FaultSchedule {
            seed: 1,
            index: 0,
            events: vec![
                FaultKind::Compose { cubes: 1 },
                FaultKind::RelockStorm { ocs: 3, ports: 16 },
                FaultKind::Advance { millis: 400 },
            ],
        };
        let out = run_schedule(&s, &ChaosConfig::default());
        assert!(out.violation.is_none());
        assert_eq!(out.trend_trips, 0, "storms are not trends");
    }

    #[test]
    fn clean_service_schedule_runs_violation_free() {
        let s = FaultSchedule::generate_service(11, 0);
        assert!(s
            .events
            .iter()
            .any(|e| matches!(e, FaultKind::Arrival { .. })));
        let (out, w) = run_schedule_world(&s, &ChaosConfig::default());
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert_eq!(out.events_applied as usize, s.events.len());
        assert!(out.svc_admitted >= 1, "arrivals must admit: {out:?}");
        w.svc.conservation().expect("requests conserved");
    }

    #[test]
    fn service_execution_is_a_pure_function_of_the_schedule() {
        let s = FaultSchedule::generate_service(11, 2);
        let a = run_schedule(&s, &ChaosConfig::default());
        let b = run_schedule(&s, &ChaosConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    #[ignore = "search harness: run with --ignored --nocapture to scout pin candidates"]
    fn svc_search() {
        for seed in [2026u64, 7, 99, 1, 3, 5, 11, 13, 17, 23, 42, 54, 77] {
            for index in 0..200u64 {
                let s = FaultSchedule::generate_service(seed, index);
                let faults = s
                    .events
                    .iter()
                    .filter(|e| {
                        matches!(
                            e,
                            FaultKind::FailFru { .. }
                                | FaultKind::FailMirror { .. }
                                | FaultKind::Maintenance { .. }
                        )
                    })
                    .count();
                let out = run_schedule(&s, &ChaosConfig::default());
                if out.svc_preempted >= 1 {
                    println!(
                        "seed={seed} index={index} preempted={} admitted={} blocked={} completed={} composes={} faults={faults} violation={:?}",
                        out.svc_preempted, out.svc_admitted, out.svc_blocked,
                        out.svc_completed, out.composes, out.violation
                    );
                }
            }
        }
    }

    #[test]
    fn fru_faults_record_recovery_attribution() {
        // Fault → heal → later admission: both FRU events get a recovery
        // entry; the post-fault compose resolves their first-admit time.
        let s = FaultSchedule {
            seed: 5,
            index: 0,
            events: vec![
                FaultKind::Compose { cubes: 1 },
                FaultKind::FailFru { ocs: 2, slot: 14 },
                FaultKind::Advance { millis: 250 },
                FaultKind::ReplaceFru { ocs: 2, slot: 14 },
                FaultKind::Advance { millis: 250 },
                FaultKind::Compose { cubes: 1 },
            ],
        };
        let out = run_schedule(&s, &ChaosConfig::default());
        assert!(out.violation.is_none(), "violation: {:?}", out.violation);
        assert_eq!(out.recoveries.len(), 2, "one entry per FRU event");
        let fail = &out.recoveries[0];
        assert_eq!(fail.event, 1);
        assert_eq!(fail.at_nanos, 0, "fault struck before any advance");
        let heal = &out.recoveries[1];
        assert_eq!(heal.event, 3);
        assert_eq!(
            heal.at_nanos,
            Nanos::from_millis(250).0,
            "replacement lands after the first advance"
        );
        for r in &out.recoveries {
            let admit = r.first_admit_nanos.expect("final compose admits");
            assert!(
                r.at_nanos + admit <= Nanos::from_millis(500).0,
                "first admit within the schedule horizon: {r:?}"
            );
        }
        // Pure function of the schedule, like every other outcome field.
        assert_eq!(out, run_schedule(&s, &ChaosConfig::default()));
    }

    #[test]
    fn skipped_admission_revoke_is_caught() {
        // Compose, settle + admit, then a mirror fault de-verifies a live
        // circuit; with revocation skipped, invariant (a) must fire. The
        // slice must span two cubes: a single-cube slice's rings are
        // electrical and give the mirror fault no circuit to de-verify.
        let s = FaultSchedule {
            seed: 1,
            index: 1,
            events: vec![
                FaultKind::Compose { cubes: 2 },
                FaultKind::Advance { millis: 400 },
                FaultKind::FailMirror {
                    ocs: 0,
                    north: true,
                    port: 0,
                },
            ],
        };
        let cfg = ChaosConfig {
            inject: Some(InjectedBug::SkipAdmissionRevoke),
        };
        let out = run_schedule(&s, &cfg);
        let v = out.violation.expect("planted bug must be caught");
        assert_eq!(
            v.invariant,
            crate::invariant::InvariantKind::TrafficOnUnverifiedLink
        );
        assert!(run_schedule(&s, &ChaosConfig::default())
            .violation
            .is_none());
    }
}
