//! Parallel schedule hunting.
//!
//! A hunt runs schedules `0..n` of one seed through the executor on a
//! [`lightwave_par::Pool`]. Each schedule is an independent splitmix
//! stream and the executor is pure, so the report is byte-identical at
//! any thread count — the pool's ordered reduction does the rest.

use crate::executor::{run_schedule, ChaosConfig, ScheduleOutcome};
use crate::invariant::InvariantKind;
use crate::schedule::FaultSchedule;
use lightwave_par::Pool;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Hunt parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HuntConfig {
    /// Hunt seed: schedule `i` is `FaultSchedule::generate(seed, i)`.
    pub seed: u64,
    /// How many schedules to run.
    pub schedules: u64,
    /// Executor configuration shared by every schedule.
    pub chaos: ChaosConfig,
}

/// The deterministic result of one hunt.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HuntReport {
    /// The hunt seed.
    pub seed: u64,
    /// Per-schedule outcomes, in schedule-index order.
    pub outcomes: Vec<ScheduleOutcome>,
}

impl HuntReport {
    /// Outcomes that violated an invariant.
    pub fn violations(&self) -> impl Iterator<Item = &ScheduleOutcome> {
        self.outcomes.iter().filter(|o| o.violation.is_some())
    }

    /// Violation counts per invariant.
    pub fn tally(&self) -> BTreeMap<InvariantKind, usize> {
        let mut tally = BTreeMap::new();
        for o in self.violations() {
            *tally
                .entry(o.violation.as_ref().expect("filtered").invariant)
                .or_insert(0) += 1;
        }
        tally
    }

    /// A deterministic human-readable summary table.
    pub fn table(&self) -> String {
        let mut out = String::new();
        let total: u32 = self.outcomes.iter().map(|o| o.composes).sum();
        let releases: u32 = self.outcomes.iter().map(|o| o.releases).sum();
        let rejected: u32 = self.outcomes.iter().map(|o| o.rejected).sum();
        let alarms: u64 = self.outcomes.iter().map(|o| o.alarms).sum();
        let dumps: u32 = self.outcomes.iter().map(|o| o.critical_dumps).sum();
        out.push_str(&format!(
            "hunt seed {}: {} schedules, {} composes, {} releases, {} rejected, {} alarms, {} flight dumps\n",
            self.seed,
            self.outcomes.len(),
            total,
            releases,
            rejected,
            alarms,
            dumps
        ));
        let svc_admitted: u64 = self.outcomes.iter().map(|o| o.svc_admitted).sum();
        let svc_blocked: u64 = self.outcomes.iter().map(|o| o.svc_blocked).sum();
        let svc_preempted: u64 = self.outcomes.iter().map(|o| o.svc_preempted).sum();
        let svc_completed: u64 = self.outcomes.iter().map(|o| o.svc_completed).sum();
        if svc_admitted + svc_blocked + svc_preempted + svc_completed > 0 {
            out.push_str(&format!(
                "service: {svc_admitted} admitted, {svc_blocked} blocked, {svc_preempted} preempted, {svc_completed} completed\n"
            ));
        }
        let tally = self.tally();
        if tally.is_empty() {
            out.push_str("violations: none\n");
        } else {
            out.push_str("violations:\n");
            for (kind, count) in &tally {
                out.push_str(&format!("  {kind:<30} {count}\n"));
            }
            for o in self.violations() {
                let v = o.violation.as_ref().expect("filtered");
                out.push_str(&format!("  schedule #{:<5} {v}\n", o.index));
            }
        }
        out
    }
}

/// Runs the hunt on `pool`. Deterministic in everything but wall time:
/// the same `cfg` yields the same report at any thread count.
pub fn hunt(pool: &Pool, cfg: &HuntConfig) -> HuntReport {
    hunt_with(pool, cfg, FaultSchedule::generate)
}

/// Runs a **service** hunt: schedules come from
/// [`FaultSchedule::generate_service`], so fabric-as-a-service arrivals
/// admit, preempt, and complete while hardware faults inject. Same
/// ordered reduction, same thread-count invariance.
pub fn hunt_service(pool: &Pool, cfg: &HuntConfig) -> HuntReport {
    hunt_with(pool, cfg, FaultSchedule::generate_service)
}

fn hunt_with(pool: &Pool, cfg: &HuntConfig, gen: fn(u64, u64) -> FaultSchedule) -> HuntReport {
    let indices: Vec<u64> = (0..cfg.schedules).collect();
    let chaos = cfg.chaos;
    let seed = cfg.seed;
    let (outcomes, _stats) = pool.map_reduce(
        &indices,
        |&index, _| vec![run_schedule(&gen(seed, index), &chaos)],
        |mut a, b| {
            a.extend(b);
            a
        },
    );
    HuntReport {
        seed,
        outcomes: outcomes.unwrap_or_default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hunt_is_thread_count_invariant() {
        let cfg = HuntConfig {
            seed: 33,
            schedules: 12,
            chaos: ChaosConfig::default(),
        };
        let serial = hunt(&Pool::new(1), &cfg);
        let parallel = hunt(&Pool::new(4), &cfg);
        assert_eq!(serial, parallel);
        assert_eq!(serial.outcomes.len(), 12);
        // Outcomes arrive in schedule order regardless of which worker
        // ran them.
        for (i, o) in serial.outcomes.iter().enumerate() {
            assert_eq!(o.index, i as u64);
        }
    }

    #[test]
    fn service_hunt_is_thread_count_invariant() {
        let cfg = HuntConfig {
            seed: 5,
            schedules: 8,
            chaos: ChaosConfig::default(),
        };
        let serial = hunt_service(&Pool::new(1), &cfg);
        let parallel = hunt_service(&Pool::new(4), &cfg);
        assert_eq!(serial, parallel);
        assert!(
            serial.outcomes.iter().all(|o| o.violation.is_none()),
            "clean corpus: {:?}",
            serial.outcomes.iter().find(|o| o.violation.is_some())
        );
        let admitted: u64 = serial.outcomes.iter().map(|o| o.svc_admitted).sum();
        assert!(admitted > 0, "arrivals admit under faults");
        assert!(
            serial.table().contains("service:"),
            "table shows svc totals"
        );
    }

    #[test]
    fn table_reports_clean_hunts() {
        let cfg = HuntConfig {
            seed: 33,
            schedules: 4,
            chaos: ChaosConfig::default(),
        };
        let report = hunt(&Pool::new(2), &cfg);
        assert!(report.table().contains("4 schedules"));
    }
}
