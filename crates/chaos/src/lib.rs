//! `lightwave-chaos`: deterministic fault injection for the lightwave
//! control plane.
//!
//! The paper's operational story (§4.2–§4.3) is that an OCS fabric
//! stays correct through FRU failures, stuck mirrors, camera-verify
//! rejections, transceiver relock storms, and maintenance overlapping
//! reconfiguration. This crate turns that claim into a checkable
//! contract:
//!
//! 1. [`schedule`] generates randomized multi-fault timelines, each a
//!    pure function of `(seed, index)` using the same splitmix stream
//!    discipline as `lightwave-par` shard RNGs.
//! 2. [`executor`] drives the *real* control-plane stack (ocs → fabric
//!    → scheduler → superpod → telemetry → trace) through a schedule,
//!    drawing no randomness of its own, and re-checks the [`invariant`]
//!    library after every event.
//! 3. [`mod@hunt`] fans schedules across a `lightwave-par` pool with
//!    ordered reduction, so reports are byte-identical at any thread
//!    count. [`hunt_service`] runs the fabric-as-a-service variant:
//!    [`FaultSchedule::generate_service`] schedules interleave slice
//!    arrivals (driving the executor's embedded
//!    [`lightwave_service::ServiceCore`]) with hardware faults, and the
//!    invariant library additionally checks request conservation and
//!    that every running service request stays backed by a live slice.
//! 4. [`mod@shrink`] delta-debugs a violating schedule down to a 1-minimal
//!    event list, and [`repro`] serializes it as runnable JSONL.
//!
//! The determinism contract — why replays and shrinking are sound — is
//! written up in `DESIGN.md` §6.3.

pub mod executor;
pub mod hunt;
pub mod invariant;
pub mod repro;
pub mod schedule;
pub mod shrink;

pub use executor::{
    run_schedule, run_schedule_world, ChaosConfig, FaultRecovery, InjectedBug, ScheduleOutcome,
    World,
};
pub use hunt::{hunt, hunt_service, HuntConfig, HuntReport};
pub use invariant::{check_all, InvariantKind, Violation};
pub use repro::{parse_repro, write_repro, Repro, REPRO_FORMAT};
pub use schedule::{FaultKind, FaultSchedule, GEN_OCS_COUNT};
pub use shrink::{shrink, ShrinkResult};
