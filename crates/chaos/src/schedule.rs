//! Seeded fault-schedule generation.
//!
//! A schedule is a short timeline of control-plane operations and
//! injected hardware faults, fully determined by `(seed, index)`. The
//! per-schedule generator stream is derived with the same splitmix64
//! mixer the parallel engine uses for shard streams
//! ([`lightwave_par::splitmix`]), so a hunt over indices `0..n` draws
//! from `n` decorrelated streams and any single schedule can be
//! regenerated — and replayed — without running the other `n - 1`.

use lightwave_units::Nanos;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One injected event. Time is implicit: events apply at the world's
/// current simulation time, and only [`FaultKind::Advance`] moves it —
/// which is what lets the delta-debugging shrinker drop events without
/// re-timestamping the tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// Compose a slice of `cubes` elemental cubes (scheduler-pooled
    /// placement on idle cubes).
    Compose {
        /// Cube count; rounded to a composable shape (1, 2, 4 or 8).
        cubes: u8,
    },
    /// Release the `nth` live slice (modulo the live count).
    Release {
        /// Index into the live-slice list.
        nth: u8,
    },
    /// Preempt the youngest live slice — a scheduler eviction, which may
    /// land while the slice's circuits are still aligning.
    Preempt,
    /// Advance simulation time.
    Advance {
        /// Milliseconds to advance.
        millis: u32,
    },
    /// Fail a chassis FRU slot (0–1 PSUs, 2–5 fans, 6–13 HV drivers,
    /// 14 CPU, 15 FPGA).
    FailFru {
        /// Switch.
        ocs: u8,
        /// Chassis slot.
        slot: u8,
    },
    /// Field-replace a FRU slot (repairs a failed slot; replacing a
    /// healthy HV driver/FPGA still drops its mirror state).
    ReplaceFru {
        /// Switch.
        ocs: u8,
        /// Chassis slot.
        slot: u8,
    },
    /// Planned maintenance: plan + execute a FRU replacement through the
    /// fabric maintenance workflow, possibly overlapping an in-flight
    /// reconfiguration.
    Maintenance {
        /// Switch.
        ocs: u8,
        /// Chassis slot.
        slot: u8,
    },
    /// A MEMS mirror sticks: fail the mirror serving `port`, consuming a
    /// spare (or killing the port once spares are exhausted).
    FailMirror {
        /// Switch.
        ocs: u8,
        /// True for the north die.
        north: bool,
        /// Mirror port.
        port: u8,
    },
    /// Camera verification rejects an in-flight alignment on this switch:
    /// the first still-aligning circuit is kicked back through another
    /// camera loop. No-op if nothing is aligning there.
    VerifyReject {
        /// Switch.
        ocs: u8,
    },
    /// A transceiver loses lock and re-acquires at a fallback rate — one
    /// link-flap alarm.
    LinkFlap {
        /// Switch.
        ocs: u8,
        /// Port whose transceiver flapped.
        port: u8,
    },
    /// A DSP relock storm: a burst of rate-fallback alarms across
    /// `ports` consecutive ports of one switch (blast-radius fodder for
    /// the alarm correlator, and an escalation path to Critical).
    RelockStorm {
        /// Switch.
        ocs: u8,
        /// How many ports flap (1–16).
        ports: u8,
    },
    /// Silent optical creep: the mirror serving `port` degrades by `mdb`
    /// milli-dB of extra intrinsic loss. Raises no alarm and changes no
    /// chassis/spare state — only the fleet-health detectors can see it
    /// (via the switch's drift log). Emitted by
    /// [`FaultSchedule::generate_degradation`], never by the uniform
    /// [`FaultSchedule::generate`] draw (whose distribution is pinned).
    DegradeMirror {
        /// Switch.
        ocs: u8,
        /// True for the north die.
        north: bool,
        /// Mirror port.
        port: u8,
        /// Extra intrinsic loss, milli-dB.
        mdb: u16,
    },
    /// A fabric-as-a-service slice request arrives: the executor submits
    /// arrival `nth` of the world's service stream
    /// (`lightwave_service::arrival(world_seed, nth, Production)`) to its
    /// embedded [`lightwave_service::ServiceCore`]. The arrival content
    /// is a pure function of `(world_seed, nth)` — dropping earlier
    /// events never changes what a surviving arrival submits, which
    /// keeps delta-debugging sound. Emitted only by
    /// [`FaultSchedule::generate_service`], never by the pinned uniform
    /// [`FaultSchedule::generate`] draw.
    Arrival {
        /// Index into the world's service arrival stream.
        nth: u16,
    },
}

/// A deterministic fault schedule: regenerate with
/// [`FaultSchedule::generate`]`(seed, index)`, or carry an explicit
/// (possibly shrunk) event list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Hunt seed.
    pub seed: u64,
    /// Schedule index within the hunt (the stream selector).
    pub index: u64,
    /// The event list.
    pub events: Vec<FaultKind>,
}

/// Switch count the generator draws targets from (the 48-OCS superpod).
pub const GEN_OCS_COUNT: u8 = 48;

/// Advance menu, milliseconds. Deliberately includes steps shorter than
/// a camera alignment (~10–40 ms) so faults land mid-reconfiguration.
const ADVANCE_MENU_MS: [u32; 6] = [1, 5, 20, 60, 150, 400];

impl FaultSchedule {
    /// Generates schedule `index` of the hunt seeded `seed`.
    ///
    /// The stream is `StdRng::seed_from_u64(splitmix(seed, index))` —
    /// byte-for-byte the discipline `lightwave-par` uses for shard RNGs.
    pub fn generate(seed: u64, index: u64) -> FaultSchedule {
        let mut rng = StdRng::seed_from_u64(lightwave_par::splitmix(seed, index));
        let n_events = rng.random_range(6..=14usize);
        let mut events = Vec::with_capacity(n_events);
        // Always open with a composition: an empty pod makes most
        // invariants vacuous.
        events.push(FaultKind::Compose {
            cubes: *pick(&mut rng, &[1u8, 2, 4, 8]),
        });
        while events.len() < n_events {
            events.push(Self::draw(&mut rng));
        }
        FaultSchedule {
            seed,
            index,
            events,
        }
    }

    fn draw(rng: &mut StdRng) -> FaultKind {
        let ocs = rng.random_range(0..GEN_OCS_COUNT);
        match rng.random_range(0..100u32) {
            0..=17 => FaultKind::Compose {
                cubes: *pick(rng, &[1u8, 2, 4, 8]),
            },
            18..=39 => FaultKind::Advance {
                millis: *pick(rng, &ADVANCE_MENU_MS),
            },
            40..=47 => FaultKind::Release {
                nth: rng.random_range(0..8u8),
            },
            48..=51 => FaultKind::Preempt,
            52..=61 => FaultKind::FailFru {
                ocs,
                slot: rng.random_range(0..16u8),
            },
            62..=71 => FaultKind::ReplaceFru {
                ocs,
                slot: rng.random_range(0..16u8),
            },
            72..=77 => FaultKind::Maintenance {
                ocs,
                slot: rng.random_range(0..16u8),
            },
            78..=87 => FaultKind::FailMirror {
                ocs,
                north: rng.random_bool(0.5),
                port: rng.random_range(0..64u8),
            },
            88..=92 => FaultKind::VerifyReject { ocs },
            93..=96 => FaultKind::LinkFlap {
                ocs,
                port: rng.random_range(0..64u8),
            },
            _ => FaultKind::RelockStorm {
                ocs,
                ports: rng.random_range(1..=16u8),
            },
        }
    }

    /// Generates slow-degradation schedule `index` of the hunt seeded
    /// `seed` — the fleet-health oracle corpus (`tests/fleet_health.rs`).
    ///
    /// Two families alternate by index parity, each ending in the hard
    /// failure the degradation foreshadows:
    ///
    /// - **loss creep** (even): one port's mirror degrades 25–40 mdb at
    ///   a time, 8–12 steps — each step under the spare-swap jump a
    ///   single legitimate event can cause — then the switch's FPGA dies
    ///   (slot 15: chassis down, Critical). The CUSUM change-point
    ///   detector must trip mid-creep, before the Critical.
    /// - **relock creep** (odd): one switch's transceivers flap 3× per
    ///   250 ms detector window, 4–6 windows back to back. The windowed
    ///   rate-spike detector trips on the third contiguous window; the
    ///   Link incident's 10th occurrence then escalates it to Critical.
    ///
    /// Uses the same `splitmix(seed, index)` stream discipline as
    /// [`FaultSchedule::generate`], but a distinct generator: the
    /// uniform draw's distribution is pinned by the determinism tests
    /// and must not change.
    pub fn generate_degradation(seed: u64, index: u64) -> FaultSchedule {
        // Offset the stream selector so index i here never mirrors
        // index i of the uniform generator.
        let mut rng = StdRng::seed_from_u64(lightwave_par::splitmix(seed ^ 0xDE64_AD00, index));
        let ocs = rng.random_range(0..GEN_OCS_COUNT);
        let mut events = vec![FaultKind::Compose {
            cubes: *pick(&mut rng, &[1u8, 2, 4]),
        }];
        if index.is_multiple_of(2) {
            let north = rng.random_bool(0.5);
            let port = rng.random_range(0..64u8);
            let steps = rng.random_range(8..=12u32);
            for _ in 0..steps {
                events.push(FaultKind::DegradeMirror {
                    ocs,
                    north,
                    port,
                    mdb: rng.random_range(25..=40u16),
                });
                events.push(FaultKind::Advance { millis: 60 });
            }
            events.push(FaultKind::FailFru { ocs, slot: 15 });
        } else {
            let base = rng.random_range(0..32u8);
            let rounds = rng.random_range(4..=6u32);
            for _ in 0..rounds {
                for p in 0..3u8 {
                    events.push(FaultKind::LinkFlap {
                        ocs,
                        port: base + p,
                    });
                }
                // Exactly one detector window per round: windows stay
                // contiguous, so the rate-spike streak can build.
                events.push(FaultKind::Advance { millis: 250 });
            }
        }
        FaultSchedule {
            seed,
            index,
            events,
        }
    }

    /// Generates service-chaos schedule `index` of the hunt seeded
    /// `seed`: fabric-as-a-service arrivals interleaved with hardware
    /// faults, so admission, preemption and completion all run against a
    /// degrading pod.
    ///
    /// Arrivals carry consecutive `nth` values — each one's *content* is
    /// still a pure function of the world seed, so the shrinker can drop
    /// any subset without perturbing the rest. The harness-managed slice
    /// operations (`Compose`/`Release`/`Preempt`) are deliberately
    /// absent: in these schedules the embedded service core is the sole
    /// owner of slices, so its bookkeeping invariants stay meaningful.
    ///
    /// Same `splitmix` stream discipline as [`FaultSchedule::generate`],
    /// with its own offset — the uniform draw's distribution is pinned
    /// and must not change.
    pub fn generate_service(seed: u64, index: u64) -> FaultSchedule {
        let mut rng = StdRng::seed_from_u64(lightwave_par::splitmix(seed ^ 0xFAA5_CA11, index));
        // Enough arrivals that the production mix (≈2.4 cubes each) can
        // exhaust the 64-cube pod and exercise preemption and queue
        // blocking, not just admission.
        let arrivals = rng.random_range(28..=44u16);
        let mut events = Vec::new();
        let mut nth = 0u16;
        // Open with a burst so faults have service slices to land on.
        while nth < 3 {
            events.push(FaultKind::Arrival { nth });
            nth += 1;
        }
        while nth < arrivals {
            let ocs = rng.random_range(0..GEN_OCS_COUNT);
            events.push(match rng.random_range(0..100u32) {
                0..=39 => FaultKind::Advance {
                    millis: *pick(&mut rng, &ADVANCE_MENU_MS),
                },
                40..=59 => FaultKind::FailFru {
                    ocs,
                    slot: rng.random_range(0..16u8),
                },
                60..=74 => FaultKind::ReplaceFru {
                    ocs,
                    slot: rng.random_range(0..16u8),
                },
                75..=84 => FaultKind::FailMirror {
                    ocs,
                    north: rng.random_bool(0.5),
                    port: rng.random_range(0..64u8),
                },
                85..=92 => FaultKind::Maintenance {
                    ocs,
                    slot: rng.random_range(0..16u8),
                },
                93..=96 => FaultKind::LinkFlap {
                    ocs,
                    port: rng.random_range(0..64u8),
                },
                _ => FaultKind::VerifyReject { ocs },
            });
            if rng.random_bool(0.6) {
                events.push(FaultKind::Arrival { nth });
                nth += 1;
            }
        }
        // A settle tail: holds complete under the final fault state.
        events.push(FaultKind::Advance { millis: 400 });
        events.push(FaultKind::Advance { millis: 400 });
        FaultSchedule {
            seed,
            index,
            events,
        }
    }

    /// The schedule's duration in injected [`FaultKind::Advance`] time.
    pub fn advanced(&self) -> Nanos {
        let ms: u64 = self
            .events
            .iter()
            .map(|e| match e {
                FaultKind::Advance { millis } => *millis as u64,
                _ => 0,
            })
            .sum();
        Nanos::from_millis(ms)
    }
}

fn pick<'a, T>(rng: &mut StdRng, menu: &'a [T]) -> &'a T {
    &menu[rng.random_range(0..menu.len())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_index_regenerates_identically() {
        for index in 0..32 {
            let a = FaultSchedule::generate(42, index);
            let b = FaultSchedule::generate(42, index);
            assert_eq!(a, b);
            assert!(a.events.len() >= 6 && a.events.len() <= 14);
            assert!(matches!(a.events[0], FaultKind::Compose { .. }));
        }
    }

    #[test]
    fn different_indices_diverge() {
        let a = FaultSchedule::generate(42, 0);
        let b = FaultSchedule::generate(42, 1);
        assert_ne!(a.events, b.events);
    }

    #[test]
    fn stream_derivation_matches_par() {
        // The determinism contract: schedule streams ARE par shard
        // streams. Pin the mixer so a drift in either crate fails here.
        let mut ours = StdRng::seed_from_u64(lightwave_par::splitmix(7, 3));
        let mut pars = StdRng::seed_from_u64(lightwave_par::splitmix(7, 3));
        use rand::RngCore;
        assert_eq!(ours.next_u64(), pars.next_u64());
    }

    #[test]
    fn events_roundtrip_through_serde() {
        let s = FaultSchedule::generate(9, 4);
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSchedule = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
