//! Minimal in-repo validators for the two export formats, used by CI (no
//! network, no external schema tooling): the Chrome trace-event JSON
//! document and the flight-recorder JSONL bundle.

use serde::de::{DeError, Deserialize};
use serde::Content;

/// An arbitrary parsed JSON tree (the shim's [`Content`] model).
struct Json(Content);

impl<'de> Deserialize<'de> for Json {
    fn from_content(content: &Content) -> Result<Json, DeError> {
        Ok(Json(content.clone()))
    }
}

/// Counts per event phase from a validated trace document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// `"X"` complete events (spans).
    pub complete: usize,
    /// `"M"` metadata events (process/thread names).
    pub metadata: usize,
    /// `"s"` + `"f"` flow events (follows-from arrows).
    pub flows: usize,
    /// `"i"` instant events.
    pub instants: usize,
    /// `"C"` counter events (health time-series tracks).
    pub counters: usize,
}

impl TraceStats {
    /// Total events validated.
    pub fn total(&self) -> usize {
        self.complete + self.metadata + self.flows + self.instants + self.counters
    }
}

fn require_str<'a>(event: &'a Content, key: &str, i: usize) -> Result<&'a str, String> {
    event
        .field(key)
        .ok_or_else(|| format!("event {i}: missing \"{key}\""))?
        .as_str(key)
        .map_err(|e| format!("event {i}: {e}"))
}

fn require_uint(event: &Content, key: &str, i: usize) -> Result<u64, String> {
    match event.field(key) {
        Some(Content::U64(v)) => Ok(*v),
        Some(Content::I64(v)) if *v >= 0 => Ok(*v as u64),
        Some(other) => Err(format!(
            "event {i}: \"{key}\" must be a non-negative integer, found {}",
            other.kind()
        )),
        None => Err(format!("event {i}: missing \"{key}\"")),
    }
}

fn require_number(event: &Content, key: &str, i: usize) -> Result<f64, String> {
    match event.field(key) {
        Some(Content::F64(v)) => Ok(*v),
        Some(Content::U64(v)) => Ok(*v as f64),
        Some(Content::I64(v)) => Ok(*v as f64),
        Some(other) => Err(format!(
            "event {i}: \"{key}\" must be a number, found {}",
            other.kind()
        )),
        None => Err(format!("event {i}: missing \"{key}\"")),
    }
}

/// Validates a Chrome trace-event JSON document: the top-level object
/// shape, and per event the phase-appropriate required fields (`"X"`
/// needs `ts`/`dur`, `"M"` needs a known metadata name and an
/// `args.name`, flow events need an `id`, every event needs `pid`/`tid`).
/// Returns per-phase counts on success.
pub fn validate_chrome_trace(json: &str) -> Result<TraceStats, String> {
    let Json(doc) = serde_json::from_str::<Json>(json).map_err(|e| format!("not JSON: {e}"))?;
    doc.as_map("trace document").map_err(|e| e.to_string())?;
    let unit = doc
        .field("displayTimeUnit")
        .ok_or("missing \"displayTimeUnit\"")?
        .as_str("displayTimeUnit")
        .map_err(|e| e.to_string())?;
    if unit != "ms" && unit != "ns" {
        return Err(format!(
            "displayTimeUnit must be \"ms\" or \"ns\", got {unit:?}"
        ));
    }
    let events = doc
        .field("traceEvents")
        .ok_or("missing \"traceEvents\"")?
        .as_seq("traceEvents")
        .map_err(|e| e.to_string())?;
    let mut stats = TraceStats::default();
    for (i, event) in events.iter().enumerate() {
        event
            .as_map("trace event")
            .map_err(|e| format!("event {i}: {e}"))?;
        let name = require_str(event, "name", i)?;
        if name.is_empty() {
            return Err(format!("event {i}: empty \"name\""));
        }
        require_uint(event, "pid", i)?;
        require_uint(event, "tid", i)?;
        let ph = require_str(event, "ph", i)?;
        match ph {
            "X" => {
                require_number(event, "ts", i)?;
                let dur = require_number(event, "dur", i)?;
                if dur < 0.0 {
                    return Err(format!("event {i}: negative dur"));
                }
                stats.complete += 1;
            }
            "M" => {
                if name != "process_name" && name != "thread_name" {
                    return Err(format!("event {i}: unknown metadata \"{name}\""));
                }
                let args = event
                    .field("args")
                    .ok_or_else(|| format!("event {i}: metadata without args"))?;
                args.field("name")
                    .ok_or_else(|| format!("event {i}: metadata args without name"))?
                    .as_str("args.name")
                    .map_err(|e| format!("event {i}: {e}"))?;
                stats.metadata += 1;
            }
            "s" | "f" => {
                require_number(event, "ts", i)?;
                require_str(event, "id", i)?;
                if ph == "f" && require_str(event, "bp", i)? != "e" {
                    return Err(format!("event {i}: flow finish must bind enclosing (bp=e)"));
                }
                stats.flows += 1;
            }
            "i" => {
                require_number(event, "ts", i)?;
                stats.instants += 1;
            }
            "C" => {
                require_number(event, "ts", i)?;
                let args = event
                    .field("args")
                    .ok_or_else(|| format!("event {i}: counter without args"))?;
                let values = args
                    .as_map("counter args")
                    .map_err(|e| format!("event {i}: {e}"))?;
                if values.is_empty() {
                    return Err(format!("event {i}: counter args must carry a value"));
                }
                for (key, value) in values {
                    let numeric =
                        matches!(value, Content::F64(_) | Content::U64(_) | Content::I64(_));
                    if !numeric {
                        return Err(format!(
                            "event {i}: counter arg {key:?} must be a number, found {}",
                            value.kind()
                        ));
                    }
                }
                stats.counters += 1;
            }
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    Ok(stats)
}

/// Validates a flight-recorder JSONL bundle: non-empty, and every
/// non-blank line parses as a JSON object. Returns the line count.
pub fn validate_flight_jsonl(jsonl: &str) -> Result<usize, String> {
    let mut lines = 0usize;
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let Json(doc) =
            serde_json::from_str::<Json>(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        doc.as_map("flight record")
            .map_err(|e| format!("line {}: {e}", i + 1))?;
        lines += 1;
    }
    if lines == 0 {
        return Err("flight bundle is empty".to_string());
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_json_and_missing_fields() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace("{}").is_err());
        assert!(validate_chrome_trace("{\"displayTimeUnit\":\"ms\"}").is_err());
        let bad_phase = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"x","ph":"Z","pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(bad_phase)
            .unwrap_err()
            .contains("unsupported phase"));
        let no_dur = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"x","ph":"X","ts":1,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(no_dur).unwrap_err().contains("dur"));
    }

    #[test]
    fn accepts_a_minimal_valid_document() {
        let doc = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"process_name","ph":"M","pid":1,"tid":0,"args":{"name":"p"}},
            {"name":"s1","cat":"c","ph":"X","ts":0.5,"dur":2,"pid":1,"tid":1},
            {"name":"follows","cat":"flow","ph":"s","id":"a","ts":1,"pid":1,"tid":1},
            {"name":"follows","cat":"flow","ph":"f","bp":"e","id":"a","ts":2,"pid":1,"tid":1},
            {"name":"mark","ph":"i","s":"t","ts":3,"pid":1,"tid":1},
            {"name":"drift","cat":"counter","ph":"C","ts":4,"pid":1,"tid":1,"args":{"value":0.03}}]}"#;
        let stats = validate_chrome_trace(doc).expect("valid");
        assert_eq!(
            stats,
            TraceStats {
                complete: 1,
                metadata: 1,
                flows: 2,
                instants: 1,
                counters: 1
            }
        );
        assert_eq!(stats.total(), 6);
    }

    #[test]
    fn counter_without_value_is_rejected() {
        let doc = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"drift","ph":"C","ts":4,"pid":1,"tid":1,"args":{}}]}"#;
        assert!(validate_chrome_trace(doc)
            .unwrap_err()
            .contains("counter args must carry a value"));
        let no_args = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"drift","ph":"C","ts":4,"pid":1,"tid":1}]}"#;
        assert!(validate_chrome_trace(no_args)
            .unwrap_err()
            .contains("counter without args"));
        // Counter tracks render numeric series; a stringly value is a
        // malformed track, not a unit quirk.
        let stringly = r#"{"displayTimeUnit":"ms","traceEvents":[
            {"name":"depth","ph":"C","ts":4,"pid":1,"tid":1,"args":{"value":"3"}}]}"#;
        assert!(validate_chrome_trace(stringly)
            .unwrap_err()
            .contains("must be a number"));
    }

    #[test]
    fn flight_jsonl_checks_each_line() {
        assert_eq!(validate_flight_jsonl("{\"a\":1}\n{\"b\":2}\n").unwrap(), 2);
        assert!(validate_flight_jsonl("").is_err(), "empty bundle rejected");
        assert!(validate_flight_jsonl("{\"a\":1}\nnope\n").is_err());
        assert!(
            validate_flight_jsonl("[1,2]\n").is_err(),
            "records must be objects"
        );
    }
}
