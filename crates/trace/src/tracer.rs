//! The span collector: deterministic ids, explicit parenting, sim-time
//! stamps.

use crate::span::{InstantRecord, Lane, ReconfigPhase, SpanId, SpanKind, SpanRecord};
use lightwave_units::Nanos;

/// SplitMix64 finalizer — the same bijective avalanche mix the parallel
/// engine uses for shard-stream derivation (`lightwave-par::splitmix`),
/// duplicated here because `lightwave-trace` sits *below* `lightwave-par`
/// in the workspace DAG. A unit test in `lightwave-par` pins the two
/// derivations equal.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the id for allocation `counter` of a tracer seeded with `seed`:
/// `splitmix64(seed ^ splitmix64(counter))`. Pure — same seed, same id
/// sequence, no wall clock, no addresses.
pub fn derive_span_id(seed: u64, counter: u64) -> SpanId {
    SpanId(splitmix64(seed ^ splitmix64(counter)))
}

struct OpenSpan {
    record: SpanRecord,
}

/// A deterministic span collector.
///
/// Ids come off a seeded counter ([`derive_span_id`]); timestamps are
/// caller-supplied sim-time [`Nanos`]. The tracer is plain `&mut` state —
/// no thread-locals, no interior mutability — so a seeded run produces a
/// byte-identical trace at any worker count (DESIGN.md §6.2).
///
/// Completed spans are stored in *completion order* (children before
/// parents for nested spans), which is also the flight recorder's replay
/// order.
pub struct Tracer {
    seed: u64,
    next: u64,
    open: Vec<OpenSpan>,
    done: Vec<SpanRecord>,
    instants: Vec<InstantRecord>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("seed", &self.seed)
            .field("allocated", &self.next)
            .field("open", &self.open.len())
            .field("done", &self.done.len())
            .field("instants", &self.instants.len())
            .finish()
    }
}

impl Tracer {
    /// A tracer whose id stream derives from `seed`.
    pub fn new(seed: u64) -> Tracer {
        Tracer {
            seed,
            next: 0,
            open: Vec::new(),
            done: Vec::new(),
            instants: Vec::new(),
        }
    }

    /// The tracer's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    fn next_id(&mut self) -> SpanId {
        let id = derive_span_id(self.seed, self.next);
        self.next += 1;
        id
    }

    /// Opens a span at sim-time `start`. The span stays open (and out of
    /// [`Tracer::spans`]) until [`Tracer::end`].
    pub fn begin(
        &mut self,
        lane: Lane,
        parent: Option<SpanId>,
        start: Nanos,
        kind: SpanKind,
    ) -> SpanId {
        let id = self.next_id();
        self.begin_with_id(id, lane, parent, start, kind)
    }

    /// Opens a span whose id the *caller* derived (pure in its own
    /// inputs) instead of drawing from the tracer's counter stream —
    /// the hook the scope profiler uses so a request's root span id can
    /// be predicted by sharded, tracer-less runs
    /// (`scope_span_id(seed, request)`) and still resolve in a traced
    /// run's export. The counter stream is not advanced. The caller is
    /// responsible for id uniqueness: callers must derive from a stream
    /// offset distinct from this tracer's seed (DESIGN §6.7).
    pub fn begin_with_id(
        &mut self,
        id: SpanId,
        lane: Lane,
        parent: Option<SpanId>,
        start: Nanos,
        kind: SpanKind,
    ) -> SpanId {
        self.open.push(OpenSpan {
            record: SpanRecord {
                id,
                parent,
                follows: None,
                lane,
                start,
                end: start,
                kind,
            },
        });
        id
    }

    /// Closes an open span at sim-time `end`.
    ///
    /// # Panics
    /// Panics if `id` is not an open span (double-end or never begun) —
    /// a tracing bug the determinism tests should surface, not mask.
    pub fn end(&mut self, id: SpanId, end: Nanos) {
        let idx = self
            .open
            .iter()
            .position(|o| o.record.id == id)
            .expect("end() on a span that is not open");
        let mut record = self.open.remove(idx).record;
        record.end = record.start.max(end);
        self.done.push(record);
    }

    /// Records a complete span in one call — the common retrospective
    /// case, where instrumentation already holds a report with both the
    /// issue time and the ready time.
    pub fn span(
        &mut self,
        lane: Lane,
        parent: Option<SpanId>,
        start: Nanos,
        end: Nanos,
        kind: SpanKind,
    ) -> SpanId {
        let id = self.begin(lane, parent, start, kind);
        self.end(id, end);
        id
    }

    /// Marks `id` (open or completed) as causally following `after`,
    /// rendered as a flow arrow in Perfetto. Unknown ids are ignored.
    pub fn link_follows(&mut self, id: SpanId, after: SpanId) {
        if let Some(o) = self.open.iter_mut().find(|o| o.record.id == id) {
            o.record.follows = Some(after);
            return;
        }
        if let Some(r) = self.done.iter_mut().rev().find(|r| r.id == id) {
            r.follows = Some(after);
        }
    }

    /// Records an instant mark on `lane`.
    pub fn instant(&mut self, lane: Lane, at: Nanos, name: &str) {
        self.instants.push(InstantRecord {
            lane,
            at,
            name: name.to_string(),
        });
    }

    /// Completed spans, in completion order.
    pub fn spans(&self) -> &[SpanRecord] {
        &self.done
    }

    /// Instant marks, in record order.
    pub fn instants(&self) -> &[InstantRecord] {
        &self.instants
    }

    /// Spans begun but not yet ended.
    pub fn open_count(&self) -> usize {
        self.open.len()
    }

    /// Every lane any span or instant has rendered on, deduplicated and
    /// in lane order.
    pub fn lanes(&self) -> Vec<Lane> {
        let mut lanes: Vec<Lane> = self
            .done
            .iter()
            .map(|s| s.lane)
            .chain(self.open.iter().map(|o| o.record.lane))
            .chain(self.instants.iter().map(|i| i.lane))
            .collect();
        lanes.sort();
        lanes.dedup();
        lanes
    }
}

/// Synthesizes the four per-phase child spans of one switch
/// reconfiguration, partitioning `[started, ready]` by each phase's
/// [`ReconfigPhase::share_permille`] (integer arithmetic, last phase
/// absorbing the rounding remainder). Consecutive phases are linked
/// follows-from, so the drain → settle → verify → undrain causal chain
/// renders as flow arrows. Returns the phase span ids in causal order.
pub fn reconfig_phase_spans(
    tracer: &mut Tracer,
    parent: SpanId,
    switch: u32,
    started: Nanos,
    ready: Nanos,
) -> [SpanId; 4] {
    let total = ready.saturating_sub(started).0;
    let mut ids = [SpanId(0); 4];
    let mut cursor = started;
    let mut prev: Option<SpanId> = None;
    for (i, phase) in ReconfigPhase::ALL.into_iter().enumerate() {
        let end = if i + 1 == ReconfigPhase::ALL.len() {
            ready
        } else {
            let len = total * phase.share_permille() / 1000;
            Nanos(cursor.0 + len)
        };
        let id = tracer.span(
            Lane::Switch(switch),
            Some(parent),
            cursor,
            end,
            SpanKind::Phase { switch, phase },
        );
        if let Some(p) = prev {
            tracer.link_follows(id, p);
        }
        prev = Some(id);
        ids[i] = id;
        cursor = end;
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_deterministic_and_distinct() {
        let mut a = Tracer::new(42);
        let mut b = Tracer::new(42);
        let mut c = Tracer::new(43);
        for _ in 0..64 {
            let ia = a.span(Lane::Control, None, Nanos(0), Nanos(1), kind());
            let ib = b.span(Lane::Control, None, Nanos(0), Nanos(1), kind());
            let ic = c.span(Lane::Control, None, Nanos(0), Nanos(1), kind());
            assert_eq!(ia, ib, "same seed, same id stream");
            assert_ne!(ia, ic, "different seeds diverge");
        }
        let ids: std::collections::BTreeSet<_> = a.spans().iter().map(|s| s.id).collect();
        assert_eq!(ids.len(), 64, "no collisions in the stream");
    }

    fn kind() -> SpanKind {
        SpanKind::Custom {
            name: "t".to_string(),
        }
    }

    #[test]
    fn begin_end_nests_and_completes_children_first() {
        let mut t = Tracer::new(1);
        let outer = t.begin(Lane::Control, None, Nanos(0), kind());
        let inner = t.span(Lane::Control, Some(outer), Nanos(1), Nanos(2), kind());
        assert_eq!(t.open_count(), 1);
        t.end(outer, Nanos(5));
        assert_eq!(t.open_count(), 0);
        assert_eq!(t.spans()[0].id, inner, "children complete first");
        assert_eq!(t.spans()[1].id, outer);
        assert_eq!(t.spans()[0].parent, Some(outer));
    }

    #[test]
    #[should_panic(expected = "not open")]
    fn double_end_panics() {
        let mut t = Tracer::new(1);
        let id = t.begin(Lane::Control, None, Nanos(0), kind());
        t.end(id, Nanos(1));
        t.end(id, Nanos(2));
    }

    #[test]
    fn end_clamps_to_start() {
        let mut t = Tracer::new(1);
        let id = t.begin(Lane::Control, None, Nanos(10), kind());
        t.end(id, Nanos(4));
        assert_eq!(t.spans()[0].end, Nanos(10), "no negative durations");
    }

    #[test]
    fn phase_spans_partition_the_window_and_chain() {
        let mut t = Tracer::new(7);
        let parent = t.span(
            Lane::Switch(3),
            None,
            Nanos(1000),
            Nanos(2000),
            SpanKind::ReconfigCommit {
                switch: 3,
                added: 2,
                removed: 1,
                untouched: 10,
            },
        );
        let ids = reconfig_phase_spans(&mut t, parent, 3, Nanos(1000), Nanos(2000));
        let phases: Vec<&SpanRecord> = ids
            .iter()
            .map(|id| t.spans().iter().find(|s| s.id == *id).expect("recorded"))
            .collect();
        // Contiguous partition of [1000, 2000].
        assert_eq!(phases[0].start, Nanos(1000));
        assert_eq!(phases[3].end, Nanos(2000));
        for w in phases.windows(2) {
            assert_eq!(w[0].end, w[1].start, "phases are contiguous");
            assert_eq!(w[1].follows, Some(w[0].id), "causal chain linked");
        }
        for p in &phases {
            assert_eq!(p.parent, Some(parent));
        }
        // Shares: drain 15%, settle 50%, verify 25%, undrain remainder.
        assert_eq!(phases[0].end.0 - phases[0].start.0, 150);
        assert_eq!(phases[1].end.0 - phases[1].start.0, 500);
        assert_eq!(phases[2].end.0 - phases[2].start.0, 250);
    }

    #[test]
    fn lanes_are_deduplicated_and_ordered() {
        let mut t = Tracer::new(2);
        t.span(Lane::Worker(1), None, Nanos(0), Nanos(1), kind());
        t.span(Lane::Control, None, Nanos(0), Nanos(1), kind());
        t.span(Lane::Worker(1), None, Nanos(1), Nanos(2), kind());
        t.instant(Lane::Switch(0), Nanos(0), "mark");
        assert_eq!(
            t.lanes(),
            vec![Lane::Control, Lane::Switch(0), Lane::Worker(1)]
        );
    }
}
