//! The flight recorder: a bounded ring of recent spans and events that
//! snapshots itself into a postmortem bundle the moment a `Critical`
//! alarm fires.
//!
//! §3.2.2's operational lesson (and Mission Apollo's): when a
//! reconfiguration goes wrong, the page is only the start — the operator
//! needs to *replay what the control plane did* around the failure. The
//! recorder keeps the last N completed spans and telemetry events, and
//! wires into [`AlarmAggregator`] incidents: every incident whose
//! severity reaches [`Severity::Critical`] triggers exactly one dump,
//! regardless of whether the aggregator paged, coalesced, escalated, or
//! even already cleared it — a Critical is never dropped.

use crate::span::SpanRecord;
use crate::tracer::Tracer;
use lightwave_telemetry::{
    AlarmAggregator, CounterSample, Event, EventBus, FleetTelemetry, IngestOutcome, SeriesStore,
    Severity,
};
use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, VecDeque};

/// One ring entry: a completed span or a published telemetry event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FlightEntry {
    /// A completed span.
    Span(SpanRecord),
    /// A telemetry event.
    Event(Event),
}

/// A snapshot taken when an incident went Critical.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FlightDump {
    /// The triggering incident's id.
    pub incident: u64,
    /// The incident's severity at dump time (always Critical today).
    pub severity: Severity,
    /// Sim-time of the incident's last activity when the dump was taken.
    pub at: Nanos,
    /// The ring contents, oldest first.
    pub entries: Vec<FlightEntry>,
    /// Recent health counter samples for the incident's blast radius
    /// (empty unless the dump was taken via
    /// [`FlightRecorder::poll_with_series`]).
    pub counters: Vec<CounterSample>,
}

impl FlightDump {
    /// Serializes the bundle as JSON-lines: one header object, then one
    /// object per entry, oldest first — the format
    /// [`crate::validate::validate_flight_jsonl`] checks in CI. When the
    /// dump embeds counter samples, they follow the entries, one line
    /// each.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        let header = serde_json::to_string(&FlightHeader {
            incident: self.incident,
            severity: self.severity,
            at: self.at,
            entries: self.entries.len() as u64,
            counters: self.counters.len() as u64,
        })
        .expect("header serializes");
        out.push_str(&header);
        out.push('\n');
        for entry in &self.entries {
            out.push_str(&serde_json::to_string(entry).expect("entries serialize"));
            out.push('\n');
        }
        for sample in &self.counters {
            out.push_str(&serde_json::to_string(sample).expect("samples serialize"));
            out.push('\n');
        }
        out
    }
}

#[derive(Serialize)]
struct FlightHeader {
    incident: u64,
    severity: Severity,
    at: Nanos,
    entries: u64,
    counters: u64,
}

/// The bounded-ring flight recorder.
#[derive(Debug)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<FlightEntry>,
    evicted: u64,
    span_cursor: usize,
    event_cursor: u64,
    missed_events: u64,
    dumped: BTreeSet<u64>,
    dumps: Vec<FlightDump>,
}

impl FlightRecorder {
    /// A recorder retaining the most recent `capacity` entries (≥ 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        assert!(capacity > 0, "flight-recorder capacity must be positive");
        FlightRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity.min(4096)),
            evicted: 0,
            span_cursor: 0,
            event_cursor: 0,
            missed_events: 0,
            dumped: BTreeSet::new(),
            dumps: Vec::new(),
        }
    }

    /// The configured retention.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries currently retained.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Entries evicted from the ring (bounded retention, counted — never
    /// silent).
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Bus events that fell out of the bus's own retention between syncs
    /// (sync more often, or retain more, if this is non-zero).
    pub fn missed_events(&self) -> u64 {
        self.missed_events
    }

    fn push(&mut self, entry: FlightEntry) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.evicted += 1;
        }
        self.ring.push_back(entry);
    }

    /// Records one completed span directly.
    pub fn record_span(&mut self, span: SpanRecord) {
        self.push(FlightEntry::Span(span));
    }

    /// Records one telemetry event directly.
    pub fn record_event(&mut self, event: Event) {
        self.push(FlightEntry::Event(event));
    }

    /// Pulls everything new since the last sync: the tracer's completed
    /// spans (completion order), then the bus's retained events
    /// (publish order). Cursor-based, so each span/event lands in the
    /// ring exactly once.
    pub fn sync(&mut self, tracer: &Tracer, bus: &EventBus) {
        let spans = tracer.spans();
        for span in &spans[self.span_cursor.min(spans.len())..] {
            self.record_span(span.clone());
        }
        self.span_cursor = spans.len();

        let retained: Vec<&Event> = bus.recent().collect();
        let first = bus.published() - retained.len() as u64;
        if first > self.event_cursor {
            self.missed_events += first - self.event_cursor;
        }
        for (idx, event) in (first..bus.published()).zip(retained) {
            if idx >= self.event_cursor {
                self.record_event(event.clone());
            }
        }
        self.event_cursor = bus.published();
    }

    fn dump_incident(
        &mut self,
        incident: u64,
        severity: Severity,
        at: Nanos,
        counters: Vec<CounterSample>,
    ) {
        self.dumps.push(FlightDump {
            incident,
            severity,
            at,
            entries: self.ring.iter().cloned().collect(),
            counters,
        });
        self.dumped.insert(incident);
    }

    /// Wires one [`AlarmAggregator::ingest`] outcome into the recorder:
    /// if the record landed in an incident whose severity is Critical —
    /// whatever the outcome variant — and that incident has not dumped
    /// yet, snapshot now. Sync the ring first so the dump carries the
    /// latest spans. Returns the incident id if a dump was taken.
    pub fn on_ingest(&mut self, alarms: &AlarmAggregator, outcome: IngestOutcome) -> Option<u64> {
        let id = outcome.incident();
        let inc = alarms.incident(id)?;
        if inc.severity == Severity::Critical && !self.dumped.contains(&id) {
            self.dump_incident(id, inc.severity, inc.last_at, Vec::new());
            return Some(id);
        }
        None
    }

    /// Syncs the ring from `tracer` + the telemetry event bus, then scans
    /// *every* incident the aggregator has ever opened and dumps each
    /// Critical one exactly once. Because incident severity never
    /// decreases and the incident log is append-only, this catches a
    /// Critical that was raised *and cleared* between polls — the
    /// never-drop-Critical contract. Returns the incidents dumped now.
    pub fn poll(&mut self, tracer: &Tracer, telemetry: &FleetTelemetry) -> Vec<u64> {
        self.poll_impl(tracer, telemetry, None)
    }

    /// [`Self::poll`], but each new dump also embeds the last
    /// `per_series` retained samples of every health series labeled with
    /// the incident's switch — the postmortem bundle answers "what were
    /// the drift/relock counters doing just before this went Critical?"
    /// without a second tool.
    pub fn poll_with_series(
        &mut self,
        tracer: &Tracer,
        telemetry: &FleetTelemetry,
        store: &SeriesStore,
        per_series: usize,
    ) -> Vec<u64> {
        self.poll_impl(tracer, telemetry, Some((store, per_series)))
    }

    fn poll_impl(
        &mut self,
        tracer: &Tracer,
        telemetry: &FleetTelemetry,
        series: Option<(&SeriesStore, usize)>,
    ) -> Vec<u64> {
        self.sync(tracer, &telemetry.events);
        let mut dumped_now = Vec::new();
        for inc in telemetry.alarms.incidents() {
            if inc.severity == Severity::Critical && !self.dumped.contains(&inc.id) {
                let counters = series
                    .map(|(store, n)| store.recent_for_switch(inc.switch, n))
                    .unwrap_or_default();
                self.dump_incident(inc.id, inc.severity, inc.last_at, counters);
                dumped_now.push(inc.id);
            }
        }
        dumped_now
    }

    /// Every dump taken, in trigger order.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// The most recent dump, if any.
    pub fn latest_dump(&self) -> Option<&FlightDump> {
        self.dumps.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{Lane, SpanKind};
    use lightwave_telemetry::{AlarmCause, AlarmRecord};

    fn span_kind() -> SpanKind {
        SpanKind::Custom {
            name: "work".to_string(),
        }
    }

    #[test]
    fn ring_bounds_and_counts_evictions() {
        let mut rec = FlightRecorder::new(3);
        let mut t = Tracer::new(1);
        for i in 0..5u64 {
            t.span(Lane::Control, None, Nanos(i), Nanos(i + 1), span_kind());
        }
        rec.sync(&t, &EventBus::default());
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.evicted(), 2);
        // Second sync adds nothing: the cursor advanced.
        rec.sync(&t, &EventBus::default());
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.evicted(), 2);
    }

    #[test]
    fn critical_raised_and_cleared_within_debounce_window_still_dumps() {
        // The never-drop-Critical regression (ISSUE 3 satellite): a
        // Critical that the aggregator absorbs into an existing incident
        // and that clears before the next poll must still produce a
        // postmortem bundle.
        let mut telemetry = FleetTelemetry::new();
        let mut tracer = Tracer::new(9);
        let mut rec = FlightRecorder::new(16);
        tracer.span(Lane::Switch(2), None, Nanos(0), Nanos(10), span_kind());
        // A Warning incident opens...
        telemetry.ingest_alarm(AlarmRecord {
            at: Nanos::from_millis(1),
            severity: Severity::Warning,
            switch: 2,
            cause: AlarmCause::FruFailed { slot: 0 },
        });
        assert!(rec.poll(&tracer, &telemetry).is_empty(), "warning: no dump");
        // ...a Critical repeat is absorbed into it (same debounce window)...
        telemetry.ingest_alarm(AlarmRecord {
            at: Nanos::from_millis(2),
            severity: Severity::Critical,
            switch: 2,
            cause: AlarmCause::FruFailed { slot: 1 },
        });
        // ...and the incident clears before anyone polls.
        telemetry.advance(Nanos::from_secs_f64(60.0));
        assert!(!telemetry.alarms.incidents()[0].is_open());
        let dumped = rec.poll(&tracer, &telemetry);
        assert_eq!(dumped, vec![0], "cleared Critical still dumps");
        let dump = rec.latest_dump().expect("dumped");
        assert_eq!(dump.severity, Severity::Critical);
        assert!(dump
            .entries
            .iter()
            .any(|e| matches!(e, FlightEntry::Span(_))));
        assert!(dump
            .entries
            .iter()
            .any(|e| matches!(e, FlightEntry::Event(_))));
        // Exactly once: a later poll does not re-dump.
        assert!(rec.poll(&tracer, &telemetry).is_empty());
    }

    #[test]
    fn on_ingest_dumps_immediately_for_critical_outcomes() {
        let mut telemetry = FleetTelemetry::new();
        let mut rec = FlightRecorder::new(8);
        rec.record_span(SpanRecord {
            id: crate::tracer::derive_span_id(0, 0),
            parent: None,
            follows: None,
            lane: Lane::Switch(0),
            start: Nanos(0),
            end: Nanos(5),
            kind: span_kind(),
        });
        let outcome = telemetry.ingest_alarm(AlarmRecord {
            at: Nanos(1),
            severity: Severity::Critical,
            switch: 0,
            cause: AlarmCause::ChassisDown,
        });
        let dumped = rec.on_ingest(&telemetry.alarms, outcome);
        assert_eq!(dumped, Some(0));
        assert_eq!(rec.dumps().len(), 1);
        // The same incident never dumps twice.
        let outcome = telemetry.ingest_alarm(AlarmRecord {
            at: Nanos(2),
            severity: Severity::Critical,
            switch: 0,
            cause: AlarmCause::ChassisDown,
        });
        assert_eq!(rec.on_ingest(&telemetry.alarms, outcome), None);
    }

    #[test]
    fn dump_jsonl_is_parseable_and_complete() {
        let mut telemetry = FleetTelemetry::new();
        let mut tracer = Tracer::new(4);
        let mut rec = FlightRecorder::new(32);
        let parent = tracer.span(
            Lane::Switch(1),
            None,
            Nanos(0),
            Nanos(1000),
            SpanKind::ReconfigCommit {
                switch: 1,
                added: 2,
                removed: 0,
                untouched: 5,
            },
        );
        crate::tracer::reconfig_phase_spans(&mut tracer, parent, 1, Nanos(0), Nanos(1000));
        telemetry.ingest_alarm(AlarmRecord {
            at: Nanos(500),
            severity: Severity::Critical,
            switch: 1,
            cause: AlarmCause::ChassisDown,
        });
        let dumped = rec.poll(&tracer, &telemetry);
        assert_eq!(dumped.len(), 1);
        let jsonl = rec.latest_dump().expect("dump").to_jsonl();
        let lines = crate::validate::validate_flight_jsonl(&jsonl).expect("parseable");
        assert_eq!(lines, 1 + 5 + 1, "header + 5 spans + 1 event");
        assert!(jsonl.contains("MirrorSettle"), "phase chain in the bundle");
    }

    #[test]
    fn poll_with_series_embeds_blast_radius_counters() {
        let mut telemetry = FleetTelemetry::new();
        let tracer = Tracer::new(6);
        let mut rec = FlightRecorder::new(16);
        // Health series for two switches; only the incident's switch
        // lands in the bundle.
        let mut store = SeriesStore::default();
        let hot = store.series("health_port_drift_db", &[("port", "3"), ("switch", "7")]);
        let cold = store.series("health_port_drift_db", &[("port", "3"), ("switch", "8")]);
        for i in 0..6i64 {
            store.push_micros(hot, Nanos(i as u64 * 100), 30_000 * (i + 1));
            store.push_micros(cold, Nanos(i as u64 * 100), 10_000);
        }
        telemetry.ingest_alarm(AlarmRecord {
            at: Nanos(700),
            severity: Severity::Critical,
            switch: 7,
            cause: AlarmCause::ChassisDown,
        });
        let dumped = rec.poll_with_series(&tracer, &telemetry, &store, 4);
        assert_eq!(dumped.len(), 1);
        let dump = rec.latest_dump().expect("dump");
        assert_eq!(dump.counters.len(), 4, "last 4 samples of the hot switch");
        assert!(dump.counters.iter().all(|c| c.series.contains("switch=7")));
        assert_eq!(dump.counters.last().unwrap().value_micros, 180_000);
        let jsonl = dump.to_jsonl();
        let lines = crate::validate::validate_flight_jsonl(&jsonl).expect("parseable");
        assert_eq!(lines, 1 + 1 + 4, "header + 1 event + 4 counter samples");
        assert!(jsonl.contains("\"counters\":4"));
    }
}
