//! Span records: identity, lanes, typed payloads.

use lightwave_units::Nanos;
use serde::{Deserialize, Serialize};

/// A span's identity — a 64-bit value derived deterministically from the
/// tracer's seed and an allocation counter (see [`crate::Tracer`]), never
/// from a wall clock or address. Equal seeds produce equal id sequences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SpanId(pub u64);

impl std::fmt::Display for SpanId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// One phase of an OCS reconfiguration's causal chain (§3.2.2): traffic is
/// drained, the MEMS mirrors are commanded and settle, the monitor camera
/// verifies alignment, and traffic is undrained.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReconfigPhase {
    /// Traffic drained off the circuits about to move.
    Drain,
    /// MEMS mirrors commanded to their new angles and settling.
    MirrorSettle,
    /// Monitor-camera closed-loop verification of the new pointing.
    CameraVerify,
    /// Traffic re-admitted onto the verified circuits.
    Undrain,
}

impl ReconfigPhase {
    /// The four phases in causal order.
    pub const ALL: [ReconfigPhase; 4] = [
        ReconfigPhase::Drain,
        ReconfigPhase::MirrorSettle,
        ReconfigPhase::CameraVerify,
        ReconfigPhase::Undrain,
    ];

    /// Span name for the phase.
    pub fn name(self) -> &'static str {
        match self {
            ReconfigPhase::Drain => "ocs.drain",
            ReconfigPhase::MirrorSettle => "ocs.mirror_settle",
            ReconfigPhase::CameraVerify => "ocs.camera_verify",
            ReconfigPhase::Undrain => "ocs.undrain",
        }
    }

    /// The phase's share of the reconfiguration window, in per-mille.
    /// Drain and undrain are fast control-plane actions; the bulk of the
    /// window is mirror settling, then camera verification (§3.2.2).
    pub fn share_permille(self) -> u64 {
        match self {
            ReconfigPhase::Drain => 150,
            ReconfigPhase::MirrorSettle => 500,
            ReconfigPhase::CameraVerify => 250,
            ReconfigPhase::Undrain => 100,
        }
    }
}

/// One stage of a fabric-as-a-service request's lifecycle
/// (`Enqueue → Admit → Compose → Run → Release`, or `Reject` /
/// `Preempt` off the happy path). Stages chain with follows-from links
/// so one request reads as a causal lane through the timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestStage {
    /// The whole request, enqueue to terminal event — the root span the
    /// scope profiler opens for sampled requests, with an id pre-derived
    /// from `(seed, request)` so exemplars in a sharded (tracer-less)
    /// scope report resolve to it in a traced run's export.
    Lifecycle,
    /// Intent validated and queued, waiting for admission.
    Enqueue,
    /// Admission control picked the request (policy decision).
    Admit,
    /// The superpod composed the slice (fabric transaction).
    Compose,
    /// The slice is live and serving.
    Run,
    /// The slice was released after its service time.
    Release,
    /// The request was rejected (queue full or invalid intent).
    Reject,
    /// The running slice was evicted by a higher-priority request.
    Preempt,
}

impl RequestStage {
    /// Span name for the stage.
    pub fn name(self) -> &'static str {
        match self {
            RequestStage::Lifecycle => "svc.request",
            RequestStage::Enqueue => "svc.enqueue",
            RequestStage::Admit => "svc.admit",
            RequestStage::Compose => "svc.compose",
            RequestStage::Run => "svc.run",
            RequestStage::Release => "svc.release",
            RequestStage::Reject => "svc.reject",
            RequestStage::Preempt => "svc.preempt",
        }
    }
}

/// Typed span payload: which domain operation the span covers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SpanKind {
    /// A fabric-controller transaction across switches.
    FabricCommit {
        /// Switches touched.
        switches: u32,
        /// Circuits added fabric-wide.
        added: u32,
        /// Circuits removed fabric-wide.
        removed: u32,
        /// Circuits left carrying light throughout.
        untouched: u32,
    },
    /// One switch applying its reconfiguration delta.
    ReconfigCommit {
        /// Switch id.
        switch: u32,
        /// Circuits newly established.
        added: u32,
        /// Circuits torn down.
        removed: u32,
        /// Circuits untouched.
        untouched: u32,
    },
    /// One phase of a switch's reconfiguration (child of
    /// [`SpanKind::ReconfigCommit`]).
    Phase {
        /// Switch id.
        switch: u32,
        /// Which phase.
        phase: ReconfigPhase,
    },
    /// A cluster-scheduler simulation run carving slices.
    SchedulerRun {
        /// Scheduling discipline label (`pooled`, `contiguous`, …).
        discipline: String,
        /// Jobs completed in the run.
        jobs: u64,
    },
    /// Superpod topology reconfiguration: a slice composed onto cubes.
    SliceCompose {
        /// Cubes in the slice.
        cubes: u32,
        /// Circuits added by the composition.
        circuits: u32,
    },
    /// Superpod topology reconfiguration: a slice released.
    SliceRelease {
        /// Cubes freed.
        cubes: u32,
        /// Circuits removed by the release.
        circuits: u32,
    },
    /// A fault-recovery sequence (cube swap, mirror heal, …).
    FaultRecovery {
        /// What failed / what the recovery did.
        what: String,
    },
    /// One shard of a `lightwave-par` run, rendered on a virtual worker
    /// lane (a pure function of shard index — see DESIGN.md §6.2).
    WorkerShard {
        /// Shard index in the plan.
        shard: u64,
        /// Trials in the shard.
        trials: u64,
    },
    /// One lifecycle stage of a fabric-as-a-service slice request
    /// (`lightwave-service`).
    ServiceRequest {
        /// Request index in the arrival stream.
        request: u64,
        /// Which stage.
        stage: RequestStage,
    },
    /// A free-form span.
    Custom {
        /// Span name.
        name: String,
    },
}

impl SpanKind {
    /// The span's display name in the timeline.
    pub fn name(&self) -> String {
        match self {
            SpanKind::FabricCommit { .. } => "fabric.commit".to_string(),
            SpanKind::ReconfigCommit { switch, .. } => format!("ocs{switch}.reconfig"),
            SpanKind::Phase { phase, .. } => phase.name().to_string(),
            SpanKind::SchedulerRun { discipline, .. } => format!("sched.run[{discipline}]"),
            SpanKind::SliceCompose { .. } => "pod.compose".to_string(),
            SpanKind::SliceRelease { .. } => "pod.release".to_string(),
            SpanKind::FaultRecovery { what } => format!("recovery.{what}"),
            SpanKind::WorkerShard { shard, .. } => format!("shard{shard}"),
            SpanKind::ServiceRequest { stage, .. } => stage.name().to_string(),
            SpanKind::Custom { name } => name.clone(),
        }
    }

    /// The span's category, for Perfetto filtering.
    pub fn category(&self) -> &'static str {
        match self {
            SpanKind::FabricCommit { .. } => "fabric",
            SpanKind::ReconfigCommit { .. } | SpanKind::Phase { .. } => "ocs",
            SpanKind::SchedulerRun { .. } => "scheduler",
            SpanKind::SliceCompose { .. } | SpanKind::SliceRelease { .. } => "superpod",
            SpanKind::FaultRecovery { .. } => "recovery",
            SpanKind::WorkerShard { .. } => "par",
            SpanKind::ServiceRequest { .. } => "service",
            SpanKind::Custom { .. } => "custom",
        }
    }
}

/// The timeline lane a span renders on. Lanes map deterministically to
/// Perfetto `(pid, tid)` pairs — never to OS threads, so the rendering is
/// identical at any worker count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Lane {
    /// The fabric control plane.
    Control,
    /// The cluster scheduler.
    Scheduler,
    /// One superpod.
    Pod(u32),
    /// One OCS switch.
    Switch(u32),
    /// One *virtual* parallel-engine worker (lane = shard index mod lane
    /// count, not an OS thread).
    Worker(u32),
}

impl Lane {
    /// The Perfetto `(pid, tid)` pair for this lane.
    pub fn pid_tid(self) -> (u32, u32) {
        match self {
            Lane::Control => (1, 1),
            Lane::Scheduler => (1, 2),
            Lane::Pod(p) => (2, p + 1),
            Lane::Switch(s) => (3, s + 1),
            Lane::Worker(w) => (4, w + 1),
        }
    }

    /// The Perfetto process name for the lane's pid.
    pub fn process_name(self) -> &'static str {
        match self {
            Lane::Control | Lane::Scheduler => "control-plane",
            Lane::Pod(_) => "superpod",
            Lane::Switch(_) => "ocs-switches",
            Lane::Worker(_) => "par-workers",
        }
    }

    /// The Perfetto thread name for the lane's tid.
    pub fn thread_name(self) -> String {
        match self {
            Lane::Control => "controller".to_string(),
            Lane::Scheduler => "scheduler".to_string(),
            Lane::Pod(p) => format!("pod-{p}"),
            Lane::Switch(s) => format!("ocs-{s}"),
            Lane::Worker(w) => format!("worker-{w}"),
        }
    }
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpanRecord {
    /// Deterministic identity.
    pub id: SpanId,
    /// Enclosing span, if any.
    pub parent: Option<SpanId>,
    /// Causal predecessor (rendered as a Perfetto flow arrow), if any.
    pub follows: Option<SpanId>,
    /// Timeline lane.
    pub lane: Lane,
    /// Sim-time start.
    pub start: Nanos,
    /// Sim-time end (≥ start).
    pub end: Nanos,
    /// Typed payload.
    pub kind: SpanKind,
}

/// One instant (zero-duration) mark on a lane.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstantRecord {
    /// Timeline lane.
    pub lane: Lane,
    /// Sim-time of the mark.
    pub at: Nanos,
    /// Mark text.
    pub name: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_shares_cover_the_window() {
        let total: u64 = ReconfigPhase::ALL.iter().map(|p| p.share_permille()).sum();
        assert_eq!(total, 1000, "phase shares partition the window");
    }

    #[test]
    fn lanes_map_to_distinct_pid_tid() {
        let lanes = [
            Lane::Control,
            Lane::Scheduler,
            Lane::Pod(0),
            Lane::Switch(0),
            Lane::Switch(5),
            Lane::Worker(0),
            Lane::Worker(3),
        ];
        let mut seen = std::collections::BTreeSet::new();
        for lane in lanes {
            assert!(seen.insert(lane.pid_tid()), "{lane:?} collides");
        }
    }

    #[test]
    fn span_serde_roundtrip() {
        let rec = SpanRecord {
            id: SpanId(0xdead_beef),
            parent: Some(SpanId(1)),
            follows: None,
            lane: Lane::Switch(5),
            start: Nanos(10),
            end: Nanos(30),
            kind: SpanKind::Phase {
                switch: 5,
                phase: ReconfigPhase::CameraVerify,
            },
        };
        let json = serde_json::to_string(&rec).expect("serializes");
        let back: SpanRecord = serde_json::from_str(&json).expect("parses");
        assert_eq!(back, rec);
    }
}
