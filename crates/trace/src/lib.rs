//! # lightwave-trace
//!
//! Causal tracing for the lightwave-fabric workspace: the *timeline*
//! pillar of observability, complementing `lightwave-telemetry`'s
//! aggregate pillar (metrics, alarms, SLO).
//!
//! The paper's operational story (§3.2.2, §4.1.1) is timeline-shaped: an
//! OCS reconfiguration is a causal chain — drain → mirror command →
//! settle → monitor-camera verify → undrain — and production debugging
//! means reconstructing exactly that chain after a fault. This crate
//! provides:
//!
//! - [`Tracer`] — span collection with **deterministic ids**
//!   (`splitmix64` off a seeded counter, no wall clock), explicit
//!   parent/child and follows-from links, sim-time
//!   [`Nanos`](lightwave_units::Nanos) stamps, and
//!   typed payloads ([`SpanKind`]) for the domain operations. Same seed
//!   ⇒ byte-identical trace, at any worker count.
//! - [`to_chrome_trace`] — a Chrome trace-event / Perfetto JSON
//!   exporter; the `trace.json` opens at <https://ui.perfetto.dev>, with
//!   switches and virtual workers as named `(pid, tid)` lanes.
//! - [`FlightRecorder`] — a bounded ring of recent spans + events that
//!   snapshots a JSONL postmortem bundle the moment any
//!   [`AlarmAggregator`](lightwave_telemetry::AlarmAggregator) incident
//!   reaches `Critical` severity. A Critical is never dropped, even if
//!   it was absorbed into an open incident and cleared before the next
//!   poll.
//! - [`validate`] — minimal in-repo validators for both export formats,
//!   used by CI (no network, no external schema tooling).
//!
//! In the workspace DAG this crate sits directly above `lightwave-units`
//! beside `lightwave-telemetry`; the operational crates (`ocs`,
//! `fabric`, `scheduler`, `superpod`, `par`) gain `*_traced` variants in
//! their `instrument` modules that record into a `&mut Tracer` next to
//! the existing `&mut FleetTelemetry` sink.
//!
//! ```
//! use lightwave_trace::{Lane, SpanKind, Tracer, to_chrome_trace};
//! use lightwave_units::Nanos;
//!
//! let mut tracer = Tracer::new(42);
//! let commit = tracer.span(
//!     Lane::Control,
//!     None,
//!     Nanos::from_millis(1),
//!     Nanos::from_millis(25),
//!     SpanKind::FabricCommit { switches: 3, added: 12, removed: 4, untouched: 368 },
//! );
//! lightwave_trace::reconfig_phase_spans(
//!     &mut tracer, commit, 0, Nanos::from_millis(1), Nanos::from_millis(25));
//! let json = to_chrome_trace(&tracer);
//! assert!(lightwave_trace::validate::validate_chrome_trace(&json).is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perfetto;
pub mod recorder;
pub mod span;
pub mod tracer;
pub mod validate;

pub use perfetto::{to_chrome_trace, to_chrome_trace_annotated, to_chrome_trace_with_counters};
pub use recorder::{FlightDump, FlightEntry, FlightRecorder};
pub use span::{InstantRecord, Lane, ReconfigPhase, RequestStage, SpanId, SpanKind, SpanRecord};
pub use tracer::{derive_span_id, reconfig_phase_spans, Tracer};
