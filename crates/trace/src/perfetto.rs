//! Chrome trace-event / Perfetto JSON export.
//!
//! The export is the JSON object format the Chrome tracing profiler and
//! <https://ui.perfetto.dev> both open: a `traceEvents` array of complete
//! (`"X"`), metadata (`"M"`), instant (`"i"`) and flow (`"s"`/`"f"`)
//! events, timestamps in **microseconds**. Lanes map to `(pid, tid)`
//! pairs via [`Lane::pid_tid`] — switches group under one process,
//! virtual workers under another — and metadata events name them.
//!
//! Everything is emitted in a deterministic order (metadata by lane
//! order, then spans in completion order, then instants), so a seeded
//! run exports a byte-identical `trace.json` at any worker count.

use crate::span::{Lane, SpanRecord};
use crate::tracer::Tracer;
use lightwave_telemetry::CounterTrack;
use serde::ser::{Serialize, Serializer};
use serde::Content;
use std::collections::BTreeSet;

/// Timestamp conversion: sim-time nanoseconds → trace microseconds.
fn micros(ns: u64) -> Content {
    Content::F64(ns as f64 / 1000.0)
}

fn obj(entries: Vec<(&str, Content)>) -> Content {
    Content::Map(
        entries
            .into_iter()
            .map(|(k, v)| (Content::Str(k.to_string()), v))
            .collect(),
    )
}

fn str_c(s: impl Into<String>) -> Content {
    Content::Str(s.into())
}

fn u64_c(v: impl Into<u64>) -> Content {
    Content::U64(v.into())
}

fn metadata_events(lanes: &[Lane], out: &mut Vec<Content>) {
    let mut named_pids = std::collections::BTreeSet::new();
    for &lane in lanes {
        let (pid, tid) = lane.pid_tid();
        if named_pids.insert(pid) {
            out.push(obj(vec![
                ("name", str_c("process_name")),
                ("ph", str_c("M")),
                ("pid", u64_c(pid)),
                ("tid", u64_c(0u32)),
                ("args", obj(vec![("name", str_c(lane.process_name()))])),
            ]));
        }
        out.push(obj(vec![
            ("name", str_c("thread_name")),
            ("ph", str_c("M")),
            ("pid", u64_c(pid)),
            ("tid", u64_c(tid)),
            ("args", obj(vec![("name", str_c(lane.thread_name()))])),
        ]));
    }
}

fn span_args(span: &SpanRecord, exemplars: &BTreeSet<u64>) -> Content {
    let mut entries = vec![("span", str_c(span.id.to_string()))];
    if let Some(p) = span.parent {
        entries.push(("parent", str_c(p.to_string())));
    }
    if let Some(f) = span.follows {
        entries.push(("follows", str_c(f.to_string())));
    }
    if exemplars.contains(&span.id.0) {
        // A scope-report bucket retained this span as its exemplar:
        // flag it so "why was this request slow?" investigations can
        // search `exemplar` in the Perfetto UI and land directly on it.
        entries.push(("exemplar", Content::Bool(true)));
    }
    entries.push(("kind", span.kind.to_content()));
    obj(entries)
}

fn span_events(span: &SpanRecord, exemplars: &BTreeSet<u64>, out: &mut Vec<Content>) {
    let (pid, tid) = span.lane.pid_tid();
    out.push(obj(vec![
        ("name", str_c(span.kind.name())),
        ("cat", str_c(span.kind.category())),
        ("ph", str_c("X")),
        ("ts", micros(span.start.0)),
        ("dur", micros(span.end.0 - span.start.0)),
        ("pid", u64_c(pid)),
        ("tid", u64_c(tid)),
        ("args", span_args(span, exemplars)),
    ]));
}

/// Flow arrows bind by (cat, name, id); the follower span's id is the
/// arrow id, so every follows-from link gets its own arrow.
fn flow_events(span: &SpanRecord, spans: &[SpanRecord], out: &mut Vec<Content>) {
    let Some(from) = span.follows else { return };
    let Some(source) = spans.iter().find(|s| s.id == from) else {
        return;
    };
    let (spid, stid) = source.lane.pid_tid();
    let (fpid, ftid) = span.lane.pid_tid();
    let id = str_c(span.id.to_string());
    out.push(obj(vec![
        ("name", str_c("follows")),
        ("cat", str_c("flow")),
        ("ph", str_c("s")),
        ("id", id.clone()),
        ("ts", micros(source.end.0)),
        ("pid", u64_c(spid)),
        ("tid", u64_c(stid)),
    ]));
    out.push(obj(vec![
        ("name", str_c("follows")),
        ("cat", str_c("flow")),
        ("ph", str_c("f")),
        ("bp", str_c("e")),
        ("id", id),
        ("ts", micros(span.start.0)),
        ("pid", u64_c(fpid)),
        ("tid", u64_c(ftid)),
    ]));
}

struct TraceJson(Content);

impl Serialize for TraceJson {
    fn to_content(&self) -> Content {
        self.0.clone()
    }

    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(self.0.clone())
    }
}

/// `"C"` counter events render fleet-health series (drift, relock
/// totals) as counter tracks under the control-plane process, aligned
/// with the span timeline. Values are dequantized from the series'
/// integer micro-units, so the emitted text is a pure function of the
/// retained samples.
fn counter_events(tracks: &[CounterTrack], out: &mut Vec<Content>) {
    let (pid, tid) = Lane::Control.pid_tid();
    for track in tracks {
        for p in &track.points {
            out.push(obj(vec![
                ("name", str_c(track.name.clone())),
                ("cat", str_c("counter")),
                ("ph", str_c("C")),
                ("ts", micros(p.at.0)),
                ("pid", u64_c(pid)),
                ("tid", u64_c(tid)),
                (
                    "args",
                    obj(vec![("value", Content::F64(p.value_micros as f64 / 1e6))]),
                ),
            ]));
        }
    }
}

/// Renders the tracer's completed spans and instants as a Chrome
/// trace-event JSON document (open it at <https://ui.perfetto.dev>).
///
/// Open spans are *not* exported — end them first; the flight recorder
/// is the tool for mid-flight state.
pub fn to_chrome_trace(tracer: &Tracer) -> String {
    to_chrome_trace_with_counters(tracer, &[])
}

/// [`to_chrome_trace`] plus counter tracks (`"C"` events) — pass
/// [`SeriesStore::tracks`](lightwave_telemetry::SeriesStore::tracks) or
/// [`FleetHealth::counter_tracks`](lightwave_telemetry::FleetHealth::counter_tracks)
/// to see the health time-series alongside the causal span timeline.
pub fn to_chrome_trace_with_counters(tracer: &Tracer, counters: &[CounterTrack]) -> String {
    to_chrome_trace_annotated(tracer, counters, &BTreeSet::new())
}

/// [`to_chrome_trace_with_counters`] plus exemplar annotation: spans
/// whose ids are in `exemplars` (the span ids a scope report's histogram
/// buckets retained) gain an `"exemplar": true` arg, so a tail bucket in
/// `scope_report.json` links to a span findable by searching `exemplar`
/// in the Perfetto UI. With an empty set this is byte-identical to the
/// plain export.
pub fn to_chrome_trace_annotated(
    tracer: &Tracer,
    counters: &[CounterTrack],
    exemplars: &BTreeSet<u64>,
) -> String {
    let mut events = Vec::new();
    metadata_events(&tracer.lanes(), &mut events);
    let spans = tracer.spans();
    for span in spans {
        span_events(span, exemplars, &mut events);
        flow_events(span, spans, &mut events);
    }
    for inst in tracer.instants() {
        let (pid, tid) = inst.lane.pid_tid();
        events.push(obj(vec![
            ("name", str_c(inst.name.clone())),
            ("cat", str_c("mark")),
            ("ph", str_c("i")),
            ("s", str_c("t")),
            ("ts", micros(inst.at.0)),
            ("pid", u64_c(pid)),
            ("tid", u64_c(tid)),
        ]));
    }
    counter_events(counters, &mut events);
    let doc = obj(vec![
        ("displayTimeUnit", str_c("ms")),
        ("traceEvents", Content::Seq(events)),
    ]);
    serde_json::to_string(&TraceJson(doc)).expect("content trees always serialize")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanKind;
    use lightwave_units::Nanos;

    fn sample_tracer() -> Tracer {
        let mut t = Tracer::new(11);
        let root = t.span(
            Lane::Control,
            None,
            Nanos(0),
            Nanos(5_000),
            SpanKind::FabricCommit {
                switches: 1,
                added: 2,
                removed: 0,
                untouched: 3,
            },
        );
        let a = t.span(
            Lane::Switch(4),
            Some(root),
            Nanos(0),
            Nanos(2_000),
            SpanKind::Custom {
                name: "a".to_string(),
            },
        );
        let b = t.span(
            Lane::Switch(4),
            Some(root),
            Nanos(2_000),
            Nanos(5_000),
            SpanKind::Custom {
                name: "b".to_string(),
            },
        );
        t.link_follows(b, a);
        t.instant(Lane::Control, Nanos(1_000), "alarm");
        t
    }

    #[test]
    fn export_is_deterministic() {
        assert_eq!(
            to_chrome_trace(&sample_tracer()),
            to_chrome_trace(&sample_tracer())
        );
    }

    #[test]
    fn export_contains_expected_shapes() {
        let json = to_chrome_trace(&sample_tracer());
        assert!(json.contains("\"displayTimeUnit\":\"ms\""));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"ph\":\"s\""), "flow start for follows link");
        assert!(
            json.contains("\"ph\":\"f\""),
            "flow finish for follows link"
        );
        assert!(json.contains("\"ph\":\"i\""), "instant mark");
        assert!(json.contains("process_name"));
        assert!(json.contains("ocs-4"), "switch lane named");
        // ts is microseconds: the 2_000 ns boundary renders as 2.
        assert!(json.contains("\"ts\":2"));
    }

    #[test]
    fn export_validates_against_schema() {
        let json = to_chrome_trace(&sample_tracer());
        let stats = crate::validate::validate_chrome_trace(&json).expect("valid");
        assert_eq!(stats.complete, 3);
        assert!(stats.metadata >= 3, "process + thread names");
        assert_eq!(stats.flows, 2, "one s + one f");
        assert_eq!(stats.instants, 1);
        assert_eq!(stats.counters, 0);
    }

    #[test]
    fn counter_tracks_export_as_c_events() {
        use lightwave_telemetry::{Sample, SeriesStore};
        let mut store = SeriesStore::default();
        let id = store.series("health_port_drift_db", &[("switch", "4")]);
        store.push_micros(id, Nanos(1_000), 30_000);
        store.push_micros(id, Nanos(2_000), 60_000);
        let tracks = store.tracks();
        assert_eq!(tracks[0].points.len(), 2);
        assert_eq!(
            tracks[0].points[0],
            Sample {
                at: Nanos(1_000),
                value_micros: 30_000
            }
        );
        let json = to_chrome_trace_with_counters(&sample_tracer(), &tracks);
        let stats = crate::validate::validate_chrome_trace(&json).expect("valid");
        assert_eq!(stats.counters, 2);
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("health_port_drift_db"));
        assert!(json.contains("\"value\":0.03"), "dequantized micro-units");
        // Plain export is the zero-counter case of the same path.
        assert_eq!(
            to_chrome_trace(&sample_tracer()),
            to_chrome_trace_with_counters(&sample_tracer(), &[])
        );
    }
}
