//! Property tests for allocation and simulation.

use lightwave_scheduler::alloc::{cube_at, Allocation, GRID};
use lightwave_scheduler::sim::default_mix;
use lightwave_scheduler::{Allocator, ClusterSim, Contiguous, Pooled};
use lightwave_superpod::slice::SliceShape;
use proptest::prelude::*;
use std::collections::BTreeSet;

fn is_box(alloc: &Allocation) -> bool {
    let xs: Vec<usize> = alloc.iter().map(|&c| c as usize % GRID).collect();
    let ys: Vec<usize> = alloc.iter().map(|&c| (c as usize / GRID) % GRID).collect();
    let zs: Vec<usize> = alloc.iter().map(|&c| c as usize / (GRID * GRID)).collect();
    let span = |v: &[usize]| v.iter().max().unwrap() - v.iter().min().unwrap() + 1;
    span(&xs) * span(&ys) * span(&zs) == alloc.len()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pooled_allocations_are_exact_and_idle(
        busy_mask in proptest::collection::btree_set(0u8..64, 0..48),
        p in 1usize..=4, q in 1usize..=4, r in 1usize..=4,
    ) {
        let idle: BTreeSet<u8> = (0..64).filter(|c| !busy_mask.contains(c)).collect();
        let shape = SliceShape::new(4 * p, 4 * q, 4 * r).expect("valid");
        match Pooled.allocate(shape, &idle) {
            Some(alloc) => {
                prop_assert_eq!(alloc.len(), shape.cube_count());
                let distinct: BTreeSet<u8> = alloc.iter().copied().collect();
                prop_assert_eq!(distinct.len(), alloc.len());
                prop_assert!(alloc.iter().all(|c| idle.contains(c)));
            }
            None => prop_assert!(idle.len() < shape.cube_count()),
        }
    }

    #[test]
    fn contiguous_allocations_are_boxes(
        busy_mask in proptest::collection::btree_set(0u8..64, 0..40),
        p in 1usize..=4, q in 1usize..=4, r in 1usize..=4,
    ) {
        let idle: BTreeSet<u8> = (0..64).filter(|c| !busy_mask.contains(c)).collect();
        let shape = SliceShape::new(4 * p, 4 * q, 4 * r).expect("valid");
        if let Some(alloc) = Contiguous.allocate(shape, &idle) {
            prop_assert_eq!(alloc.len(), shape.cube_count());
            prop_assert!(alloc.iter().all(|c| idle.contains(c)));
            prop_assert!(is_box(&alloc), "contiguous allocation must be a box: {alloc:?}");
        }
    }

    #[test]
    fn pooled_succeeds_whenever_contiguous_does(
        busy_mask in proptest::collection::btree_set(0u8..64, 0..40),
        p in 1usize..=4, q in 1usize..=4, r in 1usize..=4,
    ) {
        let idle: BTreeSet<u8> = (0..64).filter(|c| !busy_mask.contains(c)).collect();
        let shape = SliceShape::new(4 * p, 4 * q, 4 * r).expect("valid");
        if Contiguous.allocate(shape, &idle).is_some() {
            prop_assert!(Pooled.allocate(shape, &idle).is_some());
        }
    }

    #[test]
    fn simulation_utilization_is_bounded(seed in 0u64..40, interarrival in 0.2f64..4.0) {
        let sim = ClusterSim::new(default_mix(), interarrival);
        let r = sim.run(&Pooled, 300.0, seed);
        prop_assert!((0.0..=1.0).contains(&r.utilization));
        prop_assert!(r.mean_wait_hours >= 0.0);
        prop_assert_eq!(r.fragmentation_stalls, 0, "pooling cannot fragment");
    }

    #[test]
    fn cube_at_is_a_bijection(x in 0usize..4, y in 0usize..4, z in 0usize..4) {
        let c = cube_at(x, y, z) as usize;
        prop_assert_eq!(c % 4, x);
        prop_assert_eq!((c / 4) % 4, y);
        prop_assert_eq!(c / 16, z);
    }
}
