//! Bridges cluster-simulation results into the fleet observability
//! subsystem (`lightwave-telemetry`).
//!
//! Each recorded run is labeled by its scheduling discipline
//! (`pooled`, `contiguous`, `contiguous+defrag`, …) so the §4.2.4
//! utilization comparison reads directly off the dashboard: the pooled
//! discipline holds >98% utilization with zero fragmentation stalls,
//! while the static discipline pays in stalls or in defrag migrations.

use crate::sim::SimReport;
use lightwave_telemetry::{CounterId, FleetTelemetry, GaugeId, HistogramId};
use lightwave_trace::{Lane, SpanId, SpanKind, Tracer};
use lightwave_units::Nanos;

/// Fleet-metric handles for one scheduling discipline, labeled
/// `{discipline=<name>}`.
#[derive(Debug, Clone)]
pub struct SchedulerInstruments {
    discipline: String,
    utilization: GaugeId,
    wait_hours: HistogramId,
    completed: CounterId,
    fragmentation_stalls: CounterId,
    unsupported: CounterId,
    defrag_migrations: CounterId,
    runs: CounterId,
}

impl SchedulerInstruments {
    /// Registers the per-discipline instruments in `sink`'s metrics
    /// registry.
    pub fn register(sink: &mut FleetTelemetry, discipline: &str) -> SchedulerInstruments {
        let labels: &[(&str, &str)] = &[("discipline", discipline)];
        let m = &mut sink.metrics;
        SchedulerInstruments {
            discipline: discipline.to_string(),
            utilization: m.gauge("sched_utilization", labels),
            wait_hours: m.histogram("sched_mean_wait_hours", labels),
            completed: m.counter("sched_jobs_completed_total", labels),
            fragmentation_stalls: m.counter("sched_fragmentation_stalls_total", labels),
            unsupported: m.counter("sched_jobs_unsupported_total", labels),
            defrag_migrations: m.counter("sched_defrag_migrations_total", labels),
            runs: m.counter("sched_runs_total", labels),
        }
    }

    /// Records one simulation run's report.
    pub fn record_run(&mut self, sink: &mut FleetTelemetry, at: Nanos, report: &SimReport) {
        sink.metrics.inc(self.runs, at, 1);
        sink.metrics.set(self.utilization, at, report.utilization);
        sink.metrics
            .observe(self.wait_hours, at, report.mean_wait_hours);
        sink.metrics.inc(self.completed, at, report.completed);
        sink.metrics
            .inc(self.fragmentation_stalls, at, report.fragmentation_stalls);
        sink.metrics.inc(self.unsupported, at, report.unsupported);
        sink.metrics
            .inc(self.defrag_migrations, at, report.migrations);
    }

    /// [`Self::record_run`] plus a [`SpanKind::SchedulerRun`] span on the
    /// scheduler lane covering `started..ended` (the run's slice-carving
    /// window in sim time). Returns the run span.
    pub fn record_run_traced(
        &mut self,
        sink: &mut FleetTelemetry,
        tracer: &mut Tracer,
        parent: Option<SpanId>,
        started: Nanos,
        ended: Nanos,
        report: &SimReport,
    ) -> SpanId {
        self.record_run(sink, started, report);
        tracer.span(
            Lane::Scheduler,
            parent,
            started,
            ended.max(started),
            SpanKind::SchedulerRun {
                discipline: self.discipline.clone(),
                jobs: report.completed,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::Pooled;
    use crate::sim::{default_mix, ClusterSim};

    #[test]
    fn run_report_lands_in_labeled_metrics() {
        let mut sink = FleetTelemetry::new();
        let mut pooled = SchedulerInstruments::register(&mut sink, "pooled");
        let mut defrag = SchedulerInstruments::register(&mut sink, "contiguous+defrag");
        let sim = ClusterSim::new(default_mix(), 0.25);
        let rp = sim.run(&Pooled, 300.0, 42);
        let rd = sim.run_contiguous_with_defrag(300.0, 0.05, 42);
        pooled.record_run(&mut sink, Nanos(0), &rp);
        defrag.record_run(&mut sink, Nanos(0), &rd);
        assert_eq!(sink.metrics.counter_value(pooled.defrag_migrations), 0);
        assert!(sink.metrics.counter_value(defrag.defrag_migrations) > 0);
        assert!(sink.metrics.gauge_value(pooled.utilization) > 0.9);
        assert_eq!(
            sink.metrics.counter_value(pooled.fragmentation_stalls),
            0,
            "pooling cannot fragment"
        );
    }
}
